"""Ablation A3 — local communication via memcpy vs loopback MPI (§6.2).

"When intra-node communication occurs, the communication thread performs
memory copies instead of using MPI."  This ablation disables that path
(local messages loop through the MPI library instead) and measures
intra-node CPU:CPU send latency both ways.

Run:  pytest benchmarks/bench_ablation_localcomm.py --benchmark-only -s
"""

import dataclasses

import numpy as np
from conftest import run_artifact

from repro.bench.harness import Table, fmt_time
from repro.dcgn import DcgnConfig, DcgnRuntime
from repro.hw import HWParams, build_cluster, paper_cluster
from repro.sim import Simulator


def _params(local_via_memcpy: bool) -> HWParams:
    base = HWParams()
    return base.with_(
        dcgn=dataclasses.replace(base.dcgn, local_via_memcpy=local_via_memcpy)
    )


def intra_node_send_time(nbytes: int, local_via_memcpy: bool) -> float:
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=1, params=_params(local_via_memcpy))
    )
    rt = DcgnRuntime(cluster, DcgnConfig.homogeneous(1, cpu_threads=2))
    marks = {}
    iters = 5

    def kernel(ctx):
        buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
        if ctx.rank == 0:
            t0 = None
            for i in range(iters):
                yield from ctx.send(1, buf, nbytes=nbytes)
                yield from ctx.recv(1, buf, nbytes=nbytes)
                if t0 is None:
                    t0 = ctx.sim.now
            marks["rtt"] = (ctx.sim.now - t0) / max(iters - 1, 1)
        else:
            for _ in range(iters):
                yield from ctx.recv(0, buf, nbytes=nbytes)
                yield from ctx.send(0, buf, nbytes=nbytes)

    rt.launch_cpu(kernel)
    rt.run(max_time=60.0)
    return marks["rtt"] / 2.0


def localcomm_table() -> Table:
    t = Table(
        "Ablation A3 — intra-node message path (one-way CPU:CPU)",
        ["Size", "memcpy path (DCGN)", "loopback MPI", "memcpy speedup"],
    )
    for nbytes in (0, 4 * 1024, 64 * 1024, 1024 * 1024):
        t_memcpy = intra_node_send_time(nbytes, True)
        t_mpi = intra_node_send_time(nbytes, False)
        label = "0 B" if nbytes == 0 else f"{nbytes // 1024} kB"
        t.add(
            label,
            fmt_time(t_memcpy),
            fmt_time(t_mpi),
            f"{t_mpi / t_memcpy:.2f}×",
        )
    t.note(
        "The paper's design (§6.2) avoids MPI for local messages; the "
        "advantage grows with message size (memcpy bandwidth beats the "
        "loopback path's header+payload staging)."
    )
    return t


def test_local_memcpy_no_slower_than_loopback(benchmark):
    table = run_artifact(benchmark, "ablation_localcomm", localcomm_table)
    speedups = [float(r[3].rstrip("×")) for r in table.rows]
    # memcpy path should not lose anywhere, and win for large payloads.
    assert all(s >= 0.9 for s in speedups)
    assert speedups[-1] > 1.05
