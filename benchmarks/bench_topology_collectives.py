"""Benchmark — topology-derived autotuning vs flat-switch-constant tuning.

Sweeps allreduce (plus a broadcast series) over the pluggable fabric
topologies — flat switch, 2:1-oversubscribed fat tree (contiguous and
pod-scattered placements), 2-rail multi-rail, 2-D torus — comparing the
flat-IB-calibrated constant thresholds (``CollectiveTuning()``) against
the per-cluster autotuned tuning (``tuning=None``), and records the
results to ``BENCH_topology.json`` at the repository root.

Acceptance gates (exit non-zero on violation):

* a ``TopologySpec(kind="flat")`` cluster reproduces the default
  cluster's collective timings *exactly* (the refactor is bit-for-bit);
* autotuned simulated time ≤ constant-tuning time × 1.02 at every swept
  point (the 2% headroom absorbs razor-edge crossovers);
* strict win (≥1.2×) for ≥16-node ≥1 MB allreduce on the
  2:1-oversubscribed fat tree with a pod-scattered placement — the
  regime where the hierarchical intra/inter-domain decomposition pays.

The scattered placement models a scheduler that fragmented the job
across pods (Slurm cyclic distribution): consecutive ranks land in
different pods, so every step of the flat ring crosses the
oversubscribed uplinks while the hierarchical schedule crosses only in
its middle phase.

Run standalone:       python benchmarks/bench_topology_collectives.py
Fast smoke (CI):      python benchmarks/bench_topology_collectives.py --smoke
Under pytest-benchmark: pytest benchmarks/bench_topology_collectives.py --benchmark-only -s
"""

import sys

import common
from common import KB, MB

import numpy as np

from repro.bench.harness import Table, fmt_time
from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.mpi import (
    CollectiveTuning,
    MpiJob,
    ReduceOp,
    SEED_TUNING,
    pod_cyclic_placement,
)
from repro.sim import Simulator

FULL_SIZES = [4 * KB, 64 * KB, 1 * MB, 4 * MB]
FULL_NODES = [8, 16, 32]
SMOKE_SIZES = [64 * KB, 1 * MB]
SMOKE_NODES = [16]

POD = 4
RAILS = 2

#: Swept fabrics: label → (TopologySpec kwargs, placement mode).
SCENARIOS = [
    ("flat", dict(kind="flat"), "contiguous"),
    ("fattree-2to1", dict(kind="fattree", pod_size=POD, oversubscription=2.0),
     "contiguous"),
    ("fattree-2to1-scattered",
     dict(kind="fattree", pod_size=POD, oversubscription=2.0), "scattered"),
    ("multirail-2", dict(kind="multirail", rails=RAILS), "contiguous"),
    ("torus2d", dict(kind="torus2d"), "contiguous"),
]

JSON_PATH = common.json_path("topology")


def _run(op, topo_kwargs, placement_mode, n_nodes, nbytes, tuning):
    """Simulated completion time of one collective, 1 rank per node."""
    sim = Simulator()
    spec = ClusterSpec(
        nodes=n_nodes,
        gpus_per_node=0,
        topology=TopologySpec(**topo_kwargs),
    )
    cluster = build_cluster(sim, spec)
    placement = (
        pod_cyclic_placement(n_nodes, POD)
        if placement_mode == "scattered"
        else list(range(n_nodes))
    )
    job = MpiJob(cluster, placement, tuning=tuning)

    def prog(ctx):
        if op == "allreduce":
            send = np.zeros(nbytes, dtype=np.uint8)
            recv = np.zeros(nbytes, dtype=np.uint8)
            yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)
        elif op == "bcast":
            buf = np.zeros(nbytes, dtype=np.uint8)
            yield from ctx.bcast(buf, root=0)
        else:  # pragma: no cover - defensive
            raise ValueError(op)

    job.start(prog)
    job.run()
    common.track(sim)
    algo = next(
        (
            k.split("[")[1].rstrip("]")
            for k in job.comm.stats
            if k.startswith(f"{op}[")
        ),
        "?",
    )
    return sim.now, algo


def check_flat_identical(violations):
    """A flat TopologySpec must be indistinguishable from the default."""
    for nbytes in (1 * KB, 1 * MB):
        t_spec, _ = _run(
            "allreduce", dict(kind="flat"), "contiguous", 8, nbytes,
            SEED_TUNING,
        )
        sim = Simulator()
        cluster = build_cluster(
            sim, ClusterSpec(nodes=8, gpus_per_node=0)
        )
        job = MpiJob(cluster, list(range(8)), tuning=SEED_TUNING)

        def prog(ctx):
            send = np.zeros(nbytes, dtype=np.uint8)
            recv = np.zeros(nbytes, dtype=np.uint8)
            yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

        job.start(prog)
        job.run()
        if t_spec != sim.now:
            violations.append((
                "flat_not_identical",
                f"flat TopologySpec {t_spec:.9e}s != default "
                f"{sim.now:.9e}s at {nbytes} B",
            ))


def sweep(sizes, nodes):
    """Run the sweep; returns (points, violations)."""
    points = []
    violations = []
    check_flat_identical(violations)
    for label, topo_kwargs, placement_mode in SCENARIOS:
        for n in nodes:
            for nbytes in sizes:
                t_const, _ = _run(
                    "allreduce", topo_kwargs, placement_mode, n, nbytes,
                    CollectiveTuning(),
                )
                t_auto, algo = _run(
                    "allreduce", topo_kwargs, placement_mode, n, nbytes,
                    None,
                )
                ratio = t_const / t_auto if t_auto > 0 else 1.0
                points.append({
                    "op": "allreduce",
                    "topology": label,
                    "nodes": n,
                    "nbytes": nbytes,
                    "t_constants_s": t_const,
                    "t_autotuned_s": t_auto,
                    "speedup": ratio,
                    "algorithm": algo,
                })
                if t_auto > t_const * 1.02:
                    violations.append((
                        "slower_than_constants",
                        f"allreduce @ {label} / {n} nodes / {nbytes} B: "
                        f"autotuned {t_auto:.6e}s > constants "
                        f"{t_const:.6e}s",
                    ))
                if (
                    label == "fattree-2to1-scattered"
                    and n >= 16
                    and nbytes >= 1 * MB
                    and ratio < 1.2
                ):
                    violations.append((
                        "no_strict_win",
                        f"allreduce @ {label} / {n} nodes / {nbytes} B: "
                        f"win only {ratio:.2f}× (need >=1.2×)",
                    ))
    # Broadcast series: the hierarchical leader tree on the scattered
    # fat tree (recorded for the crossover table; same ≤ gate).
    for n in nodes:
        for nbytes in sizes:
            t_const, _ = _run(
                "bcast",
                dict(kind="fattree", pod_size=POD, oversubscription=2.0),
                "scattered", n, nbytes, CollectiveTuning(),
            )
            t_auto, algo = _run(
                "bcast",
                dict(kind="fattree", pod_size=POD, oversubscription=2.0),
                "scattered", n, nbytes, None,
            )
            ratio = t_const / t_auto if t_auto > 0 else 1.0
            points.append({
                "op": "bcast",
                "topology": "fattree-2to1-scattered",
                "nodes": n,
                "nbytes": nbytes,
                "t_constants_s": t_const,
                "t_autotuned_s": t_auto,
                "speedup": ratio,
                "algorithm": algo,
            })
            if t_auto > t_const * 1.02:
                violations.append((
                    "slower_than_constants",
                    f"bcast @ fattree-scattered / {n} nodes / {nbytes} B: "
                    f"autotuned {t_auto:.6e}s > constants {t_const:.6e}s",
                ))
    return points, violations


def build_table(points):
    table = Table(
        title="Topology-derived autotuning vs flat-switch constants",
        columns=[
            "op", "topology", "nodes", "size", "constants", "autotuned",
            "speedup", "algo",
        ],
    )
    for p in points:
        size = (
            f"{p['nbytes'] // MB} MB"
            if p["nbytes"] >= MB
            else f"{p['nbytes'] // KB} KB"
        )
        table.add(
            p["op"],
            p["topology"],
            p["nodes"],
            size,
            fmt_time(p["t_constants_s"]),
            fmt_time(p["t_autotuned_s"]),
            f"{p['speedup']:.2f}×",
            p["algorithm"],
        )
    table.note(
        "constants = flat-IB-calibrated CollectiveTuning(); autotuned = "
        "per-cluster derivation from the fabric profile (tuning=None)"
    )
    table.note(
        "scattered = Slurm-cyclic placement fragmenting ranks across "
        "pods; the hierarchical allreduce crosses the oversubscribed "
        "uplinks only in its inter-domain phase"
    )
    return table


def run(smoke=False, json_path=JSON_PATH):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    nodes = SMOKE_NODES if smoke else FULL_NODES
    points, violations = sweep(sizes, nodes)
    table = build_table(points)
    payload = {
        "benchmark": "bench_topology_collectives",
        "mode": "smoke" if smoke else "full",
        "acceptance": {
            "flat_spec_identical": not any(
                kind == "flat_not_identical" for kind, _ in violations
            ),
            "autotuned_never_slower": not any(
                kind == "slower_than_constants" for kind, _ in violations
            ),
            "fattree_scattered_strict_win": not any(
                kind == "no_strict_win" for kind, _ in violations
            ),
            "violations": [msg for _, msg in violations],
        },
        "points": points,
    }
    common.write_json(json_path, payload)
    return table, points, violations


def main(argv=None):
    parser = common.make_parser(
        __doc__, JSON_PATH,
        smoke_help="fast subset for CI (2 sizes × 1 node count)",
    )
    args = parser.parse_args(argv)
    table, points, violations = run(smoke=args.smoke, json_path=args.json)
    print(table.render())
    return common.finish(
        args.json, len(points), [msg for _, msg in violations],
        "flat spec identical; autotuned <= constants everywhere; "
        ">=1.2x win on scattered 2:1 fat tree >=16-node >=1MB allreduce",
    )


def test_topology_collectives_sweep(benchmark):
    """pytest-benchmark entry point (smoke-sized)."""
    holder = {}

    def job():
        holder["out"] = run(smoke=True)

    benchmark.pedantic(job, rounds=1, iterations=1)
    table, points, violations = holder["out"]
    print(table.render())
    assert not violations, violations


if __name__ == "__main__":
    sys.exit(main())
