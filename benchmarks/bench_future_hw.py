"""Benchmark — the paper's §7 prediction under future hardware.

Enables the two future-hardware switches (GPU→CPU signaling, direct
GPU↔NIC payload path) and measures how far the GPU:GPU send gap to MPI
closes — validating "these additions would put DCGN on par with MPI".

Run:  pytest benchmarks/bench_future_hw.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.bench.future import future_hw_table


def _ratio(cell: str) -> float:
    return float(cell.rstrip("×"))


def test_future_hardware_closes_the_gap(benchmark):
    table = run_artifact(benchmark, "future_hw", future_hw_table)
    rows = {r[0]: r for r in table.rows}
    baseline = _ratio(rows["DCGN 2009 (polling + host bounce)"][4])
    signaling = _ratio(rows["+ GPU signals CPU"][4])
    both = _ratio(rows["+ both (the paper's §7 world)"][4])
    # Signaling alone removes the polling wait (the dominant stage).
    assert signaling < 0.5 * baseline
    # The full §7 world brings 0-byte sends within ~25× of MPI — the
    # same order as DCGN's own CPU:CPU path (i.e. "on par" relative to
    # the polling architecture's hundreds-of-× multiplier).
    assert both < 0.35 * baseline
    assert both <= 60.0
