"""Benchmark — one-sided RMA vs two-sided halo exchange (Jacobi).

Sweeps the Jacobi halo-exchange hot path (``apps/jacobi.py``) over
node counts × halo sizes with one rank per node, comparing the four
MPI backends, and records everything to ``BENCH_rma.json`` at the
repository root.  CI gates:

1. **RMA fence ≥ 1.2× over blocking two-sided** at ≥ 16 nodes with
   ≥ 1 MB halos — the regime where the blocking baseline's four
   parity-serialized phases cost the most and RMA's matching-free
   puts (two per rank, overlapped on the wire) pay off.
2. **RMA never slower than two-sided blocking anywhere in the sweep**
   (best of fence/PSCW per point — choosing the sync mode that fits
   the regime is part of using the subsystem; fence's global barrier
   is the wrong tool at tiny halos, neighbor-scoped PSCW the right
   one).
3. **Put coalescing ≥ 1.2× over per-chunk puts at tiny halos** — the
   strided-halo fence variants issue each boundary row as 8 small
   column-block puts; on a ``coalesce=True`` window they batch onto
   one wire transfer per neighbor per epoch (MVAPICH2-style op
   coalescing) instead of paying 8 fabric latencies.

The nonblocking two-sided backend is recorded for context (RMA ties it
once bandwidth dominates and additionally removes the receiver's
matching/software path), as is one DCGN GPU-kernel-driven RMA point
(full smoke of the kernel → mailbox → comm-thread → window path).

Run standalone:       python benchmarks/bench_rma.py
Fast smoke (CI):      python benchmarks/bench_rma.py --smoke
"""

import sys

import common
from common import KB, MB

from repro.apps.jacobi import JacobiConfig, run_dcgn, run_mpi
from repro.bench.harness import Table, fmt_time
from repro.hw import ClusterSpec, build_cluster, paper_cluster
from repro.sim import Simulator

NODES_FULL = [4, 8, 16, 32]
NODES_SMOKE = [4, 16]
HALOS_FULL = [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB]
HALOS_SMOKE = [4 * KB, 64 * KB, 1 * MB]

#: Tiny-halo sweep of the chunked (strided) fence variants: the regime
#: where per-put wire latency dominates and coalescing pays.
COALESCE_HALOS_FULL = [1 * KB, 4 * KB, 16 * KB]
COALESCE_HALOS_SMOKE = [4 * KB]
COALESCE_NODES_FULL = [4, 8, 16]
COALESCE_NODES_SMOKE = [8]

ITERS = 3
ROWS_PER_RANK = 4

JSON_PATH = common.json_path("rma")


def _jacobi_time(n_nodes, halo_bytes, backend):
    cols = halo_bytes // 8
    cfg = JacobiConfig(
        p=n_nodes,
        rows_per_rank=ROWS_PER_RANK,
        cols=cols,
        iters=ITERS,
        # Numerics are covered by the small points and the test suite;
        # skip the large-grid NumPy verification to keep the sweep fast.
        verify=(halo_bytes <= 64 * KB),
    )
    sim = Simulator()
    cluster = build_cluster(
        sim, ClusterSpec(nodes=n_nodes, gpus_per_node=0)
    )
    elapsed = run_mpi(
        cluster, cfg, backend=backend, placement=list(range(n_nodes))
    ).elapsed
    common.track(sim)
    return elapsed


def bench_sweep(records, violations, smoke):
    table = Table(
        "Jacobi halo exchange: blocking / nonblocking two-sided vs "
        "RMA fence / PSCW",
        ["nodes", "halo", "blocking", "nonblock", "fence", "pscw",
         "fence win", "best-RMA win"],
    )
    nodes = NODES_SMOKE if smoke else NODES_FULL
    halos = HALOS_SMOKE if smoke else HALOS_FULL
    for n in nodes:
        for hb in halos:
            t_blk = _jacobi_time(n, hb, "blocking")
            t_nbl = _jacobi_time(n, hb, "nonblocking")
            t_fence = _jacobi_time(n, hb, "rma_fence")
            t_pscw = _jacobi_time(n, hb, "rma_pscw")
            t_best = min(t_fence, t_pscw)
            fence_win = t_blk / t_fence
            best_win = t_blk / t_best
            table.add(*[
                n, f"{hb // KB}KB", fmt_time(t_blk), fmt_time(t_nbl),
                fmt_time(t_fence), fmt_time(t_pscw),
                f"{fence_win:.2f}×", f"{best_win:.2f}×",
            ])
            records.append({
                "series": "halo_sweep", "nodes": n, "halo_bytes": hb,
                "blocking_s": t_blk, "nonblocking_s": t_nbl,
                "rma_fence_s": t_fence, "rma_pscw_s": t_pscw,
                "fence_win": fence_win, "best_rma_win": best_win,
            })
            if n >= 16 and hb >= 1 * MB and fence_win < 1.2:
                violations.append(
                    f"RMA fence win {fence_win:.3f}x < 1.2x over blocking "
                    f"at {n} nodes / {hb} B halos"
                )
            if best_win < 0.999:
                violations.append(
                    f"RMA slower than blocking two-sided at {n} nodes / "
                    f"{hb} B halos: {best_win:.4f}x"
                )
    print()
    print(table.render())


def bench_coalescing(records, violations, smoke):
    """Gate 3: coalesced strided-halo puts ≥ 1.2× over per-chunk puts."""
    table = Table(
        "strided halos (8 column-block puts per row): per-chunk puts vs "
        "MVAPICH2-style coalescing",
        ["nodes", "halo", "chunked", "coalesced", "win"],
    )
    nodes = COALESCE_NODES_SMOKE if smoke else COALESCE_NODES_FULL
    halos = COALESCE_HALOS_SMOKE if smoke else COALESCE_HALOS_FULL
    for n in nodes:
        for hb in halos:
            t_chunk = _jacobi_time(n, hb, "rma_fence_chunked")
            t_coal = _jacobi_time(n, hb, "rma_fence_coalesced")
            win = t_chunk / t_coal
            table.add(*[
                n, f"{hb // KB}KB", fmt_time(t_chunk), fmt_time(t_coal),
                f"{win:.2f}×",
            ])
            records.append({
                "series": "put_coalescing", "nodes": n, "halo_bytes": hb,
                "chunked_s": t_chunk, "coalesced_s": t_coal, "win": win,
            })
            if win < 1.2:
                violations.append(
                    f"put coalescing win {win:.3f}x < 1.2x at {n} nodes "
                    f"/ {hb} B halos"
                )
    print()
    print(table.render())


def bench_dcgn_point(records):
    """One GPU-kernel-driven RMA point (smoke of the whole path)."""
    cfg = JacobiConfig(p=4, rows_per_rank=4, cols=2048, iters=ITERS)
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=4, gpus_per_node=1))
    res = run_dcgn(cluster, cfg)
    print(
        f"\nDCGN GPU-kernel RMA Jacobi (4 slots, 16KB halos): "
        f"{fmt_time(res.elapsed)} (verified)"
    )
    records.append({
        "series": "dcgn_rma", "nodes": 4, "halo_bytes": cfg.halo_bytes,
        "elapsed_s": res.elapsed,
    })


def main() -> int:
    parser = common.make_parser(__doc__, JSON_PATH)
    args = parser.parse_args()
    records = []
    violations = []
    bench_sweep(records, violations, args.smoke)
    bench_coalescing(records, violations, args.smoke)
    bench_dcgn_point(records)
    fence = [
        r["rma_fence_s"] for r in records if r["series"] == "halo_sweep"
    ]
    if fence:
        print(common.tail_line("halo-sweep fence-epoch times", fence))
    common.write_json(
        args.json, {"records": records, "violations": violations}
    )
    return common.finish(
        args.json, len(records), violations,
        "RMA fence >= 1.2x over blocking two-sided at >= 16 nodes / "
        ">= 1 MB halos; RMA (best sync mode) never slower than blocking "
        "two-sided anywhere; put coalescing >= 1.2x over per-chunk puts "
        "at tiny halos",
    )


if __name__ == "__main__":
    sys.exit(main())
