"""Benchmark — compute/communication overlap via nonblocking slot requests.

Measures the end-to-end win of DCGN's nonblocking kernel APIs
(``isend``/``irecv``/``ibroadcast`` — the paper-style iSendTo/iRecvFrom
slot requests) over the blocking paths, using the two communicating
apps:

* **Cannon halo rotation** — each step posts the A/B block rotation
  into spare device buffers, then computes the current block product
  while the comm thread moves the payloads (double-buffered halo
  exchange).  This is the headline overlap number.
* **N-body one-to-all** — every step's P broadcasts are issued
  nonblockingly and pipelined by the comm thread instead of paying a
  full post→poll→wire→write-back round trip per root.

Both runs verify their numerics, so the overlap path is exercised for
correctness as well as timing.  Results land in ``BENCH_overlap.json``
at the repository root.

Acceptance gates (exit non-zero on violation):

* Cannon overlapped ≥ 1.3× faster than blocking on ≥ 8 nodes;
* no overlap point anywhere is slower than its blocking twin.

Run standalone:       python benchmarks/bench_overlap.py
Fast smoke (CI):      python benchmarks/bench_overlap.py --smoke
Under pytest-benchmark: pytest benchmarks/bench_overlap.py --benchmark-only -s
"""

import sys

import common

from repro.apps.cannon import CannonConfig, run_dcgn as cannon_dcgn
from repro.apps.nbody import NBodyConfig, run_dcgn as nbody_dcgn
from repro.bench.harness import Table, fmt_time
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator

#: (label, nodes, config factory) — Cannon grids sized so each node
#: computes a ~1 MB block whose rotation time is comparable to the
#: block product, the regime overlap is designed for.
CANNON_POINTS = [
    ("cannon-3x3", 9, lambda: CannonConfig(n=1536, grid=3)),
    ("cannon-4x4", 16, lambda: CannonConfig(n=2048, grid=4)),
]
SMOKE_CANNON = [CANNON_POINTS[0]]

NBODY_POINTS = [
    ("nbody-4k", 8, lambda: NBodyConfig(n_bodies=4096, steps=3)),
    ("nbody-8k", 8,
     lambda: NBodyConfig(n_bodies=8192, steps=3, verify=False)),
]
SMOKE_NBODY = [NBODY_POINTS[0]]

#: Acceptance: overlapped halo exchange must win this much end-to-end.
MIN_OVERLAP_WIN = 1.3

JSON_PATH = common.json_path("overlap")


def _run(app, nodes, cfg, overlap):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=nodes, gpus_per_node=1))
    runner = cannon_dcgn if app == "cannon" else nbody_dcgn
    elapsed = runner(cluster, cfg, overlap=overlap).elapsed
    common.track(sim)
    return elapsed


def sweep(cannon_points, nbody_points):
    """Run the sweep; returns (points, violations)."""
    points = []
    violations = []
    for app, series in (("cannon", cannon_points), ("nbody", nbody_points)):
        for label, nodes, make_cfg in series:
            t_block = _run(app, nodes, make_cfg(), overlap=False)
            t_over = _run(app, nodes, make_cfg(), overlap=True)
            ratio = t_block / t_over if t_over > 0 else 1.0
            points.append({
                "app": app,
                "label": label,
                "nodes": nodes,
                "t_blocking_s": t_block,
                "t_overlap_s": t_over,
                "speedup": ratio,
            })
            if t_over > t_block * (1 + 1e-9):
                violations.append((
                    "overlap_slower",
                    f"{label} @ {nodes} nodes: overlap {t_over:.6e}s > "
                    f"blocking {t_block:.6e}s",
                ))
            if app == "cannon" and nodes >= 8 and ratio < MIN_OVERLAP_WIN:
                violations.append((
                    "no_overlap_win",
                    f"{label} @ {nodes} nodes: overlap win only "
                    f"{ratio:.2f}× (need >={MIN_OVERLAP_WIN}×)",
                ))
    return points, violations


def build_table(points):
    table = Table(
        title="Nonblocking slot requests: overlapped vs blocking exchange",
        columns=["app", "workload", "nodes", "blocking", "overlapped",
                 "speedup"],
    )
    for p in points:
        table.add(
            p["app"],
            p["label"],
            p["nodes"],
            fmt_time(p["t_blocking_s"]),
            fmt_time(p["t_overlap_s"]),
            f"{p['speedup']:.2f}×",
        )
    table.note(
        "cannon: per-step A/B halo rotation double-buffered through "
        "isend/irecv slot requests, hidden under the block product"
    )
    table.note(
        "nbody: the P per-step broadcasts issued via ibroadcast and "
        "pipelined by the comm thread"
    )
    return table


def run(smoke=False, json_path=JSON_PATH):
    cannon_points = SMOKE_CANNON if smoke else CANNON_POINTS
    nbody_points = SMOKE_NBODY if smoke else NBODY_POINTS
    points, violations = sweep(cannon_points, nbody_points)
    table = build_table(points)
    payload = {
        "benchmark": "bench_overlap",
        "mode": "smoke" if smoke else "full",
        "acceptance": {
            "overlap_never_slower": not any(
                kind == "overlap_slower" for kind, _ in violations
            ),
            "halo_overlap_strict_win": not any(
                kind == "no_overlap_win" for kind, _ in violations
            ),
            "min_win": MIN_OVERLAP_WIN,
            "violations": [msg for _, msg in violations],
        },
        "points": points,
    }
    common.write_json(json_path, payload)
    return table, points, violations


def main(argv=None):
    parser = common.make_parser(
        __doc__, JSON_PATH,
        smoke_help="fast subset for CI (one Cannon + one n-body point)",
    )
    args = parser.parse_args(argv)
    table, points, violations = run(smoke=args.smoke, json_path=args.json)
    print(table.render())
    return common.finish(
        args.json, len(points), [msg for _, msg in violations],
        f"overlap never slower; >={MIN_OVERLAP_WIN}x win for "
        "overlapped Cannon halo rotation on >=8 nodes",
    )


def test_overlap_sweep(benchmark):
    """pytest-benchmark entry point (smoke-sized)."""
    holder = {}

    def job():
        holder["out"] = run(smoke=True)

    benchmark.pedantic(job, rounds=1, iterations=1)
    table, points, violations = holder["out"]
    print(table.render())
    assert not violations, violations


if __name__ == "__main__":
    sys.exit(main())
