"""Ablation A2 — slots under skewed workloads (paper §3.1).

The paper motivates slots with a map-reduce-style example: if 0.001% of
items take 10000× longer, "a single element can then delay an entire
DPM from communicating results".  With one slot per GPU, a slow item
blocks the device's only communication target; with several slots,
other blocks keep streaming work.

This benchmark runs a master/worker item queue over one GPU with a
heavy-tailed item-cost distribution and sweeps slots_per_gpu.

Run:  pytest benchmarks/bench_ablation_slots.py --benchmark-only -s
"""

import numpy as np
from conftest import run_artifact

from repro.bench.harness import Table, fmt_time
from repro.dcgn import ANY, DcgnConfig, DcgnRuntime, NodeConfig
from repro.gpusim import LaunchConfig
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator, us

#: Item costs: mostly cheap, a few pathological stragglers (paper §3.1).
N_ITEMS = 48
CHEAP_S = 40e-6
SLOW_EVERY = 16  #: every 16th item costs 50× more
SLOW_S = 50 * CHEAP_S
STOP = -1


def _item_cost(i: int) -> float:
    return SLOW_S if (i % SLOW_EVERY) == SLOW_EVERY - 1 else CHEAP_S


def run_skewed_queue(slots: int, seed: int = 0) -> float:
    """Master (CPU) feeds items to one GPU virtualized into ``slots``."""
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=1, seed=seed))
    cfg = DcgnConfig(
        [NodeConfig(cpu_threads=1, gpus=1, slots_per_gpu=slots)]
    )
    rt = DcgnRuntime(cluster, cfg)
    n_workers = slots
    marks = {}

    def master(ctx):
        t0 = ctx.sim.now
        next_item = 0
        stopped = 0
        msg = np.zeros(1, dtype=np.int64)
        while stopped < n_workers:
            status = yield from ctx.recv(ANY, msg)
            if next_item < N_ITEMS:
                reply = np.array([next_item], dtype=np.int64)
                next_item += 1
            else:
                reply = np.array([STOP], dtype=np.int64)
                stopped += 1
            yield from ctx.send(status.source, reply)
        marks["elapsed"] = ctx.sim.now - t0

    def gpu_worker(kctx):
        comm = kctx.comm
        slot = kctx.block_idx % comm.n_slots
        msg = kctx.device.alloc(1, dtype=np.int64, name=f"msg{slot}")
        while True:
            msg.data[0] = 0
            yield from comm.send(slot, 0, msg)
            yield from comm.recv(slot, 0, msg)
            item = int(msg.data[0])
            if item == STOP:
                break
            yield from kctx.compute(seconds=_item_cost(item))
        msg.free()

    rt.launch_cpu(master)
    rt.launch_gpu(gpu_worker, config=LaunchConfig(grid_blocks=slots))
    rt.run(max_time=60.0)
    return marks["elapsed"]


def slots_table() -> Table:
    t = Table(
        "Ablation A2 — slots per GPU on a heavy-tailed item queue",
        ["Slots", "Makespan", "vs 1 slot"],
    )
    base = None
    for slots in (1, 2, 4, 8):
        elapsed = run_skewed_queue(slots)
        if base is None:
            base = elapsed
        t.add(slots, fmt_time(elapsed), f"{base / elapsed:.2f}×")
    t.note(
        "More slots let cheap items flow around stragglers (paper §3.1: "
        "'no single mapping of ranks to DPM resources can match every "
        "data parallel algorithm')."
    )
    return t


def test_slots_mitigate_skew(benchmark):
    table = run_artifact(benchmark, "ablation_slots", slots_table)

    def parse(cell):
        v, unit = cell.split()
        return float(v) * {"µs": 1e-6, "ms": 1e-3, "s": 1.0}[unit]

    makespans = [parse(r[1]) for r in table.rows]
    # 4 slots must beat 1 slot decisively on the skewed queue.
    assert makespans[2] < 0.7 * makespans[0]
