"""Benchmark S5.1c — the N-body efficiency curve (§5.1).

Paper (8 GPUs): efficiency ≈ 28% at 4k bodies, 64% at 16k, >90% at 32k;
DCGN and GAS equal.  Our GAS curve matches closely; DCGN trails at small
N (deviation D3 in EXPERIMENTS.md) and converges as N grows.

Run:  pytest benchmarks/bench_app_nbody.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.bench import sec51_nbody


def test_sec51_nbody_efficiency_curve(benchmark):
    table = run_artifact(
        benchmark,
        "sec51_nbody",
        sec51_nbody,
        body_counts=(4096, 16384, 32768, 65536),
        steps=3,
    )
    gas = [float(r[2].rstrip("%")) / 100 for r in table.rows]
    dcgn = [float(r[3].rstrip("%")) / 100 for r in table.rows]
    ratio = [float(r[4]) for r in table.rows]
    # Efficiency rises with body count for both models.
    assert gas == sorted(gas)
    assert dcgn == sorted(dcgn)
    # Paper bands for GAS at the three published points.
    assert 0.20 <= gas[0] <= 0.40   # 4k  (paper 28%)
    assert 0.50 <= gas[1] <= 0.75   # 16k (paper 64%)
    assert 0.65 <= gas[2] <= 0.95   # 32k (paper >90%)
    # DCGN converges toward GAS as computation dominates.
    assert ratio == sorted(ratio)
    assert ratio[-1] >= 0.85
