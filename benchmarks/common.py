"""Shared plumbing for the gated benchmark scripts.

Every ``bench_*.py`` under this directory used to carry its own copy of
the same scaffolding: the ``sys.path`` bootstrap, the KB/MB constants,
the repo-root ``BENCH_*.json`` path computation, the ``--smoke``/
``--json`` argument parser, the JSON emit, and the violation print +
exit-code dance.  This module is that scaffolding, written once:

* :func:`add_src_to_path` — runs at import, so ``import common`` (or
  ``from common import ...``) as the first local import is the whole
  bootstrap.
* :func:`json_path` — the committed repo-root artifact path for a
  benchmark name.
* :func:`make_parser` — the standard CLI: ``--smoke`` (alias
  ``--quick``) for the reduced CI sweep, ``--json PATH`` to redirect
  the artifact (so smoke runs don't clobber the committed full-sweep
  JSON).
* :func:`write_json` — atomic-enough artifact emit with trailing
  newline.
* :func:`finish` — the common epilogue: point count, aggregated
  ``sim.stats`` counters, gate violations (to stderr) and the exit
  code CI keys off.
* :func:`track` — feed a finished :class:`~repro.sim.core.Simulator`
  into the per-process stats aggregate that :func:`finish` prints
  (events popped, heap pushes, payload copies elided, fast-path rounds
  priced — the observability counters of the vectorized event core).
* :func:`percentiles` / :func:`tail_line` — the p50/p95/p99 block every
  latency-reporting bench needs, delegated to the serving layer's
  interpolating :func:`~repro.serve.workload.percentile` so benches and
  the runtime agree on what "p99" means.
* :func:`arrival_schedule` — seeded open-loop Poisson arrival instants
  (:func:`~repro.serve.workload.open_loop_arrivals`), for any bench
  that offers load instead of running closed-loop.
"""

import argparse
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Sequence

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.abspath(os.path.join(BENCH_DIR, ".."))

KB = 1024
MB = 1024 * 1024


def add_src_to_path() -> None:
    """Make ``repro`` importable when run as a plain script."""
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)


add_src_to_path()

#: Aggregated simulator counters across every run this process made.
_STATS_TOTALS: Dict[str, int] = {}


def track(sim, since: Optional[Dict[str, int]] = None):
    """Fold ``sim.stats`` into the process-wide aggregate (call after
    the run finishes); returns ``sim`` so call sites can chain.

    Pass ``since`` (a prior ``sim.stats.snapshot()``) to fold in only
    the growth since that point — for benches that reuse one simulator
    across phases and want each phase booked separately.
    """
    d = (
        sim.stats.delta(since) if since is not None
        else sim.stats.snapshot()
    )
    for key, value in d.items():
        _STATS_TOTALS[key] = _STATS_TOTALS.get(key, 0) + value
    return sim


def stats_summary() -> Optional[str]:
    """One line of aggregated counters, or ``None`` if nothing ran.

    Nonzero counters only (``SimStats.summary(compact=True)``): the
    field list keeps growing and a bench that never touched RMA or
    serving shouldn't print a page of zeros.
    """
    if not _STATS_TOTALS:
        return None
    from repro.sim.stats import SimStats

    agg = SimStats()
    for key, value in _STATS_TOTALS.items():
        setattr(agg, key, value)
    body = agg.summary(compact=True)
    return f"sim.stats totals: {body}" if body else None


def percentiles(
    values: Sequence[float], qs: Sequence[float] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` of ``values``."""
    from repro.serve.workload import percentile

    return {f"p{q:g}": percentile(values, q) for q in qs}


def tail_line(label: str, values: Sequence[float]) -> str:
    """One printable tail-latency summary line (seconds in, µs out)."""
    p = percentiles(values)
    return (
        f"{label}: n={len(values)} p50={p['p50'] * 1e6:.1f}us "
        f"p95={p['p95'] * 1e6:.1f}us p99={p['p99'] * 1e6:.1f}us"
    )


def arrival_schedule(
    rate_hz: float, n_requests: int, seed: int = 0, start: float = 0.0
) -> List[float]:
    """Seeded open-loop Poisson arrival instants (ascending)."""
    from repro.serve.workload import open_loop_arrivals

    return open_loop_arrivals(rate_hz, n_requests, seed=seed, start=start)


def json_path(name: str) -> str:
    """The committed repo-root artifact path, e.g. ``BENCH_rma.json``."""
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


def make_parser(
    doc: str, default_json: str, smoke_help: str = "reduced sweep for CI"
) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=doc)
    parser.add_argument(
        "--smoke", "--quick", dest="smoke", action="store_true",
        help=smoke_help,
    )
    parser.add_argument(
        "--json", default=default_json, metavar="PATH",
        help="where to record results (default: the committed "
             f"{os.path.basename(default_json)} — pass a scratch path "
             "to avoid clobbering the full-sweep artifact with a "
             "smoke run)",
    )
    return parser


def write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def finish(
    path: str,
    n_points: int,
    violations: Iterable[str],
    ok_msg: str,
) -> int:
    """Common epilogue: record count, stats, violations, exit code."""
    print(f"\nrecorded {n_points} points to {os.path.abspath(path)}")
    line = stats_summary()
    if line:
        print(line)
    violations = list(violations)
    if violations:
        print("\nGATE VIOLATIONS:", file=sys.stderr)
        for v in violations:
            print(f"  - {v}", file=sys.stderr)
        return 1
    print(f"acceptance: {ok_msg}")
    return 0
