"""Ablation A1 — the polling-interval trade-off (paper §3.2.3).

"Tradeoffs in performance are required because high-frequency polling
strains the CPU whereas low-frequency polling increases message latency."

Sweeps the GPU polling interval and reports (a) GPU:GPU one-way message
latency and (b) CPU polling load (PCIe probes issued per simulated
second), plus the fixed-interval vs adaptive-burst policy comparison.

Run:  pytest benchmarks/bench_ablation_polling.py --benchmark-only -s
"""

import dataclasses

from conftest import run_artifact

from repro.apps import micro
from repro.bench.harness import Table, fmt_time
from repro.hw import HWParams
from repro.hw.params import DcgnParams
from repro.sim import us


def _params(interval_us: float, kick: bool = True) -> HWParams:
    base = HWParams()
    return base.with_(
        dcgn=dataclasses.replace(
            base.dcgn,
            gpu_poll_interval_us=interval_us,
            gpu_poll_kick=kick,
        )
    )


def polling_tradeoff_table() -> Table:
    t = Table(
        "Ablation A1 — GPU polling interval trade-off",
        [
            "Interval",
            "GPU:GPU 0B latency",
            "GPU:GPU 64kB latency",
            "CPU load (probes/ms idle)",
        ],
    )
    for interval in (50.0, 150.0, 300.0, 600.0, 1200.0):
        params = _params(interval)
        t0 = micro.dcgn_send_time(0, "gpu", "gpu", iters=4, params=params)
        t64 = micro.dcgn_send_time(
            64 * 1024, "gpu", "gpu", iters=4, params=params
        )
        # CPU polling load: with sleep-based polling, the poller probes
        # the GPU once per interval while a kernel runs — the §3.2.3
        # "high-frequency polling strains the CPU" side of the trade-off.
        probes_per_ms = 1000.0 / interval
        t.add(
            f"{interval:.0f} µs",
            fmt_time(t0),
            fmt_time(t64),
            f"{probes_per_ms:.1f}",
        )
    t.note(
        "Latency grows with the interval (lazy polling); short intervals "
        "buy latency at the price of PCIe probe traffic (CPU load)."
    )
    return t


def test_polling_interval_latency_tradeoff(benchmark):
    table = run_artifact(
        benchmark, "ablation_polling", polling_tradeoff_table
    )

    def parse(cell):
        v, unit = cell.split()
        return float(v) * {"µs": 1e-6, "ms": 1e-3, "s": 1.0}[unit]

    lats = [parse(r[1]) for r in table.rows]
    # Monotone non-decreasing latency with polling interval.
    assert all(b >= a * 0.95 for a, b in zip(lats, lats[1:]))
    assert lats[-1] > 2.5 * lats[0]


def test_kick_policy_matters_for_mixed_traffic(benchmark):
    """Adaptive kick vs fixed interval: CPU→GPU message latency."""

    def compute():
        t_kick = micro.dcgn_send_time(
            1024, "cpu", "gpu", iters=4, params=_params(300.0, kick=True)
        )
        t_fixed = micro.dcgn_send_time(
            1024, "cpu", "gpu", iters=4, params=_params(300.0, kick=False)
        )
        return t_kick, t_fixed

    t_kick, t_fixed = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(
        f"[A1] cpu->gpu 1kB: adaptive {t_kick * 1e6:.0f} µs vs "
        f"fixed {t_fixed * 1e6:.0f} µs"
    )
    benchmark.extra_info["kick_us"] = round(t_kick * 1e6, 1)
    benchmark.extra_info["fixed_us"] = round(t_fixed * 1e6, 1)
    assert t_kick < t_fixed
