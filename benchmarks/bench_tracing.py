"""Benchmark — wall-clock cost of span tracing on the collectives sweep.

Runs the 32-node collectives sweep (allreduce + allgather + barrier at
1 KB / 16 KB / 256 KB) with and without an attached
:class:`~repro.obs.SpanRecorder` on both the exact and the analytic
execution backends, and records the tracing overhead to
``BENCH_tracing.json``.

Tracing is timing-passive (the simulated results are bit-identical —
see ``tests/test_obs.py``), so the only cost is host CPU: span tuples,
attr dicts and the extra branches on the hot paths.  The measurement
protocol is built for noisy shared machines:

* **CPU time** (``time.process_time``), not wall clock — immune to
  other processes stealing the core between runs;
* **ABBA interleaving** — each repetition times untraced, traced,
  traced, untraced, so a multi-second slow phase of the machine hits
  both sides symmetrically instead of landing on whichever side ran
  second;
* **gc disabled inside the timed region** (stdlib ``timeit``
  semantics) — a traced run makes ~20k extra small allocations, and
  CPython's generational heuristic turns those into twice as many
  gen-0 collections, whose cost depends on everything *else* alive in
  the process, not on the tracer.  Collection is forced between runs
  so each side still pays its own allocation cost;
* **ratio of minima** — the best traced run over the best untraced
  run across all repetitions.  Minima are the stable statistic on a
  shared machine: they converge to the unloaded cost as samples grow,
  while means and medians inherit the (large, asymmetric) load noise.

Acceptance gates (exit non-zero on violation):

* traced exact-backend sweep ≤ 10% slower than untraced;
* traced analytic-backend sweep ≤ 10% slower than untraced.

Run standalone:  python benchmarks/bench_tracing.py
Fast smoke (CI): python benchmarks/bench_tracing.py --smoke
"""

import gc
import sys
import time

import common
from common import KB

import numpy as np

from repro.bench.harness import Table
from repro.hw import build_cluster, paper_cluster
from repro.mpi import MpiJob, block_placement
from repro.sim import Simulator

SIZES = [1 * KB, 16 * KB, 256 * KB]
NODES = 32
FULL_REPS = 12
SMOKE_REPS = 8
OVERHEAD_BUDGET = 0.10

JSON_PATH = common.json_path("tracing")


def _sweep(backend, traced):
    """One full collectives sweep; returns the recorder (or None)."""
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=NODES, gpus_per_node=0)
    )
    rec = sim.attach_spans() if traced else None
    job = MpiJob(cluster, block_placement(NODES, NODES), backend=backend)

    def prog(ctx):
        for nbytes in SIZES:
            buf = np.ones(nbytes // 8)
            out = np.empty_like(buf)
            yield from ctx.allreduce(buf, out)
            block = np.ones(nbytes // 8 // ctx.size)
            recvs = [np.empty_like(block) for _ in range(ctx.size)]
            yield from ctx.allgather(block, recvs)
            yield from ctx.barrier()

    job.start(prog)
    job.run()
    return rec


def _measure(backend, reps, inner=1):
    """Best-vs-best CPU-time overhead of tracing for one backend.

    ``inner`` repeats the sweep inside each timed region — used for
    the analytic backend, whose single-sweep runtime is small enough
    that scheduler jitter would dominate the overhead ratio.
    """
    # Warm both code paths (imports, autotune caches, allocator).
    _sweep(backend, False)
    _sweep(backend, True)
    n_spans = 0

    def timed(traced):
        # Collect before each timed run so neither side starts with
        # the other's garbage pending, then freeze the collector for
        # the timed region (timeit semantics) — tracing's allocation
        # cost still lands inside, only gc *scheduling* is excluded.
        gc.collect()
        gc.disable()
        try:
            t0 = time.process_time()
            for _ in range(inner):
                rec = _sweep(backend, traced)
            dt = time.process_time() - t0
        finally:
            gc.enable()
        return dt / inner, rec

    best_untraced = best_traced = float("inf")
    for _ in range(reps):
        for traced in (False, True, True, False):
            dt, rec = timed(traced)
            if traced:
                best_traced = min(best_traced, dt)
                n_spans = len(rec.spans)
            else:
                best_untraced = min(best_untraced, dt)
    return {
        "backend": backend,
        "nodes": NODES,
        "reps": reps,
        "untraced_cpu_s": best_untraced,
        "traced_cpu_s": best_traced,
        "overhead": best_traced / best_untraced - 1.0,
        "n_spans": n_spans,
    }


def run(smoke=False, json_path=JSON_PATH):
    reps = SMOKE_REPS if smoke else FULL_REPS
    table = Table(
        "tracing overhead — 32-node collectives sweep "
        f"(best of {reps} ABBA-interleaved CPU-time reps)",
        ["backend", "untraced", "traced", "overhead", "spans"],
    )
    points = []
    violations = []
    for backend in ("exact", "analytic"):
        pt = _measure(backend, reps, inner=4 if backend == "analytic" else 1)
        points.append(pt)
        table.add(
            backend,
            f"{pt['untraced_cpu_s'] * 1e3:.0f} ms",
            f"{pt['traced_cpu_s'] * 1e3:.0f} ms",
            f"{pt['overhead'] * 100:+.1f}%",
            str(pt["n_spans"]),
        )
        if pt["overhead"] > OVERHEAD_BUDGET:
            violations.append(
                f"{backend}: tracing overhead {pt['overhead'] * 100:.1f}% "
                f"exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget"
            )
    common.write_json(json_path, {
        "benchmark": "tracing",
        "mode": "smoke" if smoke else "full",
        "budget": OVERHEAD_BUDGET,
        "points": points,
        "violations": violations,
    })
    return table, points, violations


def main(argv=None):
    parser = common.make_parser(
        __doc__, JSON_PATH,
        smoke_help="fewer repetitions for CI",
    )
    args = parser.parse_args(argv)
    table, points, violations = run(smoke=args.smoke, json_path=args.json)
    print(table.render())
    return common.finish(
        args.json, len(points), violations,
        "traced collectives sweep within the 10% overhead budget on "
        "both backends",
    )


def test_tracing_overhead(benchmark):
    """pytest-benchmark entry point (smoke-sized)."""
    holder = {}

    def job():
        holder["out"] = run(smoke=True)

    benchmark.pedantic(job, rounds=1, iterations=1)
    table, points, violations = holder["out"]
    print(table.render())
    assert not violations, violations


if __name__ == "__main__":
    sys.exit(main())
