"""Benchmark — size-adaptive collective algorithm engine vs seed baseline.

Sweeps message size (1 KB–16 MB) × node count for allreduce, allgather
and alltoall, comparing the seed's fixed algorithms (allreduce =
binomial reduce+bcast, allgather = ring, alltoall = shift) against the
size-adaptive :class:`~repro.mpi.algorithms.AlgorithmSelector`, and
records the simulated-time crossover table to ``BENCH_collectives.json``
at the repository root.

Acceptance gates (exit non-zero on violation):

* adaptive simulated time ≤ fixed seed time at every swept point;
* strict win (>1.2×) for ≥16-node, ≥1 MB allreduce.

The large-message strict win is carried by allreduce alone: the seed's
allgather already *is* the bandwidth-optimal ring, so at ≥1 MB the
adaptive selector can only match it (ratio 1.00×) — its allgather wins
come in the latency-bound small/medium-block regime (up to ~2.3× at
32 nodes).  The sweep records both so the crossover is visible.

Run standalone:       python benchmarks/bench_collectives_algos.py
Fast smoke (CI):      python benchmarks/bench_collectives_algos.py --smoke
Under pytest-benchmark: pytest benchmarks/bench_collectives_algos.py --benchmark-only -s
"""

import sys

import common
from common import KB, MB

import numpy as np

from repro.bench.harness import Table, fmt_time
from repro.hw import build_cluster, paper_cluster
from repro.mpi import (
    MpiJob,
    ReduceOp,
    SEED_TUNING,
    block_placement,
)
from repro.sim import Simulator

FULL_SIZES = [1 * KB, 16 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB]
FULL_NODES = [2, 4, 8, 12, 16, 32]
SMOKE_SIZES = [1 * KB, 1 * MB]
SMOKE_NODES = [4, 16]

#: alltoall moves size × P per rank; cap the sweep so the big-node runs
#: stay tractable (logged, not silently truncated: see the table note).
ALLTOALL_MAX_BYTES = 256 * KB

JSON_PATH = common.json_path("collectives")


def _run_collective(op, n_nodes, nbytes, tuning):
    """Simulated completion time of one collective, 1 rank per node."""
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes, gpus_per_node=0))
    job = MpiJob(cluster, block_placement(n_nodes, n_nodes), tuning=tuning)

    def prog(ctx):
        if op == "allreduce":
            send = np.zeros(nbytes, dtype=np.uint8)
            recv = np.zeros(nbytes, dtype=np.uint8)
            yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)
        elif op == "allgather":
            send = np.zeros(nbytes, dtype=np.uint8)
            recvbufs = [np.zeros(nbytes, dtype=np.uint8) for _ in range(n_nodes)]
            yield from ctx.allgather(send, recvbufs)
        elif op == "alltoall":
            sendbufs = [np.zeros(nbytes, dtype=np.uint8) for _ in range(n_nodes)]
            recvbufs = [np.zeros(nbytes, dtype=np.uint8) for _ in range(n_nodes)]
            yield from ctx.alltoall(sendbufs, recvbufs)
        else:  # pragma: no cover - defensive
            raise ValueError(op)

    job.start(prog)
    job.run()
    common.track(sim)
    # Which algorithm did the adaptive path take?
    algo = next(
        (
            k.split("[")[1].rstrip("]")
            for k in job.comm.stats
            if k.startswith(f"{op}[")
        ),
        "?",
    )
    return sim.now, algo


def sweep(sizes, nodes):
    """Run the sweep; returns (points, violations)."""
    points = []
    violations = []
    for op in ("allreduce", "allgather", "alltoall"):
        for n in nodes:
            for nbytes in sizes:
                if op == "alltoall" and nbytes > ALLTOALL_MAX_BYTES:
                    continue
                t_fixed, _ = _run_collective(op, n, nbytes, SEED_TUNING)
                t_adaptive, algo = _run_collective(op, n, nbytes, None)
                ratio = t_fixed / t_adaptive if t_adaptive > 0 else 1.0
                point = {
                    "op": op,
                    "nodes": n,
                    "nbytes": nbytes,
                    "t_fixed_s": t_fixed,
                    "t_adaptive_s": t_adaptive,
                    "speedup": ratio,
                    "algorithm": algo,
                }
                points.append(point)
                if t_adaptive > t_fixed * (1 + 1e-9):
                    violations.append((
                        "slower_than_seed",
                        f"{op} @ {n} nodes / {nbytes} B: adaptive "
                        f"{t_adaptive:.6e}s > fixed {t_fixed:.6e}s",
                    ))
                if (
                    op == "allreduce"
                    and n >= 16
                    and nbytes >= 1 * MB
                    and ratio <= 1.2
                ):
                    violations.append((
                        "no_strict_win",
                        f"allreduce @ {n} nodes / {nbytes} B: win only "
                        f"{ratio:.2f}× (need >1.2×)",
                    ))
    return points, violations


def build_table(points):
    table = Table(
        title="Size-adaptive collective engine vs seed fixed algorithms",
        columns=["op", "nodes", "size", "fixed", "adaptive", "speedup", "algo"],
    )
    for p in points:
        size = (
            f"{p['nbytes'] // MB} MB"
            if p["nbytes"] >= MB
            else f"{p['nbytes'] // KB} KB"
        )
        table.add(
            p["op"],
            p["nodes"],
            size,
            fmt_time(p["t_fixed_s"]),
            fmt_time(p["t_adaptive_s"]),
            f"{p['speedup']:.2f}×",
            p["algorithm"],
        )
    table.note(
        "fixed = seed algorithms (allreduce: reduce+bcast, allgather: ring, "
        "alltoall: shift); adaptive = AlgorithmSelector defaults"
    )
    table.note(
        f"alltoall swept only up to {ALLTOALL_MAX_BYTES // KB} KB per pair "
        "(volume grows with P)"
    )
    table.note(
        "large-message strict win is allreduce's: the seed allgather is "
        "already the bandwidth-optimal ring, so >=1 MB allgather parity "
        "(1.00x) is the ceiling there"
    )
    return table


def run(smoke=False, json_path=JSON_PATH):
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    nodes = SMOKE_NODES if smoke else FULL_NODES
    points, violations = sweep(sizes, nodes)
    table = build_table(points)
    payload = {
        "benchmark": "bench_collectives_algos",
        "mode": "smoke" if smoke else "full",
        "acceptance": {
            "adaptive_never_slower": not any(
                kind == "slower_than_seed" for kind, _ in violations
            ),
            "large_allreduce_strict_win": not any(
                kind == "no_strict_win" for kind, _ in violations
            ),
            "violations": [msg for _, msg in violations],
        },
        "points": points,
    }
    common.write_json(json_path, payload)
    return table, points, violations


def main(argv=None):
    parser = common.make_parser(
        __doc__, JSON_PATH,
        smoke_help="fast subset for CI (2 sizes × 2 node counts)",
    )
    args = parser.parse_args(argv)
    table, points, violations = run(smoke=args.smoke, json_path=args.json)
    print(table.render())
    return common.finish(
        args.json, len(points), [msg for _, msg in violations],
        "adaptive <= fixed everywhere; >1.2x win on >=16-node >=1MB "
        "allreduce",
    )


def test_collectives_algo_sweep(benchmark):
    """pytest-benchmark entry point (smoke-sized)."""
    holder = {}

    def job():
        holder["out"] = run(smoke=True)

    benchmark.pedantic(job, rounds=1, iterations=1)
    table, points, violations = holder["out"]
    print(table.render())
    assert not violations, violations


if __name__ == "__main__":
    sys.exit(main())
