"""Benchmark T1 — regenerate the paper's Table 1 (barrier timings).

Rows: 1/2/4 nodes × {CPU-only, GPU-only, mixed} kernel configurations,
with the MVAPICH2 equal-kernel-count baseline and the DCGN/MPI ratio.

Run:  pytest benchmarks/bench_table1_barrier.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.bench import table1_barriers
from repro.sim import us


def test_table1_barriers(benchmark):
    table = run_artifact(
        benchmark, "table1_barriers", table1_barriers, iters=8
    )
    # Structural checks: every paper row present with a measurement.
    assert len(table.rows) == 10
    # Shape assertions mirroring the paper's ordering claims.
    by_config = {
        (r[0], r[1]): r for r in table.rows
    }
    gpu_1node = by_config[("1", "0C/2G per node")]
    cpu_1node = by_config[("1", "2C/0G per node")]

    def parse_us(cell: str) -> float:
        value, unit = cell.split()
        scale = {"µs": 1.0, "ms": 1e3, "s": 1e6}[unit]
        return float(value) * scale

    t_gpu = parse_us(gpu_1node[5])
    t_cpu = parse_us(cpu_1node[5])
    assert t_gpu > 3 * t_cpu, "GPU-only barrier must dwarf CPU-only"
