"""Benchmark — analytic fast-path backend: 256/1024-rank sweeps.

The exact simulator pays per-packet Python churn, which capped every
BENCH sweep at 32–64 nodes.  The fast-path backend
(:mod:`repro.mpi.algorithms.fastpath`) prices whole collective
schedules from the fabric profile instead — ``backend="analytic"``
still moves data bit-exactly, ``backend="pricing"`` prices only —
which is what makes the algorithm crossovers at 256–1024 ranks
measurable at all.  Three series land in ``BENCH_scale.json``:

1. **agreement** — at small P (5/8/16 ranks, non-power-of-two
   included) the analytic backend must agree with the exact simulator:
   identical algorithm selection, simulated times within tolerance
   (see ``AGREE_TOL``), and the pricing-only mode bit-identical to the
   full analytic interpreter.
2. **speedup32** — the existing 32-node collectives sweep shape
   (allreduce/allgather/alltoall × 1 KB–1 MB), run end-to-end on the
   exact backend and again on the pricing backend.  Gate: aggregate
   wall-clock speedup ≥ 10× on the full sweep (≥ 3× in ``--smoke``,
   which omits the data-movement-heavy points where the win is
   largest).
3. **scale** — the first 256- and 1024-rank allreduce / allgather /
   alltoall sweeps, pricing backend.  Gate: at every swept P ≥ 256 at
   least one op crosses algorithms over its size sweep (e.g. allreduce
   recursive-doubling → ring, alltoall Bruck → pairwise).
4. **jacobi** — the RMA-epoch fast path end-to-end: small-P agreement
   for the RMA-fence/PSCW Jacobi halo exchange (times within
   tolerance, identical delivered fields), then the 256/1024-rank
   halo sweeps.  Gates: analytic ≥ 10× exact wall-clock on the
   256-rank RMA-fence run (full mode), and the DCGN GPU-driven run —
   whose wall is dominated by the simulated comm-thread/slot
   machinery that deliberately stays exact; only its wire traffic is
   priced — never slower under analytic.  1024-rank entries are
   recorded analytic/pricing only (see the caps).
5. **regression + heap** — every exact-engine wall measured above is
   compared against the committed ``BENCH_scale.json`` baseline,
   scaled by a fixed interpreter+numpy spin calibration (so CI
   machines of different speeds compare meaningfully); a > 10 %
   calibrated regression fails the gate.  The structured-array event
   heap's win over the seed per-event heap is recorded the same way
   (gate ≥ 1.5× on the full 32-node sweep).

O(P²)-schedule points are capped at 1024 ranks (alltoall beyond the
Bruck regime, allgather above 4 KB blocks) — the caps are logged in
the table notes and the JSON, not silently dropped.

Run standalone:       python benchmarks/bench_scale.py
Fast smoke (CI):      python benchmarks/bench_scale.py --smoke
"""

import json
import sys
import time

import common
from common import KB, MB

import numpy as np

from repro.bench.harness import Table, fmt_time
from repro.hw import ClusterSpec, build_cluster
from repro.mpi import MpiJob, ReduceOp, block_placement
from repro.sim import Simulator

#: Series 1 — small-P agreement grid.
AGREE_P_FULL = [5, 8, 16]
AGREE_P_SMOKE = [5, 8]
AGREE_SIZES_FULL = [1 * KB, 64 * KB, 1 * MB]
AGREE_SIZES_SMOKE = [1 * KB, 64 * KB]
#: Analytic vs exact simulated-time tolerance.  Power-of-two grids
#: agree to float precision; non-power-of-two folds can skew ranks so
#: a late-posted receive drains an already-arrived eager message and
#: pays one extra software-overhead quantum in the exact simulator —
#: a fixed ~0.75 µs the skew-free analytic model cannot see (6.5%
#: relative at 1 KB / P=5, 0.3% by 64 KB).
AGREE_TOL = 0.08

#: Series 2 — the existing 32-node sweep shape (alltoall capped at
#: 64 KB per pair as in bench_collectives_algos).
SPEEDUP_NODES = 32
SPEEDUP_SIZES_FULL = [1 * KB, 64 * KB, 1 * MB]
SPEEDUP_SIZES_SMOKE = [1 * KB, 64 * KB]
SPEEDUP_ALLTOALL_MAX = 64 * KB
#: Full floor re-based from 10x when the columnar event heap landed:
#: the heap made the *exact* denominator ~2.2x faster (the fast-path
#: wall is unchanged, and the heap's own >= 1.5x win over the seed
#: per-event heap is gated separately below), so the relative ratio
#: shrank even though the combined win over the seed engine is ~20x.
MIN_SPEEDUP_FULL = 7.0
MIN_SPEEDUP_SMOKE = 3.0

#: Series 3 — the scale sweep: P → op → sizes (bytes; block bytes for
#: allgather/alltoall).  At 1024 ranks the O(P²)-schedule regimes are
#: capped: alltoall stays in Bruck sizes, allgather stops at 4 KB.
SCALE_GRID_FULL = {
    256: {
        "allreduce": [1 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB],
        "allgather": [256, 1 * KB, 4 * KB, 16 * KB, 64 * KB],
        "alltoall": [64, 256, 1 * KB, 4 * KB],
    },
    1024: {
        "allreduce": [1 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB],
        "allgather": [256, 1 * KB, 4 * KB],
        "alltoall": [64, 256],
    },
}
SCALE_GRID_SMOKE = {
    256: {
        "allreduce": [64 * KB, 256 * KB],
        "alltoall": [256, 1 * KB],
    },
}
SCALE_CAPS = [
    "1024-rank alltoall capped at 256 B blocks (pairwise schedules "
    "are O(P^2) steps)",
    "1024-rank allgather capped at 4 KB blocks (ring schedules are "
    "O(P^2) steps)",
    "1024-rank Jacobi recorded analytic/pricing only (the exact "
    "dissemination fence alone is ~20k wire processes per epoch)",
]

#: Series 4 — Jacobi halo exchange (the RMA-epoch fast path).
JACOBI_AGREE_P_FULL = [5, 8, 16]
JACOBI_AGREE_P_SMOKE = [5, 8]
JACOBI_AGREE_HALOS_FULL = ["rma_fence", "rma_pscw"]
JACOBI_AGREE_HALOS_SMOKE = ["rma_fence"]
JACOBI_TOL = 0.08
JACOBI_COLS = 256           # 2 KB halo rows: eager puts, app numpy
                            # work stays off the critical wall-clock
JACOBI_ITERS_BASE = 20      # smoke + regression-baseline point
JACOBI_ITERS_GATE = 100     # full-mode >=10x point
JACOBI_MIN_SPEEDUP_FULL = 10.0
JACOBI_MIN_SPEEDUP_SMOKE = 2.5
#: DCGN at 256 vranks (128 nodes x 2 GPUs); its wall is dominated by
#: the simulated comm-thread/slot machinery (deliberately exact — only
#: the wire traffic is priced), so the gate is "never slower", not 10x.
DCGN_SHAPE = (128, 2)
DCGN_ITERS = 5
DCGN_1K_SHAPE = (256, 4)
DCGN_1K_ITERS = 2

#: Series 5 — calibrated wall-clock regression gates.
REG_TOL = 0.10              # >10% calibrated exact-wall regression fails
REG_FLOOR_S = 0.15          # absolute slack absorbing scheduler noise
#: Full 32-node sweep wall of the seed per-event heap, measured on the
#: machine that seeded the committed baseline's ``calib_s`` when the
#: structured-array heap replaced it — the denominator of the
#: ``heap_speedup`` record ever since, rescaled by calibration.
PRE_HEAP_WALL_S = 3.285
MIN_HEAP_SPEEDUP = 1.5

JSON_PATH = common.json_path("scale")


def _best_exact(fn, *args):
    """Run an exact-engine measurement twice and keep the faster wall.

    Exact walls feed the committed regression baseline; the sim result
    is deterministic, only the wall varies, and a single scheduler
    hiccup on a busy runner would otherwise poison a 10% gate."""
    w1, t1, c1 = fn(*args)
    w2, _, _ = fn(*args)
    return min(w1, w2), t1, c1


def _calibrate() -> float:
    """Machine-speed anchor: a fixed interpreter + numpy spin (min of
    five runs), so committed wall-clocks transfer across machines."""
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        x = 0
        for i in range(500_000):
            x += i & 7
        a = np.arange(1 << 17, dtype=np.float64)
        for _ in range(10):
            a = a * 1.0000001 + 0.5
        best = min(best, time.perf_counter() - t0)
    return best


def _load_committed_baseline():
    """The regression reference: the ``baseline`` block of the
    *committed* artifact (never the ``--json`` target)."""
    try:
        with open(JSON_PATH, encoding="utf-8") as fh:
            return json.load(fh).get("baseline")
    except (OSError, ValueError):
        return None


def _collective_prog(op, P, nbytes):
    """One collective over flat+view buffers (no per-block np.zeros
    churn at P=1024)."""

    def prog(ctx):
        if op == "allreduce":
            send = np.zeros(nbytes, dtype=np.uint8)
            recv = np.zeros(nbytes, dtype=np.uint8)
            yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)
        elif op == "allgather":
            send = np.zeros(nbytes, dtype=np.uint8)
            flat = np.zeros(P * nbytes, dtype=np.uint8)
            recvbufs = [flat[i * nbytes:(i + 1) * nbytes] for i in range(P)]
            yield from ctx.allgather(send, recvbufs)
        elif op == "alltoall":
            sflat = np.zeros(P * nbytes, dtype=np.uint8)
            rflat = np.zeros(P * nbytes, dtype=np.uint8)
            sendbufs = [sflat[i * nbytes:(i + 1) * nbytes] for i in range(P)]
            recvbufs = [rflat[i * nbytes:(i + 1) * nbytes] for i in range(P)]
            yield from ctx.alltoall(sendbufs, recvbufs)
        else:  # pragma: no cover - defensive
            raise ValueError(op)

    return prog


def _run(op, P, nbytes, backend):
    """(simulated time, wall seconds, selected algorithm) for one
    collective, one rank per node, end-to-end (cluster build included,
    as in the pre-existing sweeps)."""
    t0 = time.perf_counter()
    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec(nodes=P, gpus_per_node=0))
    job = MpiJob(cluster, block_placement(P, P), backend=backend)
    job.start(_collective_prog(op, P, nbytes))
    job.run()
    wall = time.perf_counter() - t0
    common.track(sim)
    algo = next(
        (
            k.split("[")[1].rstrip("]")
            for k in job.comm.stats
            if k.startswith(f"{op}[")
        ),
        "?",
    )
    return sim.now, wall, algo


def bench_agreement(records, violations, smoke):
    """Series 1: analytic/pricing vs exact at small P."""
    table = Table(
        "fast-path agreement vs exact simulator (small P)",
        ["op", "P", "size", "exact", "analytic", "rel err", "algo"],
    )
    ps = AGREE_P_SMOKE if smoke else AGREE_P_FULL
    sizes = AGREE_SIZES_SMOKE if smoke else AGREE_SIZES_FULL
    for op in ("allreduce", "allgather", "alltoall"):
        for P in ps:
            for nbytes in sizes:
                t_ex, _, a_ex = _run(op, P, nbytes, "exact")
                t_an, _, a_an = _run(op, P, nbytes, "analytic")
                t_pr, _, a_pr = _run(op, P, nbytes, "pricing")
                rel = abs(t_an - t_ex) / t_ex if t_ex else 0.0
                table.add(*[
                    op, P, f"{nbytes // KB}KB" if nbytes >= KB else
                    f"{nbytes}B", fmt_time(t_ex), fmt_time(t_an),
                    f"{rel:.2e}", a_an,
                ])
                records.append({
                    "series": "agreement", "op": op, "ranks": P,
                    "nbytes": nbytes, "exact_s": t_ex, "analytic_s": t_an,
                    "pricing_s": t_pr, "rel_err": rel,
                    "algo_exact": a_ex, "algo_analytic": a_an,
                })
                if a_an != a_ex or a_pr != a_ex:
                    violations.append(
                        f"algorithm selection diverged at {op} P={P} "
                        f"{nbytes} B: exact={a_ex} analytic={a_an} "
                        f"pricing={a_pr}"
                    )
                if rel > AGREE_TOL:
                    violations.append(
                        f"analytic time off by {rel:.4f} (> {AGREE_TOL}) "
                        f"at {op} P={P} {nbytes} B"
                    )
                if t_pr != t_an:
                    violations.append(
                        f"pricing mode not bit-identical to analytic at "
                        f"{op} P={P} {nbytes} B: {t_pr!r} vs {t_an!r}"
                    )
    print()
    print(table.render())


def bench_speedup32(records, violations, smoke, exact_walls):
    """Series 2: end-to-end wall-clock, exact vs pricing, 32 nodes."""
    table = Table(
        "32-node sweep wall-clock: exact backend vs fast-path pricing",
        ["op", "size", "exact wall", "fastpath wall", "ratio"],
    )
    sizes = SPEEDUP_SIZES_SMOKE if smoke else SPEEDUP_SIZES_FULL
    floor = MIN_SPEEDUP_SMOKE if smoke else MIN_SPEEDUP_FULL
    tot_exact = 0.0
    tot_fast = 0.0
    for op in ("allreduce", "allgather", "alltoall"):
        for nbytes in sizes:
            if op == "alltoall" and nbytes > SPEEDUP_ALLTOALL_MAX:
                continue
            t_ex, w_ex, _ = _run(op, SPEEDUP_NODES, nbytes, "exact")
            t_fp, w_fp, _ = _run(op, SPEEDUP_NODES, nbytes, "pricing")
            exact_walls[f"speedup32/{op}/{nbytes}"] = w_ex
            tot_exact += w_ex
            tot_fast += w_fp
            table.add(*[
                op, f"{nbytes // KB}KB", f"{w_ex:.3f}s", f"{w_fp:.4f}s",
                f"{w_ex / w_fp:.1f}×",
            ])
            records.append({
                "series": "speedup32", "op": op, "ranks": SPEEDUP_NODES,
                "nbytes": nbytes, "exact_wall_s": w_ex,
                "fastpath_wall_s": w_fp, "exact_sim_s": t_ex,
                "fastpath_sim_s": t_fp,
            })
    speedup = tot_exact / tot_fast if tot_fast else float("inf")
    table.note(
        f"aggregate: exact {tot_exact:.2f}s vs fast-path "
        f"{tot_fast:.3f}s = {speedup:.1f}x (gate: >={floor:.0f}x)"
    )
    records.append({
        "series": "speedup32_aggregate", "ranks": SPEEDUP_NODES,
        "exact_wall_s": tot_exact, "fastpath_wall_s": tot_fast,
        "speedup": speedup, "gate": floor,
    })
    if speedup < floor:
        violations.append(
            f"32-node sweep fast-path speedup {speedup:.2f}x < "
            f"{floor:.0f}x (exact {tot_exact:.2f}s, fast-path "
            f"{tot_fast:.3f}s)"
        )
    print()
    print(table.render())
    return tot_exact


def bench_scale(records, violations, smoke):
    """Series 3: 256/1024-rank sweeps with crossover detection."""
    table = Table(
        "collectives at scale (pricing backend, 1 rank per node)",
        ["P", "op", "block", "sim time", "wall", "algo"],
    )
    grid = SCALE_GRID_SMOKE if smoke else SCALE_GRID_FULL
    for P, ops in grid.items():
        algos_at_p = {}
        for op, sizes in ops.items():
            for nbytes in sizes:
                t, w, algo = _run(op, P, nbytes, "pricing")
                algos_at_p.setdefault(op, set()).add(algo)
                table.add(*[
                    P, op,
                    f"{nbytes // KB}KB" if nbytes >= KB else f"{nbytes}B",
                    fmt_time(t), f"{w:.2f}s", algo,
                ])
                records.append({
                    "series": "scale", "op": op, "ranks": P,
                    "nbytes": nbytes, "sim_s": t, "wall_s": w,
                    "algorithm": algo,
                })
        crossed = {op: sorted(a) for op, a in algos_at_p.items()
                   if len(a) > 1}
        records.append({
            "series": "scale_crossovers", "ranks": P,
            "crossovers": crossed,
        })
        if not crossed:
            violations.append(
                f"no algorithm crossover visible at P={P}: "
                f"{ {op: sorted(a) for op, a in algos_at_p.items()} }"
            )
    for cap in SCALE_CAPS:
        table.note(cap)
    print()
    print(table.render())


def _jacobi_mpi(p, halo, exec_backend, iters, verify):
    """(wall seconds, simulated time, checksum) for one MPI Jacobi
    run, cluster build included."""
    from repro.apps.jacobi import JacobiConfig, run_mpi

    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec(nodes=p, gpus_per_node=0))
    cfg = JacobiConfig(
        p=p, rows_per_rank=4, cols=JACOBI_COLS, iters=iters,
        verify=verify,
    )
    t0 = time.perf_counter()
    res = run_mpi(cluster, cfg, backend=halo, exec_backend=exec_backend)
    wall = time.perf_counter() - t0
    common.track(sim)
    return wall, res.elapsed, res.extras.get("checksum")


def _jacobi_dcgn(shape, p, backend, iters, verify):
    """Same, GPU-kernel-driven through the DCGN comm threads."""
    from repro.apps.jacobi import JacobiConfig, run_dcgn

    nodes, gpus = shape
    sim = Simulator()
    cluster = build_cluster(
        sim, ClusterSpec(nodes=nodes, gpus_per_node=gpus)
    )
    cfg = JacobiConfig(
        p=p, rows_per_rank=4, cols=JACOBI_COLS, iters=iters,
        verify=verify,
    )
    t0 = time.perf_counter()
    res = run_dcgn(cluster, cfg, backend=backend)
    wall = time.perf_counter() - t0
    common.track(sim)
    return wall, res.elapsed, res.extras.get("checksum")


def bench_jacobi(records, violations, smoke, exact_walls):
    """Series 4: the RMA-epoch fast path end-to-end on the halo
    exchange — small-P agreement, then the 256/1024-rank sweeps."""
    agree = Table(
        "Jacobi halo agreement: analytic vs exact (small P)",
        ["halo", "P", "exact", "analytic", "rel err", "data"],
    )
    ps = JACOBI_AGREE_P_SMOKE if smoke else JACOBI_AGREE_P_FULL
    halos = (
        JACOBI_AGREE_HALOS_SMOKE if smoke else JACOBI_AGREE_HALOS_FULL
    )
    for halo in halos:
        for p in ps:
            _, t_ex, ck_ex = _jacobi_mpi(p, halo, "exact", 3, True)
            _, t_an, ck_an = _jacobi_mpi(p, halo, "analytic", 3, True)
            rel = abs(t_an - t_ex) / t_ex if t_ex else 0.0
            same = ck_an == ck_ex
            agree.add(*[
                halo, p, fmt_time(t_ex), fmt_time(t_an), f"{rel:.2e}",
                "same" if same else "DIFF",
            ])
            records.append({
                "series": "jacobi_agreement", "halo": halo, "ranks": p,
                "exact_s": t_ex, "analytic_s": t_an, "rel_err": rel,
                "data_identical": same,
            })
            if rel > JACOBI_TOL:
                violations.append(
                    f"jacobi {halo} P={p}: analytic time off by "
                    f"{rel:.4f} (> {JACOBI_TOL})"
                )
            if not same:
                violations.append(
                    f"jacobi {halo} P={p}: analytic field diverged "
                    "from exact"
                )
    print()
    print(agree.render())

    scale = Table(
        "Jacobi halo exchange at scale (RMA fence + DCGN)",
        ["family", "P", "iters", "exact wall", "analytic wall",
         "ratio"],
    )
    floor = JACOBI_MIN_SPEEDUP_SMOKE if smoke else JACOBI_MIN_SPEEDUP_FULL

    # -- RMA fence @ 256: the >=10x gate (full mode measures both the
    #    shared baseline point and the longer gate point).
    gate_pairs = [(JACOBI_ITERS_BASE, False)]
    if not smoke:
        gate_pairs.append((JACOBI_ITERS_GATE, True))
    for iters, gated in gate_pairs:
        w_ex, t_ex, _ = _best_exact(_jacobi_mpi, 256, "rma_fence",
                                    "exact", iters, False)
        w_an, t_an, _ = _jacobi_mpi(256, "rma_fence", "analytic",
                                    iters, False)
        w_pr, t_pr, _ = _jacobi_mpi(256, "rma_fence", "pricing",
                                    iters, False)
        exact_walls[f"jacobi/rma_fence/p256/i{iters}"] = w_ex
        ratio = w_ex / w_an if w_an else float("inf")
        scale.add(*[
            "rma_fence", 256, iters, f"{w_ex:.2f}s", f"{w_an:.2f}s",
            f"{ratio:.1f}x",
        ])
        records.append({
            "series": "jacobi_scale", "family": "rma_fence",
            "ranks": 256, "iters": iters, "exact_wall_s": w_ex,
            "analytic_wall_s": w_an, "pricing_wall_s": w_pr,
            "exact_sim_s": t_ex, "analytic_sim_s": t_an,
            "speedup": ratio,
        })
        if t_pr != t_an:
            violations.append(
                f"jacobi rma_fence P=256 i{iters}: pricing not "
                f"bit-identical to analytic ({t_pr!r} vs {t_an!r})"
            )
        check = gated or smoke
        if check and ratio < floor:
            violations.append(
                f"jacobi rma_fence P=256 i{iters}: analytic speedup "
                f"{ratio:.2f}x < {floor}x (exact {w_ex:.2f}s, "
                f"analytic {w_an:.2f}s)"
            )

    # -- DCGN @ 256 vranks: wall dominated by the simulated
    #    comm-thread machinery (only wire traffic is priced) — gate is
    #    "analytic never slower".
    w_ex, t_ex, _ = _best_exact(_jacobi_dcgn, DCGN_SHAPE, 256, "exact",
                                DCGN_ITERS, False)
    w_an, t_an, _ = _jacobi_dcgn(DCGN_SHAPE, 256, "analytic",
                                 DCGN_ITERS, False)
    exact_walls[f"jacobi/dcgn/p256/i{DCGN_ITERS}"] = w_ex
    ratio = w_ex / w_an if w_an else float("inf")
    scale.add(*[
        "dcgn", 256, DCGN_ITERS, f"{w_ex:.2f}s", f"{w_an:.2f}s",
        f"{ratio:.1f}x",
    ])
    records.append({
        "series": "jacobi_scale", "family": "dcgn", "ranks": 256,
        "iters": DCGN_ITERS, "exact_wall_s": w_ex,
        "analytic_wall_s": w_an, "exact_sim_s": t_ex,
        "analytic_sim_s": t_an, "speedup": ratio,
    })
    if ratio < 1.0:
        violations.append(
            f"jacobi dcgn P=256: analytic slower than exact "
            f"({w_an:.2f}s vs {w_ex:.2f}s)"
        )

    # -- 1024 ranks: analytic/pricing only (see SCALE_CAPS).
    if not smoke:
        w_an, t_an, _ = _jacobi_mpi(1024, "rma_fence", "analytic",
                                    JACOBI_ITERS_BASE, False)
        w_pr, _, _ = _jacobi_mpi(1024, "rma_fence", "pricing",
                                 JACOBI_ITERS_BASE, False)
        scale.add(*[
            "rma_fence", 1024, JACOBI_ITERS_BASE, "(capped)",
            f"{w_an:.2f}s", "-",
        ])
        records.append({
            "series": "jacobi_scale", "family": "rma_fence",
            "ranks": 1024, "iters": JACOBI_ITERS_BASE,
            "analytic_wall_s": w_an, "pricing_wall_s": w_pr,
            "analytic_sim_s": t_an,
        })
        w_an, t_an, _ = _jacobi_dcgn(DCGN_1K_SHAPE, 1024, "analytic",
                                     DCGN_1K_ITERS, False)
        scale.add(*[
            "dcgn", 1024, DCGN_1K_ITERS, "(capped)", f"{w_an:.2f}s",
            "-",
        ])
        records.append({
            "series": "jacobi_scale", "family": "dcgn", "ranks": 1024,
            "iters": DCGN_1K_ITERS, "analytic_wall_s": w_an,
            "analytic_sim_s": t_an,
        })
    scale.note(
        "dcgn wall is dominated by the simulated comm-thread/slot "
        "machinery (kept exact by design); only its wire traffic is "
        "priced"
    )
    print()
    print(scale.render())


def check_regression(records, violations, exact_walls, calib_now,
                     base):
    """Series 5a: calibrated exact-wall compare vs the committed
    baseline (>10% regression fails; matching labels only, so the
    smoke subset compares against the committed full sweep)."""
    if not base or not base.get("exact_walls"):
        records.append({
            "series": "regression",
            "status": "no committed baseline — this run seeds it",
        })
        print("\nregression compare: no committed baseline (seeding)")
        return
    ratio = calib_now / base["calib_s"]
    table = Table(
        "exact-engine wall-clock vs committed baseline "
        f"(calib ratio {ratio:.3f})",
        ["point", "baseline", "allowed", "now", "verdict"],
    )
    for label in sorted(exact_walls):
        ref = base["exact_walls"].get(label)
        if ref is None:
            continue
        wall = exact_walls[label]
        allowed = ref * ratio * (1.0 + REG_TOL) + REG_FLOOR_S
        ok = wall <= allowed
        table.add(*[
            label, f"{ref:.3f}s", f"{allowed:.3f}s", f"{wall:.3f}s",
            "ok" if ok else "REGRESSED",
        ])
        records.append({
            "series": "regression", "point": label,
            "baseline_wall_s": ref, "allowed_wall_s": allowed,
            "wall_s": wall, "calib_ratio": ratio, "ok": ok,
        })
        if not ok:
            violations.append(
                f"exact-engine wall regressed >"
                f"{REG_TOL:.0%} at {label}: {wall:.3f}s vs allowed "
                f"{allowed:.3f}s (baseline {ref:.3f}s x calib "
                f"{ratio:.3f})"
            )
    print()
    print(table.render())


def record_heap(records, violations, tot_exact, calib_now, base,
                smoke):
    """Series 5b: structured-array event heap vs the seed per-event
    heap on the full 32-node sweep (calibrated; full mode gates it)."""
    if smoke:
        return  # smoke runs a reduced sweep: not comparable
    anchor = base["calib_s"] if base and "calib_s" in base else calib_now
    speedup = (PRE_HEAP_WALL_S * (calib_now / anchor)) / tot_exact
    records.append({
        "series": "heap", "pre_heap_wall_s": PRE_HEAP_WALL_S,
        "exact_wall_s": tot_exact, "calib_ratio": calib_now / anchor,
        "heap_speedup": speedup, "gate": MIN_HEAP_SPEEDUP,
    })
    print(
        f"\nstructured-array heap: 32-node sweep exact wall "
        f"{tot_exact:.3f}s vs seed heap {PRE_HEAP_WALL_S:.3f}s "
        f"(calibrated) = {speedup:.2f}x (gate >={MIN_HEAP_SPEEDUP}x)"
    )
    if speedup < MIN_HEAP_SPEEDUP:
        violations.append(
            f"structured-array heap speedup {speedup:.2f}x < "
            f"{MIN_HEAP_SPEEDUP}x on the 32-node sweep "
            f"({tot_exact:.3f}s vs calibrated seed "
            f"{PRE_HEAP_WALL_S:.3f}s)"
        )


def main() -> int:
    parser = common.make_parser(
        __doc__, JSON_PATH,
        smoke_help="reduced grid for CI (P=256 only; relaxed speedup "
                   "floor)",
    )
    args = parser.parse_args()
    records = []
    violations = []
    smoke = args.smoke
    base = _load_committed_baseline()
    calib_now = _calibrate()
    exact_walls = {}
    bench_agreement(records, violations, smoke)
    tot_exact = bench_speedup32(records, violations, smoke,
                                exact_walls)
    bench_scale(records, violations, smoke)
    bench_jacobi(records, violations, smoke, exact_walls)
    if exact_walls:
        # Print-only spread of the exact-backend walls (the committed
        # JSON schema stays untouched).
        print(common.tail_line(
            "exact-backend simulated walls", sorted(exact_walls.values())
        ))
    check_regression(records, violations, exact_walls, calib_now,
                     base)
    record_heap(records, violations, tot_exact, calib_now, base,
                smoke)
    if smoke and base:
        # A smoke artifact must never shrink the committed full-sweep
        # baseline: pass it through untouched.
        baseline_out = base
    else:
        baseline_out = {
            "calib_s": calib_now,
            "exact_walls": exact_walls,
        }
    common.write_json(args.json, {
        "benchmark": "bench_scale",
        "mode": "smoke" if smoke else "full",
        "caps": SCALE_CAPS,
        "baseline": baseline_out,
        "records": records,
        "violations": violations,
    })
    return common.finish(
        args.json, len(records), violations,
        "fast-path agrees with exact at small P (same algorithms, "
        f"times within {AGREE_TOL:.0%} — non-pof2 folds skew by one "
        "sw quantum — pricing bit-identical); "
        ">=10x end-to-end on the 32-node sweep (full mode); >=1 "
        "algorithm crossover at every swept P>=256; jacobi RMA-fence "
        "analytic >=10x exact at 256 ranks (full mode) and DCGN "
        "never slower; exact walls within 10% of the committed "
        "calibrated baseline; structured-array heap >=1.5x the seed "
        "heap on the full 32-node sweep",
    )


if __name__ == "__main__":
    sys.exit(main())
