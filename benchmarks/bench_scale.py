"""Benchmark — analytic fast-path backend: 256/1024-rank sweeps.

The exact simulator pays per-packet Python churn, which capped every
BENCH sweep at 32–64 nodes.  The fast-path backend
(:mod:`repro.mpi.algorithms.fastpath`) prices whole collective
schedules from the fabric profile instead — ``backend="analytic"``
still moves data bit-exactly, ``backend="pricing"`` prices only —
which is what makes the algorithm crossovers at 256–1024 ranks
measurable at all.  Three series land in ``BENCH_scale.json``:

1. **agreement** — at small P (5/8/16 ranks, non-power-of-two
   included) the analytic backend must agree with the exact simulator:
   identical algorithm selection, simulated times within tolerance
   (see ``AGREE_TOL``), and the pricing-only mode bit-identical to the
   full analytic interpreter.
2. **speedup32** — the existing 32-node collectives sweep shape
   (allreduce/allgather/alltoall × 1 KB–1 MB), run end-to-end on the
   exact backend and again on the pricing backend.  Gate: aggregate
   wall-clock speedup ≥ 10× on the full sweep (≥ 3× in ``--smoke``,
   which omits the data-movement-heavy points where the win is
   largest).
3. **scale** — the first 256- and 1024-rank allreduce / allgather /
   alltoall sweeps, pricing backend.  Gate: at every swept P ≥ 256 at
   least one op crosses algorithms over its size sweep (e.g. allreduce
   recursive-doubling → ring, alltoall Bruck → pairwise).

O(P²)-schedule points are capped at 1024 ranks (alltoall beyond the
Bruck regime, allgather above 4 KB blocks) — the caps are logged in
the table notes and the JSON, not silently dropped.

Run standalone:       python benchmarks/bench_scale.py
Fast smoke (CI):      python benchmarks/bench_scale.py --smoke
"""

import sys
import time

import common
from common import KB, MB

import numpy as np

from repro.bench.harness import Table, fmt_time
from repro.hw import ClusterSpec, build_cluster
from repro.mpi import MpiJob, ReduceOp, block_placement
from repro.sim import Simulator

#: Series 1 — small-P agreement grid.
AGREE_P_FULL = [5, 8, 16]
AGREE_P_SMOKE = [5, 8]
AGREE_SIZES_FULL = [1 * KB, 64 * KB, 1 * MB]
AGREE_SIZES_SMOKE = [1 * KB, 64 * KB]
#: Analytic vs exact simulated-time tolerance.  Power-of-two grids
#: agree to float precision; non-power-of-two folds can skew ranks so
#: a late-posted receive drains an already-arrived eager message and
#: pays one extra software-overhead quantum in the exact simulator —
#: a fixed ~0.75 µs the skew-free analytic model cannot see (6.5%
#: relative at 1 KB / P=5, 0.3% by 64 KB).
AGREE_TOL = 0.08

#: Series 2 — the existing 32-node sweep shape (alltoall capped at
#: 64 KB per pair as in bench_collectives_algos).
SPEEDUP_NODES = 32
SPEEDUP_SIZES_FULL = [1 * KB, 64 * KB, 1 * MB]
SPEEDUP_SIZES_SMOKE = [1 * KB, 64 * KB]
SPEEDUP_ALLTOALL_MAX = 64 * KB
MIN_SPEEDUP_FULL = 10.0
MIN_SPEEDUP_SMOKE = 3.0

#: Series 3 — the scale sweep: P → op → sizes (bytes; block bytes for
#: allgather/alltoall).  At 1024 ranks the O(P²)-schedule regimes are
#: capped: alltoall stays in Bruck sizes, allgather stops at 4 KB.
SCALE_GRID_FULL = {
    256: {
        "allreduce": [1 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB],
        "allgather": [256, 1 * KB, 4 * KB, 16 * KB, 64 * KB],
        "alltoall": [64, 256, 1 * KB, 4 * KB],
    },
    1024: {
        "allreduce": [1 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB],
        "allgather": [256, 1 * KB, 4 * KB],
        "alltoall": [64, 256],
    },
}
SCALE_GRID_SMOKE = {
    256: {
        "allreduce": [64 * KB, 256 * KB],
        "alltoall": [256, 1 * KB],
    },
}
SCALE_CAPS = [
    "1024-rank alltoall capped at 256 B blocks (pairwise schedules "
    "are O(P^2) steps)",
    "1024-rank allgather capped at 4 KB blocks (ring schedules are "
    "O(P^2) steps)",
]

JSON_PATH = common.json_path("scale")


def _collective_prog(op, P, nbytes):
    """One collective over flat+view buffers (no per-block np.zeros
    churn at P=1024)."""

    def prog(ctx):
        if op == "allreduce":
            send = np.zeros(nbytes, dtype=np.uint8)
            recv = np.zeros(nbytes, dtype=np.uint8)
            yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)
        elif op == "allgather":
            send = np.zeros(nbytes, dtype=np.uint8)
            flat = np.zeros(P * nbytes, dtype=np.uint8)
            recvbufs = [flat[i * nbytes:(i + 1) * nbytes] for i in range(P)]
            yield from ctx.allgather(send, recvbufs)
        elif op == "alltoall":
            sflat = np.zeros(P * nbytes, dtype=np.uint8)
            rflat = np.zeros(P * nbytes, dtype=np.uint8)
            sendbufs = [sflat[i * nbytes:(i + 1) * nbytes] for i in range(P)]
            recvbufs = [rflat[i * nbytes:(i + 1) * nbytes] for i in range(P)]
            yield from ctx.alltoall(sendbufs, recvbufs)
        else:  # pragma: no cover - defensive
            raise ValueError(op)

    return prog


def _run(op, P, nbytes, backend):
    """(simulated time, wall seconds, selected algorithm) for one
    collective, one rank per node, end-to-end (cluster build included,
    as in the pre-existing sweeps)."""
    t0 = time.perf_counter()
    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec(nodes=P, gpus_per_node=0))
    job = MpiJob(cluster, block_placement(P, P), backend=backend)
    job.start(_collective_prog(op, P, nbytes))
    job.run()
    wall = time.perf_counter() - t0
    common.track(sim)
    algo = next(
        (
            k.split("[")[1].rstrip("]")
            for k in job.comm.stats
            if k.startswith(f"{op}[")
        ),
        "?",
    )
    return sim.now, wall, algo


def bench_agreement(records, violations, smoke):
    """Series 1: analytic/pricing vs exact at small P."""
    table = Table(
        "fast-path agreement vs exact simulator (small P)",
        ["op", "P", "size", "exact", "analytic", "rel err", "algo"],
    )
    ps = AGREE_P_SMOKE if smoke else AGREE_P_FULL
    sizes = AGREE_SIZES_SMOKE if smoke else AGREE_SIZES_FULL
    for op in ("allreduce", "allgather", "alltoall"):
        for P in ps:
            for nbytes in sizes:
                t_ex, _, a_ex = _run(op, P, nbytes, "exact")
                t_an, _, a_an = _run(op, P, nbytes, "analytic")
                t_pr, _, a_pr = _run(op, P, nbytes, "pricing")
                rel = abs(t_an - t_ex) / t_ex if t_ex else 0.0
                table.add(*[
                    op, P, f"{nbytes // KB}KB" if nbytes >= KB else
                    f"{nbytes}B", fmt_time(t_ex), fmt_time(t_an),
                    f"{rel:.2e}", a_an,
                ])
                records.append({
                    "series": "agreement", "op": op, "ranks": P,
                    "nbytes": nbytes, "exact_s": t_ex, "analytic_s": t_an,
                    "pricing_s": t_pr, "rel_err": rel,
                    "algo_exact": a_ex, "algo_analytic": a_an,
                })
                if a_an != a_ex or a_pr != a_ex:
                    violations.append(
                        f"algorithm selection diverged at {op} P={P} "
                        f"{nbytes} B: exact={a_ex} analytic={a_an} "
                        f"pricing={a_pr}"
                    )
                if rel > AGREE_TOL:
                    violations.append(
                        f"analytic time off by {rel:.4f} (> {AGREE_TOL}) "
                        f"at {op} P={P} {nbytes} B"
                    )
                if t_pr != t_an:
                    violations.append(
                        f"pricing mode not bit-identical to analytic at "
                        f"{op} P={P} {nbytes} B: {t_pr!r} vs {t_an!r}"
                    )
    print()
    print(table.render())


def bench_speedup32(records, violations, smoke):
    """Series 2: end-to-end wall-clock, exact vs pricing, 32 nodes."""
    table = Table(
        "32-node sweep wall-clock: exact backend vs fast-path pricing",
        ["op", "size", "exact wall", "fastpath wall", "ratio"],
    )
    sizes = SPEEDUP_SIZES_SMOKE if smoke else SPEEDUP_SIZES_FULL
    floor = MIN_SPEEDUP_SMOKE if smoke else MIN_SPEEDUP_FULL
    tot_exact = 0.0
    tot_fast = 0.0
    for op in ("allreduce", "allgather", "alltoall"):
        for nbytes in sizes:
            if op == "alltoall" and nbytes > SPEEDUP_ALLTOALL_MAX:
                continue
            t_ex, w_ex, _ = _run(op, SPEEDUP_NODES, nbytes, "exact")
            t_fp, w_fp, _ = _run(op, SPEEDUP_NODES, nbytes, "pricing")
            tot_exact += w_ex
            tot_fast += w_fp
            table.add(*[
                op, f"{nbytes // KB}KB", f"{w_ex:.3f}s", f"{w_fp:.4f}s",
                f"{w_ex / w_fp:.1f}×",
            ])
            records.append({
                "series": "speedup32", "op": op, "ranks": SPEEDUP_NODES,
                "nbytes": nbytes, "exact_wall_s": w_ex,
                "fastpath_wall_s": w_fp, "exact_sim_s": t_ex,
                "fastpath_sim_s": t_fp,
            })
    speedup = tot_exact / tot_fast if tot_fast else float("inf")
    table.note(
        f"aggregate: exact {tot_exact:.2f}s vs fast-path "
        f"{tot_fast:.3f}s = {speedup:.1f}x (gate: >={floor:.0f}x)"
    )
    records.append({
        "series": "speedup32_aggregate", "ranks": SPEEDUP_NODES,
        "exact_wall_s": tot_exact, "fastpath_wall_s": tot_fast,
        "speedup": speedup, "gate": floor,
    })
    if speedup < floor:
        violations.append(
            f"32-node sweep fast-path speedup {speedup:.2f}x < "
            f"{floor:.0f}x (exact {tot_exact:.2f}s, fast-path "
            f"{tot_fast:.3f}s)"
        )
    print()
    print(table.render())


def bench_scale(records, violations, smoke):
    """Series 3: 256/1024-rank sweeps with crossover detection."""
    table = Table(
        "collectives at scale (pricing backend, 1 rank per node)",
        ["P", "op", "block", "sim time", "wall", "algo"],
    )
    grid = SCALE_GRID_SMOKE if smoke else SCALE_GRID_FULL
    for P, ops in grid.items():
        algos_at_p = {}
        for op, sizes in ops.items():
            for nbytes in sizes:
                t, w, algo = _run(op, P, nbytes, "pricing")
                algos_at_p.setdefault(op, set()).add(algo)
                table.add(*[
                    P, op,
                    f"{nbytes // KB}KB" if nbytes >= KB else f"{nbytes}B",
                    fmt_time(t), f"{w:.2f}s", algo,
                ])
                records.append({
                    "series": "scale", "op": op, "ranks": P,
                    "nbytes": nbytes, "sim_s": t, "wall_s": w,
                    "algorithm": algo,
                })
        crossed = {op: sorted(a) for op, a in algos_at_p.items()
                   if len(a) > 1}
        records.append({
            "series": "scale_crossovers", "ranks": P,
            "crossovers": crossed,
        })
        if not crossed:
            violations.append(
                f"no algorithm crossover visible at P={P}: "
                f"{ {op: sorted(a) for op, a in algos_at_p.items()} }"
            )
    for cap in SCALE_CAPS:
        table.note(cap)
    print()
    print(table.render())


def main() -> int:
    parser = common.make_parser(
        __doc__, JSON_PATH,
        smoke_help="reduced grid for CI (P=256 only; relaxed speedup "
                   "floor)",
    )
    args = parser.parse_args()
    records = []
    violations = []
    smoke = args.smoke
    bench_agreement(records, violations, smoke)
    bench_speedup32(records, violations, smoke)
    bench_scale(records, violations, smoke)
    common.write_json(args.json, {
        "benchmark": "bench_scale",
        "mode": "smoke" if smoke else "full",
        "caps": SCALE_CAPS,
        "records": records,
        "violations": violations,
    })
    return common.finish(
        args.json, len(records), violations,
        "fast-path agrees with exact at small P (same algorithms, "
        f"times within {AGREE_TOL:.0%} — non-pof2 folds skew by one "
        "sw quantum — pricing bit-identical); "
        ">=10x end-to-end on the 32-node sweep (full mode); >=1 "
        "algorithm crossover at every swept P>=256",
    )


if __name__ == "__main__":
    sys.exit(main())
