"""Benchmark — the abstract's promise: where DCGN overhead accumulates.

Instruments one 0-byte send end-to-end on the CPU:CPU and GPU:GPU paths
and prints the per-stage waterfall (request bookkeeping, queue waits,
polling waits, PCIe conversations, MPI time).

Run:  pytest benchmarks/bench_overhead_breakdown.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.bench.breakdown import overhead_breakdown, send_lifecycle


def test_overhead_breakdown_waterfall(benchmark):
    table = run_artifact(
        benchmark, "overhead_breakdown", overhead_breakdown
    )
    rows = {(r[0], r[1]): float(r[2]) for r in table.rows}
    cpu_total = rows[("CPU send", "TOTAL")]
    gpu_total = rows[("GPU send", "TOTAL")]
    # The GPU path's polling wait is its dominant stage (paper §5.2).
    gpu_poll = rows[("GPU send", "mailbox poll wait (PCIe probe cadence)")]
    assert gpu_poll > 0.4 * gpu_total
    # And the GPU path dwarfs the CPU path.
    assert gpu_total > 3 * cpu_total


def test_lifecycle_marks_are_ordered(benchmark):
    def compute():
        return send_lifecycle("gpu", nbytes=1024)

    marks = benchmark.pedantic(compute, rounds=1, iterations=1)
    send = marks["send"]
    order = ["posted", "harvested", "enqueued", "picked", "completed",
             "written_back"]
    times = [send[k] for k in order if k in send]
    assert times == sorted(times)
    assert len(times) >= 5
