"""Benchmark F5 — regenerate the paper's Figure 5 (work distribution).

Two DCGN Mandelbrot runs with identical parameters but different
platform seeds (device/network timing jitter enabled): the dynamic work
queue assigns strips differently each run.

Run:  pytest benchmarks/bench_fig5_mandelbrot_dist.py --benchmark-only -s
"""

import numpy as np
from conftest import run_artifact

from repro.bench import fig5_mandelbrot_distribution


def test_fig5_distribution_differs_across_runs(benchmark):
    table = run_artifact(
        benchmark,
        "fig5_mandelbrot_dist",
        fig5_mandelbrot_distribution,
        seeds=(1, 2),
    )
    owners = np.array(
        [[int(c) for c in row[1:]] for row in table.rows]
    )
    # Both runs produced a full assignment...
    assert (owners >= 0).all()
    # ...with every worker getting some strip in each run (8 workers)...
    for col in range(owners.shape[1]):
        assert len(set(owners[:, col])) >= 4
    # ...and the two distributions differ (the paper's headline).
    assert not np.array_equal(owners[:, 0], owners[:, 1])
