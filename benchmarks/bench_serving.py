"""Benchmark SERVE — tail latency and goodput vs offered load under
placement policies on an oversubscribed fat tree.

The serving stack (PR 9) carves per-job node sets out of one shared
256-node cluster: 16 Mandelbrot tile services, 16 nodes each, every
request a bcast + allgather fan-out/fan-in on the job's own
sub-communicator.  Each service is a serial server, so its saturation
throughput is ``1/S`` where ``S`` is the per-request service time — and
``S`` is set by *placement*: a packed job lives inside one fat-tree pod
(zero oversubscribed-uplink crossings per collective round), a random
one scatters across ~12 pods and pays the tapered uplinks on nearly
every ring hop.  Offered load is swept through the packed knee
(open-loop Poisson arrivals, same seeds for every policy), where
queueing theory amplifies the ~1.6x service-time gap into a large tail
gap: at overload factor ``u`` the backlog grows ~``(u*c - 1)`` for the
scattered placement vs ~``(u - 1)`` packed (``c`` = service ratio).

Gates (CI):

* at the highest swept load, locality-aware (packed) placement beats
  random placement by >= 1.3x on pooled p99 latency;
* packed goodput is never worse than random at any swept load (same
  arrival instants, faster service => every request completes no
  later);
* every rendered strip is verified against the escape-time reference
  (the analytic backend is bit-exact).

Sweep scale: 256 simulated ranks (one per node) in full mode, 64 in
``--smoke``.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]
"""

import sys
import time

import common
from common import percentiles

from repro.apps.mandelbrot import MandelbrotConfig
from repro.apps.tile_service import TileService, TileServiceConfig
from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.serve import ClusterScheduler, OpenLoopDriver, open_loop_arrivals
from repro.sim import Simulator

JSON_PATH = common.json_path("serving")

#: Offered load factors relative to packed saturation (1/S_packed):
#: below the knee, at it, and past it.
LOAD_FACTORS = (0.5, 0.9, 1.15)
POLICIES = ("packed", "spread", "random")

#: p99 advantage packed must hold over random at the highest load.
MIN_P99_WIN = 1.3

GATE_LOAD = LOAD_FACTORS[-1]


def _cluster_shape(smoke):
    if smoke:
        return dict(nodes=64, pod_size=8, n_services=8, job_nodes=8,
                    n_requests=32)
    return dict(nodes=256, pod_size=16, n_services=16, job_nodes=16,
                n_requests=96)


def _tile_cfg():
    return TileServiceConfig(
        tile=MandelbrotConfig(
            width=512, height=512, strip_height=32, max_iter=128
        )
    )


def _build(shape, policy, seed=7):
    sim = Simulator()
    spec = ClusterSpec(
        nodes=shape["nodes"],
        gpus_per_node=0,
        topology=TopologySpec(
            kind="fattree",
            pod_size=shape["pod_size"],
            oversubscription=4.0,
        ),
    )
    cluster = build_cluster(sim, spec)
    sched = ClusterScheduler(
        cluster, policy=policy, backend="analytic", seed=seed
    )
    return sim, sched


def calibrate(shape, policy):
    """Mean per-request service time of one lightly loaded service."""
    sim, sched = _build(shape, policy)
    svc = TileService(sim, _tile_cfg(), name="cal")
    sched.submit(svc.job_spec(n_nodes=shape["job_nodes"]))
    driver = OpenLoopDriver(
        sim, svc, open_loop_arrivals(50.0, 16, seed=1, start=0.01),
        name="cal",
    )
    driver.start()
    sim.run()
    common.track(sim)
    done = [r.service_time for r in svc.log.requests if r.done_t is not None]
    return sum(done) / len(done)


def _uplink_stats(sched, span):
    """Per-pod uplink demand under analytic accounting.

    ``busy_frac`` is booked *uncontended* demand over the observed
    span — it can exceed 1.0 on an oversubscribed uplink, which is
    precisely the congestion the p99 gap comes from.
    """
    from repro.obs import link_report

    rows = link_report(
        sched.cluster.interconnect, wall_s=span, include_idle=True
    )
    ups = [
        r for r in rows
        if r["name"].endswith(".up") or r["name"].endswith(".down")
    ]
    fracs = [r["busy_frac"] for r in ups]
    return {
        "uplink_bytes": sum(r["bytes"] for r in ups),
        "uplink_busy_frac_mean": (
            sum(fracs) / len(fracs) if fracs else 0.0
        ),
        "uplink_busy_frac_max": max(fracs, default=0.0),
        "n_uplinks_active": sum(1 for r in ups if r["bytes"] > 0),
    }


def run_point(shape, policy, load, rate_hz, verify):
    """One (policy, load) cell: fresh sim, all services, pooled stats."""
    sim, sched = _build(shape, policy)
    # Book analytic wire legs onto the routed channels so the link
    # report can attribute the placement gap to pod-uplink demand.
    sched.cluster.interconnect.accounting = True
    services = []
    for i in range(shape["n_services"]):
        svc = TileService(sim, _tile_cfg(), name=f"svc{i}")
        sched.submit(svc.job_spec(n_nodes=shape["job_nodes"]))
        # Same per-service arrival seeds for every policy: the gate
        # compares identical offered workloads.
        arrivals = open_loop_arrivals(
            rate_hz, shape["n_requests"], seed=100 + i, start=0.01
        )
        OpenLoopDriver(sim, svc, arrivals, name=f"drv{i}").start()
        services.append(svc)
    wall0 = time.time()
    sim.run()
    wall = time.time() - wall0
    common.track(sim)
    lats = []
    offered = completed = 0
    first_arrival = min(
        r.arrival_t for svc in services for r in svc.log.requests
    )
    last_done = max(
        r.done_t
        for svc in services
        for r in svc.log.requests
        if r.done_t is not None
    )
    for svc in services:
        if verify:
            svc.verify()
        offered += len(svc.log.requests)
        done = [r for r in svc.log.requests if r.done_t is not None]
        completed += len(done)
        lats.extend(r.latency for r in done)
    span = last_done - first_arrival
    uplinks = _uplink_stats(sched, span)
    sched.release()
    p = percentiles(lats)
    return {
        **uplinks,
        "policy": policy,
        "load_factor": load,
        "rate_hz_per_service": rate_hz,
        "n_services": shape["n_services"],
        "n_offered": offered,
        "n_completed": completed,
        "p50_s": p["p50"],
        "p95_s": p["p95"],
        "p99_s": p["p99"],
        "goodput_rps": completed / span,
        "span_s": span,
        "wall_s": wall,
    }


def main() -> int:
    parser = common.make_parser(
        __doc__, JSON_PATH,
        smoke_help="64-node / 8-service sweep for CI",
    )
    parser.add_argument(
        "--no-verify", dest="verify", action="store_false",
        help="skip per-strip data verification (timing only)",
    )
    args = parser.parse_args()
    shape = _cluster_shape(args.smoke)
    records = []
    violations = []

    s_packed = calibrate(shape, "packed")
    s_random = calibrate(shape, "random")
    print(
        f"calibration ({shape['nodes']} nodes, "
        f"{shape['job_nodes']}-node jobs): packed service "
        f"{s_packed * 1e6:.1f}us, random {s_random * 1e6:.1f}us "
        f"({s_random / s_packed:.2f}x)"
    )

    by_cell = {}
    for load in LOAD_FACTORS:
        rate_hz = load / s_packed
        for policy in POLICIES:
            rec = run_point(shape, policy, load, rate_hz, args.verify)
            records.append(rec)
            by_cell[(policy, load)] = rec
            print(
                f"  u={load:<5} {policy:<7} p50={rec['p50_s'] * 1e6:8.1f}us "
                f"p99={rec['p99_s'] * 1e6:9.1f}us "
                f"goodput={rec['goodput_rps']:9.0f} req/s "
                f"(wall {rec['wall_s']:.1f}s)"
            )

    # Gate 1: packed beats random on p99 at the highest load.
    hi_pack = by_cell[("packed", GATE_LOAD)]
    hi_rand = by_cell[("random", GATE_LOAD)]
    win = hi_rand["p99_s"] / hi_pack["p99_s"]
    print(
        f"\np99 @ u={GATE_LOAD}: random/packed = {win:.2f}x "
        f"(gate >= {MIN_P99_WIN}x)"
    )
    # Attribution: the gap comes from pod-uplink demand — packed jobs
    # stay inside their pod, scattered ones cross the tapered uplinks.
    for policy in POLICIES:
        rec = by_cell[(policy, GATE_LOAD)]
        print(
            f"  uplink demand {policy:<7} "
            f"mean {rec['uplink_busy_frac_mean']:6.3f}x  "
            f"max {rec['uplink_busy_frac_max']:6.3f}x  "
            f"({rec['uplink_bytes']:,} B over "
            f"{rec['n_uplinks_active']} active uplinks)"
        )
    if win < MIN_P99_WIN:
        violations.append(
            f"locality p99 win {win:.2f}x < {MIN_P99_WIN}x at load "
            f"{GATE_LOAD}"
        )
    # Gate 2: packed goodput never worse than random, any load.
    for load in LOAD_FACTORS:
        gp = by_cell[("packed", load)]["goodput_rps"]
        gr = by_cell[("random", load)]["goodput_rps"]
        if gp < gr * (1.0 - 1e-9):
            violations.append(
                f"packed goodput {gp:.0f} < random {gr:.0f} req/s at "
                f"load {load}"
            )

    common.write_json(args.json, {
        "benchmark": "bench_serving",
        "mode": "smoke" if args.smoke else "full",
        "cluster": {
            "nodes": shape["nodes"],
            "pod_size": shape["pod_size"],
            "oversubscription": 4.0,
            "backend": "analytic",
        },
        "calibration": {
            "service_s_packed": s_packed,
            "service_s_random": s_random,
        },
        "records": records,
        "violations": violations,
    })
    return common.finish(
        args.json, len(records), violations,
        f"locality-aware placement >= {MIN_P99_WIN}x better p99 than "
        f"random at load {GATE_LOAD} on the oversubscribed fat tree; "
        "packed goodput never worse at any swept load; all strips "
        "bit-exact vs the escape-time reference",
    )


if __name__ == "__main__":
    sys.exit(main())
