"""Benchmark S5.1a — the paper's Mandelbrot results (§5.1).

Paper (8 GPUs): GAS 17 Mpix/s, speedup 3.08×, efficiency 38%; DCGN
15 Mpix/s, 2.72×, 34% — DCGN/GAS ≈ 0.88.

Run:  pytest benchmarks/bench_app_mandelbrot.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.bench import sec51_mandelbrot


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_sec51_mandelbrot(benchmark):
    table = run_artifact(
        benchmark, "sec51_mandelbrot", sec51_mandelbrot
    )
    rows = {r[0]: r for r in table.rows}
    sp = rows["speedup (8 GPUs)"]
    gas_speedup = float(sp[2].rstrip("×"))
    dcgn_speedup = float(sp[4].rstrip("×"))
    # Paper's ordering: both parallel versions beat one GPU; GAS > DCGN.
    assert gas_speedup > 1.5
    assert dcgn_speedup > 1.2
    assert dcgn_speedup < gas_speedup
    # GAS speedup within the paper's ballpark (3.08×).
    assert 2.2 <= gas_speedup <= 4.5
