"""Benchmark F7 — regenerate the paper's Figure 7 (broadcast vs size).

Three series over 8 ranks on 4 nodes: MVAPICH2 CPUs, DCGN CPUs, DCGN
GPUs.  Shape claims: DCGN-CPU competitive with (and in the paper's
medium range faster than) MVAPICH2 because its underlying MPI bcast runs
with half as many ranks + local memcpy; DCGN-GPU slower throughout (two
PCIe trips per payload).

Run:  pytest benchmarks/bench_fig7_broadcast.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.bench import fig7_broadcast


def _parse(cell: str) -> float:
    value, unit = cell.split()
    return float(value) * {"µs": 1e-6, "ms": 1e-3, "s": 1.0}[unit]


def test_fig7_broadcast_sweep(benchmark):
    table = run_artifact(
        benchmark, "fig7_broadcast", fig7_broadcast, iters=8
    )
    assert len(table.rows) == 4
    for row in table.rows:
        t_mpi, t_cpu, t_gpu = _parse(row[1]), _parse(row[2]), _parse(row[3])
        # GPU series slower than the CPU series at every size.
        assert t_gpu > t_cpu, f"GPU bcast must trail CPU at {row[0]}"
    # Large sizes: DCGN-CPU within 25% of MVAPICH2 (paper: equal-to-faster).
    big = table.rows[-1]
    assert _parse(big[2]) <= 1.25 * _parse(big[1])
