"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one artifact of the paper's evaluation
(a table or a figure), saves the rendered table under
``benchmarks/out/``, and records headline numbers in
``benchmark.extra_info`` so they appear in pytest-benchmark's JSON.

Simulations are deterministic; a single round measures the (wall-clock)
cost of regenerating the artifact while the artifact itself carries the
simulated-time results.
"""

import pytest


def run_artifact(benchmark, name, builder, **kwargs):
    """Run ``builder(**kwargs)`` under the benchmark fixture and persist it."""
    from repro.bench import save_table

    holder = {}

    def job():
        holder["table"] = builder(**kwargs)
        return holder["table"]

    benchmark.pedantic(job, rounds=1, iterations=1)
    table = holder["table"]
    path = save_table(name, table)
    benchmark.extra_info["artifact"] = name
    benchmark.extra_info["saved_to"] = path
    for note in table.notes:
        print(f"[{name}] {note}")
    print(table.render())
    return table
