"""Benchmark F6 — regenerate the paper's Figure 6 (send time vs size).

Five series: MVAPICH2 baseline and DCGN {CPU:CPU, CPU:GPU, GPU:CPU,
GPU:GPU}, sizes 0 B → 1 MB.  Key shape anchors (§5.2): 0 B CPU:CPU ≈
28× MPI, 0 B GPU:GPU ≈ 564× MPI, 1 MB CPU:CPU ≈ 1.04× MPI.

Run:  pytest benchmarks/bench_fig6_send.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.apps import micro
from repro.bench import fig6_send


def test_fig6_send_sweep(benchmark):
    table = run_artifact(benchmark, "fig6_send", fig6_send, iters=4)
    assert len(table.rows) == 6  # six sizes


def test_fig6_anchor_ratios(benchmark):
    """The §5.2 ratio anchors, asserted as bands."""

    def compute():
        t_mpi0 = micro.mpi_send_time(0, iters=4)
        t_cc0 = micro.dcgn_send_time(0, "cpu", "cpu", iters=4)
        t_gg0 = micro.dcgn_send_time(0, "gpu", "gpu", iters=4)
        mb = 1 << 20
        t_mpi1 = micro.mpi_send_time(mb, iters=4)
        t_cc1 = micro.dcgn_send_time(mb, "cpu", "cpu", iters=4)
        return {
            "r0_cpu": t_cc0 / t_mpi0,
            "r0_gpu": t_gg0 / t_mpi0,
            "r1_cpu": t_cc1 / t_mpi1,
        }

    ratios = benchmark.pedantic(compute, rounds=1, iterations=1)
    print(
        f"[fig6 anchors] 0B cpu:cpu {ratios['r0_cpu']:.1f}x (paper 28x), "
        f"0B gpu:gpu {ratios['r0_gpu']:.1f}x (paper 564x), "
        f"1MB cpu:cpu {ratios['r1_cpu']:.2f}x (paper 1.04x)"
    )
    benchmark.extra_info.update({k: round(v, 2) for k, v in ratios.items()})
    assert 10.0 <= ratios["r0_cpu"] <= 60.0
    assert 100.0 <= ratios["r0_gpu"] <= 700.0
    assert 1.0 <= ratios["r1_cpu"] <= 1.25
