"""Benchmark — communicator groups & the sub-communicator substrate.

Measures the PR 4 redesign from three angles and records the results
to ``BENCH_subcomm.json`` at the repository root:

1. **Hierarchical-on-subcomms vs the old hand-rolled hierarchical** —
   the equal-pod hierarchical allreduce was rebuilt as literal
   sub-communicator composition (intra-domain ring reduce-scatter →
   peer-communicator ring → intra-domain allgather).  The PR 3
   hand-rolled schedule's simulated times are frozen below
   (deterministic simulation, captured before the rewrite); the gate
   demands the rebuilt schedule is **no slower anywhere** (≤ 1.0005×,
   float-print slack) — in practice it reproduces the old message
   sequence step for step.
2. **Row/column-communicator Cannon vs world-communicator Cannon** —
   the flagship consumer: Cannon's rotation on ``ctx.split`` row/col
   comms must not lose to hand-rolled world-rank arithmetic
   (≥ 0.9995×, it is traffic-identical), and the Fox variant's
   *concurrent per-row broadcasts* (one collective per disjoint row
   communicator) must beat the world-comm linear fan-out at q = 4
   (≥ 1.0×).
3. **Unequal-pod hierarchical vs flat ring** — pods of ragged size on
   a fragmented 2:1 fat tree, the configuration the old code refused
   to run hierarchically: the locality-reordered ring composition must
   beat the flat ring ≥ 1.2× at ≥ 1 MB.

Run standalone:       python benchmarks/bench_subcomm.py
Fast smoke (CI):      python benchmarks/bench_subcomm.py --smoke
"""

import sys

import common
from common import KB, MB

import numpy as np

from repro.apps.cannon import CannonConfig, run_mpi
from repro.bench.harness import Table, fmt_time
from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.mpi import (
    CollectiveTuning,
    MpiJob,
    ReduceOp,
    pod_cyclic_placement,
)
from repro.sim import Simulator

POD = 4
OVER = 2.0

#: Frozen simulated times of the PR 3 *hand-rolled* hierarchical
#: allreduce (equal pods, pod-cyclic placement on a 2:1 fat tree),
#: captured immediately before the sub-communicator rebuild.  The
#: simulation is deterministic, so these are exact.
OLD_HANDROLLED = {
    (8, 4 * KB): 27.681e-6,
    (16, 64 * KB): 166.900e-6,
    (16, 1 * MB): 3052.814e-6,
    (32, 4 * MB): 12929.833e-6,
    (12, 1000): 28.611e-6,
}

#: Unequal-pod scenarios: (ranks, total fat-tree nodes) — pods of POD
#: with a ragged tail (e.g. 18 over 20 nodes = pods 4,4,4,4,2).
UNEQUAL_FULL = [(18, 20), (14, 16), (10, 12)]
UNEQUAL_SMOKE = [(18, 20)]
UNEQUAL_SIZES_FULL = [1 * MB, 4 * MB]
UNEQUAL_SIZES_SMOKE = [1 * MB]

JSON_PATH = common.json_path("subcomm")


def _fattree_cluster(n_nodes):
    sim = Simulator()
    spec = ClusterSpec(
        nodes=n_nodes,
        gpus_per_node=0,
        topology=TopologySpec(
            kind="fattree", pod_size=POD, oversubscription=OVER
        ),
    )
    return sim, build_cluster(sim, spec)


def _allreduce_time(n_ranks, n_nodes, nbytes, force):
    sim, cluster = _fattree_cluster(n_nodes)
    placement = pod_cyclic_placement(n_nodes, POD)[:n_ranks]
    job = MpiJob(
        cluster, placement, tuning=CollectiveTuning(force_allreduce=force)
    )

    def prog(ctx):
        send = np.zeros(nbytes, dtype=np.uint8)
        recv = np.zeros(nbytes, dtype=np.uint8)
        yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

    job.start(prog)
    job.run()
    common.track(sim)
    return sim.now


def bench_hier_vs_handrolled(records, violations, smoke):
    """Gate 1: rebuilt hierarchical ≤ frozen hand-rolled everywhere."""
    table = Table(
        "hierarchical allreduce: sub-communicator rebuild vs PR 3 "
        "hand-rolled (frozen)",
        ["ranks", "size", "hand-rolled", "subcomms", "ratio"],
    )
    points = list(OLD_HANDROLLED.items())
    if smoke:
        points = [p for p in points if p[0][0] in (16, 12)]
    for (n, nbytes), t_old in points:
        t_new = _allreduce_time(n, n, nbytes, "hierarchical")
        ratio = t_old / t_new
        table.add(*[n, nbytes, fmt_time(t_old), fmt_time(t_new),
                   f"{ratio:.4f}×"])
        records.append({
            "series": "hier_vs_handrolled", "ranks": n, "bytes": nbytes,
            "handrolled_s": t_old, "subcomm_s": t_new, "ratio": ratio,
        })
        if t_new > t_old * 1.0005:
            violations.append(
                f"hierarchical-on-subcomms slower than hand-rolled at "
                f"{n} ranks / {nbytes} B: {t_new:.9f}s vs {t_old:.9f}s"
            )
    print()
    print(table.render())


def _cannon_time(grid, n, variant, subcomms):
    sim = Simulator()
    cluster = build_cluster(
        sim, ClusterSpec(nodes=grid * grid, gpus_per_node=0)
    )
    cfg = CannonConfig(n=n, grid=grid)
    elapsed = run_mpi(cluster, cfg, variant=variant, subcomms=subcomms).elapsed
    common.track(sim)
    return elapsed


def bench_cannon(records, violations, smoke):
    """Gate 2: row/col Cannon ≥ world Cannon; Fox rowcol wins at q=4."""
    table = Table(
        "Cannon / Fox: row-col communicators vs world-comm baseline",
        ["variant", "grid", "world", "rowcol", "speedup"],
    )
    scenarios = [("cannon", 4, 512), ("fox", 4, 512)]
    if not smoke:
        scenarios += [("cannon", 3, 384), ("fox", 2, 256)]
    for variant, grid, n in scenarios:
        t_world = _cannon_time(grid, n, variant, subcomms=False)
        t_rowcol = _cannon_time(grid, n, variant, subcomms=True)
        speedup = t_world / t_rowcol
        table.add(*[variant, f"{grid}x{grid}", fmt_time(t_world),
                   fmt_time(t_rowcol), f"{speedup:.3f}×"])
        records.append({
            "series": "cannon", "variant": variant, "grid": grid,
            "world_s": t_world, "rowcol_s": t_rowcol, "speedup": speedup,
        })
        if variant == "cannon" and speedup < 0.9995:
            violations.append(
                f"row/col Cannon slower than world-comm Cannon at "
                f"{grid}x{grid}: {speedup:.4f}x"
            )
        if variant == "fox" and grid >= 4 and speedup < 1.0:
            violations.append(
                f"concurrent per-row broadcasts lost to the linear "
                f"world fan-out at {grid}x{grid}: {speedup:.4f}x"
            )
    print()
    print(table.render())


def bench_unequal_pods(records, violations, smoke):
    """Gate 3: unequal-pod hierarchical ≥ 1.2× flat ring (≥ 1 MB)."""
    table = Table(
        "unequal pods on a fragmented 2:1 fat tree: hierarchical "
        "(locality-reordered ring) vs flat ring",
        ["ranks", "nodes", "size", "flat ring", "hierarchical", "win"],
    )
    scen = UNEQUAL_SMOKE if smoke else UNEQUAL_FULL
    sizes = UNEQUAL_SIZES_SMOKE if smoke else UNEQUAL_SIZES_FULL
    for n_ranks, n_nodes in scen:
        for nbytes in sizes:
            t_ring = _allreduce_time(n_ranks, n_nodes, nbytes, "ring")
            t_hier = _allreduce_time(
                n_ranks, n_nodes, nbytes, "hierarchical"
            )
            win = t_ring / t_hier
            table.add(*[n_ranks, n_nodes, nbytes, fmt_time(t_ring),
                       fmt_time(t_hier), f"{win:.3f}×"])
            records.append({
                "series": "unequal_pods", "ranks": n_ranks,
                "nodes": n_nodes, "bytes": nbytes,
                "ring_s": t_ring, "hier_s": t_hier, "win": win,
            })
            if win < 1.2:
                violations.append(
                    f"unequal-pod hierarchical win {win:.3f}x < 1.2x at "
                    f"{n_ranks} ranks / {nbytes} B"
                )
    print()
    print(table.render())


def main() -> int:
    parser = common.make_parser(__doc__, JSON_PATH)
    args = parser.parse_args()
    records = []
    violations = []
    bench_hier_vs_handrolled(records, violations, args.smoke)
    bench_cannon(records, violations, args.smoke)
    bench_unequal_pods(records, violations, args.smoke)
    common.write_json(
        args.json, {"records": records, "violations": violations}
    )
    return common.finish(
        args.json, len(records), violations,
        "hierarchical-on-subcomms <= hand-rolled everywhere; row/col "
        "Cannon >= world Cannon; concurrent per-row broadcasts >= linear "
        "fan-out at q=4; unequal-pod hierarchical >= 1.2x flat ring",
    )


if __name__ == "__main__":
    sys.exit(main())
