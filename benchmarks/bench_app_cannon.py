"""Benchmark S5.1b — Cannon's matrix multiplication (§5.1).

Paper: 1024×1024, 4 GPUs — DCGN efficiency 71% vs GAS 74%
(DCGN/GAS ≈ 0.96).

Run:  pytest benchmarks/bench_app_cannon.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.bench import sec51_cannon


def test_sec51_cannon(benchmark):
    table = run_artifact(benchmark, "sec51_cannon", sec51_cannon)
    rows = {r[0]: r for r in table.rows}
    eff_gas = float(rows["GAS efficiency"][2].rstrip("%")) / 100
    eff_dcgn = float(rows["DCGN efficiency"][2].rstrip("%")) / 100
    ratio = float(rows["DCGN/GAS"][2])
    # Paper's ordering and closeness: DCGN within ~15% of GAS.
    assert eff_dcgn < eff_gas
    assert 0.80 <= ratio <= 1.0, f"DCGN/GAS {ratio}"
    assert 0.40 <= eff_gas <= 0.90
