"""Benchmark — multi-slot latency (paper §4, "Sending and Receiving").

"We also implemented tests that used multiple slots per GPU to
understand the behavior of our system with respect to latency."

One GPU streams messages to a CPU rank on the other node; one mailbox
harvest services every slot's posted request, so per-message latency
amortizes with the slot count.

Run:  pytest benchmarks/bench_multislot_latency.py --benchmark-only -s
"""

from conftest import run_artifact

from repro.apps.micro import dcgn_multislot_latency
from repro.bench.harness import Table, fmt_time


def multislot_table() -> Table:
    t = Table(
        "Multi-slot latency — one GPU, messages to a remote CPU rank",
        ["Slots", "Per-message latency", "Aggregate msgs/ms"],
    )
    for slots in (1, 2, 4, 8):
        marks = dcgn_multislot_latency(slots=slots, msgs_per_slot=4)
        per_msg = marks["per_msg"]
        t.add(slots, fmt_time(per_msg), f"{1e-3 / per_msg:.2f}")
    t.note(
        "Each polling round harvests every slot's posted request, so "
        "virtualizing the GPU into more communication targets amortizes "
        "the polling interval across messages (paper §3.1/§4)."
    )
    return t


def test_multislot_latency_amortizes(benchmark):
    table = run_artifact(benchmark, "multislot_latency", multislot_table)

    def parse(cell):
        v, unit = cell.split()
        return float(v) * {"µs": 1e-6, "ms": 1e-3, "s": 1.0}[unit]

    lats = [parse(r[1]) for r in table.rows]
    assert lats[2] < 0.7 * lats[0]  # 4 slots ≪ 1 slot per-message cost
