#!/usr/bin/env python
"""Aggregate the committed ``BENCH_*.json`` artifacts into one table.

Every gated benchmark writes a repo-root ``BENCH_<name>.json`` (see
``benchmarks/common.py``); this script folds all of them into a single
markdown trajectory report — one row per benchmark with its record
count, gate status, and headline metric — plus a per-benchmark detail
section.  CI runs it after the smoke benches and uploads the result as
an artifact, so every PR carries a capsule view of where the numbers
stand.

Usage::

    python tools/bench_report.py [--out BENCH_REPORT.md] [--json ...]

Exits 0 even when gates were violated (the benches themselves gate);
the report *records* violations, it does not re-enforce them.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict, List, Optional

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
)


def load_artifacts(root: str = REPO_ROOT) -> Dict[str, Dict[str, Any]]:
    """``{name: parsed json}`` for every ``BENCH_*.json`` under root."""
    out: Dict[str, Dict[str, Any]] = {}
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        with open(path, encoding="utf-8") as fh:
            out[name] = json.load(fh)
    return out


def _records(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    return doc.get("records") or doc.get("points") or []


def _headline(name: str, doc: Dict[str, Any]) -> str:
    """One representative number per benchmark (best-effort)."""
    recs = _records(doc)
    speedups = [
        r["speedup"] for r in recs
        if isinstance(r.get("speedup"), (int, float))
    ]
    if speedups:
        return f"max speedup {max(speedups):.2f}x over {len(speedups)} pts"
    p99s = [
        r["p99_s"] for r in recs
        if isinstance(r.get("p99_s"), (int, float))
    ]
    if p99s:
        return f"p99 {min(p99s) * 1e6:.0f}-{max(p99s) * 1e6:.0f}us"
    acc = doc.get("acceptance")
    if isinstance(acc, dict):
        body = ", ".join(f"{k}={v}" for k, v in list(acc.items())[:3])
        return body[:70]
    return "-"


def build_report(artifacts: Dict[str, Dict[str, Any]]) -> str:
    lines = [
        "# Benchmark trajectory",
        "",
        "Aggregated from the committed `BENCH_*.json` artifacts "
        f"({len(artifacts)} benchmarks).",
        "",
        "| benchmark | mode | records | gates | headline |",
        "|---|---|---:|---|---|",
    ]
    for name, doc in artifacts.items():
        recs = _records(doc)
        violations = doc.get("violations", [])
        gates = "PASS" if not violations else f"{len(violations)} VIOLATED"
        mode = doc.get("mode", "-")
        lines.append(
            f"| {name} | {mode} | {len(recs)} | {gates} | "
            f"{_headline(name, doc)} |"
        )
    lines.append("")
    for name, doc in artifacts.items():
        violations = doc.get("violations", [])
        if violations:
            lines.append(f"## {name}: gate violations")
            lines.extend(f"- {v}" for v in violations)
            lines.append("")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_REPORT.md"),
        help="markdown output path (default repo-root BENCH_REPORT.md)",
    )
    parser.add_argument(
        "--root", default=REPO_ROOT,
        help="directory holding the BENCH_*.json artifacts",
    )
    args = parser.parse_args(argv)
    artifacts = load_artifacts(args.root)
    if not artifacts:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    report = build_report(artifacts)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(report)
    print(f"wrote {args.out}: {len(artifacts)} benchmarks")
    sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
