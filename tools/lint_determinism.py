#!/usr/bin/env python
"""Determinism lint for the simulated runtime.

The whole value of the schedule-exploration checker (``repro.check``)
rests on one property: *a seed is a schedule*.  Replaying a seed must
reproduce the identical interleaving, which it cannot if the runtime
consults any ordering source outside the seeded
:class:`~repro.sim.ExploringSimulator`.  This lint walks the AST of the
scheduling/matching-critical packages and rejects the three ways that
property has historically been lost:

``unseeded-rng``
    Calls to the process-global ``random`` module RNG
    (``random.random()``, ``random.shuffle()``, ...), ``random.Random()``
    with no seed, the legacy ``numpy.random.*`` global functions, or
    ``numpy.random.default_rng()`` with no seed.  All randomness must
    flow from an explicit seed (``random.Random(seed)``,
    ``np.random.default_rng(seed)``).

``set-iteration``
    Iterating directly over a set literal, set comprehension, or
    ``set(...)``/``frozenset(...)`` call in a ``for`` loop or
    comprehension.  Set iteration order depends on insertion history and
    hash randomization; scheduling or matching decisions derived from it
    differ run to run.  Sort first (``sorted(...)``) or keep a list.

``id-ordering``
    Using ``id()`` as a sort key (``sorted(xs, key=id)``, including via
    a trivial lambda) or comparing ``id()`` values.  CPython addresses
    vary across runs, so any order derived from them is unstable.
    ``id()`` for identity/membership (dict keys, ``seen`` sets) is fine.

Suppression: append ``# det: ok`` (with an optional reason after a
second ``-``) to the offending line after a human has verified the use
cannot influence ordering, e.g.::

    seen = {id(proc)}  # det: ok - membership only, never ordering

Usage::

    python tools/lint_determinism.py            # lint the default paths
    python tools/lint_determinism.py src tests  # explicit paths

Exit status 1 when any finding survives suppression.  Wired into CI
next to the tier-1 tests.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple

#: Packages whose ordering decisions feed scheduling/matching.  apps/
#: and bench/ are driver-level (their RNG use is seeded experiment
#: input, checked by review rather than lint).
DEFAULT_PATHS = [
    "src/repro/sim",
    "src/repro/mpi",
    "src/repro/dcgn",
    "src/repro/check",
    "src/repro/gas",
    "src/repro/gpusim",
    "src/repro/hw",
    "src/repro/obs",
    "src/repro/serve",
    "src/repro/trace",
]

#: ``random.<name>`` module-level calls that consult the global RNG.
#: (Everything callable on the module that draws or mutates state.)
_GLOBAL_RANDOM_FNS = {
    "random", "randrange", "randint", "uniform", "triangular",
    "randbytes", "choice", "choices", "sample", "shuffle", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "paretovariate", "vonmisesvariate", "weibullvariate",
    "getrandbits", "seed", "setstate", "binomialvariate",
}

#: ``numpy.random`` attributes that are fine to reference: the modern
#: seedable generator API.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                 "PCG64", "Philox", "SFC64", "MT19937"}

SUPPRESS_MARK = "det: ok"


class Finding(NamedTuple):
    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"[{self.rule}] {self.message}"
        )


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expr(node: ast.AST) -> bool:
    """Expressions whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_id_key(node: ast.AST) -> bool:
    """A ``key=`` argument that sorts by ``id``: bare ``id`` or a
    one-liner lambda whose body is an ``id(...)`` call."""
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        body = node.body
        return (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id == "id"
        )
    return False


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: List[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: List[Finding] = []

    # -- helpers -----------------------------------------------------------
    def _suppressed(self, node: ast.AST) -> bool:
        line = self.lines[node.lineno - 1]
        return SUPPRESS_MARK in line

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if not self._suppressed(node):
            self.findings.append(
                Finding(self.path, node.lineno, node.col_offset, rule, message)
            )

    # -- unseeded RNG ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name.startswith("random."):
            attr = name.split(".", 1)[1]
            if attr in _GLOBAL_RANDOM_FNS:
                self._flag(
                    node, "unseeded-rng",
                    f"{name}() uses the process-global RNG; draw from a "
                    "seeded random.Random(seed) instance instead",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                self._flag(
                    node, "unseeded-rng",
                    "random.Random() with no seed is seeded from the OS; "
                    "pass an explicit seed",
                )
        if name in ("np.random.default_rng", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                self._flag(
                    node, "unseeded-rng",
                    f"{name}() with no seed is nondeterministic; pass an "
                    "explicit seed",
                )
        elif name.startswith(("np.random.", "numpy.random.")):
            attr = name.rsplit(".", 1)[1]
            if attr not in _NP_RANDOM_OK:
                self._flag(
                    node, "unseeded-rng",
                    f"{name}() uses numpy's global RNG; use "
                    "np.random.default_rng(seed)",
                )
        # id() as an ordering key of sorted/min/max.
        if isinstance(node.func, ast.Name) and node.func.id in (
            "sorted", "min", "max"
        ):
            for kw in node.keywords:
                if kw.arg == "key" and _is_id_key(kw.value):
                    self._flag(
                        node, "id-ordering",
                        f"{node.func.id}(..., key=id) orders by CPython "
                        "address; use a stable key (name, index, seq)",
                    )
        self.generic_visit(node)

    # -- set iteration -----------------------------------------------------
    def _check_iter(self, it: ast.AST) -> None:
        if _is_set_expr(it):
            self._flag(
                it, "set-iteration",
                "iterating a set: order is hash-dependent; wrap in "
                "sorted(...) or keep a list",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    # -- id() comparisons --------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        if any(isinstance(op, ordering_ops) for op in node.ops) and any(
            _is_id_call(o) for o in operands
        ):
            self._flag(
                node, "id-ordering",
                "comparing id() values orders by CPython address; compare "
                "a stable attribute instead",
            )
        self.generic_visit(node)


def lint_file(path: Path) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - broken file
        return [Finding(str(path), exc.lineno or 0, 0, "syntax",
                        f"cannot parse: {exc.msg}")]
    linter = _Linter(str(path), source.splitlines())
    linter.visit(tree)
    return linter.findings


def iter_files(paths: List[str]) -> Iterator[Path]:
    for p in paths:
        root = Path(p)
        if root.is_file():
            yield root
        else:
            yield from sorted(root.rglob("*.py"))


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Forbid nondeterministic ordering sources in the "
        "scheduling/matching-critical packages (see module docstring).",
    )
    parser.add_argument(
        "paths", nargs="*", default=DEFAULT_PATHS,
        help=f"files or directories to lint (default: {DEFAULT_PATHS})",
    )
    args = parser.parse_args(argv)

    findings: List[Finding] = []
    n_files = 0
    for f in iter_files(args.paths):
        n_files += 1
        findings.extend(lint_file(f))

    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\n{len(findings)} determinism finding(s) in {n_files} "
            "file(s); fix or annotate with '# det: ok - <reason>'",
            file=sys.stderr,
        )
        return 1
    print(f"determinism lint: {n_files} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
