"""DCGN one-sided windows: kernel-driven put/get/accumulate, and the
nonblocking group-split staging."""

import numpy as np
import pytest

from repro.dcgn import DcgnConfig, DcgnError, DcgnRuntime
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator


def make_runtime(nodes=2, cpu_threads=2, gpus=0, windows=None, **kw):
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=nodes, gpus_per_node=gpus)
    )
    cfg = DcgnConfig.homogeneous(
        nodes, cpu_threads=cpu_threads, gpus=gpus, windows=windows, **kw
    )
    return sim, DcgnRuntime(cluster, cfg)


class TestCpuWindows:
    def test_put_get_ring(self):
        sim, rt = make_runtime(nodes=2, cpu_threads=2, windows={"halo": 4})

        def kern(ctx):
            right = (ctx.rank + 1) % ctx.size
            yield from ctx.put(
                "halo", right, np.full(2, float(ctx.rank) + 1.0)
            )
            yield from ctx.barrier()
            buf = np.zeros(4)
            yield from ctx.get("halo", ctx.rank, buf)
            return buf[:2].tolist()

        rt.launch_cpu(kern)
        rep = rt.run()
        results = rep.cpu_results()
        for rank, got in enumerate(results):
            left = (rank - 1) % rt.size
            assert got == [float(left) + 1.0] * 2
        stats = rep.comm_stats()
        assert stats["rma.rma_put"] == rt.size
        assert stats["rma.rma_get"] == rt.size

    def test_accumulate_sum_and_replace_order(self):
        sim, rt = make_runtime(nodes=2, cpu_threads=1, windows={"acc": 2})

        def kern(ctx):
            if ctx.rank == 0:
                yield from ctx.accumulate(
                    "acc", 1, np.full(2, 5.0), op="sum"
                )
                yield from ctx.accumulate(
                    "acc", 1, np.full(1, 2.0), op="replace"
                )
            yield from ctx.barrier()

        rt.launch_cpu(kern)
        rep = rt.run()
        region = rt.window("acc").region(1)
        assert list(region) == [2.0, 5.0]

    def test_iput_iget_overlap(self):
        sim, rt = make_runtime(nodes=2, cpu_threads=1, windows={"w": 2})

        def kern(ctx):
            peer = 1 - ctx.rank
            h = yield from ctx.iput("w", peer, np.full(2, 3.0))
            yield from ctx.compute(1e-4)
            yield from h.wait()
            yield from ctx.barrier()
            buf = np.zeros(2)
            g = yield from ctx.iget("w", ctx.rank, buf)
            yield from g.wait()
            return buf.tolist()

        rt.launch_cpu(kern)
        rep = rt.run()
        assert rep.cpu_results() == [[3.0, 3.0]] * 2

    def test_remote_completion_means_visible(self):
        """A completed put is already visible at the target — no recv,
        no barrier needed for the bytes themselves."""
        sim, rt = make_runtime(nodes=2, cpu_threads=1, windows={"w": 1})
        seen = {}

        def kern(ctx):
            if ctx.rank == 0:
                yield from ctx.put("w", 1, np.full(1, 4.5))
                seen["at_return"] = float(rt.window("w").region(1)[0])
            else:
                yield from ctx.compute(0.01)

        rt.launch_cpu(kern)
        rt.run()
        assert seen["at_return"] == 4.5

    def test_noncontiguous_get_buffer_raises(self):
        from repro.dcgn.errors import CommViolation

        sim, rt = make_runtime(nodes=1, cpu_threads=1, windows={"w": 4})
        caught = {}

        def kern(ctx):
            block = np.zeros((4, 4))
            try:
                yield from ctx.get("w", 0, block[:, :1])
            except CommViolation as e:
                caught["msg"] = str(e)

        rt.launch_cpu(kern)
        rt.run()
        assert "C-contiguous" in caught["msg"]

    def test_unknown_window_raises(self):
        sim, rt = make_runtime(nodes=1, cpu_threads=1, windows={"w": 1})

        def kern(ctx):
            yield from ctx.put("nope", 0, np.ones(1))

        rt.launch_cpu(kern)
        with pytest.raises(DcgnError, match="no window named"):
            rt.run()

    def test_wildcard_target_and_bad_op_raise_kernel_side(self):
        from repro.dcgn import ANY
        from repro.dcgn.errors import CommViolation

        sim, rt = make_runtime(nodes=1, cpu_threads=1, windows={"w": 2})
        caught = {}

        def kern(ctx):
            try:
                yield from ctx.put("w", ANY, np.ones(1))
            except CommViolation as e:
                caught["any"] = str(e)
            try:
                yield from ctx.accumulate("w", 0, np.ones(1), op="bogus")
            except CommViolation as e:
                caught["op"] = str(e)

        rt.launch_cpu(kern)
        rt.run()
        assert "concrete target" in caught["any"]
        assert "unknown accumulate op" in caught["op"]

    def test_dtype_mismatch_raises_at_issue(self):
        from repro.dcgn.errors import CommViolation

        sim, rt = make_runtime(nodes=1, cpu_threads=1, windows={"w": 4})
        caught = {}

        def kern(ctx):
            try:
                yield from ctx.get(
                    "w", 0, np.zeros(4, dtype=np.float32)
                )
            except CommViolation as e:
                caught["get"] = str(e)
            try:
                yield from ctx.put(
                    "w", 0, np.ones(4, dtype=np.float32)
                )
            except CommViolation as e:
                caught["put"] = str(e)

        rt.launch_cpu(kern)
        rt.run()
        assert "does not match window" in caught["get"]
        assert "does not match window" in caught["put"]

    def test_out_of_range_offset_raises(self):
        sim, rt = make_runtime(nodes=1, cpu_threads=1, windows={"w": 2})

        def kern(ctx):
            yield from ctx.put("w", 0, np.ones(2), offset=1)

        rt.launch_cpu(kern)
        with pytest.raises(DcgnError, match="outside"):
            rt.run()


class TestGpuWindows:
    def test_gpu_put_get(self):
        sim, rt = make_runtime(
            nodes=2, cpu_threads=0, gpus=1, windows={"halo": 4}
        )

        def kern(kctx):
            comm = kctx.comm
            me = comm.rank(0)
            right = (me + 1) % comm.size
            dev = kctx.device
            src = dev.alloc(2, fill=float(me) + 10.0)
            yield from comm.put(0, "halo", right, src)
            yield from comm.barrier(0)
            dst = dev.alloc(4)
            yield from comm.get(0, "halo", me, dst)
            out = dst.data[:2].tolist()
            src.free()
            dst.free()
            return out

        rt.launch_gpu(kern)
        rep = rt.run()
        results = rep.gpu_block_results()
        flat = [r[0] for r in results]
        assert flat == [[11.0, 11.0], [10.0, 10.0]]

    def test_gpu_accumulate(self):
        sim, rt = make_runtime(
            nodes=2, cpu_threads=0, gpus=1, windows={"acc": 2}
        )

        def kern(kctx):
            comm = kctx.comm
            me = comm.rank(0)
            dev = kctx.device
            ones = dev.alloc(2, fill=1.0)
            yield from comm.accumulate(0, "acc", 0, ones, op="sum")
            yield from comm.barrier(0)
            ones.free()

        rt.launch_gpu(kern)
        rt.run()
        assert list(rt.window("acc").region(0)) == [2.0, 2.0]

    def test_gpu_oversized_nbytes_rejected_kernel_side(self):
        from repro.dcgn.errors import CommViolation

        sim, rt = make_runtime(
            nodes=1, cpu_threads=0, gpus=1, windows={"w": 4}
        )
        caught = {}

        def kern(kctx):
            comm = kctx.comm
            src = kctx.device.alloc(2, fill=1.0)
            try:
                yield from comm.put(0, "w", 0, src, nbytes=4 * 8)
            except CommViolation as e:
                caught["msg"] = str(e)
            try:
                yield from comm.put(0, "w", 0, src, offset=3)
            except Exception as e:
                caught["range"] = str(e)
            src.free()

        rt.launch_gpu(kern)
        rt.run()
        assert "exceeds device buffer" in caught["msg"]
        assert "outside" in caught["range"]

    def test_gpu_iput_overlaps_compute(self):
        sim, rt = make_runtime(
            nodes=2, cpu_threads=0, gpus=1, windows={"w": 2}
        )

        def kern(kctx):
            comm = kctx.comm
            me = comm.rank(0)
            dev = kctx.device
            src = dev.alloc(2, fill=float(me))
            h = yield from comm.iput(0, "w", 1 - me, src)
            yield from kctx.compute(seconds=1e-4)
            yield from h.wait()
            yield from comm.barrier(0)
            src.free()

        rt.launch_gpu(kern)
        rt.run()
        assert list(rt.window("w").region(0)) == [1.0, 1.0]
        assert list(rt.window("w").region(1)) == [0.0, 0.0]


class TestWindowDeclaration:
    def test_typed_spec_and_create_window(self):
        sim, rt = make_runtime(nodes=1, cpu_threads=2)
        win = rt.create_window("bytes", (8, "uint8"))
        assert win.dtype == np.uint8
        assert win.bytes_per_rank == 8

        def kern(ctx):
            yield from ctx.put(
                "bytes", 1 - ctx.rank,
                np.full(4, ctx.rank + 1, dtype=np.uint8),
            )
            yield from ctx.barrier()

        rt.launch_cpu(kern)
        rt.run()
        assert list(win.region(0)[:4]) == [2] * 4
        assert list(win.region(1)[:4]) == [1] * 4

    def test_duplicate_or_bad_declarations(self):
        from repro.dcgn.errors import DcgnConfigError

        sim, rt = make_runtime(nodes=1, cpu_threads=1)
        rt.create_window("w", 4)
        with pytest.raises(DcgnConfigError, match="duplicate"):
            rt.create_window("w", 4)
        with pytest.raises(DcgnConfigError, match="at least one"):
            rt.create_window("empty", 0)
        with pytest.raises(TypeError):
            rt.create_window("badtype", (4, "not_a_dtype"))


class TestNonblockingSplit:
    def test_split_correct_after_staging_change(self):
        sim, rt = make_runtime(nodes=2, cpu_threads=2)

        def kern(ctx):
            g = yield from ctx.split(ctx.rank % 2, key=-ctx.rank)
            out = np.zeros(1)
            yield from g.allreduce(np.full(1, float(ctx.rank)), out)
            return (g.rank, out[0])

        rt.launch_cpu(kern)
        rep = rt.run()
        results = rep.cpu_results()
        # colors: even {0,2} sum 2, odd {1,3} sum 4; key=-rank reverses
        # the member order within each group.
        assert results[0] == (1, 2.0)
        assert results[2] == (0, 2.0)
        assert results[1] == (1, 4.0)
        assert results[3] == (0, 4.0)

    def test_back_to_back_splits_stay_ordered(self):
        """Two consecutive splits: the second's staging may begin while
        the first's allgather is still resolving in the background —
        the per-gid sequence numbers must keep them straight."""
        sim, rt = make_runtime(nodes=2, cpu_threads=2)

        def kern(ctx):
            g1 = yield from ctx.split(ctx.rank % 2)
            g2 = yield from ctx.split(ctx.rank // 2)
            out1, out2 = np.zeros(1), np.zeros(1)
            yield from g1.allreduce(np.full(1, float(ctx.rank)), out1)
            yield from g2.allreduce(np.full(1, float(ctx.rank)), out2)
            return (out1[0], out2[0])

        rt.launch_cpu(kern)
        rep = rt.run()
        results = rep.cpu_results()
        # g1: {0,2}=2, {1,3}=4; g2: {0,1}=1, {2,3}=5.
        assert results == [(2.0, 1.0), (4.0, 1.0), (2.0, 5.0), (4.0, 5.0)]
