"""RMA put coalescing: batching, ordering, flush points, and counters.

``Window(coalesce=True)`` buffers small eager puts per (origin, target)
and rides them on one wire transfer at the next completion point or
conflicting operation (see ``rma.py``).  These tests pin down the
semantics the Jacobi ``rma_fence_coalesced`` backend and ``bench_rma``'s
coalescing gate rely on.
"""

import numpy as np
import pytest

from repro.hw import ClusterSpec, build_cluster
from repro.mpi import MpiJob, RmaError, Window
from repro.sim import Simulator


def make_job(n_nodes=4):
    sim = Simulator()
    cluster = build_cluster(sim, ClusterSpec(nodes=n_nodes, gpus_per_node=0))
    return sim, MpiJob(cluster, list(range(n_nodes)))


# ---------------------------------------------------------------------------
# Correctness: data, ordering, overlapping offsets
# ---------------------------------------------------------------------------

def test_coalesced_puts_land_in_order():
    """Buffered puts apply in program order at the flush — including
    overlapping offsets, where the later put wins."""
    sim, job = make_job(2)
    win = Window.allocate(job.comm, 8, coalesce=True)

    def prog(ctx):
        w = win.ctx(ctx.rank)
        yield from w.fence()
        if ctx.rank == 0:
            yield from w.put(1, np.full(4, 1.0), offset=0)
            yield from w.put(1, np.full(4, 2.0), offset=4)
            # Overlaps both earlier puts: program order must win.
            yield from w.put(1, np.full(4, 3.0), offset=2)
        yield from w.fence()

    job.start(prog)
    job.run()
    assert list(win.region(1)) == [1.0, 1.0, 3.0, 3.0, 3.0, 3.0, 2.0, 2.0]


def test_coalesced_counter_and_one_wire_flush():
    """Every deferred put ticks ``rma_coalesced_puts``; the batch rides
    a single coalesced flush, not one transfer per put."""
    sim, job = make_job(2)
    win = Window.allocate(job.comm, 16, coalesce=True)

    def prog(ctx):
        w = win.ctx(ctx.rank)
        yield from w.fence()
        if ctx.rank == 0:
            for i in range(8):
                yield from w.put(1, np.full(2, float(i)), offset=2 * i)
        yield from w.fence()

    job.start(prog)
    job.run()
    assert sim.stats.rma_coalesced_puts == 8
    assert job.comm.stats["rma_put[coalesced]"] == 8
    assert job.comm.stats["rma_put[coalesced_flush]"] == 1
    assert list(win.region(1)) == [float(i) for i in range(8) for _ in (0, 1)]


def test_get_flushes_pending_batch():
    """A get to the same target forces the buffered batch onto the wire
    (puts can't linger behind a conflicting read — same put/get wire
    ordering as an uncoalesced window), and the batch lands by the
    closing fence as usual."""
    sim, job = make_job(2)
    win = Window.allocate(job.comm, 4, coalesce=True)

    def prog(ctx):
        w = win.ctx(ctx.rank)
        yield from w.fence()
        if ctx.rank == 0:
            yield from w.put(1, np.full(4, 7.0))
            assert win._pending_puts[0]  # buffered, not yet on the wire
            got = np.zeros(4)
            yield from w.get(1, got)
            assert not win._pending_puts[0]  # the get flushed it
        yield from w.fence()

    job.start(prog)
    job.run()
    assert job.comm.stats["rma_put[coalesced_flush]"] == 1
    assert list(win.region(1)) == [7.0] * 4


def test_accumulate_flushes_pending_batch():
    """An accumulate to the same target is a conflicting operation: the
    batch lands first, then the accumulate applies on top."""
    sim, job = make_job(2)
    win = Window.allocate(job.comm, 2, coalesce=True)

    def prog(ctx):
        w = win.ctx(ctx.rank)
        yield from w.fence()
        if ctx.rank == 0:
            yield from w.put(1, np.full(2, 10.0))
            yield from w.accumulate(1, np.ones(2), op="sum")
        yield from w.fence()

    job.start(prog)
    job.run()
    assert list(win.region(1)) == [11.0, 11.0]


def test_batch_overflow_flushes_eagerly():
    """Once the buffered total outgrows the eager threshold the batch
    goes on the wire immediately — no unbounded buffering."""
    sim, job = make_job(2)
    win = Window.allocate(job.comm, 4096, coalesce=True)
    eager_elems = win._eager_max // 8  # float64

    def prog(ctx):
        w = win.ctx(ctx.rank)
        yield from w.fence()
        if ctx.rank == 0:
            half = eager_elems // 2 + 1
            yield from w.put(1, np.full(half, 1.0), offset=0)
            yield from w.put(1, np.full(half, 2.0), offset=half)
            # Two half-threshold puts overflow the batch: it must have
            # flushed itself without any completion call.
            assert not win._pending_puts[0]
        yield from w.fence()

    job.start(prog)
    job.run()
    assert win.region(1)[0] == 1.0
    assert win.region(1)[eager_elems // 2 + 1] == 2.0


def test_large_put_bypasses_coalescing():
    """A put above the eager threshold never enters the batch — it goes
    straight to the rendezvous wire path."""
    sim, job = make_job(2)
    big = win_elems = 4096  # 32 KB of float64 > 8 KB eager default
    win = Window.allocate(job.comm, win_elems, coalesce=True)

    def prog(ctx):
        w = win.ctx(ctx.rank)
        yield from w.fence()
        if ctx.rank == 0:
            yield from w.put(1, np.full(big, 5.0))
            assert not win._pending_puts[0]
        yield from w.fence()

    job.start(prog)
    job.run()
    assert sim.stats.rma_coalesced_puts == 0
    assert list(win.region(1)) == [5.0] * big


# ---------------------------------------------------------------------------
# Lifecycle and defaults
# ---------------------------------------------------------------------------

def test_free_with_buffered_puts_raises():
    """Freeing a window that still holds un-flushed coalesced puts is a
    synchronization bug the window reports instead of dropping data."""
    sim, job = make_job(2)
    win = Window.allocate(job.comm, 2, coalesce=True)

    def prog(ctx):
        w = win.ctx(ctx.rank)
        yield from w.fence()
        if ctx.rank == 0:
            yield from w.put(1, np.ones(2))
        # No closing completion point: rank 0's batch is still buffered.

    job.start(prog)
    job.run()
    with pytest.raises(RmaError, match="coalesced puts"):
        win.free()
    # A fence-equivalent flush makes the free legal again.
    list(win.flush_ops(0))
    win.free()


def test_coalesce_off_is_byte_stable():
    """The default (coalesce=False) window never defers: same data,
    same simulated time as before the feature existed, counter dark."""
    def run(coalesce):
        sim, job = make_job(2)
        win = Window.allocate(job.comm, 8, coalesce=coalesce)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                for i in range(4):
                    yield from w.put(1, np.full(2, float(i)), offset=2 * i)
            yield from w.fence()

        job.start(prog)
        job.run()
        return sim, win

    sim_off, win_off = run(False)
    assert sim_off.stats.rma_coalesced_puts == 0
    sim_on, win_on = run(True)
    np.testing.assert_array_equal(win_off.region(1), win_on.region(1))
    # Coalescing four tiny puts onto one wire transfer must be faster.
    assert sim_on.now < sim_off.now
