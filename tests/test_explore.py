"""Tests for the schedule-exploration simulator (repro.sim.explore)."""

import pytest

from repro.sim import (
    DeadlockError,
    ExploringSimulator,
    LivelockError,
    Simulator,
)
from repro.sim.resources import Mutex


def _three_way_race(sim):
    """Three processes append at the same simulated instants — every
    same-time tie is a genuine scheduling choice."""
    order = []

    def worker(tag):
        for step in range(3):
            yield sim.timeout(1.0)
            order.append((tag, step))

    for tag in "abc":
        sim.process(worker(tag), name=f"worker.{tag}")
    return order


def test_same_seed_identical_schedule():
    runs = []
    for _ in range(2):
        sim = ExploringSimulator(seed=42)
        order = _three_way_race(sim)
        sim.run()
        runs.append((order, sim.now, sim.trace_signature(), sim.decisions))
    assert runs[0] == runs[1]
    assert runs[0][3] > 0  # the race really exercised the tie-break


def test_different_seeds_distinct_interleavings():
    orders = set()
    for seed in range(8):
        sim = ExploringSimulator(seed=seed)
        order = _three_way_race(sim)
        sim.run()
        orders.add(tuple(order))
    # 8 seeds over a 3-way x 3-step race: several distinct legal orders.
    assert len(orders) >= 2


def test_exploration_preserves_causality():
    """Random tie-break only permutes same-instant events: a later
    timeout can never run before an earlier one."""
    for seed in range(5):
        sim = ExploringSimulator(seed=seed)
        times = []

        def proc(delay):
            yield sim.timeout(delay)
            times.append(sim.now)

        for d in (3.0, 1.0, 2.0):
            sim.process(proc(d))
        sim.run()
        assert times == sorted(times)


def test_fifo_default_unchanged():
    """The base Simulator keeps strict FIFO tie-break — exploration is
    opt-in, timing runs stay byte-stable."""
    def run(sim):
        order = []

        def worker(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(worker(tag))
        sim.run()
        return order

    assert run(Simulator()) == ["a", "b", "c"]


def test_trace_records_ready_sets():
    sim = ExploringSimulator(seed=7)
    _three_way_race(sim)
    sim.run()
    assert sim.schedule_trace, "3-way race must hit at least one tie"
    for choice in sim.schedule_trace:
        assert len(choice.ready) >= 2
        assert 0 <= choice.picked < len(choice.ready)
    assert len(sim.trace_signature()) == len(sim.schedule_trace)


def test_trace_capture_bounded():
    sim = ExploringSimulator(seed=0, max_trace=2)
    _three_way_race(sim)
    sim.run()
    assert len(sim.schedule_trace) <= 2
    assert sim.decisions >= len(sim.schedule_trace)


def test_deadlock_includes_waits_for_chain():
    sim = ExploringSimulator(seed=0)

    def stuck():
        yield sim.event(name="never")

    sim.process(stuck(), name="stuck")
    with pytest.raises(DeadlockError) as exc_info:
        sim.run()
    err = exc_info.value
    assert err.chains == [["stuck", "never"]]
    assert "waits-for" in str(err)
    assert "stuck -> never" in str(err)


def test_deadlock_chain_follows_process_links():
    sim = Simulator()

    def leaf():
        yield sim.event(name="leaf.block")

    def waiter(p):
        yield p

    lp = sim.process(leaf(), name="leaf")
    sim.process(waiter(lp), name="waiter")
    with pytest.raises(DeadlockError) as exc_info:
        sim.run()
    chains = exc_info.value.chains
    assert ["waiter", "leaf", "leaf.block"] in chains


def test_livelock_detector_fires_on_spin():
    sim = ExploringSimulator(seed=0, livelock_window=100)

    def spinner():
        while True:
            yield sim.timeout(0.0)

    sim.process(spinner(), name="spin")
    with pytest.raises(LivelockError) as exc_info:
        sim.run()
    err = exc_info.value
    assert err.window == 100
    assert "spin" in err.spinning
    assert sim.steps < 1000  # fired promptly, not after the heap grew


def test_livelock_window_tolerates_bursts():
    """A finite same-instant burst below the window must NOT trip the
    detector (wide barriers are legal)."""
    sim = ExploringSimulator(seed=0, livelock_window=100)

    def burst():
        for _ in range(50):
            yield sim.timeout(0.0)
        yield sim.timeout(1.0)

    sim.process(burst(), name="burst")
    sim.run()
    assert sim.now == pytest.approx(1.0)


def test_exploration_with_mutex_stays_legal():
    """Mutual exclusion holds under every explored schedule."""
    for seed in range(6):
        sim = ExploringSimulator(seed=seed)
        lock = Mutex(sim, name="m")
        inside = [0]
        peak = [0]

        def worker():
            for _ in range(2):
                yield lock.request()
                inside[0] += 1
                peak[0] = max(peak[0], inside[0])
                yield sim.timeout(0.0)
                inside[0] -= 1
                lock.release()

        for i in range(3):
            sim.process(worker(), name=f"w{i}")
        sim.run()
        assert peak[0] == 1


def test_replay_after_failure_reproduces_schedule():
    """The property the sweep runner's replay depends on: re-running a
    failing seed follows the identical decision sequence."""
    def build(sim):
        lock = Mutex(sim, name="m")

        def a():
            yield lock.request()
            yield sim.timeout(1.0)
            lock.release()

        def b():
            yield lock.request()
            lock.release()

        sim.process(a(), name="a")
        sim.process(b(), name="b")

    sigs = []
    for _ in range(2):
        sim = ExploringSimulator(seed=3)
        build(sim)
        sim.run()
        sigs.append(sim.trace_signature())
    assert sigs[0] == sigs[1]
