"""DeviceAllocator edge cases: capacity enforcement before host
allocation, peak/used accounting, and free/double-free semantics."""

import numpy as np
import pytest

from repro.gpusim.errors import GpuOutOfMemory, InvalidMemorySpace
from repro.gpusim.memory import DeviceAllocator

MB = 1024 * 1024


def make_alloc(capacity=16 * MB):
    return DeviceAllocator(capacity, label="test-gpu")


class TestCapacity:
    def test_huge_request_raises_without_host_allocation(self):
        """A simulated 1 TB request must raise GpuOutOfMemory — the seed
        bug called np.zeros first and died with a host MemoryError."""
        alloc = make_alloc()
        with pytest.raises(GpuOutOfMemory):
            alloc.allocate(10 ** 12, np.uint8, node_id=0, device_id=0)
        assert alloc.used == 0
        assert alloc.alloc_count == 0

    def test_huge_multi_dim_request_raises(self):
        alloc = make_alloc()
        with pytest.raises(GpuOutOfMemory):
            alloc.allocate((1 << 20, 1 << 20), np.float64, 0, 0)
        assert alloc.used == 0

    def test_allocator_still_usable_after_oom(self):
        alloc = make_alloc()
        with pytest.raises(GpuOutOfMemory):
            alloc.allocate(10 ** 12, np.uint8, 0, 0)
        buf = alloc.allocate(1024, np.uint8, 0, 0)
        assert buf.nbytes == 1024
        assert alloc.used == 1024

    def test_exact_fit_succeeds_one_byte_over_raises(self):
        alloc = make_alloc(capacity=4096)
        buf = alloc.allocate(4096, np.uint8, 0, 0)
        assert alloc.free_bytes == 0
        with pytest.raises(GpuOutOfMemory):
            alloc.allocate(1, np.uint8, 0, 0)
        buf.free()
        assert alloc.free_bytes == 4096

    def test_dtype_itemsize_accounted(self):
        alloc = make_alloc(capacity=1024)
        with pytest.raises(GpuOutOfMemory):
            alloc.allocate(256, np.float64, 0, 0)  # 2048 B
        buf = alloc.allocate(128, np.float64, 0, 0)  # 1024 B
        assert buf.nbytes == 1024

    def test_negative_dimension_rejected(self):
        alloc = make_alloc()
        with pytest.raises(ValueError, match="negative dimension"):
            alloc.allocate((-1, 4), np.uint8, 0, 0)
        assert alloc.used == 0

    def test_non_integer_dimension_rejected_not_truncated(self):
        """np.zeros rejected float shapes; the pre-check must too, not
        silently truncate 2.5 -> 2."""
        alloc = make_alloc()
        with pytest.raises(TypeError):
            alloc.allocate((2.5, 4), np.uint8, 0, 0)
        with pytest.raises(TypeError):
            alloc.allocate(2.5, np.uint8, 0, 0)
        assert alloc.used == 0


class TestAccounting:
    def test_peak_tracks_high_watermark(self):
        alloc = make_alloc()
        a = alloc.allocate(4 * MB, np.uint8, 0, 0)
        b = alloc.allocate(8 * MB, np.uint8, 0, 0)
        assert alloc.peak == 12 * MB
        a.free()
        assert alloc.used == 8 * MB
        assert alloc.peak == 12 * MB  # peak never decreases
        c = alloc.allocate(2 * MB, np.uint8, 0, 0)
        assert alloc.peak == 12 * MB
        b.free()
        c.free()
        assert alloc.used == 0

    def test_free_then_reallocate_cycles(self):
        alloc = make_alloc(capacity=1 * MB)
        for _ in range(5):
            buf = alloc.allocate(1 * MB, np.uint8, 0, 0)
            buf.free()
        assert alloc.used == 0
        assert alloc.alloc_count == 5


class TestFreeSemantics:
    def test_double_free_raises(self):
        alloc = make_alloc()
        buf = alloc.allocate(1024, np.uint8, 0, 0)
        buf.free()
        with pytest.raises(InvalidMemorySpace, match="double free"):
            buf.free()
        assert alloc.used == 0  # bytes returned exactly once

    def test_use_after_free_guard(self):
        alloc = make_alloc()
        buf = alloc.allocate(1024, np.uint8, 0, 0)
        buf.free()
        with pytest.raises(InvalidMemorySpace, match="use after free"):
            buf.bytes_view()
