"""Tests for the multi-slot latency behaviour (paper §4, §3.1)."""

import pytest

from repro.apps.micro import dcgn_multislot_latency


class TestMultiSlotLatency:
    def test_per_message_latency_amortizes_with_slots(self):
        """One mailbox harvest services every slot's posted request, so
        per-message cost drops as slots rise (the paper's latency test)."""
        t1 = dcgn_multislot_latency(slots=1)["per_msg"]
        t4 = dcgn_multislot_latency(slots=4)["per_msg"]
        t8 = dcgn_multislot_latency(slots=8)["per_msg"]
        assert t4 < 0.7 * t1
        assert t8 <= t4 * 1.05

    def test_all_messages_arrive(self):
        marks = dcgn_multislot_latency(slots=3, msgs_per_slot=5)
        assert marks["elapsed"] > 0
        # per_msg * total == elapsed by construction.
        assert marks["per_msg"] == pytest.approx(marks["elapsed"] / 15)

    def test_payload_size_increases_latency(self):
        t_small = dcgn_multislot_latency(slots=2, nbytes=0)["per_msg"]
        t_big = dcgn_multislot_latency(slots=2, nbytes=256 * 1024)["per_msg"]
        assert t_big > t_small
