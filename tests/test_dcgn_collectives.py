"""DCGN collective tests: barrier, broadcast, reduce, gather, scatter."""

import numpy as np
import pytest

from repro.dcgn import (
    CollectiveMismatch,
    DcgnConfig,
    DcgnRuntime,
    NodeConfig,
)
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator, us


def make_runtime(n_nodes=2, cpu_threads=1, gpus=0, slots=1):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    cfg = DcgnConfig.homogeneous(
        n_nodes, cpu_threads=cpu_threads, gpus=gpus, slots_per_gpu=slots
    )
    return sim, DcgnRuntime(cluster, cfg)


class TestBarrier:
    def test_cpu_barrier_synchronizes(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        after = {}

        def kernel(ctx):
            yield ctx.sim.timeout(us(100.0) * ctx.rank)
            yield from ctx.barrier()
            after[ctx.rank] = ctx.sim.now

        rt.launch_cpu(kernel)
        rt.run()
        # Nobody exits before the last arrival (rank 3 at 300 µs).
        assert all(t >= us(300.0) for t in after.values())

    def test_mixed_cpu_gpu_barrier(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=1, gpus=1, slots=1)
        after = {}

        def cpu_kernel(ctx):
            yield from ctx.barrier()
            after[f"cpu{ctx.rank}"] = ctx.sim.now

        def gpu_kernel(ctx):
            yield from ctx.comm.barrier(0)
            after[f"gpu{ctx.comm.rank(0)}"] = ctx.sim.now

        rt.launch_cpu(cpu_kernel)
        rt.launch_gpu(gpu_kernel)
        rt.run()
        assert len(after) == 4

    def test_repeated_barriers(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        counts = {}

        def kernel(ctx):
            for i in range(5):
                yield from ctx.barrier()
            counts[ctx.rank] = 5

        rt.launch_cpu(kernel)
        rt.run()
        assert len(counts) == 4


class TestBroadcast:
    def test_cpu_broadcast_from_rank0(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        result = {}

        def kernel(ctx):
            buf = np.zeros(8, dtype=np.float64)
            if ctx.rank == 0:
                buf[:] = np.arange(8) * 1.5
            yield from ctx.broadcast(0, buf)
            result[ctx.rank] = buf.copy()

        rt.launch_cpu(kernel)
        rt.run()
        expected = np.arange(8) * 1.5
        for r in range(4):
            assert np.allclose(result[r], expected)

    def test_broadcast_nonzero_root(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        result = {}

        def kernel(ctx):
            buf = np.zeros(4, dtype=np.int64)
            if ctx.rank == 3:
                buf[:] = [9, 8, 7, 6]
            yield from ctx.broadcast(3, buf)
            result[ctx.rank] = buf.copy()

        rt.launch_cpu(kernel)
        rt.run()
        for r in range(4):
            assert np.array_equal(result[r], [9, 8, 7, 6])

    def test_gpu_broadcast_gpu_root(self):
        """Broadcast sourced from a GPU slot to CPUs and GPUs."""
        sim, rt = make_runtime(n_nodes=2, cpu_threads=1, gpus=1, slots=1)
        # Ranks: 0=cpu@n0, 1=gpu@n0, 2=cpu@n1, 3=gpu@n1. Root = 1 (GPU).
        result = {}

        def cpu_kernel(ctx):
            buf = np.zeros(4, dtype=np.float32)
            yield from ctx.broadcast(1, buf)
            result[f"cpu{ctx.rank}"] = buf.copy()

        def gpu_kernel(ctx):
            comm = ctx.comm
            dbuf = ctx.device.alloc(4, dtype=np.float32)
            if comm.rank(0) == 1:
                dbuf.data[:] = [1, 2, 3, 4]
            yield from comm.broadcast(0, 1, dbuf)
            result[f"gpu{comm.rank(0)}"] = dbuf.data.copy()

        rt.launch_cpu(cpu_kernel)
        rt.launch_gpu(gpu_kernel)
        rt.run()
        for key in ("cpu0", "cpu2", "gpu1", "gpu3"):
            assert np.allclose(result[key], [1, 2, 3, 4]), key


class TestReduce:
    def test_allreduce_sum_cpu(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        result = {}

        def kernel(ctx):
            send = np.array([float(ctx.rank + 1)])
            recv = np.zeros(1)
            yield from ctx.allreduce(send, recv, op="sum")
            result[ctx.rank] = float(recv[0])

        rt.launch_cpu(kernel)
        rt.run()
        assert all(v == pytest.approx(10.0) for v in result.values())

    def test_reduce_max_to_root(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        result = {}

        def kernel(ctx):
            send = np.array([float(ctx.rank * ctx.rank)])
            recv = np.zeros(1) if ctx.rank == 2 else None
            yield from ctx.reduce(2, send, recv, op="max")
            if ctx.rank == 2:
                result["v"] = float(recv[0])

        rt.launch_cpu(kernel)
        rt.run()
        assert result["v"] == pytest.approx(9.0)

    def test_gpu_allreduce(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=0, gpus=2, slots=1)
        # 4 GPU ranks: 0,1 on node 0; 2,3 on node 1.
        result = {}

        def gpu_kernel(ctx):
            comm = ctx.comm
            me = comm.rank(0)
            dbuf = ctx.device.alloc(2, dtype=np.float64)
            dbuf.data[:] = [me, 2 * me]
            yield from comm.allreduce(0, dbuf, op="sum")
            result[me] = dbuf.data.copy()

        rt.launch_gpu(gpu_kernel)
        rt.run()
        # sum over ranks: [0+1+2+3, 0+2+4+6] = [6, 12]
        for me in range(4):
            assert np.allclose(result[me], [6.0, 12.0])


class TestGatherScatter:
    def test_gather_to_cpu_root(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        result = {}

        def kernel(ctx):
            send = np.array([ctx.rank * 2.0, ctx.rank * 2.0 + 1])
            if ctx.rank == 0:
                recv = np.zeros(8)
                yield from ctx.gather(0, send, recv)
                result["all"] = recv.copy()
            else:
                yield from ctx.gather(0, send)

        rt.launch_cpu(kernel)
        rt.run()
        assert np.allclose(result["all"], [0, 1, 2, 3, 4, 5, 6, 7])

    def test_scatter_from_cpu_root(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
        result = {}

        def kernel(ctx):
            recv = np.zeros(2)
            if ctx.rank == 0:
                send = np.arange(8, dtype=np.float64) * 10
                yield from ctx.scatter(0, recv, send)
            else:
                yield from ctx.scatter(0, recv)
            result[ctx.rank] = recv.copy()

        rt.launch_cpu(kernel)
        rt.run()
        for r in range(4):
            assert np.allclose(result[r], [20 * r, 20 * r + 10])


class TestCollectiveErrors:
    def test_kind_mismatch_detected(self):
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2)

        def kernel(ctx):
            if ctx.rank == 0:
                yield from ctx.barrier()
            else:
                buf = np.zeros(1)
                yield from ctx.broadcast(1, buf)

        rt.launch_cpu(kernel)
        with pytest.raises(CollectiveMismatch):
            rt.run(max_time=1.0)

    def test_root_mismatch_detected(self):
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2)

        def kernel(ctx):
            buf = np.zeros(1)
            yield from ctx.broadcast(ctx.rank, buf)  # different roots!

        rt.launch_cpu(kernel)
        with pytest.raises(CollectiveMismatch):
            rt.run(max_time=1.0)
