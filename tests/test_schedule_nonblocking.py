"""Schedule engine + nonblocking collectives: correctness, timing
parity with the blocking path, overlap, and the new large-message
schedules (pipelined bcast, Rabenseifner reduce, Bruck alltoall)."""

import numpy as np
import pytest

from repro.hw import build_cluster, paper_cluster
from repro.mpi import (
    CollectiveTuning,
    MpiError,
    MpiJob,
    ReduceOp,
    block_placement,
)
from repro.mpi.algorithms.schedule import Schedule
from repro.sim import Simulator

KB = 1024
MB = 1024 * 1024


def make_job(n_ranks, n_nodes=None, tuning=None):
    sim = Simulator()
    n_nodes = n_nodes if n_nodes is not None else n_ranks
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes, gpus_per_node=0))
    return sim, MpiJob(cluster, block_placement(n_ranks, n_nodes), tuning=tuning)


# ---------------------------------------------------------------------------
# Schedule IR basics
# ---------------------------------------------------------------------------

class TestScheduleIR:
    def test_dependencies_must_exist(self):
        sched = Schedule()
        with pytest.raises(MpiError, match="unknown step"):
            sched.compute(lambda: None, after=(3,))

    def test_rounds_and_describe(self):
        sched = Schedule()
        a = sched.send(None, 1, 5, round=0)
        b = sched.recv(None, 1, 5, round=0)
        sched.compute(lambda: None, after=(a, b), round=1)
        assert sched.n_rounds == 2
        text = sched.describe()
        assert "round 0" in text and "round 1" in text

    def test_lazy_buffers_resolve_at_step_start(self):
        """A send whose payload is a callable reads the state left by
        the compute step it depends on, not build-time state."""
        sim, job = make_job(2)
        out = {}

        def prog(ctx):
            from repro.mpi.algorithms.base import next_tag

            tag = next_tag(ctx)
            sched = Schedule()
            if ctx.rank == 0:
                state = {"payload": np.zeros(8, dtype=np.int64)}
                c = sched.compute(
                    lambda: state.__setitem__(
                        "payload", np.arange(8, dtype=np.int64)
                    )
                )
                sched.send(lambda: state["payload"], 1, tag, after=(c,))
            else:
                buf = np.zeros(8, dtype=np.int64)
                r = sched.recv(buf, 0, tag)
                sched.compute(
                    lambda: out.__setitem__("got", buf.copy()),
                    after=(r,),
                )
            yield from ctx.comm.engine.execute(ctx, sched)

        job.start(prog)
        job.run()
        assert np.array_equal(out["got"], np.arange(8))


# ---------------------------------------------------------------------------
# Blocking == nonblocking (immediately waited) timing parity
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_ranks", [4, 6, 8])
def test_iallreduce_waited_matches_blocking_time(n_ranks):
    results = {}
    for mode in ("blocking", "nonblocking"):
        sim, job = make_job(n_ranks)

        def prog(ctx, mode=mode):
            send = np.full(64 * KB, ctx.rank + 1, dtype=np.int32)
            recv = np.zeros(64 * KB, dtype=np.int32)
            if mode == "blocking":
                yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
            else:
                req = ctx.iallreduce(send, recv, op=ReduceOp.SUM)
                yield from req.wait()
            return recv[0]

        job.start(prog)
        vals = job.run()
        results[mode] = (sim.now, vals)
    assert results["blocking"][0] == results["nonblocking"][0]
    expected = sum(range(1, n_ranks + 1))
    assert all(v == expected for v in results["nonblocking"][1])


@pytest.mark.parametrize("coll", ["ibarrier", "ibcast", "iallgather",
                                  "ialltoall", "ireduce"])
@pytest.mark.parametrize("n_ranks", [5, 6])
def test_nonblocking_collectives_non_pof2(coll, n_ranks):
    """Every nonblocking collective completes with correct data on
    non-power-of-two communicators."""
    sim, job = make_job(n_ranks)
    out = {}

    def prog(ctx):
        if coll == "ibarrier":
            req = ctx.ibarrier()
            yield from req.wait()
            out[ctx.rank] = True
        elif coll == "ibcast":
            buf = (
                np.arange(1000, dtype=np.int64)
                if ctx.rank == 2
                else np.zeros(1000, dtype=np.int64)
            )
            req = ctx.ibcast(buf, root=2)
            yield from req.wait()
            out[ctx.rank] = buf.copy()
        elif coll == "iallgather":
            send = np.full(7, ctx.rank, dtype=np.int32)
            recvs = [np.zeros(7, dtype=np.int32) for _ in range(ctx.size)]
            req = ctx.iallgather(send, recvs)
            yield from req.wait()
            out[ctx.rank] = [r[0] for r in recvs]
        elif coll == "ialltoall":
            sends = [
                np.full(5, ctx.rank * 100 + d, dtype=np.int32)
                for d in range(ctx.size)
            ]
            recvs = [np.zeros(5, dtype=np.int32) for _ in range(ctx.size)]
            req = ctx.ialltoall(sends, recvs)
            yield from req.wait()
            out[ctx.rank] = [r[0] for r in recvs]
        elif coll == "ireduce":
            send = np.full(33, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(33, dtype=np.int64) if ctx.rank == 1 else None
            req = ctx.ireduce(send, recv, op=ReduceOp.SUM, root=1)
            yield from req.wait()
            if ctx.rank == 1:
                out[ctx.rank] = recv.copy()

    job.start(prog)
    job.run()
    if coll == "ibarrier":
        assert all(out.values())
    elif coll == "ibcast":
        for r in range(n_ranks):
            assert np.array_equal(out[r], np.arange(1000))
    elif coll == "iallgather":
        for r in range(n_ranks):
            assert out[r] == list(range(n_ranks))
    elif coll == "ialltoall":
        for r in range(n_ranks):
            assert out[r] == [s * 100 + r for s in range(n_ranks)]
    elif coll == "ireduce":
        assert np.array_equal(
            out[1], np.full(33, sum(range(1, n_ranks + 1)))
        )


def test_iallreduce_overlaps_compute():
    """An iallreduce issued before a long compute must cost ≈max(comm,
    compute), not their sum — the point of the progress engine."""
    compute_s = 5e-3

    def timed(overlapped):
        sim, job = make_job(8)

        def prog(ctx):
            send = np.zeros(2 * MB, dtype=np.uint8)
            recv = np.zeros(2 * MB, dtype=np.uint8)
            if overlapped:
                req = ctx.iallreduce(send, recv, op=ReduceOp.MAX)
                yield ctx.sim.timeout(compute_s)
                yield from req.wait()
            else:
                yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)
                yield ctx.sim.timeout(compute_s)

        job.start(prog)
        job.run()
        return sim.now

    t_seq = timed(False)
    t_ovl = timed(True)
    comm_s = t_seq - compute_s
    assert t_ovl < t_seq - 0.5 * min(comm_s, compute_s)


def test_two_nonblocking_collectives_in_flight():
    """Two collectives issued back-to-back progress concurrently and
    stay correctly matched (tags claimed in issue order)."""
    sim, job = make_job(6)
    out = {}

    def prog(ctx):
        b1 = np.full(256, ctx.rank, dtype=np.int32)
        recvs = [np.zeros(256, dtype=np.int32) for _ in range(ctx.size)]
        r1 = ctx.iallgather(b1, recvs)
        r2 = ctx.ibarrier()
        yield from r1.wait()
        yield from r2.wait()
        out[ctx.rank] = [r[0] for r in recvs]

    job.start(prog)
    job.run()
    for r in range(6):
        assert out[r] == list(range(6))


# ---------------------------------------------------------------------------
# New large-message schedules
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_ranks,root", [(4, 0), (5, 2), (8, 7), (9, 1)])
def test_pipelined_bcast_correct(n_ranks, root):
    sim, job = make_job(n_ranks,
                        tuning=CollectiveTuning(force_bcast="pipelined"))
    out = {}

    def prog(ctx):
        buf = (
            np.arange(300_000, dtype=np.uint8).astype(np.uint8)
            if ctx.rank == root
            else np.zeros(300_000, dtype=np.uint8)
        )
        yield from ctx.bcast(buf, root=root)
        out[ctx.rank] = buf

    job.start(prog)
    job.run()
    ref = np.arange(300_000, dtype=np.uint8).astype(np.uint8)
    for r in range(n_ranks):
        assert np.array_equal(out[r], ref)


def test_pipelined_bcast_beats_binomial_large():
    def timed(force):
        sim, job = make_job(16, tuning=CollectiveTuning(force_bcast=force))

        def prog(ctx):
            buf = np.zeros(4 * MB, dtype=np.uint8)
            yield from ctx.bcast(buf, root=0)

        job.start(prog)
        job.run()
        return sim.now

    assert timed("pipelined") < timed("binomial") / 1.5


@pytest.mark.parametrize("n_ranks,root,count", [
    (4, 0, 4096), (8, 3, 1000), (16, 15, 3), (4, 1, 0),
    # Non-powers of two: the excess ranks fold in first.
    (3, 0, 100), (6, 5, 1000), (7, 2, 4096), (12, 0, 17),
])
def test_rabenseifner_reduce_correct(n_ranks, root, count):
    sim, job = make_job(
        n_ranks, tuning=CollectiveTuning(force_reduce="rabenseifner")
    )
    out = {}

    def prog(ctx):
        send = np.full(count, ctx.rank + 1, dtype=np.int64)
        recv = np.zeros(count, dtype=np.int64) if ctx.rank == root else None
        yield from ctx.reduce(send, recv, op=ReduceOp.SUM, root=root)
        if ctx.rank == root:
            out["result"] = recv

    job.start(prog)
    job.run()
    assert np.array_equal(
        out["result"], np.full(count, sum(range(1, n_ranks + 1)))
    )


def test_rabenseifner_non_pof2_matches_binomial_result():
    """Non-power-of-two Rabenseifner (fold-in round) agrees with the
    binomial tree bit for bit on integer payloads."""

    def run(force):
        sim, job = make_job(6, tuning=CollectiveTuning(force_reduce=force))
        out = {}

        def prog(ctx):
            send = np.arange(64, dtype=np.int64) * (ctx.rank + 1)
            recv = np.zeros(64, dtype=np.int64) if ctx.rank == 0 else None
            yield from ctx.reduce(send, recv, op=ReduceOp.SUM, root=0)
            if ctx.rank == 0:
                out["result"] = recv

        job.start(prog)
        job.run()
        return out["result"]

    assert np.array_equal(run("rabenseifner"), run("binomial"))


def test_rabenseifner_beats_binomial_large():
    def timed(force):
        sim, job = make_job(16, tuning=CollectiveTuning(force_reduce=force))

        def prog(ctx):
            send = np.zeros(4 * MB, dtype=np.uint8)
            recv = np.zeros(4 * MB, dtype=np.uint8) if ctx.rank == 0 else None
            yield from ctx.reduce(send, recv, op=ReduceOp.MAX, root=0)

        job.start(prog)
        job.run()
        return sim.now

    assert timed("rabenseifner") < timed("binomial") / 1.5


@pytest.mark.parametrize("n_ranks", [3, 4, 6, 8, 12])
def test_bruck_alltoall_correct(n_ranks):
    sim, job = make_job(
        n_ranks, tuning=CollectiveTuning(force_alltoall="bruck")
    )
    out = {}

    def prog(ctx):
        sends = [
            np.full(16, ctx.rank * 1000 + d, dtype=np.int32)
            for d in range(ctx.size)
        ]
        recvs = [np.zeros(16, dtype=np.int32) for _ in range(ctx.size)]
        yield from ctx.alltoall(sends, recvs)
        out[ctx.rank] = [int(r[0]) for r in recvs]

    job.start(prog)
    job.run()
    for r in range(n_ranks):
        assert out[r] == [s * 1000 + r for s in range(n_ranks)]


def test_bruck_alltoall_beats_linear_small_blocks():
    def timed(tuning):
        sim, job = make_job(12, tuning=tuning)

        def prog(ctx):
            sends = [np.zeros(64, dtype=np.uint8) for _ in range(ctx.size)]
            recvs = [np.zeros(64, dtype=np.uint8) for _ in range(ctx.size)]
            yield from ctx.alltoall(sends, recvs)

        job.start(prog)
        job.run()
        return sim.now

    t_bruck = timed(CollectiveTuning(force_alltoall="bruck"))
    t_shift = timed(CollectiveTuning(force_alltoall="shift"))
    assert t_bruck < t_shift


def test_selector_new_menus():
    from repro.mpi.algorithms import AlgorithmSelector

    sel = AlgorithmSelector(CollectiveTuning(
        alltoall_bruck_max_bytes=512,
        bcast_pipeline_min_bytes=1 * MB,
        reduce_raben_min_bytes=64 * KB,
    ))
    assert sel.alltoall(256, 12) == "bruck"
    assert sel.alltoall(4 * KB, 12) == "shift"
    assert sel.bcast(4 * MB, 16) == "pipelined"
    assert sel.bcast(4 * KB, 16) == "binomial"
    assert sel.reduce(1 * MB, 16) == "rabenseifner"
    assert sel.reduce(1 * MB, 12) == "rabenseifner"  # any-P since PR 4
    assert sel.reduce(1 * KB, 16) == "binomial"
    with pytest.raises(MpiError, match="unknown reduce algorithm"):
        AlgorithmSelector(CollectiveTuning(force_reduce="nope")).reduce(1, 4)
