"""Integration tests for the paper's applications (§4) at small scale.

Correctness is checked against sequential references inside each app;
these tests also pin qualitative performance relationships.
"""

import numpy as np
import pytest

from repro.apps import cannon, efficiency, mandelbrot, nbody, pingpong, speedup
from repro.apps.common import AppResult
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator, us


def fresh_cluster(nodes=2, gpus_per_node=2, seed=0, params=None):
    sim = Simulator()
    return build_cluster(
        sim, paper_cluster(nodes=nodes, gpus_per_node=gpus_per_node,
                           params=params, seed=seed)
    )


class TestCommon:
    def test_speedup_and_efficiency(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert efficiency(10.0, 2.0, 8) == pytest.approx(0.625)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)

    def test_app_result_rate(self):
        r = AppResult(elapsed=2.0, units=4, model="gas")
        assert r.rate(8.0) == pytest.approx(4.0)


class TestPingPong:
    def test_mpi_pingpong_integrity_and_latency(self):
        marks = pingpong.mpi_pingpong(rounds=5)
        assert marks["rtt"] > 0

    @pytest.mark.parametrize("endpoints", ["cpu-cpu", "gpu-gpu", "cpu-gpu"])
    def test_dcgn_pingpong_endpoints(self, endpoints):
        marks = pingpong.dcgn_pingpong(rounds=3, endpoints=endpoints)
        assert marks["rtt"] > 0

    def test_latency_ordering(self):
        """MPI < DCGN CPU:CPU < DCGN GPU:GPU round-trip latency."""
        t_mpi = pingpong.mpi_pingpong(rounds=5)["rtt"]
        t_cpu = pingpong.dcgn_pingpong(rounds=5, endpoints="cpu-cpu")["rtt"]
        t_gpu = pingpong.dcgn_pingpong(rounds=5, endpoints="gpu-gpu")["rtt"]
        assert t_mpi < t_cpu < t_gpu


class TestMandelbrot:
    CFG = mandelbrot.MandelbrotConfig(
        width=128, height=128, strip_height=16, max_iter=128
    )

    def test_reference_is_deterministic(self):
        a = mandelbrot.mandelbrot_reference(self.CFG)
        b = mandelbrot.mandelbrot_reference(self.CFG)
        assert np.array_equal(a, b)
        assert a.shape == (128, 128)
        # The classic region contains both interior and escaped points.
        assert a.min() == 0
        assert a.max() == self.CFG.max_iter

    def test_strip_costs_are_data_dependent(self):
        costs = mandelbrot.strip_iteration_counts(self.CFG)
        assert len(costs) == self.CFG.n_strips
        assert costs.max() > 2 * costs.min()  # real load imbalance

    def test_single_gpu_produces_reference(self):
        cluster = fresh_cluster(nodes=1, gpus_per_node=1)
        res = mandelbrot.run_single_gpu(cluster, self.CFG)
        assert res.model == "single"
        assert res.elapsed > 0

    def test_gas_correct_and_all_strips_assigned(self):
        cluster = fresh_cluster()
        res = mandelbrot.run_gas(cluster, self.CFG)
        owners = res.extras["owners"]
        assert (owners >= 1).all()  # every strip computed by some worker

    def test_dcgn_correct_and_all_strips_assigned(self):
        cluster = fresh_cluster()
        res = mandelbrot.run_dcgn(cluster, self.CFG)
        owners = res.extras["owners"]
        assert (owners >= 0).all()
        assert res.units == 4

    def test_invalid_strip_height(self):
        with pytest.raises(ValueError):
            mandelbrot.MandelbrotConfig(height=100, strip_height=33)

    def test_fig5_distribution_varies_with_seed(self):
        """Figure 5: two runs with timing jitter differ in ownership."""
        from repro.hw import HWParams

        params = HWParams(jitter_us=8.0)
        cfg = mandelbrot.MandelbrotConfig(
            width=128, height=128, strip_height=8, max_iter=128
        )
        owners = []
        for seed in (1, 2):
            cluster = fresh_cluster(seed=seed, params=params)
            res = mandelbrot.run_dcgn(cluster, cfg)
            owners.append(res.extras["owners"])
        assert not np.array_equal(owners[0], owners[1])


class TestCannon:
    CFG = cannon.CannonConfig(n=128, grid=2)

    def test_single_gpu(self):
        cluster = fresh_cluster(nodes=1, gpus_per_node=1)
        res = cannon.run_single_gpu(cluster, self.CFG)
        assert res.elapsed > 0

    def test_gas_verifies_against_numpy(self):
        cluster = fresh_cluster()
        res = cannon.run_gas(cluster, self.CFG)
        assert res.units == 4

    def test_dcgn_verifies_against_numpy(self):
        cluster = fresh_cluster()
        res = cannon.run_dcgn(cluster, self.CFG)
        assert res.units == 4

    def test_grid_must_divide_n(self):
        with pytest.raises(ValueError):
            cannon.CannonConfig(n=100, grid=3)

    def test_insufficient_gpus_rejected(self):
        cluster = fresh_cluster(nodes=1, gpus_per_node=1)
        with pytest.raises(ValueError):
            cannon.run_gas(cluster, self.CFG)

    def test_dcgn_close_to_gas(self):
        """§5.1: DCGN within ~10% of GAS for Cannon (71% vs 74% eff)."""
        cfg = cannon.CannonConfig(n=512, grid=2)
        res_gas = cannon.run_gas(fresh_cluster(), cfg)
        res_dcgn = cannon.run_dcgn(fresh_cluster(), cfg)
        ratio = res_gas.elapsed / res_dcgn.elapsed
        assert 0.70 <= ratio <= 1.01, f"GAS/DCGN time ratio {ratio:.2f}"


class TestNBody:
    CFG = nbody.NBodyConfig(n_bodies=192, steps=2)

    def test_reference_trajectory_moves_bodies(self):
        pos0, _, _ = nbody._initial_state(self.CFG)
        pos = nbody.reference_trajectory(self.CFG)
        assert not np.allclose(pos, pos0)

    def test_chunk_bounds_cover_all_bodies(self):
        total = 0
        for r in range(8):
            lo, hi = nbody._chunk_bounds(self.CFG.n_bodies, 8, r)
            total += hi - lo
        assert total == self.CFG.n_bodies

    def test_single_gpu(self):
        cluster = fresh_cluster(nodes=1, gpus_per_node=1)
        res = nbody.run_single_gpu(cluster, self.CFG)
        assert res.elapsed > 0

    def test_gas_physics_verified(self):
        cluster = fresh_cluster()
        res = nbody.run_gas(cluster, self.CFG)
        assert res.units == 4

    def test_dcgn_physics_verified(self):
        cluster = fresh_cluster()
        res = nbody.run_dcgn(cluster, self.CFG)
        assert res.units == 4

    def test_efficiency_rises_with_bodies(self):
        """§5.1 shape: more bodies → higher parallel efficiency."""
        effs = []
        for n in (512, 4096):
            cfg = nbody.NBodyConfig(n_bodies=n, steps=2, verify=False)
            single = nbody.run_single_gpu(
                fresh_cluster(nodes=1, gpus_per_node=1), cfg
            )
            par = nbody.run_gas(fresh_cluster(), cfg)
            effs.append(efficiency(single.elapsed, par.elapsed, par.units))
        assert effs[1] > effs[0]
