"""Unit tests for DCGN internals: queues, polling policies, requests."""

import pytest

from repro.dcgn import AdaptiveBurstPolicy, FixedIntervalPolicy
from repro.dcgn.polling import make_policy
from repro.dcgn.queues import WorkQueue, sleep_poll_wait
from repro.dcgn.requests import CommRequest, CommStatus
from repro.hw.params import DcgnParams
from repro.sim import Signal, Simulator, us


class TestWorkQueue:
    def test_put_charges_time(self):
        sim = Simulator()
        q = WorkQueue(sim, queue_op_us=5.0)

        def producer():
            yield from q.put("a")
            return sim.now

        p = sim.process(producer())
        sim.run()
        assert p.value == pytest.approx(us(5.0))
        assert q.puts == 1
        assert len(q) == 1

    def test_drain_takes_batch_with_one_charge(self):
        sim = Simulator()
        q = WorkQueue(sim, queue_op_us=2.0)

        def producer():
            for x in range(5):
                yield from q.put(x)

        def consumer():
            yield sim.timeout(us(100.0))
            t0 = sim.now
            items = yield from q.drain()
            return items, sim.now - t0

        sim.process(producer())
        c = sim.process(consumer())
        sim.run()
        items, dt = c.value
        assert items == [0, 1, 2, 3, 4]
        assert dt == pytest.approx(us(2.0))
        assert q.drains == 1

    def test_nowait_variants_charge_nothing(self):
        sim = Simulator()
        q = WorkQueue(sim, queue_op_us=2.0)
        q.put_nowait("x")
        assert q.drain_nowait() == ["x"]
        assert q.drain_nowait() == []
        assert sim.now == 0.0

    def test_kick_signal_fired_on_put(self):
        sim = Simulator()
        sig = Signal(sim)
        q = WorkQueue(sim, queue_op_us=1.0, kick=sig)
        woken = []

        def waiter():
            yield sig.wait()
            woken.append(sim.now)

        def producer():
            yield from q.put("x")

        sim.process(waiter())
        sim.process(producer())
        sim.run()
        assert len(woken) == 1


class TestSleepPollWait:
    def test_immediate_event_still_waits_one_tick(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")

        def waiter():
            v = yield from sleep_poll_wait(sim, ev, 10.0)
            return v, sim.now

        p = sim.process(waiter())
        sim.run()
        v, t = p.value
        assert v == "v"
        assert t == pytest.approx(us(10.0))

    def test_zero_interval_returns_at_event(self):
        sim = Simulator()
        ev = sim.event()

        def firer():
            yield sim.timeout(1.0)
            ev.succeed(7)

        def waiter():
            v = yield from sleep_poll_wait(sim, ev, 0.0)
            return v, sim.now

        sim.process(firer())
        p = sim.process(waiter())
        sim.run()
        assert p.value == (7, 1.0)


class TestPollPolicies:
    def test_fixed_interval_constant(self):
        pol = FixedIntervalPolicy(100.0)
        assert pol.next_delay_us() == 100.0
        pol.observe(True)
        pol.kicked()  # no-op on base class path
        assert pol.next_delay_us() == 100.0
        assert not pol.supports_kick

    def test_fixed_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            FixedIntervalPolicy(0.0)

    def test_adaptive_burst_on_kick(self):
        pol = AdaptiveBurstPolicy(300.0, 25.0, burst_polls=2)
        assert pol.next_delay_us() == 300.0
        pol.kicked()
        assert pol.next_delay_us() == 25.0
        pol.observe(False)
        assert pol.next_delay_us() == 25.0
        pol.observe(False)
        assert pol.next_delay_us() == 300.0  # budget exhausted

    def test_adaptive_burst_on_found_work(self):
        pol = AdaptiveBurstPolicy(300.0, 25.0, burst_polls=3)
        pol.observe(True)
        assert pol.next_delay_us() == 25.0
        pol.observe(True)  # refresh
        for _ in range(3):
            pol.observe(False)
        assert pol.next_delay_us() == 300.0

    def test_adaptive_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBurstPolicy(10.0, 25.0, 2)  # burst > interval
        with pytest.raises(ValueError):
            AdaptiveBurstPolicy(100.0, 25.0, 0)
        with pytest.raises(ValueError):
            AdaptiveBurstPolicy(-1.0, 25.0, 1)

    def test_make_policy_respects_kick_flag(self):
        import dataclasses

        on = make_policy(DcgnParams())
        assert isinstance(on, AdaptiveBurstPolicy)
        off = make_policy(
            dataclasses.replace(DcgnParams(), gpu_poll_kick=False)
        )
        assert isinstance(off, FixedIntervalPolicy)


class TestCommRequest:
    def test_complete_fires_done_and_stamps(self):
        sim = Simulator()
        req = CommRequest(op="send", src_vrank=0, peer=1)
        req.done = sim.event()
        status = CommStatus(source=1, nbytes=8)
        req.complete(status)
        assert req.done.triggered
        assert req.status == status
        assert "completed" in req.marks

    def test_stamp_first_write_wins(self):
        sim = Simulator()
        req = CommRequest(op="recv", src_vrank=0)
        req.stamp("picked", 1.0)
        req.stamp("picked", 2.0)
        assert req.marks["picked"] == 1.0

    def test_request_ids_unique(self):
        a = CommRequest(op="send", src_vrank=0)
        b = CommRequest(op="send", src_vrank=0)
        assert a.req_id != b.req_id
