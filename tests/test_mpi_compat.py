"""The §3.1 porting claim: one program, two runtimes.

These tests define programs against the *MPI* call signatures and run
them unchanged under (a) the simulated MPI and (b) DCGN through
:class:`DcgnMpiAdapter` — the paper's "few find-and-replaces" reduced to
zero.
"""

import numpy as np
import pytest

from repro.dcgn import CommViolation, DcgnConfig, DcgnRuntime
from repro.dcgn.mpi_compat import DcgnMpiAdapter
from repro.hw import build_cluster, paper_cluster
from repro.mpi import MpiJob, ReduceOp, block_placement
from repro.sim import Simulator


def run_under_mpi(program, n_ranks=4, n_nodes=2):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    job = MpiJob(cluster, block_placement(n_ranks, n_nodes))
    job.start(program)
    job.run()


def run_under_dcgn(program, n_ranks=4, n_nodes=2):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    cfg = DcgnConfig.homogeneous(n_nodes, cpu_threads=n_ranks // n_nodes)
    rt = DcgnRuntime(cluster, cfg)

    def kernel(ctx):
        adapter = DcgnMpiAdapter(ctx)
        yield from program(adapter)

    rt.launch_cpu(kernel)
    rt.run()


class TestSameProgramBothRuntimes:
    def test_pingpong_program(self):
        results = {}

        def program(ctx):
            x = np.zeros(1, dtype=np.int64)
            if ctx.rank == 0:
                x[0] = 21
                yield from ctx.send(x, dest=1, tag=0)
                yield from ctx.recv(x, source=1, tag=0)
                results[id(results), "final"] = int(x[0])
                results["final"] = int(x[0])
            elif ctx.rank == 1:
                yield from ctx.recv(x, source=0, tag=0)
                x[0] *= 2
                yield from ctx.send(x, dest=0, tag=0)

        run_under_mpi(program)
        mpi_result = results["final"]
        results.clear()
        run_under_dcgn(program)
        assert results["final"] == mpi_result == 42

    def test_ring_sendrecv_replace_program(self):
        results = {}

        def program(ctx):
            buf = np.array([float(ctx.rank)])
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            yield from ctx.sendrecv_replace(
                buf, dest=right, source=left, sendtag=1, recvtag=1
            )
            results[("v", ctx.rank, len(results))] = float(buf[0])
            results[ctx.rank] = float(buf[0])

        run_under_mpi(program)
        mpi_vals = {r: results[r] for r in range(4)}
        results.clear()
        run_under_dcgn(program)
        dcgn_vals = {r: results[r] for r in range(4)}
        assert mpi_vals == dcgn_vals == {0: 3.0, 1: 0.0, 2: 1.0, 3: 2.0}

    def test_collective_program(self):
        results = {}

        def program(ctx):
            yield from ctx.barrier()
            data = np.zeros(4)
            if ctx.rank == 2:
                data[:] = [9, 8, 7, 6]
            yield from ctx.bcast(data, root=2)
            total = np.zeros(1)
            yield from ctx.allreduce(np.array([float(ctx.rank)]), total)
            results[ctx.rank] = (data.copy(), float(total[0]))

        run_under_mpi(program)
        mpi_out = dict(results)
        results.clear()
        run_under_dcgn(program)
        for r in range(4):
            assert np.array_equal(results[r][0], mpi_out[r][0])
            assert results[r][1] == mpi_out[r][1] == 6.0

    def test_gather_scatter_program(self):
        results = {}

        def program(ctx):
            mine = np.array([ctx.rank * 1.0, ctx.rank + 0.5])
            if ctx.rank == 0:
                rows = [np.zeros(2) for _ in range(ctx.size)]
                yield from ctx.gather(mine, rows, root=0)
                results["rows"] = [r.copy() for r in rows]
                chunks = [np.full(2, float(i * 10)) for i in range(ctx.size)]
                out = np.zeros(2)
                yield from ctx.scatter(chunks, out, root=0)
            else:
                yield from ctx.gather(mine, root=0)
                out = np.zeros(2)
                yield from ctx.scatter(None, out, root=0)
            results[ctx.rank] = out.copy()

        run_under_mpi(program)
        mpi_rows = [r.copy() for r in results["rows"]]
        mpi_out = {r: results[r] for r in range(4)}
        results.clear()
        run_under_dcgn(program)
        for got, want in zip(results["rows"], mpi_rows):
            assert np.array_equal(got, want)
        for r in range(4):
            assert np.array_equal(results[r], mpi_out[r])


class TestAdapterStrictness:
    def test_tag_reordering_rejected(self):
        """DCGN cannot reorder by tag; strict mode flags the pattern."""
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        rt = DcgnRuntime(cluster, DcgnConfig.homogeneous(1, cpu_threads=2))

        def kernel(ctx):
            mpi = DcgnMpiAdapter(ctx)
            buf = np.zeros(1)
            if ctx.rank == 0:
                # Two receives from the same source with different tags.
                mpi._check_tag(1, 7)
                with pytest.raises(CommViolation):
                    mpi._check_tag(1, 8)
            yield ctx.sim.timeout(0.0)

        rt.launch_cpu(kernel)
        rt.run()

    def test_non_strict_mode_allows_tags(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        rt = DcgnRuntime(cluster, DcgnConfig.homogeneous(1, cpu_threads=2))
        results = {}

        def kernel(ctx):
            mpi = DcgnMpiAdapter(ctx, strict=False)
            buf = np.zeros(1, dtype=np.int64)
            if ctx.rank == 0:
                buf[0] = 5
                yield from mpi.send(buf, dest=1, tag=3)
            else:
                st = yield from mpi.recv(buf, source=0, tag=3)
                results["v"] = int(buf[0])
                results["tag"] = st.tag

        rt.launch_cpu(kernel)
        rt.run()
        assert results["v"] == 5
        assert results["tag"] == 3
