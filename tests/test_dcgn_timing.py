"""DCGN timing-shape tests: overheads, polling, and the deadlock hazard.

These tests pin the *qualitative* claims of the paper's evaluation:
ratio bands rather than exact microseconds (see EXPERIMENTS.md for the
measured-vs-paper numbers).
"""

import numpy as np
import pytest

from repro.dcgn import DcgnConfig, DcgnRuntime, DcgnTimeout
from repro.gpusim import GpuCommDeadlock, LaunchConfig
from repro.hw import HWParams, build_cluster, paper_cluster
from repro.hw.params import DcgnParams
from repro.mpi import MpiJob, block_placement
from repro.sim import Simulator, us


def mpi_barrier_time(n_ranks, n_nodes):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    job = MpiJob(cluster, block_placement(n_ranks, n_nodes))

    def prog(ctx):
        yield from ctx.barrier()

    job.start(prog)
    job.run()
    return sim.now


def dcgn_barrier_time(n_nodes, cpu_threads, gpus, iterations=5):
    """Cold-barrier measurement (iterations separated by kernel work),
    as the benchmark harness uses — see repro.apps.micro."""
    from repro.apps.micro import dcgn_barrier_time as measure

    return measure(
        n_nodes, cpu_threads=cpu_threads, gpus=gpus, iters=iterations
    )


class TestTable1Shape:
    """Barrier timings must reproduce Table 1's ordering and bands."""

    def test_dcgn_cpu_barrier_overhead_band(self):
        """1 node, 2 CPUs: paper 38 µs vs MPI 3 µs (ratio 12.67×)."""
        t_mpi = mpi_barrier_time(2, 1)
        t_dcgn = dcgn_barrier_time(1, cpu_threads=2, gpus=0)["cpu"]
        ratio = t_dcgn / t_mpi
        assert 5.0 <= ratio <= 40.0, f"ratio {ratio:.1f}"
        assert us(15.0) <= t_dcgn <= us(90.0), f"{t_dcgn/us(1):.1f} µs"

    def test_dcgn_gpu_barrier_much_slower_than_cpu(self):
        """1 node: GPU-only barrier ≫ CPU-only barrier (313 vs 38 µs)."""
        t_cpu = dcgn_barrier_time(1, cpu_threads=2, gpus=0)["cpu"]
        t_gpu = dcgn_barrier_time(1, cpu_threads=0, gpus=2)["gpu"]
        assert t_gpu > 3.0 * t_cpu
        assert us(150.0) <= t_gpu <= us(700.0), f"{t_gpu/us(1):.1f} µs"

    def test_mixed_barrier_faster_than_gpu_only(self):
        """Table 1 anomaly: 2C/2G ≈ 53 µs but 0C/2G ≈ 313 µs.

        Host-side request activity kicks the GPU pollers, so mixed
        barriers complete an order of magnitude faster than GPU-only.
        """
        t_gpu_only = dcgn_barrier_time(1, cpu_threads=0, gpus=2)["gpu"]
        marks = dcgn_barrier_time(1, cpu_threads=2, gpus=2)
        t_mixed_cpu = marks["cpu"]
        assert t_mixed_cpu < 0.6 * t_gpu_only

    def test_gpu_barrier_grows_across_nodes(self):
        """0C/2G 1 node (313 µs) ≤ 0C/4G 2 nodes (747 µs) trend.

        Our model reproduces the ordering but not the paper's 2.4×
        multi-node jump (see EXPERIMENTS.md, deviation D2).
        """
        t1 = dcgn_barrier_time(1, cpu_threads=0, gpus=2, iterations=5)["gpu"]
        t2 = dcgn_barrier_time(2, cpu_threads=0, gpus=2, iterations=5)["gpu"]
        assert t2 >= t1
        assert us(200.0) <= t1 <= us(900.0)
        assert us(200.0) <= t2 <= us(900.0)

    def test_mpi_barrier_increases_with_ranks(self):
        assert mpi_barrier_time(2, 1) < mpi_barrier_time(8, 4)


class TestSendOverheadShape:
    """Figure 6 bands: small-message overhead ratios, large-message parity."""

    @staticmethod
    def _mpi_send_time(nbytes, n_nodes=2):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
        job = MpiJob(cluster, [0, 1])
        t = {}

        def prog(ctx):
            buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
            if ctx.rank == 0:
                yield from ctx.send(buf, dest=1)
            else:
                yield from ctx.recv(buf, source=0)
                t["d"] = ctx.sim.now

        job.start(prog)
        job.run()
        return t["d"]

    @staticmethod
    def _dcgn_cpu_send_time(nbytes):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=2))
        cfg = DcgnConfig.homogeneous(2, cpu_threads=1)
        rt = DcgnRuntime(cluster, cfg)
        t = {}

        def kernel(ctx):
            buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
            if ctx.rank == 0:
                yield from ctx.send(1, buf, nbytes=nbytes)
            else:
                yield from ctx.recv(0, buf, nbytes=nbytes)
                t["d"] = ctx.sim.now

        rt.launch_cpu(kernel)
        rt.run()
        return t["d"]

    def test_zero_byte_cpu_ratio_band(self):
        """Paper: 0 B CPU:CPU DCGN ≈ 28× MVAPICH2."""
        t_mpi = self._mpi_send_time(0)
        t_dcgn = self._dcgn_cpu_send_time(0)
        ratio = t_dcgn / t_mpi
        assert 8.0 <= ratio <= 60.0, f"0B CPU ratio {ratio:.1f}"

    def test_1mb_cpu_near_parity(self):
        """Paper: 1 MB CPU:CPU DCGN ≈ 1.04× MVAPICH2."""
        n = 1 << 20
        t_mpi = self._mpi_send_time(n)
        t_dcgn = self._dcgn_cpu_send_time(n)
        ratio = t_dcgn / t_mpi
        assert 1.0 <= ratio <= 1.3, f"1MB CPU ratio {ratio:.2f}"


class TestDeadlockHazard:
    def test_block_scheduling_deadlock_detected(self):
        """Paper §3.2.4: "if one expects a single block to perform
        communication before all other blocks can perform computation, a
        deadlock will occur if all multiprocessors are taken before that
        block can be scheduled."

        The communicating block is the *last* block of an oversubscribed
        grid: resident blocks spin on a flag it would set, so it never
        gets a multiprocessor and the job-wide barrier never completes.
        """
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=2))
        n_sms = cluster.nodes[0].gpus[0].params.num_sms
        cfg = DcgnConfig.homogeneous(2, cpu_threads=0, gpus=1, slots_per_gpu=1)
        rt = DcgnRuntime(cluster, cfg)
        flag = sim.event(name="device_flag")

        def rank0_kernel(ctx):
            if ctx.block_idx == ctx.grid_blocks - 1:
                yield from ctx.comm.barrier(0)
                flag.succeed(None)
            else:
                yield flag  # spin on device memory, holding the SM

        def rank1_kernel(ctx):
            yield from ctx.comm.barrier(0)

        rt.launch_gpu(
            rank0_kernel,
            config=LaunchConfig(grid_blocks=n_sms + 1),
            gpus=[(0, 0)],
        )
        rt.launch_gpu(rank1_kernel, gpus=[(1, 0)])
        with pytest.raises(GpuCommDeadlock):
            rt.run(max_time=0.2)

    def test_watchdog_on_unmatched_recv(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        cfg = DcgnConfig.homogeneous(1, cpu_threads=2)
        rt = DcgnRuntime(cluster, cfg)

        def kernel(ctx):
            if ctx.rank == 0:
                buf = np.zeros(1)
                yield from ctx.recv(1, buf)  # never sent
            else:
                yield ctx.sim.timeout(0.0)

        rt.launch_cpu(kernel)
        with pytest.raises(DcgnTimeout):
            rt.run(max_time=0.05)


class TestPollingPolicies:
    def test_fixed_policy_slower_completion_detection(self):
        """Without the adaptive kick, mixed barriers lose their advantage."""
        from repro.dcgn import FixedIntervalPolicy

        def run(policy_factory):
            sim = Simulator()
            cluster = build_cluster(sim, paper_cluster(nodes=1))
            cfg = DcgnConfig.homogeneous(
                1, cpu_threads=1, gpus=1, slots_per_gpu=1
            )
            rt = DcgnRuntime(cluster, cfg, policy_factory=policy_factory)
            marks = {}

            def cpu_kernel(ctx):
                t0 = ctx.sim.now
                yield from ctx.barrier()
                marks["t"] = ctx.sim.now - t0

            def gpu_kernel(ctx):
                yield from ctx.comm.barrier(0)

            rt.launch_cpu(cpu_kernel)
            rt.launch_gpu(gpu_kernel)
            rt.run()
            return marks["t"]

        t_adaptive = run(None)  # default adaptive policy
        interval = DcgnParams().gpu_poll_interval_us
        t_fixed = run(lambda: FixedIntervalPolicy(interval))
        assert t_adaptive < t_fixed

    def test_polling_stats_exposed(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        cfg = DcgnConfig.homogeneous(1, cpu_threads=0, gpus=1, slots_per_gpu=1)
        rt = DcgnRuntime(cluster, cfg)

        def gpu_kernel(ctx):
            yield from ctx.comm.barrier(0)

        rt.launch_gpu(gpu_kernel)
        report = rt.run()
        stats = report.polling_stats()
        assert len(stats) == 1
        (gstats,) = stats.values()
        assert gstats["polls"] >= 1
        assert gstats["pcie_probes"] >= 1
