"""DCGN slot groups: declared groups, collective split, group
collectives on CPU and GPU, concurrency across disjoint groups, and the
nonblocking gather/scatter kernel APIs."""

import numpy as np
import pytest

from repro.dcgn import (
    CollectiveMismatch,
    DcgnConfig,
    DcgnConfigError,
    DcgnRuntime,
    WORLD_GID,
)
from repro.gpusim import LaunchConfig
from repro.hw import ClusterSpec, build_cluster
from repro.sim import Simulator


def make_runtime(n_nodes, cpu_threads=0, gpus=0, slots=1, slot_groups=None):
    sim = Simulator()
    cluster = build_cluster(
        sim, ClusterSpec(nodes=n_nodes, gpus_per_node=max(gpus, 1))
    )
    cfg = DcgnConfig.homogeneous(
        n_nodes, cpu_threads=cpu_threads, gpus=gpus, slots_per_gpu=slots,
        slot_groups=slot_groups,
    )
    return sim, DcgnRuntime(cluster, cfg)


class TestGroupTable:
    def test_world_group_exists(self):
        sim, rt = make_runtime(2, cpu_threads=2)
        world = rt.group("world")
        assert world.gid == WORLD_GID
        assert world.vranks == (0, 1, 2, 3)

    def test_declared_groups_validated(self):
        with pytest.raises(DcgnConfigError, match="out of range"):
            make_runtime(2, cpu_threads=1, slot_groups={"bad": [5]})
        with pytest.raises(DcgnConfigError, match="duplicate"):
            make_runtime(2, cpu_threads=2, slot_groups={"bad": [1, 1]})
        sim, rt = make_runtime(
            2, cpu_threads=2, slot_groups={"a": [0, 3], "b": [1, 2]}
        )
        assert rt.group("a").vranks == (0, 3)
        # Each declared group gets its own node-level sub-communicator.
        info = rt.groups.info(rt.group("a").gid)
        assert info.nodes == [0, 1]
        assert info.subcomm is not rt.node_comm


class TestCpuGroups:
    def test_declared_group_collectives(self):
        sim, rt = make_runtime(
            2, cpu_threads=2,
            slot_groups={"even": [0, 2], "odd": [1, 3]},
        )
        results = {}

        def kern(ctx):
            grp = ctx.group("even" if ctx.rank % 2 == 0 else "odd")
            assert grp.size == 2
            send = np.full(16, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(16, dtype=np.int64)
            yield from grp.allreduce(send, recv)
            results[ctx.rank] = int(recv[0])
            yield from grp.barrier()

        rt.launch_cpu(kern)
        rt.run()
        assert results == {0: 4, 2: 4, 1: 6, 3: 6}

    def test_split_colors_and_optout(self):
        sim, rt = make_runtime(2, cpu_threads=3)  # 6 vranks
        out = {}

        def kern(ctx):
            color = ctx.rank % 2 if ctx.rank < 4 else -1
            grp = yield from ctx.split(color, key=-ctx.rank)
            if grp is None:
                out[ctx.rank] = None
                return
            # key=-rank reverses the member order.
            out[ctx.rank] = (grp.group.vranks, grp.rank)

        rt.launch_cpu(kern)
        rt.run()
        assert out[4] is None and out[5] is None
        assert out[0] == ((2, 0), 1)
        assert out[2] == ((2, 0), 0)
        assert out[1] == ((3, 1), 1)
        assert out[3] == ((3, 1), 0)

    def test_group_bcast_and_gather_scatter(self):
        sim, rt = make_runtime(3, cpu_threads=2)  # 6 vranks, 3 nodes
        checks = []

        def kern(ctx):
            row = yield from ctx.split(ctx.rank // 3)  # rows of 3
            buf = np.full(8, ctx.rank if row.rank == 0 else -1,
                          dtype=np.int64)
            yield from row.broadcast(0, buf)
            checks.append(buf[0] == (ctx.rank // 3) * 3)
            send = np.full(4, ctx.rank, dtype=np.int64)
            recv = np.zeros(12, dtype=np.int64) if row.rank == 2 else None
            yield from row.gather(2, send, recv)
            if recv is not None:
                base = (ctx.rank // 3) * 3
                checks.append(
                    list(recv[::4]) == [base, base + 1, base + 2]
                )
            back = np.zeros(4, dtype=np.int64)
            yield from row.scatter(2, back, recv)
            checks.append(int(back[0]) == ctx.rank)

        rt.launch_cpu(kern)
        rt.run()
        assert all(checks) and len(checks) == 6 * 2 + 2

    def test_disjoint_group_collectives_overlap(self):
        """Two disjoint groups' collectives must not serialize: the
        2-group run is faster than the same payload world-wide."""
        nbytes = 1 << 20

        def run(n_groups):
            sim, rt = make_runtime(4, cpu_threads=1)
            done = {}

            def kern(ctx):
                grp = yield from ctx.split(ctx.rank % n_groups)
                send = np.zeros(nbytes, dtype=np.uint8)
                recv = np.zeros(nbytes, dtype=np.uint8)
                t0 = ctx.sim.now
                yield from grp.allreduce(send, recv, op="max")
                done[ctx.rank] = ctx.sim.now - t0

            rt.launch_cpu(kern)
            rt.run()
            return max(done.values())

        assert run(2) < run(1)

    def test_group_collective_mismatch_detected(self):
        sim, rt = make_runtime(1, cpu_threads=2,
                               slot_groups={"g": [0, 1]})

        def kern(ctx):
            grp = ctx.group("g")
            if ctx.rank == 0:
                yield from grp.barrier()
            else:
                buf = np.zeros(4, dtype=np.int64)
                yield from grp.broadcast(0, buf)

        rt.launch_cpu(kern)
        with pytest.raises(CollectiveMismatch):
            rt.run()

    def test_cpu_igather_iscatter(self):
        sim, rt = make_runtime(2, cpu_threads=1)
        overlap = {}

        def kern(ctx):
            send = np.full(8, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(16, dtype=np.int64) if ctx.rank == 0 else None
            h = yield from ctx.igather(0, send, recv)
            t0 = ctx.sim.now
            yield from ctx.compute(5e-6)
            overlap[ctx.rank] = ctx.sim.now - t0
            yield from h.wait()
            if ctx.rank == 0:
                assert list(recv) == [1] * 8 + [2] * 8
            back = np.zeros(8, dtype=np.int64)
            h2 = yield from ctx.iscatter(0, back, recv)
            yield from h2.wait()
            assert (back == ctx.rank + 1).all()

        rt.launch_cpu(kern)
        rt.run()
        # The compute section ran undisturbed while the gather flew.
        assert all(abs(v - 5e-6) < 1e-9 for v in overlap.values())


class TestGpuGroups:
    def test_gpu_split_and_group_collectives(self):
        sim, rt = make_runtime(4, gpus=1)
        res = {}

        def gk(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            half = yield from comm.split(0, color=rank // 2, key=rank)
            assert half.size == 2
            dev = kctx.device
            buf = dev.alloc((4,), dtype="int64", name="b")
            buf.data[...] = rank + 1
            yield from half.allreduce(0, buf)
            res[rank] = int(buf.data[0])
            yield from half.barrier(0)
            yield from comm.barrier(0)

        rt.launch_gpu(gk, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=60.0)
        assert res == {0: 3, 1: 3, 2: 7, 3: 7}

    def test_gpu_declared_group_broadcast(self):
        sim, rt = make_runtime(
            4, gpus=1, slot_groups={"low": [0, 1], "high": [2, 3]}
        )
        res = {}

        def gk(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            grp = comm.group("low" if rank < 2 else "high")
            dev = kctx.device
            buf = dev.alloc((4,), dtype="int64", name="b")
            buf.data[...] = rank * 11 if grp.rank(0) == 0 else -1
            yield from grp.broadcast(0, 0, buf)
            res[rank] = int(buf.data[0])
            yield from comm.barrier(0)

        rt.launch_gpu(gk, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=60.0)
        assert res == {0: 0, 1: 0, 2: 22, 3: 22}

    def test_gpu_igather_iscatter(self):
        sim, rt = make_runtime(2, gpus=1)

        def gk(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            dev = kctx.device
            sb = dev.alloc((4,), dtype="int64", name="s")
            sb.data[...] = rank + 7
            rb = dev.alloc((8,), dtype="int64", name="r") if rank == 0 else None
            h = yield from comm.igather(0, 0, sb, rb)
            yield from kctx.compute(2e-6)
            yield from h.wait()
            if rank == 0:
                assert list(rb.data) == [7] * 4 + [8] * 4
            rcv = dev.alloc((4,), dtype="int64", name="rc")
            full = None
            if rank == 0:
                full = dev.alloc((8,), dtype="int64", name="f")
                full.data[...] = np.arange(8)
            h2 = yield from comm.iscatter(0, 0, rcv, full)
            yield from h2.wait()
            expect = [0, 1, 2, 3] if rank == 0 else [4, 5, 6, 7]
            assert list(rcv.data) == expect
            yield from comm.barrier(0)

        rt.launch_gpu(gk, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=60.0)

    def test_gpu_group_gather_group_rank_order(self):
        """Group gather assembles by group rank even when the group's
        vrank order is not node-major (key-reordered split)."""
        sim, rt = make_runtime(4, gpus=1)

        def gk(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            # Reverse order: group ranks 0..3 are vranks 3..0.
            grp = yield from comm.split(0, color=0, key=-rank)
            assert grp.rank(0) == 3 - rank
            dev = kctx.device
            sb = dev.alloc((2,), dtype="int64", name="s")
            sb.data[...] = rank
            rb = None
            if grp.rank(0) == 0:
                rb = dev.alloc((8,), dtype="int64", name="r")
            yield from grp.gather(0, 0, sb, rb)
            if rb is not None:
                assert list(rb.data) == [3, 3, 2, 2, 1, 1, 0, 0]
            yield from comm.barrier(0)

        rt.launch_gpu(gk, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=60.0)


class TestMixedCpuGpuGroups:
    def test_cross_kind_group(self):
        """A slot group spanning CPU ranks and GPU slots."""
        # vranks: node0 = cpu 0, gpu-slot 1; node1 = cpu 2, gpu-slot 3.
        res = {}

        def cpu_kern(ctx):
            grp = ctx.group("mixed")
            send = np.full(4, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(4, dtype=np.int64)
            yield from grp.allreduce(send, recv)
            res[ctx.rank] = int(recv[0])

        def gpu_kern(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            grp = comm.group("mixed")
            dev = kctx.device
            buf = dev.alloc((4,), dtype="int64", name="b")
            buf.data[...] = rank + 1
            yield from grp.allreduce(0, buf)
            res[rank] = int(buf.data[0])

        sim, rt = make_runtime(
            2, cpu_threads=1, gpus=1,
            slot_groups={"mixed": [0, 1, 2, 3]},
        )
        rt.launch_cpu(cpu_kern)
        rt.launch_gpu(gpu_kern, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=60.0)
        assert res == {0: 10, 1: 10, 2: 10, 3: 10}
