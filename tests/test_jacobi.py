"""Jacobi halo-exchange app: every backend must match the reference."""

import numpy as np
import pytest

from repro.apps.jacobi import (
    JacobiConfig,
    MPI_BACKENDS,
    reference,
    run_dcgn,
    run_mpi,
)
from repro.hw import ClusterSpec, build_cluster, paper_cluster
from repro.sim import Simulator


def mpi_cluster(n_nodes):
    sim = Simulator()
    return sim, build_cluster(
        sim, ClusterSpec(nodes=n_nodes, gpus_per_node=0)
    )


class TestMpiBackends:
    @pytest.mark.parametrize("backend", MPI_BACKENDS)
    def test_matches_reference(self, backend):
        cfg = JacobiConfig(p=4, rows_per_rank=3, cols=32, iters=4)
        sim, cluster = mpi_cluster(4)
        res = run_mpi(cluster, cfg, backend=backend)
        # verify=True raises on mismatch inside run_mpi; also pin the
        # checksum across backends via the reference.
        assert res.extras["checksum"] == pytest.approx(
            float(reference(cfg).sum())
        )

    @pytest.mark.parametrize("backend", MPI_BACKENDS)
    def test_odd_rank_count(self, backend):
        cfg = JacobiConfig(p=3, rows_per_rank=2, cols=16, iters=3)
        sim, cluster = mpi_cluster(3)
        run_mpi(cluster, cfg, backend=backend)

    def test_multiple_ranks_per_node(self):
        cfg = JacobiConfig(p=6, rows_per_rank=2, cols=16, iters=2)
        sim, cluster = mpi_cluster(3)
        run_mpi(cluster, cfg, backend="rma_fence")

    def test_rma_beats_blocking_on_large_halos(self):
        cfg = JacobiConfig(
            p=4, rows_per_rank=2, cols=8192, iters=3, verify=False
        )
        times = {}
        for backend in ("blocking", "rma_fence"):
            sim, cluster = mpi_cluster(4)
            times[backend] = run_mpi(cluster, cfg, backend=backend).elapsed
        assert times["rma_fence"] < times["blocking"]

    def test_unknown_backend_rejected(self):
        sim, cluster = mpi_cluster(2)
        with pytest.raises(ValueError, match="unknown backend"):
            run_mpi(
                cluster, JacobiConfig(p=2, cols=8), backend="bogus"
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            JacobiConfig(p=1)
        with pytest.raises(ValueError):
            JacobiConfig(p=2, cols=2)
        with pytest.raises(ValueError):
            JacobiConfig(p=2, iters=0)


class TestDcgn:
    def test_gpu_kernel_rma_matches_reference(self):
        cfg = JacobiConfig(p=4, rows_per_rank=3, cols=32, iters=3)
        sim = Simulator()
        cluster = build_cluster(
            sim, paper_cluster(nodes=4, gpus_per_node=1)
        )
        res = run_dcgn(cluster, cfg)
        assert res.model == "dcgn"
        assert res.extras["checksum"] == pytest.approx(
            float(reference(cfg).sum())
        )

    def test_two_slots_per_node(self):
        cfg = JacobiConfig(p=4, rows_per_rank=2, cols=16, iters=2)
        sim = Simulator()
        cluster = build_cluster(
            sim, paper_cluster(nodes=2, gpus_per_node=2)
        )
        run_dcgn(cluster, cfg)
