"""Analytic RMA fast path: cross-checks against the exact simulator.

Property tests at P ≤ 16 for every synchronization mode — fence, PSCW,
passive target — plus the DCGN GPU-driven Jacobi: identical delivered
data, epoch times within tolerance, pricing bit-identical to analytic,
and the counters the pricer feeds.
"""

import numpy as np
import pytest

from repro.apps.jacobi import JacobiConfig, run_dcgn, run_mpi
from repro.hw import build_cluster, paper_cluster
from repro.mpi import MpiJob, block_placement
from repro.mpi.errors import RmaError
from repro.sim import Simulator

#: Analytic vs exact epoch-time tolerance.  The per-node cursors
#: reproduce the exact injection/staging serialization; the residual
#: error is response-leg queueing (CTS and get returns crossing other
#: traffic), which the pricer deliberately ignores.
TOL = 0.08


def run_job(n_ranks, prog_factory, backend):
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=n_ranks, gpus_per_node=0)
    )
    job = MpiJob(cluster, block_placement(n_ranks, n_ranks), backend=backend)
    out = {}
    job.start(prog_factory(out))
    job.run()
    return sim, job, out


def fence_prog(n_ranks, count):
    """Ring of puts + disjoint-tail accumulates + gets across fences."""

    def factory(out):
        def prog(ctx):
            r = ctx.rank
            w = yield from ctx.win_allocate(count, dtype=np.float64)
            yield from w.fence()
            yield from w.put(
                (r + 1) % ctx.size, np.full(count // 2, float(r + 1))
            )
            yield from w.accumulate(
                (r + 2) % ctx.size, np.full(8, 2.0 * r), op="sum",
                offset=count - 8,
            )
            yield from w.fence()
            buf = np.zeros(16)
            yield from w.get((r + 3) % ctx.size, buf)
            yield from w.fence(end=True)
            out[r] = (w.local.copy(), buf.copy())
            yield from w.free()

        return prog

    return factory


def pscw_prog(n_ranks, count):
    """Neighbor-only sync: each rank posts to its left, puts right."""

    def factory(out):
        def prog(ctx):
            r = ctx.rank
            w = yield from ctx.win_allocate(count, dtype=np.float64)
            tgt = (r + 1) % ctx.size
            src = (r - 1) % ctx.size
            yield from w.post([src])
            yield from w.start([tgt])
            yield from w.put(tgt, np.full(count, float(r)))
            yield from w.complete()
            yield from w.wait_sync()
            out[r] = w.local.copy()
            yield from w.free()

        return prog

    return factory


def passive_prog(n_ranks, count):
    """Exclusive lock per target: put + rput + get, then a lock_all
    accumulate pass."""

    def factory(out):
        def prog(ctx):
            r = ctx.rank
            w = yield from ctx.win_allocate(count, dtype=np.float64)
            tgt = (r + 1) % ctx.size
            yield from w.lock(tgt, exclusive=True)
            yield from w.put(tgt, np.full(count // 2, float(r)))
            req = yield from w.rput(
                tgt, np.full(32, 9.0), offset=count // 2
            )
            yield from req.wait()
            buf = np.zeros(8)
            yield from w.get(tgt, buf, offset=count // 2)
            yield from w.unlock(tgt)
            yield from w.lock_all()
            yield from w.accumulate(
                (r + 2) % ctx.size, np.full(4, 1.0), op="sum",
                offset=count - 4,
            )
            yield from w.flush((r + 2) % ctx.size)
            yield from w.unlock_all()
            out[r] = (w.local.copy(), buf.copy())
            yield from w.free()

        return prog

    return factory


MODES = {
    "fence": fence_prog,
    "pscw": pscw_prog,
    "passive": passive_prog,
}


def assert_same_data(out_a, out_e):
    assert set(out_a) == set(out_e)
    for r in out_e:
        a, e = out_a[r], out_e[r]
        if isinstance(e, tuple):
            for x, y in zip(a, e):
                np.testing.assert_array_equal(x, y)
        else:
            np.testing.assert_array_equal(a, e)


# ---------------------------------------------------------------------------
# Epoch cross-checks
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("n_ranks", [4, 5, 8, 13, 16])
def test_analytic_matches_exact(mode, n_ranks):
    """Same data, epoch times within tolerance, all sync modes."""
    factory = MODES[mode]
    sim_e, _, out_e = run_job(n_ranks, factory(n_ranks, 4096), "exact")
    sim_a, _, out_a = run_job(n_ranks, factory(n_ranks, 4096), "analytic")
    assert sim_a.now == pytest.approx(sim_e.now, rel=TOL)
    assert_same_data(out_a, out_e)


@pytest.mark.parametrize("mode", sorted(MODES))
def test_pricing_bit_identical_to_analytic(mode):
    factory = MODES[mode]
    for n_ranks in (5, 8):
        sim_a, _, _ = run_job(n_ranks, factory(n_ranks, 4096), "analytic")
        sim_p, _, _ = run_job(n_ranks, factory(n_ranks, 4096), "pricing")
        assert sim_p.now == sim_a.now


def test_pricing_leaves_windows_untouched():
    sim, _, out = run_job(4, fence_prog(4, 4096), "pricing")
    for r in range(4):
        local, buf = out[r]
        assert not local.any()
        assert not buf.any()


def test_rendezvous_put_agrees():
    """Payloads above the eager threshold take the 3-leg rendezvous
    pricing; check it against the exact wire processes."""
    count = 64 * 1024 // 8  # 64 KB ≫ the 8 KB default eager max
    sim_e, _, out_e = run_job(8, pscw_prog(8, count), "exact")
    sim_a, _, out_a = run_job(8, pscw_prog(8, count), "analytic")
    assert sim_a.now == pytest.approx(sim_e.now, rel=TOL)
    assert_same_data(out_a, out_e)


def test_analytic_rma_counters():
    """fastpath_rma_ops ticks per analytic op; wire costs intern;
    repeat fences hit the interned-schedule cache; the exact backend
    never touches any of them."""
    sim_a, job_a, _ = run_job(8, fence_prog(8, 4096), "analytic")
    assert sim_a.stats.fastpath_rma_ops > 0
    assert sim_a.stats.wire_cost_misses > 0
    # Three fences with identical arrival skew: the first resolves the
    # dissemination DAG, the rest reuse its interned offsets.
    assert sim_a.stats.fastpath_sched_cache_hits > 0
    sim_e, job_e, _ = run_job(8, fence_prog(8, 4096), "exact")
    assert sim_e.stats.fastpath_rma_ops == 0
    assert sim_e.stats.fastpath_sched_cache_hits == 0
    # Wire-kind counters (eager/rendezvous split) agree across backends.
    keys = lambda job: sorted(
        k for k in job.comm.stats if k.startswith("rma_")
    )
    assert keys(job_a) == keys(job_e)


def test_free_with_unflushed_analytic_ops_raises():
    def factory(out):
        def prog(ctx):
            w = yield from ctx.win_allocate(64, dtype=np.float64)
            yield from w.fence()
            if ctx.rank == 0:
                yield from w.put(1, np.full(8, 1.0))
                with pytest.raises(RmaError, match="unflushed"):
                    w.win.free()
            yield from w.fence(end=True)
            yield from w.free()
            out[ctx.rank] = True

        return prog

    _, _, out = run_job(2, factory, "analytic")
    assert out == {0: True, 1: True}


# ---------------------------------------------------------------------------
# Coalescing under the analytic backend
# ---------------------------------------------------------------------------

def coalesce_prog(n_ranks, puts):
    def factory(out):
        def prog(ctx):
            r = ctx.rank
            w = yield from ctx.win_allocate(
                4096, dtype=np.float64, coalesce=True
            )
            yield from w.fence()
            for i in range(puts):
                yield from w.put(
                    (r + 1) % ctx.size,
                    np.full(32, float(r * 100 + i)),
                    offset=i * 32,
                )
            yield from w.fence(end=True)
            out[r] = w.local.copy()
            yield from w.free()

        return prog

    return factory


def test_coalesced_batch_prices_as_one_transfer():
    sim_e, _, out_e = run_job(4, coalesce_prog(4, 6), "exact")
    sim_a, _, out_a = run_job(4, coalesce_prog(4, 6), "analytic")
    assert sim_a.now == pytest.approx(sim_e.now, rel=TOL)
    assert_same_data(out_a, out_e)
    assert sim_a.stats.rma_coalesced_puts == 4 * 6


# ---------------------------------------------------------------------------
# Jacobi halo exchange: the acceptance workload
# ---------------------------------------------------------------------------

def _cluster(nodes, gpus=0):
    sim = Simulator()
    return build_cluster(sim, paper_cluster(nodes=nodes, gpus_per_node=gpus))


@pytest.mark.parametrize("halo", ["rma_fence", "rma_pscw",
                                  "rma_fence_coalesced"])
@pytest.mark.parametrize("p", [5, 8, 16])
def test_jacobi_rma_analytic_matches_exact(halo, p):
    """Field verified against the sequential reference in both runs
    (run_mpi raises on mismatch) and elapsed within tolerance."""
    cfg = JacobiConfig(p=p, rows_per_rank=4, cols=256, iters=3)
    r_e = run_mpi(_cluster(p), cfg, backend=halo)
    r_a = run_mpi(_cluster(p), cfg, backend=halo, exec_backend="analytic")
    assert r_a.elapsed == pytest.approx(r_e.elapsed, rel=TOL)
    assert r_a.extras["checksum"] == r_e.extras["checksum"]


def test_jacobi_pricing_no_data_same_time():
    cfg = JacobiConfig(p=8, rows_per_rank=4, cols=256, iters=3)
    r_a = run_mpi(
        _cluster(8), cfg, backend="rma_fence", exec_backend="analytic"
    )
    r_p = run_mpi(
        _cluster(8), cfg, backend="rma_fence", exec_backend="pricing"
    )
    assert r_p.elapsed == r_a.elapsed


@pytest.mark.parametrize("p", [4, 8])
def test_jacobi_dcgn_analytic_matches_exact(p):
    """The DCGN GPU-driven halo exchange rides the same pricer through
    the comm threads' node communicator."""
    cfg = JacobiConfig(p=p, rows_per_rank=4, cols=128, iters=2)
    r_e = run_dcgn(_cluster(p // 2, gpus=2), cfg)
    r_a = run_dcgn(_cluster(p // 2, gpus=2), cfg, backend="analytic")
    assert r_a.elapsed == pytest.approx(r_e.elapsed, rel=TOL)
    assert r_a.extras["checksum"] == r_e.extras["checksum"]
