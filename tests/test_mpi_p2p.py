"""Tests for simulated-MPI point-to-point communication."""

import numpy as np
import pytest

from repro.hw import HWParams, build_cluster, paper_cluster, single_node
from repro.hw.params import IbParams
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MpiJob,
    RankError,
    TagError,
    TruncationError,
    block_placement,
)
from repro.sim import Simulator, us


def make_job(n_ranks=2, n_nodes=2, **ib_kw):
    sim = Simulator()
    params = HWParams(ib=IbParams(**ib_kw)) if ib_kw else HWParams()
    spec = paper_cluster(nodes=n_nodes, params=params)
    cluster = build_cluster(sim, spec)
    placement = block_placement(n_ranks, n_nodes)
    return sim, MpiJob(cluster, placement)


class TestSendRecv:
    def test_pingpong_data_integrity(self):
        sim, job = make_job()
        result = {}

        def prog(ctx):
            x = np.zeros(8, dtype=np.int64)
            if ctx.rank == 0:
                x[:] = np.arange(8)
                yield from ctx.send(x, dest=1, tag=0)
                yield from ctx.recv(x, source=1, tag=0)
                result["final"] = x.copy()
            else:
                yield from ctx.recv(x, source=0, tag=0)
                x *= 2
                yield from ctx.send(x, dest=0, tag=0)

        job.start(prog)
        job.run()
        assert np.array_equal(result["final"], np.arange(8) * 2)

    def test_send_snapshot_semantics(self):
        """Modifying the send buffer after send must not corrupt the message."""
        sim, job = make_job()
        result = {}

        def prog(ctx):
            if ctx.rank == 0:
                x = np.array([1, 2, 3], dtype=np.int32)
                req = ctx.isend(x, dest=1)
                x[:] = 99  # overwrite after isend
                yield from req.wait()
            else:
                y = np.zeros(3, dtype=np.int32)
                yield from ctx.recv(y, source=0)
                result["y"] = y.copy()

        job.start(prog)
        job.run()
        assert list(result["y"]) == [1, 2, 3]

    def test_any_source_any_tag(self):
        sim, job = make_job(n_ranks=4, n_nodes=2)
        result = {}

        def prog(ctx):
            if ctx.rank == 0:
                buf = np.zeros(1, dtype=np.int64)
                seen = []
                for _ in range(3):
                    st = yield from ctx.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                    seen.append((st.source, st.tag, int(buf[0])))
                result["seen"] = seen
            else:
                data = np.array([ctx.rank * 100], dtype=np.int64)
                yield from ctx.send(data, dest=0, tag=ctx.rank)

        job.start(prog)
        job.run()
        seen = result["seen"]
        assert sorted(s[0] for s in seen) == [1, 2, 3]
        for src, tag, val in seen:
            assert tag == src
            assert val == src * 100

    def test_message_ordering_non_overtaking(self):
        sim, job = make_job()
        result = {}

        def prog(ctx):
            if ctx.rank == 0:
                for i in range(10):
                    yield from ctx.send(
                        np.array([i], dtype=np.int32), dest=1, tag=5
                    )
            else:
                got = []
                buf = np.zeros(1, dtype=np.int32)
                for _ in range(10):
                    yield from ctx.recv(buf, source=0, tag=5)
                    got.append(int(buf[0]))
                result["got"] = got

        job.start(prog)
        job.run()
        assert result["got"] == list(range(10))

    def test_tag_selection(self):
        sim, job = make_job()
        result = {}

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(np.array([1.0]), dest=1, tag=7)
                yield from ctx.send(np.array([2.0]), dest=1, tag=8)
            else:
                buf = np.zeros(1)
                # Receive tag 8 first even though tag 7 arrived first.
                yield from ctx.recv(buf, source=0, tag=8)
                first = buf[0]
                yield from ctx.recv(buf, source=0, tag=7)
                result["order"] = (first, buf[0])

        job.start(prog)
        job.run()
        assert result["order"] == (2.0, 1.0)

    def test_rendezvous_large_message(self):
        sim, job = make_job(eager_threshold=1024)
        result = {}
        n = 100_000  # 800 KB -> rendezvous

        def prog(ctx):
            if ctx.rank == 0:
                data = np.arange(n, dtype=np.float64)
                yield from ctx.send(data, dest=1)
            else:
                buf = np.zeros(n, dtype=np.float64)
                yield from ctx.recv(buf, source=0)
                result["sum"] = float(buf.sum())

        job.start(prog)
        job.run()
        assert result["sum"] == pytest.approx(n * (n - 1) / 2)

    def test_rendezvous_slower_than_eager_for_same_size(self):
        """The handshake adds latency: same payload, higher time."""
        times = {}
        for label, thresh in (("eager", 1 << 30), ("rndv", 16)):
            sim, job = make_job(eager_threshold=thresh)

            def prog(ctx):
                data = np.zeros(512, dtype=np.uint8)
                if ctx.rank == 0:
                    yield from ctx.send(data, dest=1)
                else:
                    yield from ctx.recv(data, source=0)

            job.start(prog)
            job.run()
            times[label] = sim.now
        assert times["rndv"] > times["eager"]

    def test_self_send(self):
        sim, job = make_job(n_ranks=2, n_nodes=2)
        result = {}

        def prog0(ctx):
            req = ctx.isend(np.array([42]), dest=0, tag=3)
            buf = np.zeros(1, dtype=np.int64)
            yield from ctx.recv(buf, source=0, tag=3)
            yield from req.wait()
            result["val"] = int(buf[0])

        def prog1(ctx):
            yield ctx.sim.timeout(0.0)

        job.start(prog0, ranks=[0])
        job.start(prog1, ranks=[1])
        job.run()
        assert result["val"] == 42

    def test_truncation_error(self):
        sim, job = make_job()

        def prog(ctx):
            if ctx.rank == 0:
                yield from ctx.send(np.zeros(100), dest=1)
            else:
                buf = np.zeros(10)
                yield from ctx.recv(buf, source=0)

        job.start(prog)
        with pytest.raises(TruncationError):
            job.run()

    def test_invalid_rank_and_tag(self):
        sim, job = make_job()

        def bad_rank(ctx):
            yield from ctx.send(np.zeros(1), dest=99)

        def bad_tag(ctx):
            yield from ctx.send(np.zeros(1), dest=1, tag=-5)

        job.start(bad_rank, ranks=[0])
        with pytest.raises(RankError):
            job.run()

        sim2, job2 = make_job()
        job2.start(bad_tag, ranks=[0])

        def idle(ctx):
            yield ctx.sim.timeout(0.0)

        job2.start(idle, ranks=[1])
        with pytest.raises(TagError):
            job2.run()


class TestSendrecv:
    def test_sendrecv_replace_ring(self):
        """Rotate values around a 4-rank ring, Cannon-style."""
        sim, job = make_job(n_ranks=4, n_nodes=4)
        result = {}

        def prog(ctx):
            buf = np.array([ctx.rank], dtype=np.int64)
            right = (ctx.rank + 1) % 4
            left = (ctx.rank - 1) % 4
            yield from ctx.sendrecv_replace(
                buf, dest=right, source=left, sendtag=1, recvtag=1
            )
            result[ctx.rank] = int(buf[0])

        job.start(prog)
        job.run()
        assert result == {0: 3, 1: 0, 2: 1, 3: 2}

    def test_sendrecv_distinct_buffers(self):
        sim, job = make_job()
        result = {}

        def prog(ctx):
            other = 1 - ctx.rank
            out = np.array([ctx.rank + 10.0])
            incoming = np.zeros(1)
            yield from ctx.sendrecv(
                out, dest=other, recvbuf=incoming, source=other
            )
            result[ctx.rank] = float(incoming[0])

        job.start(prog)
        job.run()
        assert result == {0: 11.0, 1: 10.0}


class TestTimingShape:
    def test_intra_node_faster_than_inter_node(self):
        def one_way(n_nodes, placement):
            sim = Simulator()
            cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
            job = MpiJob(cluster, placement)
            t = {}

            def prog(ctx):
                buf = np.zeros(1024, dtype=np.uint8)
                if ctx.rank == 0:
                    t0 = ctx.sim.now
                    yield from ctx.send(buf, dest=1)
                else:
                    yield from ctx.recv(buf, source=0)
                    t["dt"] = ctx.sim.now

            job.start(prog)
            job.run()
            return t["dt"]

        intra = one_way(1, [0, 0])
        inter = one_way(2, [0, 1])
        assert intra < inter

    def test_latency_dominates_small_bandwidth_dominates_large(self):
        sim, job = make_job()
        times = {}

        def prog(ctx, nbytes, key):
            buf = np.zeros(nbytes, dtype=np.uint8)
            if ctx.rank == 0:
                yield from ctx.send(buf, dest=1)
            else:
                yield from ctx.recv(buf, source=0)
                times[key] = ctx.sim.now

        # 0 B vs 1 B: nearly identical (latency-bound).
        sim1, job1 = make_job()
        job1.start(lambda ctx: prog(ctx, 1, "b1"))
        job1.run()
        sim0, job0 = make_job()
        job0.start(lambda ctx: prog(ctx, 0 or 1, "b0"))  # 1-byte placeholder
        job0.run()
        # 1 MB ≫ 1 B.
        simM, jobM = make_job()
        jobM.start(lambda ctx: prog(ctx, 1 << 20, "bM"))
        jobM.run()
        assert times["bM"] > 10 * times["b1"]


class TestWildcardInternalIsolation:
    """ANY_TAG wildcards must never match internal collective traffic.

    Regression: the schedule-exploration checker (repro.check,
    comm-free-drain scenario) found seeds where a user ``irecv`` posted
    with ``ANY_TAG`` consumed an internal barrier message (tag >=
    INTERNAL_TAG_BASE), starving the barrier's own receive and
    deadlocking ranks that were still inside the collective.
    """

    def test_any_tag_skips_internal_messages(self):
        from repro.sim import ExploringSimulator
        from repro.mpi import block_placement, MpiJob
        from repro.hw import build_cluster, paper_cluster

        # The mis-match was schedule-dependent: sweep several seeds of
        # an iallreduce racing a wildcard irecv + barrier.
        for seed in range(10):
            sim = ExploringSimulator(seed=seed)
            cluster = build_cluster(sim, paper_cluster(nodes=2))
            job = MpiJob(cluster, block_placement(2, 2))
            got = {}

            def prog(ctx):
                out = np.zeros(64)
                req = ctx.iallreduce(np.ones(64), out)
                if ctx.rank == 0:
                    yield from ctx.send(np.full(4, 7.0), dest=1, tag=3)
                else:
                    buf = np.zeros(4)
                    st = yield from ctx.recv(
                        buf, source=ANY_SOURCE, tag=ANY_TAG
                    )
                    got["status"] = st
                    got["buf"] = buf.copy()
                yield from ctx.barrier()
                yield from req.wait()
                got[f"allreduce{ctx.rank}"] = out.copy()

            job.start(prog)
            job.run()
            # The wildcard matched the *user* message, not an internal one.
            assert got["status"].tag == 3
            assert np.all(got["buf"] == 7.0)
            assert np.all(got["allreduce0"] == 2.0)
            assert np.all(got["allreduce1"] == 2.0)
