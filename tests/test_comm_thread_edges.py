"""Edge cases in the communication thread: buffering, ablation paths,
mismatches, delivery aliasing, and quiescent shutdown."""

import dataclasses

import numpy as np
import pytest

from repro.dcgn import (
    ANY,
    CollectiveMismatch,
    DcgnConfig,
    DcgnRuntime,
)
from repro.hw import HWParams, build_cluster, paper_cluster
from repro.sim import Simulator, us


def make_runtime(n_nodes=2, cpu_threads=1, params=None, seed=0):
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=n_nodes, params=params, seed=seed)
    )
    cfg = DcgnConfig.homogeneous(n_nodes, cpu_threads=cpu_threads)
    return sim, DcgnRuntime(cluster, cfg)


class TestUnexpectedMessages:
    def test_send_before_recv_is_buffered_and_delivered(self):
        sim, rt = make_runtime()
        result = {}

        def kernel(ctx):
            buf = np.zeros(4, dtype=np.int32)
            if ctx.rank == 0:
                buf[:] = [4, 3, 2, 1]
                yield from ctx.send(1, buf)
            else:
                # Receive long after the message arrived (buffered path).
                yield ctx.sim.timeout(0.01)
                yield from ctx.recv(0, buf)
                result["data"] = buf.copy()

        rt.launch_cpu(kernel)
        rt.run()
        assert np.array_equal(result["data"], [4, 3, 2, 1])

    def test_many_buffered_messages_match_in_order(self):
        sim, rt = make_runtime()
        result = {}

        def kernel(ctx):
            buf = np.zeros(1, dtype=np.int64)
            if ctx.rank == 0:
                for i in range(5):
                    buf[0] = i
                    yield from ctx.send(1, buf)
            else:
                yield ctx.sim.timeout(0.01)
                got = []
                for _ in range(5):
                    yield from ctx.recv(0, buf)
                    got.append(int(buf[0]))
                result["got"] = got

        rt.launch_cpu(kernel)
        rt.run()
        assert result["got"] == [0, 1, 2, 3, 4]


class TestLocalLoopbackAblation:
    def test_local_send_via_mpi_loopback_still_correct(self):
        base = HWParams()
        params = base.with_(
            dcgn=dataclasses.replace(base.dcgn, local_via_memcpy=False)
        )
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2, params=params)
        result = {}

        def kernel(ctx):
            buf = np.zeros(2)
            if ctx.rank == 0:
                buf[:] = [1.5, 2.5]
                yield from ctx.send(1, buf)
            else:
                st = yield from ctx.recv(0, buf)
                result["data"] = buf.copy()
                result["src"] = st.source

        rt.launch_cpu(kernel)
        rt.run()
        assert np.allclose(result["data"], [1.5, 2.5])
        assert result["src"] == 0

    def test_loopback_slower_than_memcpy_for_large_payloads(self):
        def one_way(local_via_memcpy):
            base = HWParams()
            params = base.with_(
                dcgn=dataclasses.replace(
                    base.dcgn, local_via_memcpy=local_via_memcpy
                )
            )
            sim, rt = make_runtime(
                n_nodes=1, cpu_threads=2, params=params
            )
            marks = {}

            def kernel(ctx):
                buf = np.zeros(1 << 20, dtype=np.uint8)
                if ctx.rank == 0:
                    yield from ctx.send(1, buf)
                else:
                    yield from ctx.recv(0, buf)
                    marks["t"] = ctx.sim.now

            rt.launch_cpu(kernel)
            rt.run()
            return marks["t"]

        assert one_way(True) < one_way(False)


class TestCollectiveMismatches:
    def test_reduce_op_mismatch(self):
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2)

        def kernel(ctx):
            send = np.array([1.0])
            recv = np.zeros(1)
            op = "sum" if ctx.rank == 0 else "max"
            yield from ctx.allreduce(send, recv, op=op)

        rt.launch_cpu(kernel)
        with pytest.raises(CollectiveMismatch):
            rt.run(max_time=1.0)

    def test_over_participation_detected(self):
        """A rank calling twice while others call once trips the guard."""
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2)

        def kernel(ctx):
            if ctx.rank == 0:
                yield from ctx.barrier()
            else:
                # Issue two barrier requests with the SAME sequence
                # number by resetting the counter (simulating a buggy
                # user thread reusing a context).
                yield from ctx.barrier()
                ctx._coll_seq = 0
                yield from ctx.barrier()

        rt.launch_cpu(kernel)
        with pytest.raises(CollectiveMismatch):
            rt.run(max_time=1.0)


class TestStatsAndCapture:
    def test_wire_counters_track_remote_traffic(self):
        sim, rt = make_runtime()

        def kernel(ctx):
            buf = np.zeros(1)
            if ctx.rank == 0:
                yield from ctx.send(1, buf)
            else:
                yield from ctx.recv(0, buf)

        rt.launch_cpu(kernel)
        report = rt.run()
        stats = report.comm_stats()
        assert stats.get("wire_sends", 0) == 1
        assert stats.get("wire_arrivals", 0) == 1
        assert stats.get("p2p_delivered", 0) == 1

    def test_intra_node_traffic_uses_no_wire(self):
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2)

        def kernel(ctx):
            buf = np.zeros(1)
            if ctx.rank == 0:
                yield from ctx.send(1, buf)
            else:
                yield from ctx.recv(0, buf)

        rt.launch_cpu(kernel)
        report = rt.run()
        stats = report.comm_stats()
        assert stats.get("wire_sends", 0) == 0
        assert stats.get("p2p_delivered", 0) == 1


class TestDeliveryAliasing:
    """Non-deliver requests (the GPU-slot contract: the GPU thread reads
    ``req.data`` back over PCIe) must each own their payload — the seed
    handed every sibling the *same* ndarray, so one rank mutating its
    receive buffer corrupted the others'."""

    def _raw_collective(self, op, n_ranks=3, **extra_fields):
        """Drive a comm thread with hand-built deliver-less requests."""
        from repro.dcgn.requests import CommRequest

        sim, rt = make_runtime(n_nodes=1, cpu_threads=n_ranks)
        ct = rt.comm_threads[0]
        payload = np.arange(8, dtype=np.int64)
        reqs = []
        for vrank in range(n_ranks):
            is_root = vrank == 0
            req = CommRequest(
                op=op,
                src_vrank=vrank,
                root=0,
                nbytes=int(payload.nbytes),
                data=payload.copy() if (is_root or op == "allreduce") else None,
                deliver=None,
                done=sim.event(),
                extra=dict({"coll_seq": 0}, **extra_fields),
            )
            reqs.append(req)

            def enqueue(req=req):
                yield from ct.enqueue_from_cpu(req)

            sim.process(enqueue(), name=f"enq{vrank}")
        sim.run(until=1.0, detect_deadlock=False)
        assert all(r.done.triggered for r in reqs)
        ct.shutdown()
        sim.run(until=2.0, detect_deadlock=False)
        return reqs

    def test_bcast_delivers_per_request_copies(self):
        reqs = self._raw_collective("bcast")
        r1, r2 = reqs[1], reqs[2]
        assert r1.data is not None and r2.data is not None
        assert r1.data is not r2.data
        before = r2.data.copy()
        r1.data[...] = 0  # rank 1 scribbles over its receive buffer
        assert np.array_equal(r2.data, before), "sibling buffer corrupted"

    def test_allreduce_delivers_per_request_copies(self):
        reqs = self._raw_collective("allreduce", reduce_op="sum")
        r1, r2 = reqs[1], reqs[2]
        assert r1.data is not r2.data
        before = r2.data.copy()
        r1.data[...] = -1
        assert np.array_equal(r2.data, before), "sibling buffer corrupted"
