"""Leak-free job churn: repeated setup/teardown on one long-lived cluster.

The serving scheduler builds and retires whole jobs for as long as the
cluster is up, so teardown must actually drop the heavy per-communicator
state — matching stores, schedule engine, autotune results, window and
split bookkeeping.  Before ``Communicator.release`` existed, a retired
*world* communicator could never be freed at all (``MPI_Comm_free``
rightly refuses the world at rank level), so every ``MpiJob`` /
``DcgnRuntime`` churned on one cluster leaked its engine.  These tests
pin the fix with weakrefs: after teardown, nothing but the caller keeps
a retired job's communicator or engine alive.
"""

import gc
import weakref

import numpy as np
import pytest

from repro.dcgn import DcgnConfig, DcgnRuntime
from repro.hw import ClusterSpec, TopologySpec, build_cluster, paper_cluster
from repro.mpi import MpiError, MpiJob
from repro.mpi.algorithms import autotune
from repro.sim import Simulator

KB = 1024


def _allreduce_program(ctx):
    buf = np.full(256, float(ctx.rank))
    out = np.zeros(256)
    yield from ctx.allreduce(buf, out)
    return float(out[0])


class TestWorldRelease:
    def test_release_frees_world_state(self):
        sim = Simulator()
        cluster = build_cluster(sim, ClusterSpec(nodes=4, gpus_per_node=0))
        job = MpiJob(cluster, list(range(4)))
        job.start(_allreduce_program)
        sim.run()
        comm = job.comm
        engine_ref = weakref.ref(comm.engine)
        job.shutdown()
        assert comm._freed
        with pytest.raises(MpiError):
            comm.ctx(0)
        comm_ref = weakref.ref(comm)
        del comm, job
        gc.collect()
        assert comm_ref() is None, "released world communicator leaked"
        assert engine_ref() is None, "released schedule engine leaked"

    def test_release_refuses_inflight_traffic(self):
        sim = Simulator()
        cluster = build_cluster(sim, ClusterSpec(nodes=2, gpus_per_node=0))
        job = MpiJob(cluster, [0, 1])

        def sender(ctx):
            yield from ctx.send(np.zeros(64 * KB), dest=1, tag=7)

        def receiver(ctx):
            buf = np.zeros(64 * KB)
            yield from ctx.recv(buf, source=0, tag=7)

        job.start(sender, ranks=[0])
        job.start(receiver, ranks=[1])
        # Step into the transfer, then try to tear down mid-flight.
        sim.run(until=1e-7)
        with pytest.raises(MpiError):
            job.comm.release()
        sim.run()
        job.shutdown()
        assert job.comm._freed

    def test_shutdown_is_idempotent(self):
        sim = Simulator()
        cluster = build_cluster(sim, ClusterSpec(nodes=2, gpus_per_node=0))
        job = MpiJob(cluster, [0, 1])
        job.start(_allreduce_program)
        sim.run()
        job.shutdown()
        job.shutdown()  # second call is a no-op, not an error
        assert job.comm._freed


class TestMpiJobChurn:
    def test_churn_leaves_no_live_communicators(self):
        """N sequential jobs on one cluster: all N worlds collectable."""
        sim = Simulator()
        cluster = build_cluster(sim, ClusterSpec(nodes=4, gpus_per_node=0))
        refs = []
        for i in range(8):
            job = MpiJob(cluster, list(range(4)))
            job.start(_allreduce_program)
            sim.run()
            assert all(v == sum(range(4)) for v in (p.value for p in job._procs))
            refs.append(
                (weakref.ref(job.comm), weakref.ref(job.comm.engine))
            )
            job.shutdown()
            del job
        gc.collect()
        for i, (comm_ref, engine_ref) in enumerate(refs):
            assert comm_ref() is None, f"job {i} communicator leaked"
            assert engine_ref() is None, f"job {i} engine leaked"

    def test_churn_keeps_autotune_cache_bounded(self):
        """Same fabric shape every time -> one cache entry, not N."""
        sim = Simulator()
        topo = TopologySpec(kind="fattree", pod_size=4, oversubscription=2.0)
        cluster = build_cluster(
            sim, ClusterSpec(nodes=8, gpus_per_node=0, topology=topo)
        )
        sizes = set()
        for _ in range(6):
            job = MpiJob(cluster, list(range(8)))
            job.start(_allreduce_program)
            sim.run()
            job.shutdown()
            sizes.add(len(autotune._CACHE))
        assert len(sizes) == 1, (
            f"autotune cache grew across identical churns: {sizes}"
        )

    def test_derived_comm_bookkeeping_cleared(self):
        """Split-built sub-communicators die with the released world."""
        sim = Simulator()
        cluster = build_cluster(sim, ClusterSpec(nodes=4, gpus_per_node=0))
        job = MpiJob(cluster, list(range(4)))

        def program(ctx):
            sub = yield from ctx.split(color=ctx.rank % 2, key=ctx.rank)
            buf = np.full(8, float(sub.rank))
            out = np.zeros(8)
            yield from sub.allreduce(buf, out)
            return float(out[0])

        job.start(program)
        sim.run()
        comm = job.comm
        sub_refs = [
            weakref.ref(c) for c in comm._split_built.values()
        ] if comm._split_built else []
        job.shutdown()
        assert comm._split_built == {}
        del job, comm
        gc.collect()
        for r in sub_refs:
            assert r() is None, "split-derived communicator leaked"


class TestDcgnChurn:
    def test_dcgn_runtime_churn(self):
        """Repeated DCGN jobs (groups + windows) leave no live comms."""
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=2, gpus_per_node=0))

        def kernel(ctx):
            out = np.zeros(4)
            yield from ctx.allreduce(np.full(4, float(ctx.rank)), out)
            return float(out[0])

        refs = []
        for i in range(4):
            cfg = DcgnConfig.homogeneous(
                2,
                cpu_threads=2,
                slot_groups={"left": [0, 1]},
                windows={"w": 4},
            )
            rt = DcgnRuntime(cluster, cfg)
            rt.launch_cpu(kernel)
            # max_time is an absolute sim deadline; the shared clock
            # keeps advancing across churned jobs.
            rt.run(max_time=sim.now + 10.0)
            refs.append(weakref.ref(rt.node_comm))
            refs.extend(
                weakref.ref(info.subcomm)
                for gid, info in rt.groups._infos.items()
                if info.subcomm is not rt.node_comm
            )
            rt.shutdown()
            assert rt.node_comm._freed
            del rt
        gc.collect()
        for i, r in enumerate(refs):
            assert r() is None, f"DCGN communicator {i} leaked"
