"""Tests for the GAS baseline runtime and the §2.3 pipeline pattern."""

import numpy as np
import pytest

from repro.gas import GasContext, GasError, GasJob
from repro.gas.pipeline import GasPipeline, PipelineStage
from repro.gpusim import LaunchConfig
from repro.hw import build_cluster, paper_cluster, single_node
from repro.sim import Simulator, us


def make_cluster(nodes=2, gpus_per_node=2):
    sim = Simulator()
    return build_cluster(
        sim, paper_cluster(nodes=nodes, gpus_per_node=gpus_per_node)
    )


class TestGasJob:
    def test_all_gpus_assignment(self):
        cluster = make_cluster()
        job = GasJob.all_gpus(cluster)
        assert job.size == 4
        for r in range(4):
            assert job.context(r).gpu is not None

    def test_master_rank_has_no_gpu(self):
        cluster = make_cluster()
        job = GasJob.all_gpus(cluster, with_master=True)
        assert job.size == 5
        assert job.context(0).gpu is None
        assert job.context(1).gpu is not None

    def test_push_kernel_pull_roundtrip(self):
        cluster = make_cluster(nodes=1, gpus_per_node=1)
        job = GasJob.all_gpus(cluster)
        result = {}

        def prog(ctx):
            data = np.arange(16, dtype=np.float64)
            dbuf = ctx.alloc(16, name="x")
            yield from ctx.push(dbuf, data)

            def kernel(kctx):
                yield from kctx.compute(seconds=us(10.0))

            yield from ctx.run_kernel(kernel, LaunchConfig(grid_blocks=2))
            dbuf.data[...] *= 2  # the kernel's effect
            out = np.zeros(16)
            yield from ctx.pull(out, dbuf)
            result["out"] = out
            dbuf.free()

        job.start(prog)
        job.run()
        assert np.array_equal(result["out"], np.arange(16) * 2.0)

    def test_cpu_only_rank_rejects_gpu_ops(self):
        cluster = make_cluster()
        job = GasJob.all_gpus(cluster, with_master=True)

        def prog(ctx):
            yield ctx.sim.timeout(0.0)
            ctx.alloc(4)  # master has no GPU

        job.start(prog, ranks=[0])
        with pytest.raises(GasError):
            job.run()

    def test_invalid_assignment_rejected(self):
        cluster = make_cluster(nodes=1, gpus_per_node=1)
        with pytest.raises(GasError):
            GasJob(cluster, [(0, 5)])
        with pytest.raises(GasError):
            GasJob(cluster, [(9, 0)])
        with pytest.raises(GasError):
            GasJob(cluster, [])

    def test_mpi_between_gas_ranks(self):
        cluster = make_cluster()
        job = GasJob.all_gpus(cluster)
        result = {}

        def prog(ctx):
            buf = np.zeros(1, dtype=np.int64)
            if ctx.rank == 0:
                buf[0] = 99
                yield from ctx.mpi.send(buf, dest=3)
            elif ctx.rank == 3:
                yield from ctx.mpi.recv(buf, source=0)
                result["got"] = int(buf[0])
            else:
                yield ctx.sim.timeout(0.0)

        job.start(prog)
        job.run()
        assert result["got"] == 99


class TestGasPipeline:
    def test_two_stage_pipeline_transforms_in_order(self):
        cluster = make_cluster()
        stages = [
            PipelineStage("double", lambda x: x * 2, us(30.0)),
            PipelineStage("add-one", lambda x: x + 1, us(30.0)),
        ]
        pipe = GasPipeline(cluster, stages, item_shape=(4,))
        items = [np.full(4, float(i)) for i in range(5)]
        out = pipe.run(items)
        assert len(out) == 5
        for i, o in enumerate(out):
            assert np.allclose(o, i * 2 + 1)
        assert pipe.elapsed > 0

    def test_pipeline_overlaps_stages(self):
        """K items through S stages ≈ (K+S-1) stage-times, not K*S."""

        def run_pipeline(n_items):
            cluster = make_cluster()
            stage_s = us(200.0)
            stages = [
                PipelineStage("a", lambda x: x, stage_s),
                PipelineStage("b", lambda x: x, stage_s),
                PipelineStage("c", lambda x: x, stage_s),
            ]
            pipe = GasPipeline(cluster, stages, item_shape=(2,))
            pipe.run([np.zeros(2) for _ in range(n_items)])
            return pipe.elapsed

        t4 = run_pipeline(4)
        t8 = run_pipeline(8)
        # Doubling the items must NOT double the makespan (fill/drain
        # amortizes): serial execution would give t8 = 2 * t4.
        assert t8 < 1.8 * t4

    def test_four_stage_pipeline_correctness(self):
        cluster = make_cluster()
        stages = [
            PipelineStage(f"s{k}", (lambda k: lambda x: x + k)(k), us(20.0))
            for k in range(4)
        ]
        pipe = GasPipeline(cluster, stages, item_shape=(3,))
        out = pipe.run([np.zeros(3)])
        assert np.allclose(out[0], 0 + 1 + 2 + 3)

    def test_too_many_stages_rejected(self):
        cluster = make_cluster(nodes=1, gpus_per_node=1)
        stages = [
            PipelineStage("a", lambda x: x, us(1.0)),
            PipelineStage("b", lambda x: x, us(1.0)),
        ]
        with pytest.raises(GasError):
            GasPipeline(cluster, stages, item_shape=(1,))

    def test_wrong_item_shape_rejected(self):
        cluster = make_cluster()
        pipe = GasPipeline(
            cluster,
            [PipelineStage("a", lambda x: x, us(1.0))],
            item_shape=(4,),
        )
        with pytest.raises(GasError):
            pipe.run([np.zeros(5)])

    def test_empty_stage_list_rejected(self):
        cluster = make_cluster()
        with pytest.raises(GasError):
            GasPipeline(cluster, [], item_shape=(1,))
