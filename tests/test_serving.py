"""Serving-layer tests: scheduler lifecycle, backfill, cancellation,
sub-communicator isolation and tuning fallback, workload helpers, and
the tile service end to end.
"""

import numpy as np
import pytest

from repro.apps.mandelbrot import MandelbrotConfig
from repro.apps.tile_service import TileService, TileServiceConfig
from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.serve import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    ClusterScheduler,
    JobSpec,
    OpenLoopDriver,
    PlacementError,
    RequestLog,
    SchedulerError,
    open_loop_arrivals,
    percentile,
)
from repro.sim import Simulator, us


def make_sched(n_nodes=4, policy="packed", topo=None, **kw):
    sim = Simulator()
    cluster = build_cluster(
        sim, ClusterSpec(nodes=n_nodes, gpus_per_node=0, topology=topo)
    )
    return sim, ClusterScheduler(cluster, policy=policy, **kw)


def allreduce_prog(ctx):
    out = np.zeros(8)
    yield from ctx.allreduce(np.ones(8), out)
    return float(out[0])


def spec(name, n, prog=allreduce_prog, **kw):
    return JobSpec(name=name, n_nodes=n, program=prog, **kw)


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_submit_run_done(self):
        sim, sched = make_sched(4)
        job = sched.submit(spec("j", 4))
        assert job.state in (QUEUED, "placing")
        sim.run()
        assert job.state == DONE
        assert job.results() == [4.0] * 4
        assert job.nodes == [0, 1, 2, 3]
        assert job.queue_wait == 0.0
        assert job.comm._freed
        assert sched.n_free == 4

    def test_program_args(self):
        sim, sched = make_sched(2)

        def prog(ctx, base):
            yield ctx.sim.timeout(0.0)
            return base + ctx.rank

        job = sched.submit(JobSpec(name="a", n_nodes=2, program=prog,
                                   args=(10,)))
        sim.run()
        assert job.results() == [10, 11]

    def test_launch_overhead_scales_with_nodes(self):
        sim, sched = make_sched(4, place_delay_us=100.0,
                                launch_us_per_node=25.0)
        job = sched.submit(spec("j", 4))
        sim.run()
        assert job.start_t == pytest.approx(us(100.0 + 25.0 * 4))

    def test_concurrent_jobs_are_isolated(self):
        """Two jobs allreduce concurrently on disjoint sub-comms; each
        sees only its own size — tag spaces do not leak."""
        sim, sched = make_sched(6)
        a = sched.submit(spec("a", 2))
        b = sched.submit(spec("b", 4))
        sim.run()
        assert a.results() == [2.0] * 2
        assert b.results() == [4.0] * 4
        assert set(a.nodes).isdisjoint(b.nodes)

    def test_custom_launch_and_finalize(self):
        sim, sched = make_sched(2)
        seen = []

        def launch(job):
            def prog(ctx):
                yield ctx.sim.timeout(0.0)
                return ctx.rank

            return [
                sim.process(prog(job.comm.ctx(r)), name=f"x{r}")
                for r in range(job.comm.size)
            ]

        def finalize(job):
            seen.append(sim.now)
            yield sim.timeout(0.0)

        job = sched.submit(
            JobSpec(name="c", n_nodes=2, launch=launch, finalize=finalize)
        )
        sim.run()
        assert job.state == DONE
        assert job.results() == [0, 1]
        assert len(seen) == 1

    def test_submit_validation(self):
        sim, sched = make_sched(4)
        with pytest.raises(SchedulerError):
            sched.submit(spec("zero", 0))
        with pytest.raises(SchedulerError):
            sched.submit(spec("huge", 5))
        with pytest.raises(SchedulerError):
            sched.submit(JobSpec(name="empty", n_nodes=2))

    def test_bad_policy_rejected(self):
        with pytest.raises(PlacementError):
            make_sched(4, policy="densest")


# ---------------------------------------------------------------------------
# Queueing and backfill
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_fifo_waits_for_release(self):
        sim, sched = make_sched(4)
        a = sched.submit(spec("a", 4))
        b = sched.submit(spec("b", 4))
        assert b.state == QUEUED
        sim.run()
        assert a.state == DONE and b.state == DONE
        assert b.place_t >= a.end_t

    def test_backfill_small_job_jumps_blocked_head(self):
        sim, sched = make_sched(4)
        hog = sched.submit(spec("hog", 3))
        big = sched.submit(spec("big", 4))   # blocked head
        small = sched.submit(spec("small", 1))  # fits right now
        assert big.state == QUEUED
        assert small.state != QUEUED  # backfilled immediately
        sim.run()
        assert {j.state for j in (hog, big, small)} == {DONE}
        assert sched.stats["backfilled"] == 1
        assert sim.stats.serve_backfills == 1

    def test_owner_map_tracks_reservations(self):
        sim, sched = make_sched(4)
        job = sched.submit(spec("j", 2))
        assert sched.owner_of(job.nodes[0]) == job.id
        assert sched.n_free == 2
        sim.run()
        assert sched.owner_of(job.nodes[0]) is None

    def test_serve_counters(self):
        sim, sched = make_sched(4)
        sched.submit(spec("a", 2))
        sched.submit(spec("b", 2))
        sim.run()
        assert sim.stats.serve_jobs == 2
        assert sched.stats["submitted"] == 2
        assert sched.stats["completed"] == 2


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------

class TestCancel:
    def test_cancel_queued(self):
        sim, sched = make_sched(4)
        a = sched.submit(spec("a", 4))
        b = sched.submit(spec("b", 4))
        sched.cancel(b)
        assert b.state == CANCELLED
        assert b.nodes is None
        sim.run()
        assert a.state == DONE
        assert sched.stats["cancelled"] == 1

    def test_cancel_placing_rolls_back_reservation(self):
        sim, sched = make_sched(4)
        job = sched.submit(spec("j", 2))
        assert job.state == "placing"
        sched.cancel(job)  # lands inside the launch delay
        sim.run()
        assert job.state == CANCELLED
        assert job.comm is None
        assert sched.n_free == 4

    def test_cancel_unblocks_queued_job(self):
        sim, sched = make_sched(4)
        hog = sched.submit(spec("hog", 4))
        waiting = sched.submit(spec("w", 4))
        sched.cancel(hog)
        sim.run()
        assert hog.state == CANCELLED
        assert waiting.state == DONE

    def test_cancel_running_raises(self):
        sim, sched = make_sched(2)
        job = sched.submit(spec("j", 2, prog=_slow_prog))
        sim.run(until=us(500.0))
        assert job.state == RUNNING
        with pytest.raises(SchedulerError):
            sched.cancel(job)
        sim.run()
        assert job.state == DONE

    def test_cancel_terminal_is_noop(self):
        sim, sched = make_sched(2)
        job = sched.submit(spec("j", 2))
        sim.run()
        sched.cancel(job)
        assert job.state == DONE


def _slow_prog(ctx):
    yield ctx.sim.timeout(1e-3)
    out = np.zeros(4)
    yield from ctx.allreduce(np.ones(4), out)


# ---------------------------------------------------------------------------
# Release and teardown
# ---------------------------------------------------------------------------

class TestRelease:
    def test_release_refuses_live_jobs(self):
        sim, sched = make_sched(2)
        sched.submit(spec("j", 2, prog=_slow_prog))
        with pytest.raises(SchedulerError):
            sched.release()
        sim.run()
        sched.release()
        sched.release()  # idempotent
        with pytest.raises(SchedulerError):
            sched.submit(spec("late", 1))

    def test_fabric_freed_on_release(self):
        sim, sched = make_sched(2)
        sched.submit(spec("j", 2))
        sim.run()
        sched.release()
        assert sched.fabric._freed


# ---------------------------------------------------------------------------
# Placement quality reaches the sub-communicator
# ---------------------------------------------------------------------------

class TestSubCommTuning:
    def test_fragmented_placement_detected_by_subcomm(self):
        topo = TopologySpec(kind="fattree", pod_size=4,
                            oversubscription=4.0)
        sim, sched = make_sched(16, policy="spread", topo=topo)
        job = sched.submit(spec("frag", 8, prog=_slow_prog))
        sim.run(until=us(500.0))
        assert job.state == RUNNING
        # Spread put one rank in each pod twice over: the derived
        # communicator sees the fragmentation and keeps hierarchical
        # fallback available (PR 2 machinery, no extra wiring).
        assert len(job.comm.locality_groups) == 4
        assert job.comm.hier_capable
        sim.run()
        assert job.state == DONE

    def test_packed_placement_is_one_domain(self):
        topo = TopologySpec(kind="fattree", pod_size=4,
                            oversubscription=4.0)
        sim, sched = make_sched(16, policy="packed", topo=topo)
        job = sched.submit(spec("tight", 4, prog=_slow_prog))
        sim.run(until=us(500.0))
        assert job.state == RUNNING
        assert len(job.comm.locality_groups) == 1
        assert not job.comm.fragmented
        sim.run()


# ---------------------------------------------------------------------------
# Workload helpers
# ---------------------------------------------------------------------------

class TestWorkload:
    def test_open_loop_arrivals_deterministic(self):
        a = open_loop_arrivals(1000.0, 50, seed=3)
        b = open_loop_arrivals(1000.0, 50, seed=3)
        c = open_loop_arrivals(1000.0, 50, seed=4)
        assert a == b and a != c
        assert len(a) == 50
        assert all(t2 >= t1 for t1, t2 in zip(a, a[1:]))
        mean_gap = a[-1] / (len(a) - 1)
        assert 0.5e-3 < mean_gap < 2e-3  # ~1/rate

    def test_arrivals_validation(self):
        with pytest.raises(ValueError):
            open_loop_arrivals(0.0, 5)
        with pytest.raises(ValueError):
            open_loop_arrivals(10.0, 0)

    def test_percentile_matches_numpy(self):
        vals = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        for q in (0, 25, 50, 90, 99, 100):
            assert percentile(vals, q) == pytest.approx(
                float(np.percentile(vals, q))
            )
        assert percentile([4.0], 99) == 4.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_request_log_summary(self):
        sim = Simulator()
        log = RequestLog(sim)

        def driver():
            for i in range(4):
                req = log.arrived(i, payload=i)
                log.started(req)
                yield sim.timeout(1e-3)
                log.completed(req)

        sim.process(driver(), name="d")
        sim.run()
        s = log.summary()
        assert s["n_offered"] == 4
        assert s["n_completed"] == 4
        assert s["n_dropped"] == 0
        assert s["p50_s"] == pytest.approx(1e-3)
        assert s["goodput_rps"] == pytest.approx(4 / s["span_s"])

    def test_bounded_queue_drops(self):
        sim = Simulator()
        tile = MandelbrotConfig(width=32, height=32, strip_height=16,
                                max_iter=16)
        svc = TileService(
            sim, TileServiceConfig(tile=tile, max_queue=1), name="drop"
        )
        # No job attached: the queue never drains, so arrivals past the
        # bound are dropped at the front door.
        svc.submit(0)
        svc.submit(1)
        svc.submit(2)
        assert svc.log.summary()["n_dropped"] == 2
        assert len(svc._queue) == 1


# ---------------------------------------------------------------------------
# Tile service end to end
# ---------------------------------------------------------------------------

class TestTileService:
    def run_service(self, backend="exact", n_req=5, rate=500.0):
        sim = Simulator()
        topo = TopologySpec(kind="fattree", pod_size=4,
                            oversubscription=4.0)
        cluster = build_cluster(
            sim, ClusterSpec(nodes=8, gpus_per_node=0, topology=topo)
        )
        sched = ClusterScheduler(cluster, policy="packed",
                                 backend=backend)
        tile = MandelbrotConfig(width=64, height=64, strip_height=16,
                                max_iter=32)
        svc = TileService(sim, TileServiceConfig(tile=tile), name="t")
        job = sched.submit(svc.job_spec(n_nodes=4))
        OpenLoopDriver(
            sim, svc, open_loop_arrivals(rate, n_req, seed=2, start=0.01),
            name="drv",
        ).start()
        sim.run()
        return sim, sched, svc, job

    def test_exact_backend_serves_and_verifies(self):
        sim, sched, svc, job = self.run_service("exact")
        assert job.state == DONE
        s = svc.log.summary()
        assert s["n_completed"] == 5
        svc.verify()
        assert sim.stats.serve_requests == 5
        sched.release()

    def test_analytic_backend_bit_exact(self):
        _, _, svc, job = self.run_service("analytic")
        assert job.state == DONE
        svc.verify()

    def test_pricing_backend_rejected(self):
        with pytest.raises(Exception):
            sim, sched, svc, job = self.run_service("pricing")

    def test_latencies_rise_under_overload(self):
        _, _, slow, _ = self.run_service(n_req=12, rate=50_000.0)
        _, _, fast, _ = self.run_service(n_req=12, rate=50.0)
        assert (
            slow.log.summary()["p99_s"] > fast.log.summary()["p99_s"]
        )
