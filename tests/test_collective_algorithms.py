"""Collective algorithm engine: per-algorithm correctness, selector
policy, config plumbing, and adaptive-vs-seed timing guards."""

import numpy as np
import pytest

from repro.dcgn import DcgnConfig, DcgnRuntime
from repro.hw import build_cluster, paper_cluster
from repro.mpi import (
    AlgorithmSelector,
    CollectiveTuning,
    MpiError,
    MpiJob,
    ReduceOp,
    SEED_TUNING,
    block_placement,
)
from repro.sim import Simulator

KB = 1024
MB = 1024 * 1024


def make_job(n_ranks, tuning=None):
    """One rank per node: every message crosses the interconnect."""
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=n_ranks, gpus_per_node=0)
    )
    job = MpiJob(cluster, block_placement(n_ranks, n_ranks), tuning=tuning)
    return sim, job


def rng(seed):
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Per-algorithm correctness
# ---------------------------------------------------------------------------

ALLREDUCE_ALGOS = ["reduce_bcast", "recursive_doubling", "ring"]


@pytest.mark.parametrize("algo", ALLREDUCE_ALGOS)
@pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 5, 7, 8])
@pytest.mark.parametrize("count", [1, 3, 257])
def test_allreduce_algorithms_sum(algo, n_ranks, count):
    tuning = CollectiveTuning(force_allreduce=algo)
    sim, job = make_job(n_ranks, tuning=tuning)
    payloads = [
        rng(100 * n_ranks + r).standard_normal(count) for r in range(n_ranks)
    ]
    expected = np.sum(payloads, axis=0)
    result = {}

    def prog(ctx):
        send = payloads[ctx.rank].copy()
        recv = np.zeros(count)
        yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
        result[ctx.rank] = recv.copy()

    job.start(prog)
    job.run()
    assert job.comm.stats.get(f"allreduce[{algo}]") == n_ranks
    for r in range(n_ranks):
        assert np.allclose(result[r], expected), f"rank {r} ({algo})"


@pytest.mark.parametrize("algo", ALLREDUCE_ALGOS)
@pytest.mark.parametrize("op,reducer", [
    (ReduceOp.MAX, np.maximum.reduce),
    (ReduceOp.MIN, np.minimum.reduce),
    (ReduceOp.BOR, np.bitwise_or.reduce),
])
def test_allreduce_algorithms_integer_ops_exact(algo, op, reducer):
    n_ranks, count = 6, 33  # non-power-of-two, count not divisible by P
    tuning = CollectiveTuning(force_allreduce=algo)
    sim, job = make_job(n_ranks, tuning=tuning)
    payloads = [
        rng(7 * n_ranks + r).integers(0, 1 << 20, size=count)
        for r in range(n_ranks)
    ]
    expected = reducer(np.stack(payloads))
    result = {}

    def prog(ctx):
        send = payloads[ctx.rank].copy()
        recv = np.zeros(count, dtype=np.int64)
        yield from ctx.allreduce(send, recv, op=op)
        result[ctx.rank] = recv.copy()

    job.start(prog)
    job.run()
    for r in range(n_ranks):
        assert np.array_equal(result[r], expected), f"rank {r} ({algo}/{op})"


@pytest.mark.parametrize("algo,n_ranks", [
    ("ring", 1), ("ring", 2), ("ring", 3), ("ring", 5), ("ring", 8),
    ("recursive_doubling", 1), ("recursive_doubling", 2),
    ("recursive_doubling", 4), ("recursive_doubling", 8),
    ("bruck", 1), ("bruck", 2), ("bruck", 3), ("bruck", 5),
    ("bruck", 6), ("bruck", 7), ("bruck", 8), ("bruck", 12),
])
def test_allgather_algorithms(algo, n_ranks):
    count = 17
    tuning = CollectiveTuning(force_allgather=algo)
    sim, job = make_job(n_ranks, tuning=tuning)
    payloads = [
        rng(31 * n_ranks + r).standard_normal(count) for r in range(n_ranks)
    ]
    result = {}

    def prog(ctx):
        recvbufs = [np.zeros(count) for _ in range(n_ranks)]
        yield from ctx.allgather(payloads[ctx.rank].copy(), recvbufs)
        result[ctx.rank] = [b.copy() for b in recvbufs]

    job.start(prog)
    job.run()
    assert job.comm.stats.get(f"allgather[{algo}]") == n_ranks
    for r in range(n_ranks):
        for src in range(n_ranks):
            assert np.allclose(result[r][src], payloads[src]), (
                f"rank {r} block {src} ({algo})"
            )


def test_allgather_recursive_doubling_rejects_non_pof2():
    sim, job = make_job(
        3, tuning=CollectiveTuning(force_allgather="recursive_doubling")
    )

    def prog(ctx):
        recvbufs = [np.zeros(2) for _ in range(3)]
        yield from ctx.allgather(np.zeros(2), recvbufs)

    job.start(prog)
    with pytest.raises(MpiError, match="power-of-two"):
        job.run()


def test_allgather_unequal_blocks_takes_ring():
    """Vector-style unequal blocks must fall back to the ring."""
    n_ranks = 4
    sim, job = make_job(n_ranks)  # default adaptive tuning
    result = {}

    def prog(ctx):
        recvbufs = [np.zeros(r + 1) for r in range(n_ranks)]
        send = np.full(ctx.rank + 1, float(ctx.rank))
        yield from ctx.allgather(send, recvbufs)
        result[ctx.rank] = [b.copy() for b in recvbufs]

    job.start(prog)
    job.run()
    assert job.comm.stats.get("allgather[ring]") == n_ranks
    for r in range(n_ranks):
        for src in range(n_ranks):
            assert np.allclose(result[r][src], float(src))


def test_allgather_tiny_non_pof2_selects_bruck_and_wins():
    """The selector routes tiny blocks on non-power-of-two communicators
    to Bruck (ROADMAP open item), and it must beat the seed ring there."""
    n_ranks, count = 6, 16  # 128 B blocks, far below the Bruck ceiling

    def run(tuning):
        sim, job = make_job(n_ranks, tuning=tuning)

        def prog(ctx):
            recvbufs = [np.zeros(count) for _ in range(n_ranks)]
            yield from ctx.allgather(np.zeros(count), recvbufs)

        job.start(prog)
        job.run()
        return sim.now, job

    t_adaptive, job = run(None)
    assert job.comm.stats.get("allgather[bruck]") == n_ranks
    t_ring, _ = run(CollectiveTuning(force_allgather="ring"))
    assert t_adaptive < t_ring


@pytest.mark.parametrize("algo,n_ranks", [
    ("shift", 2), ("shift", 3), ("shift", 5), ("shift", 8),
    ("pairwise", 2), ("pairwise", 4), ("pairwise", 8),
])
def test_alltoall_algorithms(algo, n_ranks):
    tuning = CollectiveTuning(force_alltoall=algo)
    sim, job = make_job(n_ranks, tuning=tuning)
    result = {}

    def prog(ctx):
        sendbufs = [
            np.array([float(ctx.rank * 100 + dst)]) for dst in range(n_ranks)
        ]
        recvbufs = [np.zeros(1) for _ in range(n_ranks)]
        yield from ctx.alltoall(sendbufs, recvbufs)
        result[ctx.rank] = [float(b[0]) for b in recvbufs]

    job.start(prog)
    job.run()
    assert job.comm.stats.get(f"alltoall[{algo}]") == n_ranks
    for r in range(n_ranks):
        assert result[r] == [float(s * 100 + r) for s in range(n_ranks)]


# ---------------------------------------------------------------------------
# Selector policy
# ---------------------------------------------------------------------------

class TestSelector:
    def test_allreduce_size_thresholds(self):
        sel = AlgorithmSelector(CollectiveTuning(allreduce_ring_min_bytes=64 * KB))
        assert sel.allreduce(1 * KB, 8) == "recursive_doubling"
        assert sel.allreduce(64 * KB, 8) == "ring"
        assert sel.allreduce(4 * MB, 8) == "ring"
        # Tiny communicators never chunk.
        assert sel.allreduce(4 * MB, 2) == "recursive_doubling"

    def test_allgather_thresholds_and_shape_guards(self):
        sel = AlgorithmSelector(CollectiveTuning(allgather_rd_max_bytes=32 * KB))
        assert sel.allgather(1 * KB, 8) == "recursive_doubling"
        assert sel.allgather(1 * MB, 8) == "ring"          # too big
        assert sel.allgather(1 * KB, 6) == "bruck"         # non-pof2 small
        assert sel.allgather(1 * MB, 6) == "ring"          # non-pof2 big
        assert sel.allgather(1 * KB, 8, uniform=False) == "ring"

    def test_allgather_small_communicator_needs_tiny_blocks(self):
        """Below the rank floor RD only runs while packed rounds stay
        eager — at P=4 it saves one round, which rendezvous would eat."""
        sel = AlgorithmSelector()
        assert sel.allgather(1 * KB, 4) == "recursive_doubling"
        assert sel.allgather(16 * KB, 4) == "ring"
        assert sel.allgather(16 * KB, 8) == "recursive_doubling"

    def test_alltoall_policy(self):
        sel = AlgorithmSelector()
        assert sel.alltoall(1 * KB, 8) == "pairwise"
        assert sel.alltoall(1 * KB, 6) == "shift"
        off = AlgorithmSelector(CollectiveTuning(alltoall_pairwise=False))
        assert off.alltoall(1 * KB, 8) == "shift"

    def test_thresholds_config_overridable(self):
        always_ring = AlgorithmSelector(
            CollectiveTuning(allreduce_ring_min_bytes=0)
        )
        assert always_ring.allreduce(1, 8) == "ring"
        never_ring = AlgorithmSelector(
            CollectiveTuning(allreduce_ring_min_bytes=1 << 60)
        )
        assert never_ring.allreduce(64 * MB, 64) == "recursive_doubling"

    def test_force_overrides_and_unknown_name_raises(self):
        sel = AlgorithmSelector(CollectiveTuning(force_allreduce="ring"))
        assert sel.allreduce(0, 64) == "ring"
        bad = AlgorithmSelector(CollectiveTuning(force_allreduce="nope"))
        with pytest.raises(MpiError, match="unknown allreduce algorithm"):
            bad.allreduce(1, 4)

    def test_seed_tuning_pins_seed_algorithms(self):
        sel = AlgorithmSelector(SEED_TUNING)
        assert sel.allreduce(4 * MB, 16) == "reduce_bcast"
        assert sel.allgather(1 * KB, 16) == "ring"
        assert sel.alltoall(1 * KB, 16) == "shift"


# ---------------------------------------------------------------------------
# Adaptive-vs-seed timing guards (the benchmark sweeps far wider)
# ---------------------------------------------------------------------------

def _allreduce_time(n_nodes, nbytes, tuning):
    sim, job = make_job(n_nodes, tuning=tuning)

    def prog(ctx):
        send = np.zeros(nbytes, dtype=np.uint8)
        recv = np.zeros(nbytes, dtype=np.uint8)
        yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

    job.start(prog)
    job.run()
    return sim.now


@pytest.mark.parametrize("n_nodes,nbytes", [
    (4, 1 * KB), (4, 1 * MB), (8, 16 * KB), (16, 1 * MB),
])
def test_adaptive_allreduce_never_slower_than_seed(n_nodes, nbytes):
    t_seed = _allreduce_time(n_nodes, nbytes, SEED_TUNING)
    t_adaptive = _allreduce_time(n_nodes, nbytes, None)
    assert t_adaptive <= t_seed, (
        f"adaptive {t_adaptive:.6f}s > seed {t_seed:.6f}s "
        f"at {n_nodes} nodes / {nbytes} B"
    )


def test_adaptive_allreduce_large_message_strict_win():
    """Acceptance: >1.2× over the seed at 16 nodes / 1 MB."""
    t_seed = _allreduce_time(16, 1 * MB, SEED_TUNING)
    t_adaptive = _allreduce_time(16, 1 * MB, None)
    assert t_seed / t_adaptive > 1.2, (
        f"win only {t_seed / t_adaptive:.2f}×"
    )


# ---------------------------------------------------------------------------
# DCGN-layer dispatch through the same engine
# ---------------------------------------------------------------------------

class TestDcgnDispatch:
    def _run_allreduce(self, tuning, nbytes=256 * KB, n_nodes=4):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
        cfg = DcgnConfig.homogeneous(n_nodes, cpu_threads=1, tuning=tuning)
        rt = DcgnRuntime(cluster, cfg)
        count = nbytes // 8
        result = {}

        def kernel(ctx):
            send = np.full(count, float(ctx.rank + 1))
            recv = np.zeros(count)
            yield from ctx.allreduce(send, recv, op="sum")
            result[ctx.rank] = recv

        rt.launch_cpu(kernel)
        rt.run(max_time=5.0)
        total = sum(range(1, rt.size + 1))
        for r, arr in result.items():
            assert np.allclose(arr, float(total)), f"vrank {r}"
        return rt

    def test_dcgn_allreduce_rides_ring_for_large_payloads(self):
        rt = self._run_allreduce(tuning=None)
        assert rt.node_comm.stats.get("allreduce[ring]", 0) > 0

    def test_dcgn_tuning_forces_algorithm(self):
        rt = self._run_allreduce(
            tuning=CollectiveTuning(force_allreduce="reduce_bcast")
        )
        assert rt.node_comm.stats.get("allreduce[reduce_bcast]", 0) > 0
        assert "allreduce[ring]" not in rt.node_comm.stats
