"""Tests for DCGN's asynchronous CPU API (isend/irecv, paper §5.1)."""

import numpy as np
import pytest

from repro.dcgn import ANY, DcgnConfig, DcgnRuntime
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator, us


def make_runtime(n_nodes=2, cpu_threads=1):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    cfg = DcgnConfig.homogeneous(n_nodes, cpu_threads=cpu_threads)
    return sim, DcgnRuntime(cluster, cfg)


class TestAsyncP2P:
    def test_isend_irecv_roundtrip(self):
        sim, rt = make_runtime()
        result = {}

        def kernel(ctx):
            buf = np.zeros(4, dtype=np.float64)
            if ctx.rank == 0:
                buf[:] = [1, 2, 3, 4]
                h = yield from ctx.isend(1, buf)
                yield from h.wait()
            else:
                h = yield from ctx.irecv(0, buf)
                status = yield from h.wait()
                result["data"] = buf.copy()
                result["src"] = status.source

        rt.launch_cpu(kernel)
        rt.run()
        assert np.array_equal(result["data"], [1, 2, 3, 4])
        assert result["src"] == 0

    def test_isend_snapshot_semantics(self):
        """Buffer reuse after isend must not corrupt the message."""
        sim, rt = make_runtime()
        result = {}

        def kernel(ctx):
            buf = np.zeros(2, dtype=np.int64)
            if ctx.rank == 0:
                buf[:] = [7, 8]
                h = yield from ctx.isend(1, buf)
                buf[:] = [0, 0]  # overwrite immediately
                yield from h.wait()
            else:
                yield from ctx.recv(0, buf)
                result["data"] = buf.copy()

        rt.launch_cpu(kernel)
        rt.run()
        assert list(result["data"]) == [7, 8]

    def test_overlapping_requests_pipeline(self):
        """With concurrent senders, posting irecvs up front beats
        sequential recvs (the reason the Mandelbrot master benefits)."""

        def run(pipelined):
            sim, rt = make_runtime(n_nodes=2, cpu_threads=2)
            # ranks 0,1 on node 0; 2,3 on node 1.  Ranks 1-3 all send
            # two messages to rank 0 concurrently.
            marks = {}
            msgs_per_sender = 2
            n_msgs = 3 * msgs_per_sender

            def master(ctx):
                bufs = [np.zeros(1, dtype=np.int64) for _ in range(n_msgs)]
                t0 = ctx.sim.now
                if pipelined:
                    handles = []
                    for b in bufs:
                        h = yield from ctx.irecv(ANY, b)
                        handles.append(h)
                    for h in handles:
                        yield from h.wait()
                else:
                    for b in bufs:
                        yield from ctx.recv(ANY, b)
                marks["elapsed"] = ctx.sim.now - t0
                marks["vals"] = sorted(int(b[0]) for b in bufs)

            def sender(ctx):
                msg = np.zeros(1, dtype=np.int64)
                for i in range(msgs_per_sender):
                    msg[0] = ctx.rank * 10 + i
                    yield from ctx.send(0, msg)

            rt.launch_cpu(master, ranks=[0])
            rt.launch_cpu(sender, ranks=[1, 2, 3])
            rt.run()
            return marks

        seq = run(False)
        pipe = run(True)
        expected = sorted([10, 11, 20, 21, 30, 31])
        assert pipe["vals"] == seq["vals"] == expected
        assert pipe["elapsed"] < seq["elapsed"]

    def test_test_method_polls_completion(self):
        sim, rt = make_runtime()
        result = {}

        def kernel(ctx):
            buf = np.zeros(1)
            if ctx.rank == 0:
                h = yield from ctx.isend(1, buf)
                # May or may not be done yet; wait() resolves either way.
                _ = h.test()
                yield from h.wait()
                result["done"] = h.test()
            else:
                yield from ctx.recv(0, buf)

        rt.launch_cpu(kernel)
        rt.run()
        assert result["done"] is True

    def test_async_mixed_with_blocking(self):
        """An irecv can match a blocking send, and vice versa."""
        sim, rt = make_runtime()
        result = {}

        def kernel(ctx):
            buf = np.zeros(1, dtype=np.int32)
            if ctx.rank == 0:
                buf[0] = 5
                yield from ctx.send(1, buf)  # blocking
                h = yield from ctx.irecv(1, buf)  # async
                yield from h.wait()
                result["final"] = int(buf[0])
            else:
                h = yield from ctx.irecv(0, buf)
                yield from h.wait()
                buf[0] *= 3
                yield from ctx.send(0, buf)

        rt.launch_cpu(kernel)
        rt.run()
        assert result["final"] == 15
