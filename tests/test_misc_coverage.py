"""Coverage for heterogeneous configs, RNG streams, reports, tracing."""

import numpy as np
import pytest

from repro.dcgn import DcgnConfig, DcgnRuntime, NodeConfig
from repro.hw import HWParams, build_cluster, paper_cluster
from repro.sim import RngStreams, Simulator, stable_hash, us


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).stream("x").random(5)
        b = RngStreams(42).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        r = RngStreams(42)
        a = r.stream("a").random(5)
        b = r.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random(5)
        b = RngStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        r = RngStreams(0)
        assert r.stream("s") is r.stream("s")

    def test_jitter_zero_scale(self):
        assert RngStreams(0).jitter("x", 0.0) == 0.0

    def test_jitter_positive(self):
        r = RngStreams(0)
        samples = [r.jitter("x", 1e-6) for _ in range(50)]
        assert all(s >= 0 for s in samples)
        assert np.mean(samples) == pytest.approx(1e-6, rel=0.6)

    def test_stable_hash_is_stable(self):
        assert stable_hash("gpu0.0") == stable_hash("gpu0.0")
        assert stable_hash("a") != stable_hash("b")


class TestHeterogeneousConfigs:
    def test_asymmetric_nodes(self):
        """One node contributes CPUs only, the other GPUs only."""
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=2))
        cfg = DcgnConfig(
            [
                NodeConfig(cpu_threads=2, gpus=0),
                NodeConfig(cpu_threads=0, gpus=2, slots_per_gpu=2),
            ]
        )
        rt = DcgnRuntime(cluster, cfg)
        # vranks: 0,1 cpu@n0; 2,3 gpu0 slots; 4,5 gpu1 slots @n1.
        assert rt.size == 6
        result = {}

        def cpu_kernel(ctx):
            buf = np.zeros(1, dtype=np.int64)
            if ctx.rank == 0:
                got = []
                for _ in range(4):
                    st = yield from ctx.recv(-1, buf)  # ANY
                    got.append((st.source, int(buf[0])))
                result["got"] = sorted(got)
            else:
                yield ctx.sim.timeout(0.0)

        def gpu_kernel(kctx):
            comm = kctx.comm
            slot = kctx.block_idx % comm.n_slots
            dbuf = kctx.device.alloc(1, dtype=np.int64)
            dbuf.data[0] = comm.rank(slot) * 100
            yield from comm.send(slot, 0, dbuf)
            dbuf.free()

        rt.launch_cpu(cpu_kernel)
        rt.launch_gpu(gpu_kernel)
        rt.run()
        assert result["got"] == [(2, 200), (3, 300), (4, 400), (5, 500)]

    def test_heterogeneous_barrier(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=2))
        cfg = DcgnConfig(
            [
                NodeConfig(cpu_threads=1, gpus=1, slots_per_gpu=1),
                NodeConfig(cpu_threads=2, gpus=0),
            ]
        )
        rt = DcgnRuntime(cluster, cfg)
        done = []

        def cpu_kernel(ctx):
            yield from ctx.barrier()
            done.append(ctx.rank)

        def gpu_kernel(kctx):
            yield from kctx.comm.barrier(0)
            done.append(kctx.comm.rank(0))

        rt.launch_cpu(cpu_kernel)
        rt.launch_gpu(gpu_kernel)
        rt.run()
        assert sorted(done) == [0, 1, 2, 3]


class TestDcgnReport:
    def test_report_exposes_stats(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        rt = DcgnRuntime(cluster, DcgnConfig.homogeneous(1, cpu_threads=2))

        def kernel(ctx):
            buf = np.zeros(1)
            if ctx.rank == 0:
                yield from ctx.send(1, buf)
            else:
                yield from ctx.recv(0, buf)
            yield from ctx.barrier()
            return ctx.rank

        rt.launch_cpu(kernel)
        report = rt.run()
        assert report.cpu_results() == [0, 1]
        stats = report.comm_stats()
        assert stats.get("req.send", 0) == 1
        assert stats.get("req.recv", 0) == 1
        assert stats.get("coll.barrier", 0) == 1
        assert report.finished_at > 0

    def test_polling_stats_shape(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        rt = DcgnRuntime(
            cluster, DcgnConfig.homogeneous(1, cpu_threads=0, gpus=2)
        )

        def gpu_kernel(kctx):
            yield from kctx.comm.barrier(0)

        rt.launch_gpu(gpu_kernel)
        report = rt.run()
        stats = report.polling_stats()
        assert len(stats) == 2
        for v in stats.values():
            assert set(v) == {"polls", "empty_polls", "pcie_probes"}


class TestJitter:
    def test_jitter_changes_timings_across_seeds(self):
        params = HWParams(jitter_us=10.0)

        def run(seed):
            sim = Simulator()
            cluster = build_cluster(
                sim, paper_cluster(nodes=1, params=params, seed=seed)
            )
            device = cluster.nodes[0].gpus[0]
            from repro.gpusim import LaunchConfig, launch_kernel

            def kern(ctx):
                yield from ctx.compute(seconds=us(100.0))

            launch_kernel(device, kern, LaunchConfig(grid_blocks=4))
            sim.run()
            return sim.now

        assert run(1) != run(2)

    def test_no_jitter_is_deterministic(self):
        def run(seed):
            sim = Simulator()
            cluster = build_cluster(sim, paper_cluster(nodes=1, seed=seed))
            device = cluster.nodes[0].gpus[0]
            from repro.gpusim import LaunchConfig, launch_kernel

            def kern(ctx):
                yield from ctx.compute(seconds=us(100.0))

            launch_kernel(device, kern, LaunchConfig(grid_blocks=4))
            sim.run()
            return sim.now

        assert run(1) == run(2)


class TestDeterminism:
    def test_full_dcgn_run_bit_identical(self):
        """Same seed → identical simulated completion time."""

        def run():
            sim = Simulator()
            cluster = build_cluster(sim, paper_cluster(nodes=2, seed=3))
            rt = DcgnRuntime(
                cluster,
                DcgnConfig.homogeneous(2, cpu_threads=1, gpus=1),
            )

            def cpu_kernel(ctx):
                buf = np.zeros(8)
                other = 2 if ctx.rank == 0 else 0
                if ctx.rank == 0:
                    yield from ctx.send(other, buf)
                else:
                    yield from ctx.recv(other, buf)
                yield from ctx.barrier()

            def gpu_kernel(kctx):
                yield from kctx.comm.barrier(0)

            rt.launch_cpu(cpu_kernel)
            rt.launch_gpu(gpu_kernel)
            report = rt.run()
            return report.finished_at

        assert run() == run()
