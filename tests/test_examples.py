"""Smoke tests: every example script runs end-to-end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")


def run_example(name, *args, timeout=240):
    path = os.path.join(EXAMPLES, name)
    result = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "MPI  CPU<->CPU" in out
    assert "DCGN GPU<->GPU" in out


def test_mandelbrot_fractal():
    out = run_example(
        "mandelbrot_fractal.py", "--width", "128", "--max-iter", "128"
    )
    assert "speedup" in out
    assert "Strip ownership" in out


def test_cannon_matmul():
    out = run_example("cannon_matmul.py", "--n", "256")
    assert "efficiency" in out
    assert "verified against numpy" in out


def test_nbody_simulation():
    out = run_example(
        "nbody_simulation.py", "--bodies", "256", "1024", "--steps", "2"
    )
    assert "GAS" in out and "DCGN" in out


def test_slots_virtualization():
    out = run_example("slots_virtualization.py")
    assert "slots_per_gpu=1" in out
    assert "slots_per_gpu=4" in out


def test_topology_compare():
    out = run_example("topology_compare.py", "--nodes", "8")
    assert "hierarchical" in out
    assert "What the autotuner derived" in out
