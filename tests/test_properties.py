"""Property-based tests (hypothesis) on core data structures & invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dcgn import DcgnConfig, NodeConfig, RankMap
from repro.dcgn.queues import sleep_poll_wait
from repro.hw import build_cluster, paper_cluster
from repro.mpi import MpiJob, ReduceOp, block_placement
from repro.sim import (
    BandwidthChannel,
    FilterStore,
    Resource,
    Simulator,
    Store,
    us,
)

FAST = settings(max_examples=25, deadline=None)


class TestSimProperties:
    @FAST
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1,
                    max_size=40))
    def test_timeouts_fire_in_sorted_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(d):
            yield sim.timeout(d)
            fired.append(d)

        for d in delays:
            sim.process(proc(d))
        sim.run()
        assert fired == sorted(fired, key=float) or fired == sorted(fired)
        assert len(fired) == len(delays)

    @FAST
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 6),
                    min_size=1, max_size=50))
    def test_store_preserves_fifo_for_any_sequence(self, items):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for x in items:
                yield store.put(x)

        def consumer():
            for _ in items:
                v = yield store.get()
                got.append(v)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == items

    @FAST
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.floats(min_value=1e-6, max_value=1.0),
                 min_size=1, max_size=30),
    )
    def test_resource_never_oversubscribed(self, capacity, holds):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        max_seen = [0]

        def user(hold):
            yield res.request()
            max_seen[0] = max(max_seen[0], res.in_use)
            yield sim.timeout(hold)
            res.release()

        for h in holds:
            sim.process(user(h))
        sim.run()
        assert max_seen[0] <= capacity
        assert res.in_use == 0

    @FAST
    @given(
        st.floats(min_value=0.0, max_value=1e-3),
        st.integers(min_value=0, max_value=1 << 22),
    )
    def test_bandwidth_channel_time_is_affine(self, lat, nbytes):
        sim = Simulator()
        ch = BandwidthChannel(sim, latency_s=lat, bandwidth_Bps=1e9)
        assert ch.transfer_time(nbytes) == pytest.approx(lat + nbytes / 1e9)
        # Monotone in size.
        assert ch.transfer_time(nbytes + 1024) >= ch.transfer_time(nbytes)

    @FAST
    @given(
        st.floats(min_value=1.0, max_value=200.0),
        st.floats(min_value=0.0, max_value=5e-3),
    )
    def test_sleep_poll_quantizes_to_tick_grid(self, poll_us, event_delay):
        """Detection happens at the first poll tick >= the event time."""
        sim = Simulator()
        ev = sim.event()
        marks = {}

        def firer():
            yield sim.timeout(event_delay)
            ev.succeed("v")

        def waiter():
            start = sim.now
            v = yield from sleep_poll_wait(sim, ev, poll_us)
            marks["waited"] = sim.now - start
            return v

        sim.process(firer())
        p = sim.process(waiter())
        sim.run()
        interval = us(poll_us)
        waited = marks["waited"]
        # Never earlier than the event, never a full tick later.
        assert waited >= event_delay - 1e-12
        assert waited <= event_delay + interval + 1e-9
        # On (approximately) a tick boundary.
        ticks = waited / interval
        assert abs(ticks - round(ticks)) < 1e-6


class TestRankMapProperties:
    node_cfg = (
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=1, max_value=4),
        )
        .filter(lambda t: t[0] + t[1] > 0)
        .map(
            lambda t: NodeConfig(
                cpu_threads=t[0], gpus=t[1], slots_per_gpu=t[2]
            )
        )
    )

    @FAST
    @given(st.lists(node_cfg, min_size=1, max_size=5))
    def test_rank_assignment_is_a_bijection(self, node_cfgs):
        cfg = DcgnConfig(node_cfgs)
        rm = RankMap(cfg)
        assert rm.size == cfg.total_ranks
        # Every vrank maps to a resource and back.
        seen = set()
        for v in range(rm.size):
            info = rm.info(v)
            assert info.vrank == v
            key = (
                ("cpu", info.node, info.cpu_index)
                if rm.is_cpu(v)
                else ("gpu", info.node, info.gpu_index, info.slot)
            )
            assert key not in seen
            seen.add(key)

    @FAST
    @given(st.lists(node_cfg, min_size=1, max_size=5))
    def test_ranks_consecutive_within_nodes(self, node_cfgs):
        """Paper §3.2.3: ranks assigned consecutively within a node, in
        increasing order across successive nodes."""
        cfg = DcgnConfig(node_cfgs)
        rm = RankMap(cfg)
        offset = 0
        for n, nc in enumerate(node_cfgs):
            local = rm.local_ranks(n)
            assert local == list(range(offset, offset + nc.ranks))
            # CPUs first, then (gpu, slot) in order.
            for i in range(nc.cpu_threads):
                assert rm.cpu_rank(n, i) == offset + i
            k = nc.cpu_threads
            for g in range(nc.gpus):
                for s in range(nc.slots_per_gpu):
                    assert rm.slot_rank(n, g, s) == offset + k
                    k += 1
            offset += nc.ranks


class TestMpiProperties:
    @FAST
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=7),
        st.sampled_from([np.int32, np.int64, np.float64]),
        st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    def test_bcast_delivers_exact_payload(self, n_ranks, count, root_seed,
                                          dtype, data_seed):
        root = root_seed % n_ranks
        rng = np.random.default_rng(data_seed)
        payload = (rng.integers(-1000, 1000, count)).astype(dtype)
        sim = Simulator()
        n_nodes = 2 if n_ranks % 2 == 0 else 1
        cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
        job = MpiJob(cluster, block_placement(n_ranks, n_nodes))
        result = {}

        def prog(ctx):
            buf = payload.copy() if ctx.rank == root else np.zeros(
                count, dtype=dtype
            )
            yield from ctx.bcast(buf, root=root)
            result[ctx.rank] = buf

        job.start(prog)
        job.run()
        for r in range(n_ranks):
            assert np.array_equal(result[r], payload), f"rank {r}"

    @FAST
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=16),
        st.sampled_from([ReduceOp.SUM, ReduceOp.MAX, ReduceOp.MIN]),
        st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    def test_allreduce_matches_numpy(self, n_ranks, count, op, data_seed):
        rng = np.random.default_rng(data_seed)
        contributions = rng.integers(-50, 50, (n_ranks, count)).astype(
            np.float64
        )
        expected = {
            ReduceOp.SUM: contributions.sum(axis=0),
            ReduceOp.MAX: contributions.max(axis=0),
            ReduceOp.MIN: contributions.min(axis=0),
        }[op]
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        job = MpiJob(cluster, [0] * n_ranks)
        result = {}

        def prog(ctx):
            recv = np.zeros(count)
            yield from ctx.allreduce(contributions[ctx.rank], recv, op=op)
            result[ctx.rank] = recv

        job.start(prog)
        job.run()
        for r in range(n_ranks):
            assert np.allclose(result[r], expected)

    @FAST
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    def test_alltoall_is_a_transpose(self, n_ranks, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 1000, (n_ranks, n_ranks))
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        job = MpiJob(cluster, [0] * n_ranks)
        result = {}

        def prog(ctx):
            sendbufs = [
                np.array([matrix[ctx.rank, dst]], dtype=np.int64)
                for dst in range(n_ranks)
            ]
            recvbufs = [np.zeros(1, dtype=np.int64) for _ in range(n_ranks)]
            yield from ctx.alltoall(sendbufs, recvbufs)
            result[ctx.rank] = [int(b[0]) for b in recvbufs]

        job.start(prog)
        job.run()
        for r in range(n_ranks):
            assert result[r] == list(matrix[:, r])


class TestAppProperties:
    @FAST
    @given(
        st.integers(min_value=16, max_value=64).map(lambda x: x * 2),
        st.integers(min_value=16, max_value=128),
    )
    def test_mandelbrot_strips_tile_the_image(self, size, max_iter):
        from repro.apps import mandelbrot as mb

        cfg = mb.MandelbrotConfig(
            width=size, height=size, strip_height=size // 2,
            max_iter=max_iter,
        )
        ref = mb.mandelbrot_reference(cfg)
        strips = [mb._strip_pixels(cfg, i) for i in range(cfg.n_strips)]
        assert np.array_equal(np.vstack(strips), ref)
        counts = mb.strip_iteration_counts(cfg)
        assert counts.sum() == ref.sum()

    @FAST
    @given(
        st.integers(min_value=8, max_value=200),
        st.integers(min_value=1, max_value=9),
    )
    def test_nbody_chunks_partition(self, n_bodies, p):
        from repro.apps import nbody

        bounds = [nbody._chunk_bounds(n_bodies, p, r) for r in range(p)]
        # Contiguous, ordered, covering.
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n_bodies
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0
            assert a1 >= a0
