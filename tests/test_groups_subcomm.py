"""Groups, derived communicators, and hierarchical-on-subcomm tests.

Covers the PR 4 redesign: group algebra, ``split`` with non-contiguous
colors and key-reordered ranks, collectives on sub-communicators at
non-power-of-two sizes, concurrent collectives on disjoint
sub-communicators, hierarchical collectives on *unequal* pods, and
tag-space isolation between parent and derived communicators.
"""

import numpy as np
import pytest

from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.mpi import (
    COMM_TYPE_LOCALITY,
    COMM_TYPE_NODE,
    CollectiveTuning,
    Group,
    GROUP_EMPTY,
    MpiError,
    MpiJob,
    RankError,
    ReduceOp,
    UNDEFINED,
    block_placement,
    pod_cyclic_placement,
)
from repro.sim import Simulator

KB = 1024
MB = 1024 * 1024


def make_job(n_ranks, n_nodes=None, tuning=None, topo=None, placement=None):
    sim = Simulator()
    nodes = n_nodes if n_nodes is not None else n_ranks
    spec = ClusterSpec(nodes=nodes, gpus_per_node=0, topology=topo)
    cluster = build_cluster(sim, spec)
    if placement is None:
        placement = block_placement(n_ranks, nodes)
    return sim, MpiJob(cluster, placement, tuning=tuning)


def fattree(pod=4, over=2.0):
    return TopologySpec(kind="fattree", pod_size=pod, oversubscription=over)


# ---------------------------------------------------------------------------
# Group algebra
# ---------------------------------------------------------------------------

class TestGroupAlgebra:
    def test_incl_is_ordered_subset_and_permutation(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([2, 0]).members == (30, 10)
        assert g.incl([2, 0]).rank(30) == 0

    def test_excl_keeps_order(self):
        g = Group([10, 20, 30, 40])
        assert g.excl([1, 3]).members == (10, 30)

    def test_union_intersection_difference(self):
        a = Group([1, 2, 3])
        b = Group([3, 4, 2])
        assert a.union(b).members == (1, 2, 3, 4)
        assert a.intersection(b).members == (2, 3)
        assert a.difference(b).members == (1,)

    def test_translate_ranks(self):
        a = Group([5, 6, 7, 8])
        b = Group([8, 5])
        assert a.translate_ranks([0, 1, 3], b) == [1, UNDEFINED, 0]

    def test_empty_and_errors(self):
        assert GROUP_EMPTY.size == 0
        with pytest.raises(MpiError):
            Group([1, 1])
        with pytest.raises(RankError):
            Group([1]).incl([2])

    def test_comm_group_roundtrip(self):
        sim, job = make_job(4)
        g = job.comm.group
        assert g.members == (0, 1, 2, 3)
        sub = job.comm.create(g.incl([3, 1]))
        assert sub.world_ranks == (3, 1)
        assert sub.rank_of_world(1) == 1
        assert job.comm.create(GROUP_EMPTY) is None
        with pytest.raises(MpiError, match="not part of"):
            job.comm.create(Group([7]))


# ---------------------------------------------------------------------------
# split / split_type / dup / create (collective, per-rank)
# ---------------------------------------------------------------------------

class TestSplit:
    def test_split_non_contiguous_colors_and_key_reorder(self):
        """Colors need not be dense; keys reorder ranks within a color."""
        sim, job = make_job(6)
        out = {}
        colors = [9, 300, 9, UNDEFINED, 300, 9]
        keys = [2, 0, 1, 0, 5, 0]  # color 9: ranks 5,2,0; color 300: 1,4

        def prog(ctx):
            sub = yield from ctx.split(colors[ctx.rank], keys[ctx.rank])
            if sub is None:
                out[ctx.rank] = None
            else:
                out[ctx.rank] = (sub.size, sub.rank,
                                 sub.comm.world_ranks)

        job.start(prog)
        job.run()
        assert out[3] is None
        assert out[5] == (3, 0, (5, 2, 0))
        assert out[2] == (3, 1, (5, 2, 0))
        assert out[0] == (3, 2, (5, 2, 0))
        assert out[1] == (2, 0, (1, 4))
        assert out[4] == (2, 1, (1, 4))

    def test_split_collectives_non_pof2(self):
        """Collectives on a derived comm at non-power-of-two size."""
        sim, job = make_job(7)
        results = {}

        def prog(ctx):
            # Ranks 0..4 form a 5-wide subcomm; 5,6 opt out.
            color = 0 if ctx.rank < 5 else UNDEFINED
            sub = yield from ctx.split(color)
            if sub is None:
                return
            send = np.full(100, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(100, dtype=np.int64)
            yield from sub.allreduce(send, recv, op=ReduceOp.SUM)
            results[ctx.rank] = int(recv[0])
            recvs = [np.zeros(100, dtype=np.int64) for _ in range(5)]
            yield from sub.allgather(send, recvs)
            assert [int(b[0]) for b in recvs] == [1, 2, 3, 4, 5]

        job.start(prog)
        job.run()
        assert all(results[r] == 15 for r in range(5))

    def test_dup_same_order_fresh_comm(self):
        sim, job = make_job(3)
        out = {}

        def prog(ctx):
            d = yield from ctx.dup()
            out[ctx.rank] = (d.rank, d.comm is ctx.comm)

        job.start(prog)
        job.run()
        assert out == {0: (0, False), 1: (1, False), 2: (2, False)}

    def test_create_orders_by_group(self):
        sim, job = make_job(4)
        out = {}

        def prog(ctx):
            sub = yield from ctx.create(Group([2, 0]))
            out[ctx.rank] = None if sub is None else sub.rank

        job.start(prog)
        job.run()
        assert out == {0: 1, 1: None, 2: 0, 3: None}

    def test_split_type_node_and_locality(self):
        sim, job = make_job(
            8, n_nodes=4, topo=fattree(pod=2),
            placement=block_placement(8, 4),
        )
        out = {}

        def prog(ctx):
            node_comm = yield from ctx.split_type(COMM_TYPE_NODE)
            pod_comm = yield from ctx.split_type(COMM_TYPE_LOCALITY)
            out[ctx.rank] = (node_comm.size, pod_comm.size)

        job.start(prog)
        job.run()
        # 2 ranks per node, pods of 2 nodes => 4 ranks per pod comm.
        assert all(v == (2, 4) for v in out.values())

    def test_tag_space_isolation_parent_vs_derived(self):
        """Messages on the parent cannot match receives on the derived
        communicator even for the same (source, tag) pair."""
        sim, job = make_job(2)
        got = {}

        def prog(ctx):
            sub = yield from ctx.split(0, ctx.rank)
            if ctx.rank == 0:
                # Same peer, same tag, two different communicators.
                a = np.array([111], dtype=np.int64)
                b = np.array([222], dtype=np.int64)
                r1 = ctx.isend(a, 1, tag=5)
                yield from sub.send(b, 1, tag=5)
                yield from r1.wait()
            else:
                buf_sub = np.zeros(1, dtype=np.int64)
                buf_par = np.zeros(1, dtype=np.int64)
                # Receive on the derived comm FIRST: must get the
                # derived-comm payload, not the earlier parent send.
                yield from sub.recv(buf_sub, 0, tag=5)
                yield from ctx.recv(buf_par, 0, tag=5)
                got["sub"] = int(buf_sub[0])
                got["par"] = int(buf_par[0])

        job.start(prog)
        job.run()
        assert got == {"sub": 222, "par": 111}

    def test_concurrent_collectives_on_disjoint_subcomms(self):
        """Disjoint sub-communicators run collectives concurrently:
        total time is bounded by the max, not the sum."""
        n = 8
        nbytes = 1 * MB

        def run(n_groups):
            sim, job = make_job(n)
            done = {}

            def prog(ctx):
                color = ctx.rank % n_groups
                sub = yield from ctx.split(color, ctx.rank)
                send = np.zeros(nbytes, dtype=np.uint8)
                recv = np.zeros(nbytes, dtype=np.uint8)
                t0 = ctx.sim.now
                yield from sub.allreduce(send, recv, op=ReduceOp.MAX)
                done[ctx.rank] = ctx.sim.now - t0

            job.start(prog)
            job.run()
            return max(done.values())

        # Two disjoint 4-wide comms vs one 8-wide: the split halves
        # must not serialize behind each other.
        t_two = run(2)
        t_one = run(1)
        assert t_two < t_one

    def test_subcomm_autotunes_for_subfabric(self):
        """An intra-pod communicator derives pod-local thresholds (no
        oversubscription), distinct from the parent's."""
        sim, job = make_job(
            8, n_nodes=8, topo=fattree(pod=4),
            placement=list(range(8)),
        )
        comm = job.comm
        subs = comm.split_type(COMM_TYPE_LOCALITY)
        pod_comm = subs[0]
        assert pod_comm.size == 4
        # The parent saw an oversubscribed fabric: hierarchical gates
        # may be open; the pod-local comm never crosses the spine.
        assert pod_comm.tuning.allreduce_hier_min_bytes is None
        assert not pod_comm.hier_capable

    def test_explicit_tuning_inherited_by_derived(self):
        sim, job = make_job(4, tuning=CollectiveTuning(force_allreduce="ring"))
        sub = job.comm.split([0, 0, 1, 1])[0]
        assert sub.tuning.force_allreduce == "ring"


# ---------------------------------------------------------------------------
# Hierarchical collectives on sub-communicators
# ---------------------------------------------------------------------------

class TestHierarchicalSubcomms:
    @pytest.mark.parametrize("n_nodes", [6, 7, 9])
    def test_unequal_pod_allreduce(self, n_nodes):
        """Pods of unequal size (pod_size 4 over 6/7/9 nodes) run the
        leader-based hierarchical allreduce correctly."""
        sim, job = make_job(
            n_nodes, n_nodes=n_nodes, topo=fattree(),
            placement=list(range(n_nodes)),
            tuning=CollectiveTuning(force_allreduce="hierarchical"),
        )
        results = {}

        def prog(ctx):
            send = np.arange(500, dtype=np.int64) * (ctx.rank + 1)
            recv = np.zeros(500, dtype=np.int64)
            yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
            results[ctx.rank] = recv

        job.start(prog)
        job.run()
        factor = sum(range(1, n_nodes + 1))
        expected = np.arange(500, dtype=np.int64) * factor
        for r in range(n_nodes):
            assert np.array_equal(results[r], expected)
        assert job.comm.stats.get("allreduce[hierarchical]") == n_nodes

    @pytest.mark.parametrize("n_nodes", [6, 8, 9])
    def test_hierarchical_allgather(self, n_nodes):
        sim, job = make_job(
            n_nodes, n_nodes=n_nodes, topo=fattree(),
            placement=pod_cyclic_placement(n_nodes, 4)
            if n_nodes % 4 == 0 else list(range(n_nodes)),
            tuning=CollectiveTuning(force_allgather="hierarchical"),
        )

        def prog(ctx):
            send = np.full(37, ctx.rank, dtype=np.int64)
            recvs = [np.zeros(37, dtype=np.int64) for _ in range(ctx.size)]
            yield from ctx.allgather(send, recvs)
            for j in range(ctx.size):
                assert (recvs[j] == j).all()

        job.start(prog)
        job.run()
        assert job.comm.stats.get("allgather[hierarchical]") == n_nodes

    def test_hierarchical_allgather_vector_blocks(self):
        """Unequal per-rank block sizes (the vector variant)."""
        sim, job = make_job(
            6, n_nodes=6, topo=fattree(), placement=list(range(6)),
            tuning=CollectiveTuning(force_allgather="hierarchical"),
        )

        def prog(ctx):
            send = np.full(10 * (ctx.rank + 1), ctx.rank, dtype=np.int64)
            recvs = [
                np.zeros(10 * (j + 1), dtype=np.int64)
                for j in range(ctx.size)
            ]
            yield from ctx.allgather(send, recvs)
            for j in range(ctx.size):
                assert recvs[j].size == 10 * (j + 1)
                assert (recvs[j] == j).all()

        job.start(prog)
        job.run()

    @pytest.mark.parametrize("n_nodes", [6, 8])
    def test_hierarchical_alltoall(self, n_nodes):
        sim, job = make_job(
            n_nodes, n_nodes=n_nodes, topo=fattree(),
            placement=list(range(n_nodes)),
            tuning=CollectiveTuning(force_alltoall="hierarchical"),
        )

        def prog(ctx):
            sends = [
                np.full(21, ctx.rank * 100 + j, dtype=np.int64)
                for j in range(ctx.size)
            ]
            recvs = [np.zeros(21, dtype=np.int64) for _ in range(ctx.size)]
            yield from ctx.alltoall(sends, recvs)
            for j in range(ctx.size):
                assert (recvs[j] == j * 100 + ctx.rank).all()

        job.start(prog)
        job.run()
        assert job.comm.stats.get("alltoall[hierarchical]") == n_nodes

    def test_unequal_pod_hierarchical_beats_flat_ring(self):
        """On a fragmented 2:1 fat tree with unequal pods, the
        leader-based hierarchical allreduce beats the flat ring."""
        n_nodes, nbytes = 18, 1 * MB

        def timed(force):
            sim, job = make_job(
                n_nodes, n_nodes=20, topo=fattree(),
                placement=pod_cyclic_placement(20, 4)[:n_nodes],
                tuning=CollectiveTuning(force_allreduce=force),
            )

            def prog(ctx):
                send = np.zeros(nbytes, dtype=np.uint8)
                recv = np.zeros(nbytes, dtype=np.uint8)
                yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

            job.start(prog)
            job.run()
            return sim.now

        assert timed("hierarchical") < timed("ring") / 1.2

    def test_nonblocking_hierarchical_on_subcomms(self):
        """iallreduce through the hierarchical schedule still overlaps."""
        sim, job = make_job(
            8, n_nodes=8, topo=fattree(),
            placement=pod_cyclic_placement(8, 4),
            tuning=CollectiveTuning(force_allreduce="hierarchical"),
        )
        results = {}

        def prog(ctx):
            send = np.full(64, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(64, dtype=np.int64)
            req = ctx.iallreduce(send, recv, op=ReduceOp.SUM)
            yield ctx.sim.timeout(1e-6)
            yield from req.wait()
            results[ctx.rank] = int(recv[0])

        job.start(prog)
        job.run()
        assert all(v == 36 for v in results.values())


# ---------------------------------------------------------------------------
# block_placement uneven blocks (satellite bugfix)
# ---------------------------------------------------------------------------

class TestBlockPlacement:
    def test_uneven_blocks(self):
        assert block_placement(7, 3) == [0, 0, 0, 1, 1, 2, 2]

    def test_even_unchanged(self):
        assert block_placement(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_fewer_ranks_than_nodes(self):
        assert block_placement(2, 4) == [0, 1]

    def test_invalid(self):
        with pytest.raises(MpiError):
            block_placement(0, 4)

    def test_odd_ranks_run_collectives(self):
        """An odd rank count on a small cluster actually runs."""
        sim, job = make_job(5, n_nodes=2)
        results = {}

        def prog(ctx):
            send = np.full(8, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(8, dtype=np.int64)
            yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
            results[ctx.rank] = int(recv[0])

        job.start(prog)
        job.run()
        assert all(v == 15 for v in results.values())
