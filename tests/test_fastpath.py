"""Analytic fast-path backend: cross-checks against the exact simulator.

Property tests for :mod:`repro.mpi.algorithms.fastpath` at P ≤ 16:
identical algorithm selection, completion times within tolerance,
delivered data bit-identical, plus the pricing-only sweep mode and the
observability counters the backend feeds.
"""

import numpy as np
import pytest

from repro.hw import build_cluster, paper_cluster
from repro.mpi import (
    CollectiveTuning,
    MpiError,
    MpiJob,
    ReduceOp,
    block_placement,
)
from repro.sim import Simulator

KB = 1024
MB = 1024 * 1024

#: Analytic vs exact simulated-time tolerance.  Power-of-two grids
#: agree to float precision; the per-step critical-path model follows
#: dependency skew exactly, so the residual error is channel
#: *contention* — concurrent transfers sharing a NIC or spine link
#: serialize in the exact engine but never in the analytic one.
TOL = 0.08

COLLECTIVES = ["allreduce", "allgather", "alltoall", "bcast", "reduce",
               "barrier"]


def run_job(n_ranks, prog_factory, backend, tuning=None):
    """Build a 1-rank-per-node job, run ``prog_factory(rank)`` on every
    rank; returns (sim, job, per-rank result dict)."""
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=n_ranks, gpus_per_node=0)
    )
    job = MpiJob(
        cluster, block_placement(n_ranks, n_ranks), tuning=tuning,
        backend=backend,
    )
    out = {}
    job.start(prog_factory(out))
    job.run()
    return sim, job, out


def collective_prog(op, n_ranks, nbytes, seed=7):
    """A program factory: deterministic per-rank payloads, results
    captured into the shared ``out`` dict."""

    def factory(out):
        def prog(ctx):
            r = ctx.rank
            rng = np.random.default_rng(seed + r)
            if op == "allreduce":
                send = rng.integers(0, 200, nbytes, dtype=np.uint8)
                recv = np.zeros(nbytes, dtype=np.uint8)
                yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
                out[r] = recv
            elif op == "allgather":
                send = rng.integers(0, 255, nbytes, dtype=np.uint8)
                recvbufs = [
                    np.zeros(nbytes, dtype=np.uint8)
                    for _ in range(n_ranks)
                ]
                yield from ctx.allgather(send, recvbufs)
                out[r] = np.concatenate(recvbufs)
            elif op == "alltoall":
                sendbufs = [
                    rng.integers(0, 255, nbytes, dtype=np.uint8)
                    for _ in range(n_ranks)
                ]
                recvbufs = [
                    np.zeros(nbytes, dtype=np.uint8)
                    for _ in range(n_ranks)
                ]
                yield from ctx.alltoall(sendbufs, recvbufs)
                out[r] = np.concatenate(recvbufs)
            elif op == "bcast":
                buf = (
                    rng.integers(0, 255, nbytes, dtype=np.uint8)
                    if r == 0 else np.zeros(nbytes, dtype=np.uint8)
                )
                yield from ctx.bcast(buf, root=0)
                out[r] = buf
            elif op == "reduce":
                send = rng.integers(0, 200, nbytes, dtype=np.uint8)
                recv = np.zeros(nbytes, dtype=np.uint8)
                yield from ctx.reduce(send, recv, op=ReduceOp.MAX, root=0)
                out[r] = recv if r == 0 else send
            elif op == "barrier":
                yield from ctx.barrier()
                out[r] = np.zeros(1, dtype=np.uint8)
            else:  # pragma: no cover - defensive
                raise ValueError(op)

        return prog

    return factory


def algo_keys(job):
    """The collective-algorithm counters the selector bumped."""
    return sorted(k for k in job.comm.stats if "[" in k)


# ---------------------------------------------------------------------------
# Cross-check: exact vs analytic
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("op", COLLECTIVES)
@pytest.mark.parametrize("n_ranks", [4, 5, 8, 13, 16])
def test_analytic_matches_exact(op, n_ranks):
    """Same algorithms, same data, times within tolerance."""
    for nbytes in (1 * KB, 64 * KB):
        sim_e, job_e, out_e = run_job(
            n_ranks, collective_prog(op, n_ranks, nbytes), "exact"
        )
        sim_a, job_a, out_a = run_job(
            n_ranks, collective_prog(op, n_ranks, nbytes), "analytic"
        )
        assert algo_keys(job_a) == algo_keys(job_e)
        # The per-step critical-path model overlaps rounds exactly as
        # the exact engine's spawned wire processes do, so even the
        # non-power-of-two binomial trees (straggler subtrees firing
        # early) price within the uniform tolerance — no special case.
        assert sim_a.now == pytest.approx(sim_e.now, rel=TOL)
        for r in range(n_ranks):
            np.testing.assert_array_equal(out_a[r], out_e[r])


@pytest.mark.parametrize("n_ranks", [4, 8])
def test_analytic_exact_on_pof2(n_ranks):
    """Power-of-two grids have no fold skew: times match to float
    precision, not just tolerance."""
    for op in ("allreduce", "allgather", "alltoall"):
        sim_e, _, _ = run_job(
            n_ranks, collective_prog(op, n_ranks, 4 * KB), "exact"
        )
        sim_a, _, _ = run_job(
            n_ranks, collective_prog(op, n_ranks, 4 * KB), "analytic"
        )
        assert sim_a.now == pytest.approx(sim_e.now, rel=1e-12)


def test_large_message_rendezvous_agrees():
    """≥ eager-threshold payloads exercise the rendezvous pricing."""
    sim_e, _, out_e = run_job(
        8, collective_prog("allreduce", 8, 1 * MB), "exact"
    )
    sim_a, _, out_a = run_job(
        8, collective_prog("allreduce", 8, 1 * MB), "analytic"
    )
    assert sim_a.now == pytest.approx(sim_e.now, rel=TOL)
    np.testing.assert_array_equal(out_a[0], out_e[0])


@pytest.mark.parametrize("force", ["ring", "recursive_doubling",
                                   "reduce_bcast"])
def test_forced_algorithms_agree(force):
    """Every allreduce algorithm family prices within tolerance."""
    tuning = CollectiveTuning(force_allreduce=force)
    for n_ranks in (6, 8):
        sim_e, _, out_e = run_job(
            n_ranks, collective_prog("allreduce", n_ranks, 16 * KB),
            "exact", tuning=tuning,
        )
        sim_a, _, out_a = run_job(
            n_ranks, collective_prog("allreduce", n_ranks, 16 * KB),
            "analytic", tuning=tuning,
        )
        # Composed reduce+bcast schedules overlap their tree rounds in
        # both engines now — uniform tolerance, no straggler carve-out.
        assert sim_a.now == pytest.approx(sim_e.now, rel=TOL)
        for r in range(n_ranks):
            np.testing.assert_array_equal(out_a[r], out_e[r])


# ---------------------------------------------------------------------------
# Mixed blocking / nonblocking and sub-communicators
# ---------------------------------------------------------------------------

def mixed_prog(n_ranks, nbytes):
    def factory(out):
        def prog(ctx):
            r = ctx.rank
            a = np.full(nbytes, r + 1, dtype=np.uint8)
            b = np.zeros(nbytes, dtype=np.uint8)
            req = ctx.iallreduce(a, b, op=ReduceOp.MAX)
            c = np.full(nbytes, r + 10, dtype=np.uint8)
            d = np.zeros(nbytes, dtype=np.uint8)
            yield from ctx.allreduce(c, d, op=ReduceOp.SUM)
            yield from req.wait()
            out[r] = np.concatenate([b, d])
        return prog
    return factory


@pytest.mark.parametrize("n_ranks", [4, 6])
def test_mixed_blocking_nonblocking(n_ranks):
    """An i-collective in flight across a blocking one: the issue-order
    instance claims keep the two backends aligned."""
    _, _, out_e = run_job(n_ranks, mixed_prog(n_ranks, 2 * KB), "exact")
    _, _, out_a = run_job(n_ranks, mixed_prog(n_ranks, 2 * KB), "analytic")
    for r in range(n_ranks):
        np.testing.assert_array_equal(out_a[r], out_e[r])


def split_prog(n_ranks, nbytes):
    def factory(out):
        def prog(ctx):
            r = ctx.rank
            sub = yield from ctx.split(color=r % 2, key=r)
            send = np.full(nbytes, r + 1, dtype=np.uint8)
            recv = np.zeros(nbytes, dtype=np.uint8)
            yield from sub.allreduce(send, recv, op=ReduceOp.SUM)
            out[r] = recv.copy()
            yield from sub.free()
        return prog
    return factory


@pytest.mark.parametrize("n_ranks", [4, 8])
def test_subcommunicator_collectives(n_ranks):
    """Derived communicators inherit the backend; data matches exact."""
    _, job_e, out_e = run_job(n_ranks, split_prog(n_ranks, 4 * KB), "exact")
    _, job_a, out_a = run_job(
        n_ranks, split_prog(n_ranks, 4 * KB), "analytic"
    )
    for r in range(n_ranks):
        np.testing.assert_array_equal(out_a[r], out_e[r])


# ---------------------------------------------------------------------------
# Pricing-only mode
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("op", ["allreduce", "allgather", "alltoall",
                                "bcast"])
def test_pricing_time_bit_identical_to_analytic(op):
    for n_ranks in (5, 8):
        sim_a, _, _ = run_job(
            n_ranks, collective_prog(op, n_ranks, 8 * KB), "analytic"
        )
        sim_p, _, _ = run_job(
            n_ranks, collective_prog(op, n_ranks, 8 * KB), "pricing"
        )
        assert sim_p.now == sim_a.now


def test_pricing_leaves_buffers_untouched():
    """Sweep mode never writes receive buffers (documented contract)."""
    def factory(out):
        def prog(ctx):
            send = np.full(1024, ctx.rank + 1, dtype=np.uint8)
            recv = np.zeros(1024, dtype=np.uint8)
            yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
            out[ctx.rank] = recv
        return prog
    _, _, out = run_job(4, factory, "pricing")
    for r in range(4):
        assert not out[r].any()


def test_unknown_backend_rejected():
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=2, gpus_per_node=0))
    with pytest.raises(MpiError, match="backend"):
        MpiJob(cluster, block_placement(2, 2), backend="magic")


# ---------------------------------------------------------------------------
# Observability counters
# ---------------------------------------------------------------------------

def test_fastpath_stats_counters():
    """fastpath_collectives/rounds tick; completions go through one
    EventBatch (heap traffic stays tiny); zero-copy deliveries are
    counted as views."""
    sim, job, _ = run_job(
        8, collective_prog("allreduce", 8, 4 * KB), "analytic"
    )
    s = sim.stats
    assert s.fastpath_collectives == 1
    assert s.fastpath_rounds >= 1
    assert s.batch_events >= 8  # one completion per rank, batched
    assert s.payload_views > 0
    d = s.as_dict()
    assert d["fastpath_collectives"] == 1


def test_exact_backend_never_ticks_fastpath_counters():
    sim, _, _ = run_job(
        8, collective_prog("allreduce", 8, 4 * KB), "exact"
    )
    assert sim.stats.fastpath_collectives == 0
    assert sim.stats.batch_events == 0


def test_double_deposit_detected():
    """Two collectives issued concurrently by the same rank into one
    instance slot is a programming error the engine reports."""
    from repro.mpi.algorithms.fastpath import _Instance

    inst = _Instance(2)
    inst.deposit(0, None, object(), None)
    with pytest.raises(MpiError, match="deposited twice"):
        inst.deposit(0, None, object(), None)
