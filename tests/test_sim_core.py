"""Unit tests for the discrete-event simulation kernel (repro.sim.core)."""

import pytest

from repro.sim import (
    DeadlockError,
    Event,
    Interrupt,
    Process,
    ScheduleError,
    SimulationError,
    Simulator,
    ms,
    us,
)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_unit_helpers():
    assert us(1) == pytest.approx(1e-6)
    assert ms(2.5) == pytest.approx(2.5e-3)


def test_timeout_advances_time():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(5.0)
    assert p.value == pytest.approx(5.0)


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ScheduleError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "done"

    p = sim.process(proc())
    sim.run()
    assert p.ok
    assert p.value == "done"


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def a():
        yield sim.timeout(1.0)
        log.append(("a", sim.now))
        yield sim.timeout(2.0)
        log.append(("a", sim.now))

    def b():
        yield sim.timeout(2.0)
        log.append(("b", sim.now))

    sim.process(a())
    sim.process(b())
    sim.run()
    assert log == [("a", 1.0), ("b", 2.0), ("a", 3.0)]


def test_equal_time_events_fifo_order():
    sim = Simulator()
    log = []

    def mk(i):
        def proc():
            yield sim.timeout(1.0)
            log.append(i)

        return proc

    for i in range(10):
        sim.process(mk(i)())
    sim.run()
    assert log == list(range(10))


def test_process_joins_process():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return 7

    def parent():
        c = sim.process(child())
        val = yield c
        return val * 2

    p = sim.process(parent())
    sim.run()
    assert p.value == 14
    assert sim.now == pytest.approx(3.0)


def test_join_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "x"

    def parent(c):
        yield sim.timeout(5.0)
        val = yield c  # c finished long ago
        assert sim.now == pytest.approx(5.0)
        return val

    c = sim.process(child())
    p = sim.process(parent(c))
    sim.run()
    assert p.value == "x"


def test_event_succeed_value_propagates():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        val = yield ev
        return val

    def firer():
        yield sim.timeout(2.0)
        ev.succeed(99)

    w = sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert w.value == 99


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        try:
            yield ev
        except ValueError as e:
            return f"caught {e}"

    def firer():
        yield sim.timeout(1.0)
        ev.fail(ValueError("boom"))

    w = sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert w.value == "caught boom"


def test_unwaited_failed_event_crashes_run():
    sim = Simulator()
    ev = sim.event()

    def firer():
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("lost failure"))

    sim.process(firer())
    with pytest.raises(RuntimeError, match="lost failure"):
        sim.run()


def test_uncaught_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise KeyError("oops")

    sim.process(bad())
    with pytest.raises(KeyError):
        sim.run()


def test_joined_process_exception_delivered_to_parent():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise KeyError("oops")

    def parent():
        c = sim.process(bad())
        try:
            yield c
        except KeyError:
            return "handled"

    p = sim.process(parent())
    sim.run()
    assert p.value == "handled"


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(ScheduleError):
        ev.succeed(2)
    with pytest.raises(ScheduleError):
        ev.fail(ValueError())


def test_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad():
        yield "not an event"  # type: ignore[misc]

    sim.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_yield_event_from_other_simulator_is_error():
    sim1 = Simulator()
    sim2 = Simulator()

    def bad():
        yield sim2.timeout(1.0)

    sim1.process(bad())
    with pytest.raises(SimulationError, match="another simulator"):
        sim1.run()


def test_run_until_stops_midway():
    sim = Simulator()
    log = []

    def proc():
        for _ in range(10):
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.process(proc())
    t = sim.run(until=4.5, detect_deadlock=False)
    assert t == pytest.approx(4.5)
    assert log == [1.0, 2.0, 3.0, 4.0]
    # Continue to completion.
    sim.run()
    assert len(log) == 10


def test_run_until_beyond_end_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)

    sim.process(proc())
    t = sim.run(until=100.0)
    assert t == pytest.approx(100.0)


def test_stop_simulation():
    sim = Simulator()

    def stopper():
        yield sim.timeout(2.0)
        sim.stop()

    def runner():
        yield sim.timeout(10.0)

    sim.process(stopper())
    sim.process(runner())
    t = sim.run(detect_deadlock=False)
    assert t == pytest.approx(2.0)


def test_deadlock_detected():
    sim = Simulator()
    ev = sim.event()  # never fired

    def stuck():
        yield ev

    sim.process(stuck())
    with pytest.raises(DeadlockError) as ei:
        sim.run()
    assert len(ei.value.blocked) == 1


def test_deadlock_detection_disabled():
    sim = Simulator()
    ev = sim.event()

    def stuck():
        yield ev

    sim.process(stuck())
    sim.run(detect_deadlock=False)  # returns silently


def test_interrupt_wakes_blocked_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "slept"
        except Interrupt as i:
            return ("interrupted", i.cause, sim.now)

    def interrupter(p):
        yield sim.timeout(3.0)
        p.interrupt("wakeup")

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    sim.run(detect_deadlock=False)
    assert p.value == ("interrupted", "wakeup", 3.0)


def test_interrupt_dead_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    def late(p):
        yield sim.timeout(5.0)
        p.interrupt()

    p = sim.process(quick())
    sim.process(late(p))
    with pytest.raises(SimulationError, match="dead"):
        sim.run()


def test_self_interrupt_is_error():
    sim = Simulator()

    def proc():
        me = sim._current
        yield sim.timeout(0.0)
        me.interrupt()
        yield sim.timeout(1.0)

    # The error surfaces when the process body runs.
    def outer():
        p = sim.process(proc())
        try:
            yield p
        except SimulationError:
            return "caught"

    # proc captures _current before first yield — build it inside a wrapper.
    def proc2():
        yield sim.timeout(0.0)
        sim._current.interrupt()

    sim2 = Simulator()

    def proc3():
        yield sim2.timeout(0.0)
        sim2._current.interrupt()

    sim2.process(proc3())
    with pytest.raises(SimulationError, match="itself"):
        sim2.run()


def test_peek_and_step():
    sim = Simulator()

    def proc():
        yield sim.timeout(7.0)

    sim.process(proc())
    assert sim.peek() == pytest.approx(0.0)  # init event
    sim.step()
    assert sim.peek() == pytest.approx(7.0)
    sim.step()
    assert sim.peek() == pytest.approx(7.0)  # process-completion event
    sim.step()
    assert sim.peek() == float("inf")
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_process_chains():
    sim = Simulator()

    def leaf(n):
        yield sim.timeout(float(n))
        return n

    def mid(n):
        a = yield sim.process(leaf(n))
        b = yield sim.process(leaf(n + 1))
        return a + b

    def root():
        total = 0
        for i in range(3):
            total += yield sim.process(mid(i))
        return total

    p = sim.process(root())
    sim.run()
    # (0+1) + (1+2) + (2+3) = 9; durations sum: 1 + 3 + 5 = 9
    assert p.value == 9
    assert sim.now == pytest.approx(9.0)


def test_many_processes_scale():
    sim = Simulator()
    results = []

    def proc(i):
        yield sim.timeout(float(i % 17) * 0.001)
        results.append(i)

    for i in range(1000):
        sim.process(proc(i))
    sim.run()
    assert len(results) == 1000
    assert sorted(results) == list(range(1000))


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        val = yield sim.timeout(1.0, value="payload")
        return val

    p = sim.process(proc())
    sim.run()
    assert p.value == "payload"


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    log = []

    def a():
        yield sim.timeout(0.0)
        log.append("a")

    def b():
        yield sim.timeout(0.0)
        log.append("b")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert log == ["a", "b"]
    assert sim.now == 0.0
