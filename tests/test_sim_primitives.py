"""Tests for AnyOf/AllOf conditions, resources, and bandwidth channels."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    BandwidthChannel,
    Mutex,
    Resource,
    Simulator,
    all_of,
    any_of,
)


class TestConditions:
    def test_any_of_fires_on_first(self):
        sim = Simulator()

        def proc():
            t1 = sim.timeout(5.0, value="slow")
            t2 = sim.timeout(2.0, value="fast")
            result = yield any_of(sim, [t1, t2])
            return result, sim.now

        p = sim.process(proc())
        sim.run()
        result, t = p.value
        assert t == pytest.approx(2.0)
        assert list(result.values()) == ["fast"]

    def test_all_of_waits_for_all(self):
        sim = Simulator()

        def proc():
            t1 = sim.timeout(5.0, value="a")
            t2 = sim.timeout(2.0, value="b")
            result = yield all_of(sim, [t1, t2])
            return result, sim.now

        p = sim.process(proc())
        sim.run()
        result, t = p.value
        assert t == pytest.approx(5.0)
        assert sorted(result.values()) == ["a", "b"]

    def test_empty_all_of_is_immediate(self):
        sim = Simulator()

        def proc():
            result = yield all_of(sim, [])
            return result, sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == ({}, 0.0)

    def test_condition_failure_propagates(self):
        sim = Simulator()
        ev = sim.event()

        def failer():
            yield sim.timeout(1.0)
            ev.fail(ValueError("member died"))

        def proc():
            try:
                yield all_of(sim, [ev, sim.timeout(10.0)])
            except ValueError:
                return "caught"

        p = sim.process(proc())
        sim.process(failer())
        sim.run(detect_deadlock=False)
        assert p.value == "caught"

    def test_cross_simulator_members_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        with pytest.raises(ValueError):
            AnyOf(sim1, [sim2.timeout(1.0)])

    def test_any_of_with_already_triggered_member(self):
        sim = Simulator()

        def proc():
            done = sim.event()
            done.succeed("now")
            # Let the event get processed first.
            yield sim.timeout(1.0)
            result = yield any_of(sim, [done, sim.timeout(50.0)])
            return sim.now

        p = sim.process(proc())
        sim.run(detect_deadlock=False)
        assert p.value == pytest.approx(1.0)


class TestResource:
    def test_fifo_granting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def user(i, hold):
            yield res.request()
            order.append(("in", i, sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(user(0, 2.0))
        sim.process(user(1, 1.0))
        sim.process(user(2, 1.0))
        sim.run()
        assert order == [("in", 0, 0.0), ("in", 1, 2.0), ("in", 2, 3.0)]

    def test_capacity_allows_concurrency(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        entries = []

        def user(i):
            yield res.request()
            entries.append((i, sim.now))
            yield sim.timeout(1.0)
            res.release()

        for i in range(4):
            sim.process(user(i))
        sim.run()
        times = [t for _, t in entries]
        assert times == [0.0, 0.0, 1.0, 1.0]

    def test_try_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        assert res.try_request()
        assert not res.try_request()
        res.release()
        assert res.try_request()

    def test_release_idle_is_error(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_queued_counter(self):
        sim = Simulator()
        res = Mutex(sim)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=5.0, detect_deadlock=False)
        assert res.queued == 1
        assert res.in_use == 1
        sim.run()
        assert res.queued == 0


class TestBandwidthChannel:
    def test_transfer_time_formula(self):
        sim = Simulator()
        ch = BandwidthChannel(sim, latency_s=1.0, bandwidth_Bps=100.0)
        assert ch.transfer_time(0) == pytest.approx(1.0)
        assert ch.transfer_time(200) == pytest.approx(3.0)

    def test_transfers_serialize(self):
        sim = Simulator()
        ch = BandwidthChannel(sim, latency_s=1.0, bandwidth_Bps=100.0)
        done = []

        def xfer(i):
            yield from ch.transfer(100)  # 2s each
            done.append((i, sim.now))

        sim.process(xfer(0))
        sim.process(xfer(1))
        sim.run()
        assert done == [(0, 2.0), (1, 4.0)]

    def test_lanes_allow_parallel_transfers(self):
        sim = Simulator()
        ch = BandwidthChannel(sim, latency_s=1.0, bandwidth_Bps=100.0, lanes=2)
        done = []

        def xfer(i):
            yield from ch.transfer(100)
            done.append((i, sim.now))

        sim.process(xfer(0))
        sim.process(xfer(1))
        sim.run()
        assert done == [(0, 2.0), (1, 2.0)]

    def test_accounting(self):
        sim = Simulator()
        ch = BandwidthChannel(sim, latency_s=0.5, bandwidth_Bps=10.0)

        def xfer():
            yield from ch.transfer(10)

        sim.process(xfer())
        sim.run()
        assert ch.bytes_moved == 10
        assert ch.busy_s == pytest.approx(1.5)

    def test_negative_size_rejected(self):
        sim = Simulator()
        ch = BandwidthChannel(sim, latency_s=0.0, bandwidth_Bps=1.0)

        def xfer():
            yield from ch.transfer(-1)

        sim.process(xfer())
        with pytest.raises(ValueError):
            sim.run()

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            BandwidthChannel(sim, latency_s=-1.0, bandwidth_Bps=1.0)
        with pytest.raises(ValueError):
            BandwidthChannel(sim, latency_s=0.0, bandwidth_Bps=0.0)
