"""One-sided RMA: windows, sync modes, ordering, and comm-free."""

import numpy as np
import pytest

from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.mpi import (
    CollectiveTuning,
    MpiError,
    MpiJob,
    ReduceOp,
    RmaError,
    Window,
)
from repro.mpi.algorithms.autotune import clear_cache, derive_tuning
from repro.sim import Simulator


def make_job(n_nodes=4, gpus=0, **spec_kw):
    sim = Simulator()
    cluster = build_cluster(
        sim, ClusterSpec(nodes=n_nodes, gpus_per_node=gpus, **spec_kw)
    )
    return sim, cluster, MpiJob(cluster, list(range(n_nodes)))


# ---------------------------------------------------------------------------
# Basic data movement under fence
# ---------------------------------------------------------------------------

class TestFence:
    def test_put_get_accumulate_roundtrip(self):
        sim, cluster, job = make_job(4)

        def prog(ctx):
            w = yield from ctx.win_allocate(8)
            yield from w.fence()
            right = (ctx.rank + 1) % ctx.size
            yield from w.put(right, np.full(2, float(ctx.rank)), offset=0)
            yield from w.accumulate(right, np.ones(2), op="sum", offset=4)
            yield from w.accumulate(right, np.ones(2), op="sum", offset=4)
            yield from w.fence()
            left = (ctx.rank - 1) % ctx.size
            got = np.zeros(2)
            yield from w.get(left, got, offset=0)
            return w.local[:2].tolist(), w.local[4:6].tolist(), got.tolist()

        job.start(prog)
        res = job.run()
        for rank, (mine, acc, got) in enumerate(res):
            left = (rank - 1) % job.size
            assert mine == [float(left)] * 2
            assert acc == [2.0, 2.0]
            # get reads the left neighbor's window: what left's left put.
            assert got == [float((rank - 2) % job.size)] * 2

    def test_fence_end_closes_epoch_and_allows_pscw(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 2)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            peer = 1 - ctx.rank
            yield from w.fence()
            yield from w.put(peer, np.full(1, 1.0))
            yield from w.fence(end=True)
            with pytest.raises(RmaError, match="outside any access"):
                yield from w.put(peer, np.ones(1))
            # The closed fence no longer blocks other sync modes.
            yield from w.post([peer])
            yield from w.start([peer])
            yield from w.put(peer, np.full(1, 2.0), offset=1)
            yield from w.complete()
            yield from w.wait_sync()

        job.start(prog)
        job.run()
        assert list(win.region(0)) == [1.0, 2.0]

    def test_noncontiguous_get_buffer_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 4)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                block = np.zeros((4, 4))
                with pytest.raises(RmaError, match="C-contiguous"):
                    yield from w.get(1, block[:, :1])
            yield from w.fence()

        job.start(prog)
        job.run()

    def test_op_outside_epoch_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 4)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            with pytest.raises(RmaError, match="outside any access epoch"):
                yield from w.put(1 - ctx.rank, np.ones(1))
            yield from w.fence()
            yield from w.put(1 - ctx.rank, np.ones(1))
            yield from w.fence()

        job.start(prog)
        job.run()
        assert win.region(0)[0] == 1.0

    def test_eager_vs_rendezvous_protocol_split(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 1 << 16)
        eager_max = job.comm.tuning.rma_eager_max_bytes
        small = eager_max // 8
        large = (2 * eager_max) // 8 + 1

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                yield from w.put(1, np.ones(small))
                yield from w.put(1, np.ones(large))
            yield from w.fence()

        job.start(prog)
        job.run()
        assert job.comm.stats.get("rma_put[eager]") == 1
        assert job.comm.stats.get("rma_put[rendezvous]") == 1

    def test_rendezvous_put_needs_no_receiver(self):
        """A large put completes in ~payload wire time with NO receiver
        activity at all — unlike two-sided rendezvous, which stalls
        until the target posts a matching recv."""
        n_elems = (1 << 20) // 8
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, n_elems)
        wire = cluster.interconnect.wire_time(0, 1, 1 << 20)
        marks = {}

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                t0 = ctx.sim.now
                yield from w.put(1, np.ones(n_elems))
                yield from w.flush(1)
                marks["put_s"] = ctx.sim.now - t0
            else:
                # The target never calls anything: sleep far past the
                # transfer.  Two-sided rendezvous would deadlock here.
                yield ctx.sim.timeout(1.0)
            yield from w.fence()

        job.start(prog)
        job.run()
        assert list(win.region(1)[:2]) == [1.0, 1.0]
        # Payload wire time dominates; protocol overhead is a few µs.
        assert marks["put_s"] < wire + 10e-6


# ---------------------------------------------------------------------------
# Request-based operations
# ---------------------------------------------------------------------------

class TestRequests:
    def test_rput_wait_means_remote_completion(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 4)
        seen = {}

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                req = yield from w.rput(1, np.full(4, 9.0))
                yield from req.wait()
                # Remote completion: target memory already has the data.
                seen["after_wait"] = win.region(1).copy()
            yield from w.fence()

        job.start(prog)
        job.run()
        assert list(seen["after_wait"]) == [9.0] * 4

    def test_put_then_flush_lands(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 2)
        seen = {}

        def prog(ctx):
            w = win.ctx(ctx.rank)
            if ctx.rank == 0:
                yield from w.lock(1)
                yield from w.put(1, np.full(2, 3.5))
                # put returned, but only flush guarantees remote landing.
                yield from w.flush(1)
                seen["after_flush"] = win.region(1).copy()
                yield from w.unlock(1)
            else:
                yield ctx.sim.timeout(0)

        job.start(prog)
        job.run()
        assert list(seen["after_flush"]) == [3.5, 3.5]

    def test_get_snapshots_at_nic_read_time(self):
        """Writes landing in the target region while the get's payload
        is on the wire must NOT appear in the result — the NIC read
        happened earlier."""
        n = (1 << 20) // 8  # ~900 µs return wire time
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, n)
        win.region(1)[...] = 1.0

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            out = None
            if ctx.rank == 0:
                buf = np.zeros(n)
                yield from w.get(1, buf)
                out = (float(buf[0]), float(buf[-1]))
            else:
                # Scribble over the region mid-flight (well after the
                # NIC read at ~2 µs, well before arrival at ~900 µs).
                yield ctx.sim.timeout(100e-6)
                win.region(1)[...] = 9.0
            yield from w.fence()
            return out

        job.start(prog)
        res = job.run()
        assert res[0] == (1.0, 1.0)

    def test_rget(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 2)
        win.region(1)[...] = [5.0, 6.0]

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            out = np.zeros(2)
            if ctx.rank == 0:
                req = yield from w.rget(1, out)
                yield from req.wait()
            yield from w.fence()
            return out.tolist()

        job.start(prog)
        res = job.run()
        assert res[0] == [5.0, 6.0]


# ---------------------------------------------------------------------------
# Accumulate semantics
# ---------------------------------------------------------------------------

class TestAccumulate:
    def test_same_pair_ordering_across_protocols(self):
        """A rendezvous-sized accumulate followed by an eager one must
        apply in program order even though the eager wire transfer
        could overtake the rendezvous handshake."""
        sim, cluster, job = make_job(2)
        eager_max = job.comm.tuning.rma_eager_max_bytes
        big = (2 * eager_max) // 8
        win = Window.allocate(job.comm, big)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                yield from w.accumulate(1, np.full(big, 5.0), op="sum")
                yield from w.accumulate(1, np.full(1, 2.0), op="replace")
            yield from w.fence()

        job.start(prog)
        job.run()
        # replace applied AFTER the big sum: element 0 is 2, rest are 5.
        assert win.region(1)[0] == 2.0
        assert np.all(win.region(1)[1:] == 5.0)

    def test_replace_op(self):
        a = np.array([1.0, 2.0])
        b = np.array([7.0, 8.0])
        out = ReduceOp.REPLACE.combine(a, b)
        assert list(out) == [7.0, 8.0]
        out[0] = 0.0
        assert b[0] == 7.0  # never aliased

    def test_get_accumulate_returns_prior_value(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 2)
        win.region(1)[...] = [10.0, 20.0]

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            old = np.zeros(2)
            if ctx.rank == 0:
                yield from w.get_accumulate(1, np.ones(2), old, op="sum")
            yield from w.fence()
            return old.tolist()

        job.start(prog)
        res = job.run()
        assert res[0] == [10.0, 20.0]
        assert list(win.region(1)) == [11.0, 21.0]

    def test_fetch_and_op_counter_is_atomic(self):
        """Every rank atomically increments rank 0's counter under an
        exclusive lock; the fetched values must be a permutation of
        0..P-1 (no lost updates)."""
        sim, cluster, job = make_job(4)
        win = Window.allocate(job.comm, 1)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            old = np.zeros(1)
            yield from w.lock(0, exclusive=True)
            yield from w.fetch_and_op(0, np.ones(1), old, op="sum")
            yield from w.unlock(0)
            return old[0]

        job.start(prog)
        res = job.run()
        assert sorted(res) == [0.0, 1.0, 2.0, 3.0]
        assert win.region(0)[0] == 4.0


# ---------------------------------------------------------------------------
# PSCW
# ---------------------------------------------------------------------------

class TestPscw:
    def test_partial_groups(self):
        """Only ranks 0 and 1 run an epoch; 2 and 3 never touch the
        window — PSCW synchronizes strictly with the named partners."""
        sim, cluster, job = make_job(4)
        win = Window.allocate(job.comm, 2)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            if ctx.rank == 0:
                yield from w.post([1])
                yield from w.start([1])
                yield from w.put(1, np.full(2, 1.0))
                yield from w.complete()
                yield from w.wait_sync()
            elif ctx.rank == 1:
                yield from w.post([0])
                yield from w.start([0])
                yield from w.put(0, np.full(2, 2.0))
                yield from w.complete()
                yield from w.wait_sync()
            else:
                yield ctx.sim.timeout(0)
            return ctx.sim.now

        job.start(prog)
        res = job.run()
        assert list(win.region(0)) == [2.0, 2.0]
        assert list(win.region(1)) == [1.0, 1.0]
        # Ranks 2/3 finished immediately: no hidden global sync.
        assert res[2] < res[0] and res[3] < res[0]

    def test_put_outside_start_group_raises(self):
        sim, cluster, job = make_job(3)
        win = Window.allocate(job.comm, 1)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            if ctx.rank == 0:
                yield from w.post([1])
                yield from w.wait_sync()
            elif ctx.rank == 1:
                yield from w.start([0])
                with pytest.raises(RmaError, match="outside any access"):
                    yield from w.put(2, np.ones(1))
                yield from w.put(0, np.ones(1))
                yield from w.complete()
            else:
                yield ctx.sim.timeout(0)

        job.start(prog)
        job.run()

    def test_wait_without_post_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 1)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            if ctx.rank == 0:
                with pytest.raises(RmaError, match="no exposure epoch"):
                    yield from w.wait_sync()
            yield ctx.sim.timeout(0)

        job.start(prog)
        job.run()


# ---------------------------------------------------------------------------
# Passive target
# ---------------------------------------------------------------------------

class TestPassive:
    def test_overlapping_puts_under_lock_all(self):
        """Two origins hold lock_all concurrently and put into disjoint
        halves of rank 2's region; both land."""
        sim, cluster, job = make_job(3)
        win = Window.allocate(job.comm, 8)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            if ctx.rank < 2:
                yield from w.lock_all()
                off = 4 * ctx.rank
                yield from w.put(
                    2, np.full(4, float(ctx.rank) + 1.0), offset=off
                )
                yield from w.flush(2)
                yield from w.unlock_all()
            else:
                yield ctx.sim.timeout(0)

        job.start(prog)
        job.run()
        assert list(win.region(2)) == [1.0] * 4 + [2.0] * 4

    def test_exclusive_lock_serializes(self):
        """An exclusive holder blocks other origins; the waiter's
        replace lands after the holder's (deterministic final value)."""
        sim, cluster, job = make_job(3)
        win = Window.allocate(job.comm, 1)
        order = []

        def prog(ctx):
            w = win.ctx(ctx.rank)
            if ctx.rank == 0:
                yield from w.lock(2, exclusive=True)
                yield ctx.sim.timeout(1e-4)  # hold the lock a while
                yield from w.accumulate(2, np.full(1, 1.0), op="replace")
                yield from w.unlock(2)
                order.append(("r0_unlocked", ctx.sim.now))
            elif ctx.rank == 1:
                yield ctx.sim.timeout(1e-5)  # rank 0 locks first
                yield from w.lock(2, exclusive=True)
                order.append(("r1_locked", ctx.sim.now))
                yield from w.accumulate(2, np.full(1, 7.0), op="replace")
                yield from w.unlock(2)
            else:
                yield ctx.sim.timeout(0)

        job.start(prog)
        job.run()
        assert win.region(2)[0] == 7.0
        stamps = dict(order)
        assert stamps["r1_locked"] >= stamps["r0_unlocked"]

    def test_double_lock_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 1)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            if ctx.rank == 0:
                yield from w.lock(1)
                with pytest.raises(RmaError, match="already holds"):
                    yield from w.lock(1)
                yield from w.unlock(1)
            with pytest.raises(RmaError, match="holds no lock"):
                yield from w.unlock(1 - ctx.rank)
            yield ctx.sim.timeout(0)

        job.start(prog)
        job.run()


# ---------------------------------------------------------------------------
# Device-memory windows
# ---------------------------------------------------------------------------

class TestDeviceWindows:
    def _run(self, device):
        sim = Simulator()
        cluster = build_cluster(
            sim, ClusterSpec(nodes=2, gpus_per_node=1)
        )
        job = MpiJob(cluster, [0, 1])
        if device:
            bufs = [
                cluster.nodes[n].gpus[0].alloc(4, dtype=np.float64)
                for n in range(2)
            ]
        else:
            bufs = [np.zeros(4) for _ in range(2)]
        win = Window(job.comm, bufs)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                yield from w.put(1, np.full(4, 8.0))
            yield from w.fence()

        job.start(prog)
        job.run()
        return sim.now, win

    def test_put_lands_in_device_memory(self):
        _, win = self._run(device=True)
        assert list(win.region(1)) == [8.0] * 4

    def test_device_window_pays_pcie(self):
        t_dev, _ = self._run(device=True)
        t_host, _ = self._run(device=False)
        assert t_dev > t_host

    def test_collective_win_create_over_device_memory(self):
        sim = Simulator()
        cluster = build_cluster(
            sim, ClusterSpec(nodes=2, gpus_per_node=1)
        )
        job = MpiJob(cluster, [0, 1])

        def prog(ctx):
            dbuf = cluster.nodes[ctx.node_id].gpus[0].alloc(4)
            w = yield from ctx.win_create(dbuf)
            yield from w.fence()
            yield from w.put(1 - ctx.rank, np.full(4, float(ctx.rank)))
            yield from w.fence()
            return w.local.tolist()

        job.start(prog)
        res = job.run()
        assert res[0] == [1.0] * 4
        assert res[1] == [0.0] * 4

    def test_wrong_node_device_buffer_rejected(self):
        sim = Simulator()
        cluster = build_cluster(
            sim, ClusterSpec(nodes=2, gpus_per_node=1)
        )
        job = MpiJob(cluster, [0, 1])
        wrong = cluster.nodes[1].gpus[0].alloc(2)
        with pytest.raises(RmaError, match="device memory living on"):
            Window(job.comm, [wrong, None])

    def test_wrong_node_host_buffer_rejected(self):
        sim = Simulator()
        cluster = build_cluster(
            sim, ClusterSpec(nodes=2, gpus_per_node=0)
        )
        job = MpiJob(cluster, [0, 1])
        wrong = cluster.nodes[1].alloc(2)
        with pytest.raises(RmaError, match="host memory living on"):
            Window(job.comm, [wrong, None])


# ---------------------------------------------------------------------------
# Window lifetime and comm-free interactions
# ---------------------------------------------------------------------------

class TestLifetime:
    def test_zero_size_window_rejects_access(self):
        sim, cluster, job = make_job(2)
        win = Window(job.comm, [np.zeros(2), None])

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                with pytest.raises(RmaError, match="zero-size window"):
                    yield from w.put(1, np.ones(1))
            yield from w.fence()

        job.start(prog)
        job.run()

    def test_out_of_bounds_put_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 4)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                with pytest.raises(RmaError, match="outside rank"):
                    yield from w.put(1, np.ones(3), offset=2)
            yield from w.fence()

        job.start(prog)
        job.run()

    def test_collective_free_then_use_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 2)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            yield from w.free()
            with pytest.raises(RmaError, match="has been freed"):
                yield from w.put(1 - ctx.rank, np.ones(1))

        job.start(prog)
        job.run()

    def test_dtype_mismatch_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, 4, dtype=np.float64)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                with pytest.raises(RmaError, match="dtype"):
                    yield from w.put(1, np.ones(2, dtype=np.float32))
            yield from w.fence()

        job.start(prog)
        job.run()


class TestCommFree:
    def test_driver_free_releases_and_raises(self):
        sim, cluster, job = make_job(4)
        subs = job.comm.split([0, 0, 1, 1])
        sub = subs[0]
        assert len(sub._match) == 2
        sub.free()
        assert sub._freed and sub._match == [] and sub.engine is None
        with pytest.raises(MpiError, match="has been freed"):
            sub.ctx(0)
        with pytest.raises(MpiError, match="has been freed"):
            sub.split([0, 0])
        with pytest.raises(MpiError, match="has been freed"):
            sub.free()

    def test_world_comm_cannot_be_freed(self):
        sim, cluster, job = make_job(2)
        with pytest.raises(MpiError, match="world communicator"):
            job.comm.free()

    def test_collective_free(self):
        sim, cluster, job = make_job(4)
        outcome = {}

        def prog(ctx):
            sub = yield from ctx.split(ctx.rank % 2, key=ctx.rank)
            buf = np.full(1, float(ctx.rank))
            out = np.zeros(1)
            yield from sub.allreduce(buf, out)
            yield from sub.free()
            outcome[ctx.rank] = sub.comm
            return out[0]

        job.start(prog)
        res = job.run()
        assert res == [2.0, 4.0, 2.0, 4.0]
        # Freed once the LAST rank completed the collective free.
        assert all(outcome[r]._freed for r in range(4))

    def test_collective_free_wide_comm_on_fattree(self):
        """Regression: the first rank out of the free barrier must not
        release the matching stores while slower ranks (unequal wire
        distances on a structured fabric) still have barrier traffic
        in flight."""
        sim = Simulator()
        cluster = build_cluster(
            sim,
            ClusterSpec(
                nodes=16,
                gpus_per_node=0,
                topology=TopologySpec(kind="fattree", pod_size=4),
            ),
        )
        job = MpiJob(cluster, list(range(16)))

        def prog(ctx):
            sub = yield from ctx.split(0, key=ctx.rank)
            yield from sub.free()
            return True

        job.start(prog)
        assert job.run() == [True] * 16

    def test_freed_comm_p2p_raises(self):
        sim, cluster, job = make_job(4)

        def prog(ctx):
            sub = yield from ctx.split(0, key=ctx.rank)
            yield from sub.barrier()
            # Let every rank's barrier schedule fully unwind: the
            # driver-level free refuses while anything is in flight.
            yield ctx.sim.timeout(1e-6)
            if ctx.rank == 0:
                sub.comm.free()
            yield from ctx.barrier()  # parent still fine
            with pytest.raises(MpiError, match="has been freed"):
                yield from sub.send(np.ones(1), (sub.rank + 1) % sub.size)

        job.start(prog)
        job.run()

    def test_collective_free_drains_pending_isend(self):
        """MPI allows pending nonblocking ops at free time — the
        collective free defers the release until they complete instead
        of yanking the matching stores out from under them."""
        sim, cluster, job = make_job(2)
        n = 1 << 18  # rendezvous-sized: still in flight at the barrier

        comms = {}

        def prog(ctx):
            sub = yield from ctx.split(0, key=ctx.rank)
            comms[ctx.rank] = sub.comm
            if sub.rank == 0:
                req = sub.isend(np.ones(n // 8), 1)
            else:
                req = sub.irecv(np.zeros(n // 8), 0)
            yield from sub.free()
            # free may return before the deferred release (MPI-legal);
            # the pending ops still complete normally.
            yield from req.wait()
            return True

        job.start(prog)
        assert job.run() == [True, True]
        assert all(c._freed for c in comms.values())

    def test_driver_free_with_inflight_ops_raises(self):
        sim, cluster, job = make_job(2)
        sub = job.comm.split([0, 0])[0]

        def prog(ctx):
            sctx = sub.ctx(ctx.rank)
            if ctx.rank == 0:
                req = sctx.isend(np.ones(1 << 15), 1)
                yield ctx.sim.timeout(1e-7)
                with pytest.raises(MpiError, match="in flight"):
                    sub.free()
                yield from req.wait()
            else:
                yield from sctx.recv(np.zeros(1 << 15), 0)

        job.start(prog)
        job.run()

    def test_collective_free_drains_pending_icollective(self):
        """A background nonblocking collective mid-schedule must also
        hold the release back — the drain watches the schedule engine,
        not just the p2p counter."""
        sim, cluster, job = make_job(4)
        comms = {}

        def prog(ctx):
            sub = yield from ctx.split(0, key=ctx.rank)
            comms[ctx.rank] = sub.comm
            out = np.zeros((1 << 17) // 8)
            req = sub.iallreduce(np.ones((1 << 17) // 8), out)
            yield from sub.free()
            yield from req.wait()
            return float(out[0])

        job.start(prog)
        assert job.run() == [4.0] * 4
        assert all(c._freed for c in comms.values())

    def test_window_free_with_inflight_put_raises(self):
        sim, cluster, job = make_job(2)
        win = Window.allocate(job.comm, (1 << 18) // 8)

        def prog(ctx):
            w = win.ctx(ctx.rank)
            yield from w.fence()
            if ctx.rank == 0:
                yield from w.put(1, np.ones((1 << 18) // 8))
                with pytest.raises(RmaError, match="in flight"):
                    win.free()
                yield from w.flush(1)
            yield from w.fence()

        job.start(prog)
        job.run()

    def test_replace_rejected_by_two_sided_reductions(self):
        sim, cluster, job = make_job(2)

        def prog(ctx):
            buf, out = np.ones(2), np.zeros(2)
            with pytest.raises(MpiError, match="one-sided accumulate"):
                yield from ctx.allreduce(buf, out, op=ReduceOp.REPLACE)
            with pytest.raises(MpiError, match="one-sided accumulate"):
                yield from ctx.reduce(buf, out, op=ReduceOp.REPLACE)

        job.start(prog)
        job.run()

    def test_free_with_live_window_raises(self):
        """Carried-over ROADMAP bugfix: freeing a communicator that
        still exposes a window is erroneous — the checker's
        free-with-inflight-rput scenario depends on this being
        well-defined."""
        sim, cluster, job = make_job(4)
        sub = job.comm.split([0, 0, 1, 1])[0]
        win = Window.allocate(sub, 2, name="livewin")
        with pytest.raises(MpiError, match="live window.*livewin"):
            sub.free()
        assert not sub._freed and not win._freed
        # The orderly sequence: free the window, then the communicator.
        win.free()
        sub.free()
        assert sub._freed

    def test_collective_free_with_live_window_raises(self):
        sim, cluster, job = make_job(2)

        def prog(ctx):
            sub = yield from ctx.split(0, key=ctx.rank)
            w = yield from sub.win_allocate(2)
            with pytest.raises(MpiError, match="live window"):
                yield from sub.free()
            yield from w.fence()
            yield from w.free()
            yield from sub.free()
            return True

        job.start(prog)
        assert job.run() == [True, True]

    def test_force_free_severs_live_windows(self):
        sim, cluster, job = make_job(4)
        sub = job.comm.split([0, 0, 1, 1])[0]
        win = Window.allocate(sub, 2)
        sub.free(force=True)
        assert sub._freed and win._freed

    def test_window_over_freed_comm_raises(self):
        sim, cluster, job = make_job(4)
        subs = job.comm.split([0, 0, 1, 1])
        sub = subs[0]
        win = Window.allocate(sub, 2)
        sub.free(force=True)

        def prog(ctx):
            w = win.ctx(0)
            with pytest.raises(MpiError, match="has been freed"):
                yield from w.fence()
            yield ctx.sim.timeout(0)

        job.start(prog, ranks=[0])
        job.run()

    def test_hier_children_freed_with_parent(self):
        sim = Simulator()
        cluster = build_cluster(
            sim,
            ClusterSpec(
                nodes=8,
                gpus_per_node=0,
                topology=TopologySpec(kind="fattree", pod_size=4),
            ),
        )
        job = MpiJob(cluster, list(range(8)))
        sub = job.comm.dup()
        bundle = sub.hier_comms()
        children = bundle.children()
        assert children
        sub.free()
        for child in children:
            assert child._freed


# ---------------------------------------------------------------------------
# Autotuned eager threshold
# ---------------------------------------------------------------------------

class TestRmaTuning:
    def test_threshold_positive_and_fabric_dependent(self):
        clear_cache()
        sim = Simulator()
        flat = build_cluster(
            sim, ClusterSpec(nodes=8, gpus_per_node=0)
        )
        t_flat = MpiJob(flat, list(range(8))).comm.tuning
        sim2 = Simulator()
        torus = build_cluster(
            sim2,
            ClusterSpec(
                nodes=16,
                gpus_per_node=0,
                topology=TopologySpec(kind="torus2d"),
            ),
        )
        t_torus = MpiJob(torus, list(range(16))).comm.tuning
        assert t_flat.rma_eager_max_bytes > 0
        # Multi-hop fabric: pricier round-trips keep eager puts longer.
        assert t_torus.rma_eager_max_bytes > t_flat.rma_eager_max_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            CollectiveTuning(rma_eager_max_bytes=-1)
