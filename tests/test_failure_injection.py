"""Failure injection: user errors must surface cleanly, not hang."""

import numpy as np
import pytest

from repro.dcgn import DcgnConfig, DcgnRuntime, DcgnTimeout
from repro.gas import GasJob
from repro.gpusim import GpuOutOfMemory, LaunchConfig
from repro.hw import build_cluster, paper_cluster
from repro.mpi import MpiError, MpiJob
from repro.sim import Simulator


def make_runtime(n_nodes=1, cpu_threads=2, gpus=0):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    cfg = DcgnConfig.homogeneous(
        n_nodes, cpu_threads=cpu_threads, gpus=gpus
    )
    return sim, DcgnRuntime(cluster, cfg)


class TestKernelCrashes:
    def test_cpu_kernel_exception_propagates(self):
        sim, rt = make_runtime()

        def kernel(ctx):
            yield ctx.sim.timeout(0.0)
            if ctx.rank == 1:
                raise RuntimeError("injected kernel bug")

        rt.launch_cpu(kernel)
        with pytest.raises(RuntimeError, match="injected kernel bug"):
            rt.run(max_time=1.0)

    def test_gpu_kernel_exception_propagates(self):
        sim, rt = make_runtime(cpu_threads=0, gpus=1)

        def gpu_kernel(ctx):
            yield from ctx.compute(seconds=1e-6)
            raise ValueError("device-side assert")

        rt.launch_gpu(gpu_kernel)
        with pytest.raises(ValueError, match="device-side assert"):
            rt.run(max_time=1.0)

    def test_gpu_oom_propagates(self):
        sim, rt = make_runtime(cpu_threads=0, gpus=1)

        def gpu_kernel(ctx):
            yield from ctx.compute(seconds=0.0)
            ctx.device.alloc(10 ** 12, dtype=np.uint8)  # 1 TB

        rt.launch_gpu(gpu_kernel)
        with pytest.raises(GpuOutOfMemory):
            rt.run(max_time=1.0)

    def test_crash_of_one_peer_leaves_other_hanging_detectably(self):
        """A dead peer means the survivor's recv never completes: the
        watchdog reports it rather than spinning forever."""
        sim, rt = make_runtime()

        def kernel(ctx):
            buf = np.zeros(1)
            if ctx.rank == 0:
                yield from ctx.recv(1, buf)
            else:
                yield ctx.sim.timeout(0.0)
                return  # "crashes" (exits) without sending

        rt.launch_cpu(kernel)
        with pytest.raises(DcgnTimeout, match="dcgn.cpu0"):
            rt.run(max_time=0.05)


class TestMpiJobFailures:
    def test_rank_exception_propagates(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        job = MpiJob(cluster, [0, 0])

        def prog(ctx):
            yield ctx.sim.timeout(0.0)
            if ctx.rank == 1:
                raise KeyError("rank 1 died")

        job.start(prog)
        with pytest.raises(KeyError):
            job.run()

    def test_unfinished_rank_detected(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        job = MpiJob(cluster, [0, 0])

        def prog(ctx):
            if ctx.rank == 0:
                buf = np.zeros(1)
                yield from ctx.recv(buf, source=1)  # never sent
            else:
                yield ctx.sim.timeout(0.0)

        job.start(prog)
        with pytest.raises((MpiError, Exception)):
            job.run(until=0.1)


class TestGasFailures:
    def test_worker_exception_propagates(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=1))
        job = GasJob.all_gpus(cluster)

        def prog(ctx):
            yield ctx.sim.timeout(0.0)
            if ctx.rank == 1:
                raise OSError("injected driver failure")

        job.start(prog)
        with pytest.raises(OSError):
            job.run()
