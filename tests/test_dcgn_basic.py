"""DCGN integration tests: ranks, CPU p2p, GPU p2p, mixed traffic."""

import numpy as np
import pytest

from repro.dcgn import (
    ANY,
    CommViolation,
    DcgnConfig,
    DcgnConfigError,
    DcgnRuntime,
    NodeConfig,
    RankMap,
)
from repro.hw import build_cluster, paper_cluster, single_node
from repro.sim import Simulator, us


def make_runtime(n_nodes=2, cpu_threads=1, gpus=0, slots=1, params=None, seed=0):
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=n_nodes, params=params, seed=seed)
    )
    cfg = DcgnConfig.homogeneous(
        n_nodes, cpu_threads=cpu_threads, gpus=gpus, slots_per_gpu=slots
    )
    return sim, DcgnRuntime(cluster, cfg)


class TestRankMap:
    def test_paper_rank_assignment(self):
        """Cn + Gn*Sn, CPUs first then (gpu, slot) pairs, per node."""
        cfg = DcgnConfig(
            [
                NodeConfig(cpu_threads=2, gpus=2, slots_per_gpu=2),
                NodeConfig(cpu_threads=1, gpus=1, slots_per_gpu=3),
            ]
        )
        rm = RankMap(cfg)
        assert rm.size == (2 + 4) + (1 + 3)
        # Node 0: vranks 0,1 = CPUs; 2,3 = gpu0 slots; 4,5 = gpu1 slots.
        assert rm.cpu_rank(0, 0) == 0
        assert rm.cpu_rank(0, 1) == 1
        assert rm.slot_rank(0, 0, 0) == 2
        assert rm.slot_rank(0, 0, 1) == 3
        assert rm.slot_rank(0, 1, 0) == 4
        assert rm.slot_rank(0, 1, 1) == 5
        # Node 1 continues consecutively.
        assert rm.cpu_rank(1, 0) == 6
        assert rm.slot_rank(1, 0, 2) == 9
        assert rm.node_of(9) == 1
        assert rm.is_cpu(0) and not rm.is_cpu(2)

    def test_local_ranks(self):
        cfg = DcgnConfig.homogeneous(2, cpu_threads=1, gpus=1, slots_per_gpu=2)
        rm = RankMap(cfg)
        assert rm.local_ranks(0) == [0, 1, 2]
        assert rm.local_ranks(1) == [3, 4, 5]
        assert rm.cpu_ranks() == [0, 3]
        assert rm.gpu_ranks(1) == [4, 5]

    def test_invalid_configs(self):
        with pytest.raises(DcgnConfigError):
            NodeConfig(cpu_threads=0, gpus=0)
        with pytest.raises(DcgnConfigError):
            NodeConfig(cpu_threads=-1)
        with pytest.raises(DcgnConfigError):
            NodeConfig(gpus=1, slots_per_gpu=0)
        with pytest.raises(DcgnConfigError):
            DcgnConfig([])

    def test_config_validation_against_cluster(self):
        sim = Simulator()
        cluster = build_cluster(sim, single_node(gpus=1))
        with pytest.raises(DcgnConfigError):
            DcgnRuntime(
                cluster, DcgnConfig.homogeneous(1, cpu_threads=1, gpus=5)
            )
        with pytest.raises(DcgnConfigError):
            DcgnRuntime(
                cluster,
                DcgnConfig.homogeneous(
                    1, cpu_threads=1, gpus=1, slots_per_gpu=10_000
                ),
            )


class TestCpuP2P:
    def test_pingpong_paper_figure3(self):
        """The paper's Figure 3 ping-pong, CPU ranks on two nodes."""
        sim, rt = make_runtime(n_nodes=2, cpu_threads=1)
        result = {}

        def kernel(ctx):
            x = np.zeros(1, dtype=np.int32)
            if ctx.rank == 0:
                x[0] = 7
                yield from ctx.send(1, x)
                yield from ctx.recv(1, x)
                result["final"] = int(x[0])
            else:
                st = yield from ctx.recv(0, x)
                assert st.source == 0
                x[0] *= 6
                yield from ctx.send(0, x)

        rt.launch_cpu(kernel)
        rt.run()
        assert result["final"] == 42

    def test_intra_node_send(self):
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2)
        result = {}

        def kernel(ctx):
            buf = np.zeros(4)
            if ctx.rank == 0:
                buf[:] = [1, 2, 3, 4]
                yield from ctx.send(1, buf)
            else:
                yield from ctx.recv(0, buf)
                result["got"] = buf.copy()

        rt.launch_cpu(kernel)
        rt.run()
        assert np.array_equal(result["got"], [1, 2, 3, 4])

    def test_any_source_recv(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=2)  # ranks 0,1 / 2,3
        result = {"seen": []}

        def kernel(ctx):
            buf = np.zeros(1, dtype=np.int64)
            if ctx.rank == 0:
                for _ in range(3):
                    st = yield from ctx.recv(ANY, buf)
                    result["seen"].append((st.source, int(buf[0])))
            else:
                buf[0] = ctx.rank * 11
                yield from ctx.send(0, buf)

        rt.launch_cpu(kernel)
        rt.run()
        assert sorted(result["seen"]) == [(1, 11), (2, 22), (3, 33)]

    def test_sendrecv_exchange(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=1)
        result = {}

        def kernel(ctx):
            other = 1 - ctx.rank
            out = np.array([float(ctx.rank + 5)])
            incoming = np.zeros(1)
            yield from ctx.sendrecv(other, out, other, incoming)
            result[ctx.rank] = float(incoming[0])

        rt.launch_cpu(kernel)
        rt.run()
        assert result == {0: 6.0, 1: 5.0}

    def test_message_ordering(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=1)
        result = {}

        def kernel(ctx):
            buf = np.zeros(1, dtype=np.int32)
            if ctx.rank == 0:
                for i in range(8):
                    buf[0] = i
                    yield from ctx.send(1, buf)
            else:
                got = []
                for _ in range(8):
                    yield from ctx.recv(0, buf)
                    got.append(int(buf[0]))
                result["got"] = got

        rt.launch_cpu(kernel)
        rt.run()
        assert result["got"] == list(range(8))

    def test_cpu_kernel_results_returned(self):
        sim, rt = make_runtime(n_nodes=1, cpu_threads=2)

        def kernel(ctx):
            yield from ctx.barrier()
            return ctx.rank * 100

        rt.launch_cpu(kernel)
        report = rt.run()
        assert report.cpu_results() == [0, 100]


class TestGpuP2P:
    def test_gpu_pingpong_paper_figure1(self):
        """The paper's Figure 1 ping-pong between two GPUs."""
        sim, rt = make_runtime(n_nodes=2, cpu_threads=0, gpus=1, slots=1)
        result = {}

        def gpu_kernel(ctx):
            comm = ctx.comm
            dev = ctx.device
            gpu_mem = dev.alloc(4, dtype=np.int32, name="gpumem")
            me = comm.rank(0)
            if me == 0:
                gpu_mem.data[:] = [10, 20, 30, 40]
                yield from comm.send(0, 1, gpu_mem)
                st = yield from comm.recv(0, 1, gpu_mem)
                result["final"] = gpu_mem.data.copy()
                result["status_src"] = st.source
            else:
                yield from comm.recv(0, 0, gpu_mem)
                gpu_mem.data[:] *= 2
                yield from comm.send(0, 0, gpu_mem)

        rt.launch_gpu(gpu_kernel)
        rt.run()
        assert np.array_equal(result["final"], [20, 40, 60, 80])
        assert result["status_src"] == 1

    def test_gpu_to_cpu_and_back(self):
        sim, rt = make_runtime(n_nodes=2, cpu_threads=1, gpus=1, slots=1)
        # Ranks: node0 = [cpu 0, gpu 1], node1 = [cpu 2, gpu 3].
        result = {}

        def cpu_kernel(ctx):
            buf = np.zeros(2, dtype=np.float32)
            if ctx.rank == 0:
                st = yield from ctx.recv(3, buf)  # from remote GPU slot
                result["cpu_got"] = buf.copy()
                buf *= 10
                yield from ctx.send(3, buf)
            # rank 2 idles
            return None

        def gpu_kernel(ctx):
            comm = ctx.comm
            me = comm.rank(0)
            if me == 3:
                dbuf = ctx.device.alloc(2, dtype=np.float32)
                dbuf.data[:] = [1.5, 2.5]
                yield from comm.send(0, 0, dbuf)
                yield from comm.recv(0, 0, dbuf)
                result["gpu_got"] = dbuf.data.copy()

        rt.launch_cpu(cpu_kernel)
        rt.launch_gpu(gpu_kernel)
        rt.run()
        assert np.allclose(result["cpu_got"], [1.5, 2.5])
        assert np.allclose(result["gpu_got"], [15.0, 25.0])

    def test_host_memory_rejected_in_gpu_send(self):
        """Paper §3.2: GPU communication must use global memory."""
        sim, rt = make_runtime(n_nodes=1, cpu_threads=1, gpus=1, slots=1)

        def gpu_kernel(ctx):
            host_arr = np.zeros(4)
            yield from ctx.comm.send(0, 0, host_arr)

        def cpu_kernel(ctx):
            yield ctx.sim.timeout(0.0)

        rt.launch_cpu(cpu_kernel)
        rt.launch_gpu(gpu_kernel)
        with pytest.raises(CommViolation):
            rt.run()

    def test_multislot_gpu(self):
        """Two slots on one GPU behave as two independent ranks."""
        sim, rt = make_runtime(n_nodes=1, cpu_threads=1, gpus=1, slots=2)
        # Ranks: 0 = cpu, 1 = gpu slot0, 2 = gpu slot1.
        result = {}

        def cpu_kernel(ctx):
            buf = np.zeros(1, dtype=np.int64)
            seen = {}
            for _ in range(2):
                st = yield from ctx.recv(ANY, buf)
                seen[st.source] = int(buf[0])
            result["seen"] = seen

        def gpu_kernel(ctx):
            comm = ctx.comm
            slot = ctx.block_idx  # block b drives slot b
            dbuf = ctx.device.alloc(1, dtype=np.int64)
            dbuf.data[0] = comm.rank(slot) * 7
            yield from comm.send(slot, 0, dbuf)

        rt.launch_cpu(cpu_kernel)
        rt.launch_gpu(gpu_kernel)
        rt.run()
        assert result["seen"] == {1: 7, 2: 14}
