"""Tests for the model-checking harness (repro.check)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check import (
    OUTCOMES,
    SCENARIOS,
    InvariantViolation,
    ScenarioSpec,
    get_scenario,
    replay,
    run_one,
    scenario_names,
    sweep,
)
from repro.check.__main__ import main as check_main
from repro.check.buggy import BuggyGrantQueue
from repro.sim import ExploringSimulator

REPO = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

def _spec(fn, name="t", expect=frozenset({"ok"}), must_find=None):
    return ScenarioSpec(name, fn, doc="test scenario", expect=expect,
                        must_find=must_find)


def test_classifies_ok():
    def scenario(sim):
        def p():
            yield sim.timeout(1.0)
        sim.process(p())
        sim.run()

    r = run_one(_spec(scenario), seed=0)
    assert r.outcome == "ok"
    assert r.final_time == pytest.approx(1.0)
    assert r.steps > 0


def test_classifies_deadlock():
    def scenario(sim):
        def p():
            yield sim.event(name="never")
        sim.process(p(), name="stuck")
        sim.run()

    r = run_one(_spec(scenario), seed=0)
    assert r.outcome == "deadlock"
    assert "stuck" in r.detail and "waits-for" in r.detail


def test_classifies_livelock():
    def scenario(sim):
        def p():
            while True:
                yield sim.timeout(0.0)
        sim.process(p(), name="spin")
        sim.run()

    r = run_one(_spec(scenario), seed=0, livelock_window=50)
    assert r.outcome == "livelock"
    assert "spin" in r.detail


def test_classifies_crash():
    def scenario(sim):
        raise RuntimeError("boom")

    r = run_one(_spec(scenario), seed=0)
    assert r.outcome == "crash"
    assert "RuntimeError: boom" in r.detail


def test_classifies_invariant_violation():
    def scenario(sim):
        raise InvariantViolation("state went wrong")

    r = run_one(_spec(scenario), seed=0)
    assert r.outcome == "invariant-violation"
    assert "state went wrong" in r.detail


def test_outcomes_cover_all_buckets():
    assert set(OUTCOMES) == {
        "ok", "deadlock", "livelock", "crash", "invariant-violation"
    }


# ---------------------------------------------------------------------------
# The checker has teeth: the buggy fixture is caught quickly
# ---------------------------------------------------------------------------

def test_buggy_grant_queue_deadlocks_within_budget():
    spec = get_scenario("buggy-grant-queue")
    found = None
    for seed in range(50):
        if run_one(spec, seed).outcome == "deadlock":
            found = seed
            break
    assert found is not None, (
        "lock-order inversion not caught in 50 seeds — the explorer "
        "lost its teeth"
    )


def test_buggy_grant_queue_deadlock_names_both_mutexes():
    """The classification detail must carry an actionable waits-for
    chain pointing at the inverted locks."""
    spec = get_scenario("buggy-grant-queue")
    r = next(
        res for res in (run_one(spec, s) for s in range(50))
        if res.outcome == "deadlock"
    )
    assert "grantq.queue_lock" in r.detail
    assert "grantq.state_lock" in r.detail
    assert "waits-for" in r.detail


# ---------------------------------------------------------------------------
# Replay fidelity
# ---------------------------------------------------------------------------

def test_replay_reproduces_identical_schedule():
    a = replay("lock-writers", seed=11)
    b = replay("lock-writers", seed=11)
    assert a.outcome == b.outcome == "ok"
    assert a.trace is not None and a.trace == b.trace
    assert a.final_time == b.final_time
    assert a.steps == b.steps


def test_replay_of_buggy_seed_reproduces_deadlock():
    spec = get_scenario("buggy-grant-queue")
    seed = next(
        s for s in range(50) if run_one(spec, s).outcome == "deadlock"
    )
    r1 = replay("buggy-grant-queue", seed)
    r2 = replay("buggy-grant-queue", seed)
    assert r1.outcome == r2.outcome == "deadlock"
    assert r1.trace == r2.trace
    assert r1.detail == r2.detail


# ---------------------------------------------------------------------------
# Sweep aggregation
# ---------------------------------------------------------------------------

def test_sweep_small_all_pass():
    report = sweep(5, names=["lock-writers", "buggy-grant-queue",
                             "spin-livelock"])
    assert report.ok, report.table()
    assert report.scenarios["lock-writers"].counts["ok"] == 5
    assert report.scenarios["buggy-grant-queue"].found_seed is not None
    assert report.scenarios["spin-livelock"].counts["livelock"] == 5


def test_sweep_fails_on_unexpected_outcome():
    def scenario(sim):
        def p():
            yield sim.event(name="never")
        sim.process(p(), name="stuck")
        sim.run()

    from repro.check import runner as runner_mod
    spec = _spec(scenario, name="always-deadlocks")
    rep = runner_mod.ScenarioReport(
        name=spec.name, doc=spec.doc, expect=sorted(spec.expect),
        must_find=spec.must_find,
    )
    rep.record(run_one(spec, 0), spec.expect)
    assert not rep.passed
    assert rep.first_unexpected.outcome == "deadlock"


def test_sweep_fails_when_must_find_missing():
    def scenario(sim):
        def p():
            yield sim.timeout(1.0)
        sim.process(p())
        sim.run()

    from repro.check import runner as runner_mod
    spec = _spec(
        scenario, name="never-deadlocks",
        expect=frozenset({"ok", "deadlock"}), must_find="deadlock",
    )
    rep = runner_mod.ScenarioReport(
        name=spec.name, doc=spec.doc, expect=sorted(spec.expect),
        must_find=spec.must_find,
    )
    for seed in range(3):
        rep.record(run_one(spec, seed), spec.expect)
    assert not rep.passed  # healthy outcomes, but the bug was never found


def test_sweep_report_json_roundtrip(tmp_path):
    report = sweep(2, names=["lock-writers"])
    out = tmp_path / "report.json"
    report.to_json(str(out))
    data = json.loads(out.read_text())
    assert data["ok"] is True
    assert data["n_seeds"] == 2
    assert data["scenarios"]["lock-writers"]["counts"]["ok"] == 2


def test_scenario_registry_wellformed():
    names = scenario_names()
    assert len(names) >= 8
    for name in names:
        spec = SCENARIOS[name]
        assert spec.expect <= set(OUTCOMES)
        if spec.must_find is not None:
            assert spec.must_find in spec.expect
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("no-such-scenario")


# ---------------------------------------------------------------------------
# The buggy fixture itself
# ---------------------------------------------------------------------------

def test_buggy_fixture_accounting_when_it_completes():
    sim = ExploringSimulator(seed=2)
    q = BuggyGrantQueue(sim)

    def requester():
        yield from q.enqueue()

    def granter():
        yield from q.grant()

    sim.process(requester())
    sim.process(granter())
    try:
        sim.run()
    except Exception:
        return  # deadlocked on this seed: equally fine for this test
    assert q.pending in (0, 1)
    assert q.granted in (0, 1)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list():
    assert check_main(["--list"]) == 0


def test_cli_sweep_and_json(tmp_path, capsys):
    out = tmp_path / "r.json"
    rc = check_main([
        "--sweep", "3", "--scenario", "lock-writers",
        "--scenario", "buggy-grant-queue", "--json", str(out), "--quiet",
    ])
    captured = capsys.readouterr()
    assert rc == 0, captured.out
    assert "lock-writers" in captured.out
    assert json.loads(out.read_text())["ok"] is True


def test_cli_replay(capsys):
    rc = check_main([
        "--scenario", "lock-writers", "--replay", "5", "--trace-limit", "10",
    ])
    captured = capsys.readouterr()
    assert rc == 0
    assert "schedule trace" in captured.out


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        check_main(["--scenario", "nope"])


def test_cli_replay_needs_single_scenario():
    with pytest.raises(SystemExit):
        check_main(["--replay", "3"])


# ---------------------------------------------------------------------------
# Determinism lint (tools/lint_determinism.py)
# ---------------------------------------------------------------------------

def _run_lint(*args):
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint_determinism.py"), *args],
        capture_output=True, text=True, cwd=str(REPO),
    )


def test_lint_clean_on_runtime_tree():
    proc = _run_lint()
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_lint_flags_violations(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import random\n"
        "import numpy as np\n"
        "def f(xs):\n"
        "    random.shuffle(xs)\n"
        "    rng = np.random.default_rng()\n"
        "    for x in set(xs):\n"
        "        pass\n"
        "    ys = sorted(xs, key=id)\n"
        "    ok = sorted(xs, key=id)  # det: ok - test suppression\n"
        "    return rng, ys, ok\n"
    )
    proc = _run_lint(str(bad))
    assert proc.returncode == 1
    assert proc.stdout.count("unseeded-rng") == 2
    assert proc.stdout.count("set-iteration") == 1
    assert proc.stdout.count("id-ordering") == 1
