"""Tests for hardware models: params, memory, PCIe, interconnect, cluster."""

import numpy as np
import pytest

from repro.hw import (
    KB,
    MB,
    ClusterSpec,
    HostBuffer,
    HWParams,
    Interconnect,
    MemcpyEngine,
    PcieLink,
    build_cluster,
    nbytes_of,
    paper_cluster,
    single_node,
)
from repro.hw.params import IbParams, PcieParams
from repro.sim import Simulator, us


class TestParams:
    def test_paper_cluster_shape(self):
        spec = paper_cluster()
        assert spec.nodes == 4
        assert spec.cores_per_node == 4
        assert spec.gpus_per_node == 2

    def test_single_node(self):
        spec = single_node(gpus=1)
        assert spec.nodes == 1
        assert spec.gpus_per_node == 1

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(cores_per_node=0)
        with pytest.raises(ValueError):
            ClusterSpec(gpus_per_node=-1)

    def test_with_updates_functionally(self):
        p = HWParams()
        p2 = p.with_(jitter_us=5.0)
        assert p.jitter_us == 0.0
        assert p2.jitter_us == 5.0
        assert p2.cpu is p.cpu

    def test_units(self):
        assert KB == 1024
        assert MB == 1024 * 1024


class TestHostBuffer:
    def test_wraps_array(self):
        arr = np.arange(10, dtype=np.int32)
        buf = HostBuffer(arr, node_id=0)
        assert buf.nbytes == 40
        assert buf.dtype == np.int32

    def test_copy_from(self):
        buf = HostBuffer(np.zeros(4, dtype=np.int32), node_id=0)
        buf.copy_from(np.array([1, 2, 3, 4], dtype=np.int32))
        assert list(buf.data) == [1, 2, 3, 4]

    def test_copy_from_oversized_payload_rejected(self):
        buf = HostBuffer(np.zeros(2, dtype=np.int32), node_id=0)
        with pytest.raises(ValueError):
            buf.copy_from(np.zeros(3, dtype=np.int32))

    def test_non_contiguous_rejected(self):
        arr = np.zeros((4, 4))[:, ::2]
        with pytest.raises(ValueError):
            HostBuffer(arr, node_id=0)

    def test_non_array_rejected(self):
        with pytest.raises(TypeError):
            HostBuffer([1, 2, 3], node_id=0)  # type: ignore[arg-type]

    def test_nbytes_of(self):
        assert nbytes_of(100) == 100
        assert nbytes_of(np.zeros(3, dtype=np.float64)) == 24
        assert nbytes_of(HostBuffer(np.zeros(3), node_id=0)) == 24
        with pytest.raises(TypeError):
            nbytes_of("x")  # type: ignore[arg-type]


class TestMemcpyEngine:
    def test_copy_moves_data_and_time(self):
        sim = Simulator()
        eng = MemcpyEngine(sim, lat_us=1.0, bw_GBps=1.0)
        dst = np.zeros(1024, dtype=np.uint8)
        src = np.full(1024, 7, dtype=np.uint8)

        def proc():
            yield from eng.copy(dst, src)

        sim.process(proc())
        sim.run()
        assert np.all(dst == 7)
        # 1 µs latency + 1024/1e9 s
        assert sim.now == pytest.approx(us(1.0) + 1024 / 1e9)

    def test_time_only_copy(self):
        sim = Simulator()
        eng = MemcpyEngine(sim, lat_us=1.0, bw_GBps=1.0)

        def proc():
            n = yield from eng.copy(None, None, nbytes=2048)
            return n

        p = sim.process(proc())
        sim.run()
        assert p.value == 2048
        assert sim.now > 0

    def test_copy_requires_size_info(self):
        sim = Simulator()
        eng = MemcpyEngine(sim, lat_us=1.0, bw_GBps=1.0)

        def proc():
            yield from eng.copy(None, None)

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()


class TestPcieLink:
    def test_write_and_read_times(self):
        sim = Simulator()
        link = PcieLink(sim, PcieParams(lat_us=10.0, bw_GBps=1.0))
        assert link.write_time(0) == pytest.approx(us(10.0))
        assert link.read_time(10**9) == pytest.approx(us(10.0) + 1.0)

    def test_directions_are_independent(self):
        sim = Simulator()
        link = PcieLink(sim, PcieParams(lat_us=10.0, bw_GBps=1.0))
        done = []

        def writer():
            yield from link.write(10**6)
            done.append(("w", sim.now))

        def reader():
            yield from link.read(10**6)
            done.append(("r", sim.now))

        sim.process(writer())
        sim.process(reader())
        sim.run()
        tw = dict(done)["w"]
        tr = dict(done)["r"]
        # Full duplex: both finish at the same time.
        assert tw == pytest.approx(tr)

    def test_same_direction_serializes(self):
        sim = Simulator()
        link = PcieLink(sim, PcieParams(lat_us=0.0, bw_GBps=1.0))
        done = []

        def writer(i):
            yield from link.write(10**6)
            done.append(sim.now)

        sim.process(writer(0))
        sim.process(writer(1))
        sim.run()
        assert done[0] == pytest.approx(1e-3)
        assert done[1] == pytest.approx(2e-3)

    def test_probe_counts_and_costs(self):
        sim = Simulator()
        link = PcieLink(sim, PcieParams(lat_us=10.0, bw_GBps=1.0, probe_lat_us=5.0))

        def proc():
            yield from link.probe()
            yield from link.probe()

        sim.process(proc())
        sim.run()
        assert link.probe_count == 2
        assert sim.now == pytest.approx(us(10.0))


class TestInterconnect:
    def _net(self, n=4, **kw):
        sim = Simulator()
        params = IbParams(**kw) if kw else IbParams()
        return sim, Interconnect(sim, n, params)

    def test_internode_latency(self):
        sim, net = self._net(lat_us=2.0, bw_GBps=1.0)

        def proc():
            t = yield from net.transfer(0, 1, 0)
            return t

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(us(2.0))

    def test_internode_bandwidth_term(self):
        sim, net = self._net(lat_us=2.0, bw_GBps=1.0)

        def proc():
            t = yield from net.transfer(0, 1, 10**6)
            return t

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(us(2.0) + 1e-3)

    def test_intra_node_is_cheaper(self):
        sim, net = self._net(lat_us=2.0, bw_GBps=1.0, intra_lat_us=0.5, intra_bw_GBps=4.0)

        def proc():
            t_local = yield from net.transfer(0, 0, 10**6)
            t_remote = yield from net.transfer(0, 1, 10**6)
            return t_local, t_remote

        p = sim.process(proc())
        sim.run()
        t_local, t_remote = p.value
        assert t_local < t_remote

    def test_sender_nic_contention(self):
        sim, net = self._net(lat_us=0.0, bw_GBps=1.0)
        done = []

        def sender(dst):
            yield from net.transfer(0, dst, 10**6)
            done.append(sim.now)

        sim.process(sender(1))
        sim.process(sender(2))
        sim.run()
        # Same source NIC: second transfer waits for the first.
        assert done[1] >= done[0] + 0.9e-3

    def test_distinct_pairs_parallel(self):
        sim, net = self._net(lat_us=0.0, bw_GBps=1.0)
        done = []

        def sender(src, dst):
            yield from net.transfer(src, dst, 10**6)
            done.append(sim.now)

        sim.process(sender(0, 1))
        sim.process(sender(2, 3))
        sim.run()
        assert done[0] == pytest.approx(done[1])

    def test_bad_node_rejected(self):
        sim, net = self._net()

        def proc():
            yield from net.transfer(0, 99, 0)

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()


class TestCluster:
    def test_build_paper_cluster(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster())
        assert cluster.n_nodes == 4
        assert cluster.total_gpus == 8
        assert cluster.gpu(1, 0).node_id == 1
        assert cluster.gpu(3, 1).device_id == 1

    def test_node_alloc(self):
        sim = Simulator()
        cluster = build_cluster(sim, single_node())
        buf = cluster.nodes[0].alloc(16, dtype=np.int32, fill=3)
        assert buf.node_id == 0
        assert np.all(buf.data == 3)

    def test_node_wrap(self):
        sim = Simulator()
        cluster = build_cluster(sim, single_node())
        arr = np.arange(5)
        buf = cluster.nodes[0].wrap(arr)
        assert buf.nbytes == arr.nbytes
