"""Tests for the observability layer (span tracing, links, profiler).

The load-bearing invariant: tracing is *timing-passive*.  Attaching a
recorder must not change a single event timestamp or payload byte on
the exact backend, and the analytic backends must commit identical
priced times traced or untraced.
"""

import json

import numpy as np
import pytest

from repro.hw import ClusterSpec, TopologySpec, build_cluster, paper_cluster
from repro.mpi import MpiJob, block_placement
from repro.obs import (
    SpanRecorder,
    collective_profile,
    critical_path,
    format_critical_path,
    format_link_report,
    link_report,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.sim import Simulator


def _stencilish(ctx, record):
    """A little of everything: p2p both protocols + two collectives."""
    import numpy as np

    r, size = ctx.rank, ctx.size
    small = np.full(8, float(r))
    big = np.full(4096, float(r))
    got_s = np.empty_like(small)
    got_b = np.empty_like(big)
    peer = (r + 1) % size
    src = (r - 1) % size
    if r % 2 == 0:
        yield from ctx.send(small, dest=peer, tag=1)
        yield from ctx.recv(got_s, source=src, tag=1)
        yield from ctx.send(big, dest=peer, tag=2)
        yield from ctx.recv(got_b, source=src, tag=2)
    else:
        yield from ctx.recv(got_s, source=src, tag=1)
        yield from ctx.send(small, dest=peer, tag=1)
        yield from ctx.recv(got_b, source=src, tag=2)
        yield from ctx.send(big, dest=peer, tag=2)
    out = np.empty_like(big)
    yield from ctx.allreduce(big, out)
    yield from ctx.barrier()
    record[r] = (
        ctx.sim.now,
        float(got_s.sum()),
        float(got_b.sum()),
        float(out.sum()),
    )


def _run_stencilish(backend, traced, n_ranks=8, n_nodes=4):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    rec = sim.attach_spans() if traced else None
    job = MpiJob(
        cluster, block_placement(n_ranks, n_nodes), backend=backend
    )
    record = {}
    job.start(lambda ctx: _stencilish(ctx, record))
    job.run()
    return record, sim, rec


class TestByteStability:
    def test_exact_backend_identical_traced(self):
        """Tracing changes no timestamp and no payload byte (exact)."""
        base, sim0, _ = _run_stencilish("exact", traced=False)
        traced, sim1, rec = _run_stencilish("exact", traced=True)
        assert traced == base  # exact float equality, payloads included
        # No extra simulated events either — recording never schedules.
        assert (
            sim1.stats.events_popped == sim0.stats.events_popped
        )
        assert sim1.stats.heap_pushes == sim0.stats.heap_pushes
        assert len(rec.spans) > 0
        assert sim1.stats.spans == len(rec.spans)

    def test_analytic_backend_identical_traced(self):
        """The fast path commits the same priced times when recording
        (the fin cache is bypassed, but resolution is deterministic)."""
        base, _, _ = _run_stencilish("analytic", traced=False)
        traced, _, rec = _run_stencilish("analytic", traced=True)
        assert traced == base
        assert rec.count("collective") > 0

    def test_backends_emit_same_span_tree_shape(self):
        """Exact and analytic agree on the collective/round skeleton."""
        _, _, exact = _run_stencilish("exact", traced=True)
        _, _, analytic = _run_stencilish("analytic", traced=True)

        def shape(rec):
            colls = sorted(
                (s.track, s.name) for s in rec.select("collective")
            )
            rounds = rec.count("round")
            return colls, rounds

        assert shape(exact) == shape(analytic)


class TestSpanRecorder:
    def test_pause_drops_begin(self):
        rec = SpanRecorder()
        rec.pause()
        assert rec.begin(0.0, "x", "c", "t") is None
        rec.end(1.0, None)  # tolerated
        rec.resume()
        sp = rec.begin(1.0, "x", "c", "t")
        rec.end(2.0, sp)
        assert len(rec.spans) == 1
        assert rec.spans[0].dur == pytest.approx(1.0)

    def test_maxlen_bounds_buffer(self):
        rec = SpanRecorder(maxlen=4)
        for i in range(10):
            rec.complete(float(i), float(i) + 0.5, f"s{i}", "c", "t")
        assert len(rec.spans) == 4
        assert [s.name for s in rec.spans] == ["s6", "s7", "s8", "s9"]

    def test_sids_monotonic_and_queries(self):
        rec = SpanRecorder()
        # complete() returns the new sid, not the (lazily built) Span.
        a = rec.complete(0.0, 1.0, "a", "c1", "t1", attrs={"k": 1})
        b = rec.complete(1.0, 2.0, "b", "c2", "t2")
        assert b > a
        assert rec.tracks() == ["t1", "t2"]
        assert rec.wall() == 2.0
        assert rec.select(category="c1")[0].attrs["k"] == 1
        assert rec.by_sid()[a].sid == a
        # Materialized spans are stable object identities across reads.
        assert rec.by_sid()[a] is rec.by_sid()[a]

    def test_trim(self):
        rec = SpanRecorder()
        rec.complete(0.0, 1.0, "app", "c", "t")
        rec.complete(5.0, 6.0, "teardown", "c", "t")
        assert rec.trim(2.0) == 1
        assert [s.name for s in rec.spans] == ["app"]


class TestCriticalPath:
    def test_single_collective_totals_equal_wall(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=4))
        rec = sim.attach_spans()
        job = MpiJob(cluster, block_placement(8, 4))

        def prog(ctx):
            buf = np.ones(2048)
            out = np.empty_like(buf)
            yield from ctx.allreduce(buf, out)

        job.start(prog)
        job.run()
        report = critical_path(rec)
        assert report["wall_s"] == pytest.approx(rec.wall())
        total = sum(report["by_class"].values())
        assert total == pytest.approx(report["wall_s"], rel=1e-9)
        assert report["by_class"]["wire"] > 0.0
        assert report["n_steps"] >= 1
        assert "wall" in format_critical_path(report)

    def test_empty_recorder_is_all_idle(self):
        rec = SpanRecorder()
        report = critical_path(rec)
        assert report["wall_s"] == 0.0
        assert report["n_steps"] == 0

    def test_collective_profile_aggregates(self):
        _, _, rec = _run_stencilish("exact", traced=True)
        rows = collective_profile(rec)
        names = {r["name"] for r in rows}
        assert any("allreduce" in n for n in names)
        assert any("barrier" in n for n in names)
        for r in rows:
            assert r["total_s"] >= r["max_s"] > 0.0
            assert r["mean_s"] == pytest.approx(
                r["total_s"] / r["count"]
            )


class TestLinks:
    def test_link_bytes_equal_chan_bytes(self):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=4))
        job = MpiJob(cluster, block_placement(8, 4))
        record = {}
        job.start(lambda ctx: _stencilish(ctx, record))
        job.run()
        rows = link_report(cluster.interconnect, wall_s=sim.now)
        assert rows, "exact transfers must book channel bytes"
        assert (
            sum(r["bytes"] for r in rows) == sim.stats.chan_bytes
        )
        for r in rows:
            assert r["busy_frac"] >= 0.0
        table = format_link_report(rows, top=3)
        assert "busy%" in table

    def test_analytic_accounting_books_routed_path(self):
        sim = Simulator()
        spec = ClusterSpec(
            nodes=16,
            gpus_per_node=0,
            topology=TopologySpec(
                kind="fattree", pod_size=4, oversubscription=4.0
            ),
        )
        cluster = build_cluster(sim, spec)
        cluster.interconnect.accounting = True
        # Cross-pod traffic: node 0 -> node 5 crosses two pod uplinks.
        cluster.interconnect.account(0, 5, 10_000)
        rows = {r["name"]: r for r in link_report(cluster.interconnect)}
        assert rows["pod0.up"]["bytes"] == 10_000
        assert rows["pod1.down"]["bytes"] == 10_000
        assert sim.stats.chan_bytes == 10_000
        # Same-pod traffic never touches the uplinks.
        cluster.interconnect.account(0, 1, 500)
        rows = {r["name"]: r for r in link_report(cluster.interconnect)}
        assert rows["pod0.up"]["bytes"] == 10_000


class TestServingSpans:
    def _run_serve(self):
        from repro.trace import run_traced

        return run_traced("serve", nodes=8, backend="analytic")

    def test_request_spans_match_request_log(self):
        run = self._run_serve()
        rec = run.recorder
        service = rec.select(category="serve.request")
        waits = {
            s.attrs["req_id"]: s
            for s in rec.select(category="serve.wait")
        }
        assert service, "no request spans recorded"
        # Find the RequestLog through the trace runner's info is not
        # possible — re-derive from spans vs log by re-running inline.
        from repro.serve.workload import RequestLog  # noqa: F401

        for sp in service:
            rid = sp.attrs["req_id"]
            w = waits.get(rid)
            if w is not None:
                assert w.t1 == sp.t0  # wait ends where service starts
                assert w.t0 <= w.t1

    def test_request_spans_equal_log_timestamps(self):
        """Spans are emitted from the stamps, so they must agree."""
        from repro.serve.workload import RequestLog

        sim = Simulator()
        rec = sim.attach_spans()
        log = RequestLog(sim, name="svc")

        def proc():
            r = log.arrived(0)
            yield sim.timeout(0.5)
            log.started(r)
            yield sim.timeout(0.25)
            log.completed(r)

        sim.process(proc())
        sim.run()
        req = log.requests[0]
        wait = rec.select(category="serve.wait")[0]
        svc = rec.select(category="serve.request")[0]
        assert wait.t0 == req.arrival_t
        assert wait.t1 == req.start_t
        assert svc.t0 == req.start_t
        assert svc.t1 == req.done_t
        assert wait.track == svc.track == "svc"

    def test_job_phase_spans(self):
        run = self._run_serve()
        phases = [
            s.name for s in run.recorder.select(category="serve.job")
        ]
        assert "queued" in phases
        assert "placing" in phases
        assert "running" in phases


class TestExport:
    def test_chrome_trace_round_trip(self, tmp_path):
        _, _, rec = _run_stencilish("exact", traced=True)
        out = tmp_path / "trace.json"
        write_chrome_trace(rec, str(out))
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert len(events) == len(rec.spans) + len(rec.tracks())
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == set(rec.tracks())
        xs = [e for e in events if e["ph"] == "X"]
        assert xs, "expected complete events"
        for e in xs:
            assert e["dur"] >= 0.0
            assert e["tid"] >= 1
            assert "cat" in e and "ts" in e
        # Deterministic: a second export is byte-identical.
        assert to_chrome_trace(rec) == doc

    def test_instants_render_as_instant_events(self):
        rec = SpanRecorder()
        rec.instant(1.0, "mark", "dcgn.poll", "node0")
        doc = to_chrome_trace(rec)
        ev = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(ev) == 1
        assert "dur" not in ev[0]


class TestStatsApi:
    def test_snapshot_delta_summary(self):
        from repro.sim.stats import SimStats

        st = SimStats()
        before = st.snapshot()
        st.events_popped += 5
        st.spans += 2
        d = st.delta(before)
        assert d["events_popped"] == 5
        assert d["spans"] == 2
        assert all(
            v == 0 for k, v in d.items()
            if k not in ("events_popped", "spans")
        )
        compact = st.summary(compact=True)
        assert "events_popped=5" in compact
        assert "heap_pushes" not in compact
        full = st.summary()
        assert "heap_pushes=0" in full


class TestTraceCli:
    def test_run_jacobi_with_perfetto(self, tmp_path, capsys):
        from repro.trace.__main__ import main

        out = tmp_path / "t.json"
        rc = main(
            ["run", "jacobi", "--nodes", "4", "--perfetto", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        text = capsys.readouterr().out
        assert "jacobi:" in text

    def test_report_dcgn(self, capsys):
        from repro.trace.__main__ import main

        rc = main(["report", "dcgn", "--nodes", "2", "--links"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "critical path" in text
        assert "link utilization" in text

    def test_export_requires_perfetto(self):
        from repro.trace.__main__ import main

        with pytest.raises(SystemExit):
            main(["export", "jacobi"])
