"""Topology subsystem tests: routing cost sanity, collective correctness
on each fabric at non-power-of-two node counts, autotune derivation, and
the hierarchical collective paths."""

import numpy as np
import pytest

from repro.hw import (
    ClusterSpec,
    FatTree,
    FlatSwitch,
    MultiRail,
    TopologySpec,
    Torus2D,
    build_cluster,
    make_topology,
)
from repro.hw.params import IbParams
from repro.mpi import (
    CollectiveTuning,
    MpiError,
    MpiJob,
    ReduceOp,
    pod_cyclic_placement,
)
from repro.mpi.algorithms.autotune import (
    HEADER_BYTES as AUTOTUNE_HEADER_BYTES,
    autotune_tuning,
    clear_cache,
    derive_tuning,
)
from repro.mpi.communicator import HEADER_BYTES
from repro.sim import Simulator, us

KB = 1024
MB = 1024 * 1024


def fattree_spec(pod=4, oversub=2.0):
    return TopologySpec(kind="fattree", pod_size=pod, oversubscription=oversub)


def timed_transfer(topo_builder, n, src, dst, nbytes):
    sim = Simulator()
    topo = topo_builder(sim, n, IbParams())

    def proc():
        t = yield from topo.transfer(src, dst, nbytes)
        return t

    p = sim.process(proc())
    sim.run()
    return p.value


# ---------------------------------------------------------------------------
# Routing cost sanity
# ---------------------------------------------------------------------------

class TestTopologyCosts:
    def test_flat_switch_matches_seed_formula(self):
        """The refactored FlatSwitch must charge exactly what the seed
        Interconnect charged: tx latency/2 + size/bw, + rx latency/2."""
        params = IbParams(lat_us=2.0, bw_GBps=1.0)
        t = timed_transfer(
            lambda s, n, p: FlatSwitch(s, n, params), 4, 0, 1, 10**6
        )
        assert t == pytest.approx(us(2.0) + 1e-3)

    def test_fattree_intra_pod_equals_flat(self):
        flat = timed_transfer(FlatSwitch, 8, 0, 1, 10**6)
        ft = timed_transfer(
            lambda s, n, p: FatTree(s, n, p, pod_size=4), 8, 0, 1, 10**6
        )
        assert ft == pytest.approx(flat)

    def test_fattree_crossing_costs_more_than_flat(self):
        flat = timed_transfer(FlatSwitch, 8, 0, 5, 10**6)
        ft = timed_transfer(
            lambda s, n, p: FatTree(s, n, p, pod_size=4, oversubscription=2.0),
            8, 0, 5, 10**6,
        )
        assert ft > flat

    def test_fattree_higher_oversubscription_is_slower(self):
        t2 = timed_transfer(
            lambda s, n, p: FatTree(s, n, p, pod_size=4, oversubscription=2.0),
            8, 0, 5, 10**6,
        )
        t4 = timed_transfer(
            lambda s, n, p: FatTree(s, n, p, pod_size=4, oversubscription=4.0),
            8, 0, 5, 10**6,
        )
        assert t4 > t2

    def test_fattree_uplink_contention_serializes(self):
        """Two simultaneous pod crossings share the uplink; two flat
        transfers from distinct nodes would not contend."""
        sim = Simulator()
        ft = FatTree(sim, 8, IbParams(), pod_size=4, oversubscription=4.0)
        done = []

        def sender(src, dst):
            yield from ft.transfer(src, dst, 10**6)
            done.append(sim.now)

        sim.process(sender(0, 4))
        sim.process(sender(1, 5))
        sim.run()
        solo = ft.wire_time(0, 4, 10**6)
        uplink_service = 10**6 / ft._up[0].bandwidth_Bps
        # The loser queues behind the winner's full uplink transfer.
        assert max(done) >= solo + 0.9 * uplink_service

    def test_multirail_speeds_up_large_transfers(self):
        flat = timed_transfer(FlatSwitch, 4, 0, 1, 10**7)
        two = timed_transfer(
            lambda s, n, p: MultiRail(s, n, p, rails=2), 4, 0, 1, 10**7
        )
        four = timed_transfer(
            lambda s, n, p: MultiRail(s, n, p, rails=4), 4, 0, 1, 10**7
        )
        assert two == pytest.approx(flat / 2, rel=0.01)
        assert four == pytest.approx(flat / 4, rel=0.01)

    def test_multirail_zero_byte_pays_one_latency(self):
        t = timed_transfer(
            lambda s, n, p: MultiRail(s, n, p, rails=2), 4, 0, 1, 0
        )
        assert t == pytest.approx(us(IbParams().lat_us))

    def test_torus_latency_grows_with_hops(self):
        def builder(s, n, p):
            return Torus2D(s, n, p, nx=4, ny=4)

        near = timed_transfer(builder, 16, 0, 1, 0)    # 1 hop
        far = timed_transfer(builder, 16, 0, 10, 0)    # diameter-ish
        sim = Simulator()
        topo = builder(sim, 16, IbParams())
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 10) == 4
        assert topo.hops(0, 3) == 1    # wraparound
        assert far > near

    def test_torus_monotone_in_size(self):
        def builder(s, n, p):
            return Torus2D(s, n, p, nx=4, ny=4)

        small = timed_transfer(builder, 16, 0, 10, 10**4)
        large = timed_transfer(builder, 16, 0, 10, 10**6)
        assert large > small

    def test_monotone_in_size_every_topology(self):
        builders = {
            "flat": FlatSwitch,
            "fattree": lambda s, n, p: FatTree(s, n, p, pod_size=2),
            "multirail": lambda s, n, p: MultiRail(s, n, p, rails=2),
            "torus2d": lambda s, n, p: Torus2D(s, n, p, nx=3, ny=2),
        }
        for name, b in builders.items():
            prev = -1.0
            for nbytes in (0, 10**3, 10**5, 10**7):
                t = timed_transfer(b, 6, 0, 5, nbytes)
                assert t > prev, name
                prev = t

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(pod_size=0)
        with pytest.raises(ValueError):
            TopologySpec(oversubscription=0.5)
        with pytest.raises(ValueError):
            TopologySpec(rails=0)
        sim = Simulator()
        with pytest.raises(ValueError, match="unknown topology kind"):
            make_topology(sim, 4, IbParams(), TopologySpec(kind="clos"))
        with pytest.raises(ValueError, match="does not match"):
            Torus2D(sim, 6, IbParams(), nx=4, ny=4)

    def test_torus_derives_square_grid(self):
        sim = Simulator()
        topo = Torus2D(sim, 12, IbParams())
        assert (topo.nx, topo.ny) == (3, 4)


# ---------------------------------------------------------------------------
# Collective correctness on each topology, non-power-of-two node counts
# ---------------------------------------------------------------------------

TOPOLOGY_CASES = [
    ("fattree-2to1", fattree_spec(), 6),
    ("fattree-2to1", fattree_spec(), 12),
    ("multirail-2", TopologySpec(kind="multirail", rails=2), 6),
    ("multirail-2", TopologySpec(kind="multirail", rails=2), 12),
    ("torus-4x4", TopologySpec(kind="torus2d", torus_x=4, torus_y=4), 16),
    ("torus-2x3", TopologySpec(kind="torus2d", torus_x=2, torus_y=3), 6),
]


def make_topo_job(topo_spec, n_nodes, tuning=None, placement=None):
    sim = Simulator()
    spec = ClusterSpec(nodes=n_nodes, gpus_per_node=0, topology=topo_spec)
    cluster = build_cluster(sim, spec)
    if placement is None:
        placement = list(range(n_nodes))
    job = MpiJob(cluster, placement, tuning=tuning)
    return sim, job


class TestCollectivesOnTopologies:
    @pytest.mark.parametrize("label,topo,n", TOPOLOGY_CASES)
    @pytest.mark.parametrize("count", [7, 4097])
    def test_allreduce_correct(self, label, topo, n, count):
        sim, job = make_topo_job(topo, n)
        payloads = [
            np.random.default_rng(100 + r).standard_normal(count)
            for r in range(n)
        ]
        expected = np.sum(payloads, axis=0)
        result = {}

        def prog(ctx):
            recv = np.zeros(count)
            yield from ctx.allreduce(
                payloads[ctx.rank].copy(), recv, op=ReduceOp.SUM
            )
            result[ctx.rank] = recv

        job.start(prog)
        job.run()
        for r in range(n):
            assert np.allclose(result[r], expected), f"{label} rank {r}"

    @pytest.mark.parametrize("label,topo,n", TOPOLOGY_CASES)
    def test_allgather_correct(self, label, topo, n):
        count = 33
        sim, job = make_topo_job(topo, n)
        payloads = [
            np.random.default_rng(200 + r).standard_normal(count)
            for r in range(n)
        ]
        result = {}

        def prog(ctx):
            recvbufs = [np.zeros(count) for _ in range(n)]
            yield from ctx.allgather(payloads[ctx.rank].copy(), recvbufs)
            result[ctx.rank] = [b.copy() for b in recvbufs]

        job.start(prog)
        job.run()
        for r in range(n):
            for s in range(n):
                assert np.allclose(result[r][s], payloads[s]), (
                    f"{label} rank {r} block {s}"
                )

    @pytest.mark.parametrize("label,topo,n", TOPOLOGY_CASES)
    def test_bcast_and_barrier_correct(self, label, topo, n):
        sim, job = make_topo_job(topo, n)
        payload = np.random.default_rng(7).standard_normal(65)
        result = {}

        def prog(ctx):
            buf = payload.copy() if ctx.rank == 2 else np.zeros(65)
            yield from ctx.barrier()
            yield from ctx.bcast(buf, root=2)
            result[ctx.rank] = buf

        job.start(prog)
        job.run()
        for r in range(n):
            assert np.allclose(result[r], payload), f"{label} rank {r}"

    def test_monotone_collective_cost_across_topologies(self):
        """1 MB allreduce: oversubscribed fat tree with a scattered
        placement is slower than flat; 2-rail multirail is faster."""
        times = {}
        n = 8
        for label, topo, placement in [
            ("flat", TopologySpec(), None),
            ("fattree", fattree_spec(), pod_cyclic_placement(n, 4)),
            ("multirail", TopologySpec(kind="multirail", rails=2), None),
        ]:
            sim, job = make_topo_job(topo, n, placement=placement)

            def prog(ctx):
                send = np.zeros(1 * MB, dtype=np.uint8)
                recv = np.zeros(1 * MB, dtype=np.uint8)
                yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

            job.start(prog)
            job.run()
            times[label] = sim.now
        assert times["fattree"] > times["flat"]
        assert times["multirail"] < times["flat"]


# ---------------------------------------------------------------------------
# Hierarchical collective paths
# ---------------------------------------------------------------------------

class TestHierarchicalCollectives:
    def _scattered_job(self, n=16, tuning=None):
        return make_topo_job(
            fattree_spec(), n, tuning=tuning,
            placement=pod_cyclic_placement(n, 4),
        )

    def test_hierarchical_allreduce_selected_and_correct(self):
        sim, job = self._scattered_job()
        count = 32 * KB  # float64 => 256 KB payload, past the hier gate
        payloads = [
            np.random.default_rng(300 + r).standard_normal(count)
            for r in range(16)
        ]
        expected = np.sum(payloads, axis=0)
        result = {}

        def prog(ctx):
            recv = np.zeros(count)
            yield from ctx.allreduce(
                payloads[ctx.rank].copy(), recv, op=ReduceOp.SUM
            )
            result[ctx.rank] = recv

        job.start(prog)
        job.run()
        assert job.comm.stats.get("allreduce[hierarchical]") == 16
        for r in range(16):
            assert np.allclose(result[r], expected), f"rank {r}"

    def test_hierarchical_bcast_selected_and_correct(self):
        sim, job = self._scattered_job()
        payload = np.random.default_rng(9).standard_normal(64 * KB)
        result = {}

        def prog(ctx):
            buf = payload.copy() if ctx.rank == 5 else np.zeros(64 * KB)
            yield from ctx.bcast(buf, root=5)
            result[ctx.rank] = buf

        job.start(prog)
        job.run()
        assert job.comm.stats.get("bcast[hierarchical]") == 16
        for r in range(16):
            assert np.allclose(result[r], payload), f"rank {r}"

    def test_hierarchical_beats_flat_constants_on_scattered_fattree(self):
        """The acceptance regime: >=1.2x on >=16 nodes, >=1 MB."""

        def run(tuning):
            sim, job = self._scattered_job(tuning=tuning)

            def prog(ctx):
                send = np.zeros(1 * MB, dtype=np.uint8)
                recv = np.zeros(1 * MB, dtype=np.uint8)
                yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

            job.start(prog)
            job.run()
            return sim.now

        t_constants = run(CollectiveTuning())
        t_autotuned = run(None)
        assert t_constants / t_autotuned >= 1.2

    def test_contiguous_placement_keeps_flat_schedules(self):
        """A contiguous placement is not fragmented: the flat ring is
        near-optimal (one uplink crossing per pod) and hierarchical
        must not trigger."""
        sim, job = make_topo_job(fattree_spec(), 16)
        assert not job.comm.fragmented

        def prog(ctx):
            send = np.zeros(1 * MB, dtype=np.uint8)
            recv = np.zeros(1 * MB, dtype=np.uint8)
            yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

        job.start(prog)
        job.run()
        assert job.comm.stats.get("allreduce[ring]") == 16

    def test_unequal_groups_run_hierarchical(self):
        # 6 nodes, pod_size 4 => pods of 4 and 2: unequal pods are
        # hier-capable since the sub-communicator rebuild (PR 4) — the
        # leader-based composition replaces the old hard error.
        sim, job = make_topo_job(
            fattree_spec(), 6,
            tuning=CollectiveTuning(force_allreduce="hierarchical"),
        )
        assert job.comm.hier_capable
        results = {}

        def prog(ctx):
            send = np.full(256, ctx.rank + 1, dtype=np.int64)
            recv = np.zeros(256, dtype=np.int64)
            yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
            results[ctx.rank] = recv

        job.start(prog)
        job.run()
        expected = np.full(256, sum(range(1, 7)), dtype=np.int64)
        for r in range(6):
            assert np.array_equal(results[r], expected)
        assert job.comm.stats.get("allreduce[hierarchical]") == 6

    def test_forced_hierarchical_any_equal_grouping(self):
        """Even a contiguous placement can run it when forced."""
        sim, job = make_topo_job(
            fattree_spec(), 8,
            tuning=CollectiveTuning(force_allreduce="hierarchical"),
        )
        count = 129
        payloads = [
            np.random.default_rng(400 + r).standard_normal(count)
            for r in range(8)
        ]
        expected = np.sum(payloads, axis=0)
        result = {}

        def prog(ctx):
            recv = np.zeros(count)
            yield from ctx.allreduce(
                payloads[ctx.rank].copy(), recv, op=ReduceOp.SUM
            )
            result[ctx.rank] = recv

        job.start(prog)
        job.run()
        assert job.comm.stats.get("allreduce[hierarchical]") == 8
        for r in range(8):
            assert np.allclose(result[r], expected)


# ---------------------------------------------------------------------------
# Autotune derivation
# ---------------------------------------------------------------------------

class TestAutotune:
    def test_header_bytes_in_sync_with_wire_protocol(self):
        assert AUTOTUNE_HEADER_BYTES == HEADER_BYTES

    def test_flat_derivation_matches_calibrated_shape(self):
        """On the flat switch the derivation must reproduce the intent
        of the PR-1 constants: rd needs 8 ranks (P=4 loses at the eager
        boundary), the small-block exception is half the eager
        threshold, and no hierarchical path."""
        sim = Simulator()
        cluster = build_cluster(sim, ClusterSpec(nodes=16, gpus_per_node=0))
        tuning = autotune_tuning(cluster)
        ib = cluster.spec.params.ib
        assert tuning.allgather_rd_min_ranks == 8
        assert tuning.allgather_rd_small_max_bytes == ib.eager_threshold // 2
        assert tuning.allreduce_hier_min_bytes is None
        assert tuning.bcast_hier_min_bytes is None
        assert 0 < tuning.allreduce_ring_min_bytes <= 64 * KB
        assert tuning.allgather_bruck_max_bytes > 0

    def test_fattree_derivation_enables_hierarchical(self):
        sim = Simulator()
        cluster = build_cluster(
            sim,
            ClusterSpec(nodes=16, gpus_per_node=0, topology=fattree_spec()),
        )
        tuning = autotune_tuning(cluster)
        assert tuning.allreduce_hier_min_bytes is not None
        assert tuning.bcast_hier_min_bytes is not None
        # Floored at half the eager threshold (latency-bound regime).
        ib = cluster.spec.params.ib
        assert tuning.allreduce_hier_min_bytes >= ib.eager_threshold // 2

    def test_multirail_shifts_bandwidth_crossovers_up(self):
        """Doubling the wire bandwidth keeps latency constant, so the
        bandwidth-optimal ring pays off only at larger payloads."""
        sim = Simulator()
        flat = build_cluster(sim, ClusterSpec(nodes=16, gpus_per_node=0))
        rail = build_cluster(
            Simulator(),
            ClusterSpec(
                nodes=16, gpus_per_node=0,
                topology=TopologySpec(kind="multirail", rails=2),
            ),
        )
        t_flat = autotune_tuning(flat)
        t_rail = autotune_tuning(rail)
        assert (
            t_rail.allreduce_ring_min_bytes > t_flat.allreduce_ring_min_bytes
        )

    def test_derivation_cached_per_fabric_shape(self):
        clear_cache()
        sim = Simulator()
        spec = ClusterSpec(nodes=8, gpus_per_node=0, topology=fattree_spec())
        c1 = build_cluster(sim, spec)
        c2 = build_cluster(Simulator(), spec)
        t1 = autotune_tuning(c1)
        assert autotune_tuning(c2) is t1  # same shape => cached object
        other = build_cluster(
            Simulator(), ClusterSpec(nodes=8, gpus_per_node=0)
        )
        assert autotune_tuning(other) is not t1

    def test_derive_tuning_respects_profile_not_globals(self):
        """derive_tuning is a pure function of (profile, ib)."""
        sim = Simulator()
        cluster = build_cluster(sim, ClusterSpec(nodes=4, gpus_per_node=0))
        prof = cluster.interconnect.topology.profile()
        ib = cluster.spec.params.ib
        assert derive_tuning(prof, ib) == derive_tuning(prof, ib)
