"""Nonblocking edge cases: isend/irecv wildcard matching under
out-of-order completion, double-wait, test-before-completion — and the
DCGN kernel-side i-APIs (iSendTo/iRecvFrom/iAllreduce slot requests)."""

import numpy as np
import pytest

from repro.dcgn import ANY, DcgnConfig, DcgnRuntime, NodeConfig
from repro.gpusim import LaunchConfig
from repro.hw import build_cluster, paper_cluster
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    MpiJob,
    block_placement,
)
from repro.sim import Simulator, us


def make_job(n_ranks=3, n_nodes=3):
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes, gpus_per_node=0))
    return sim, MpiJob(cluster, block_placement(n_ranks, n_nodes))


# ---------------------------------------------------------------------------
# MPI-layer isend/irecv edge cases
# ---------------------------------------------------------------------------

class TestWildcardOutOfOrder:
    def test_any_source_matches_first_arrival(self):
        """Two wildcard irecvs complete in arrival order, not in the
        order senders were ranked."""
        sim, job = make_job()
        statuses = []

        def prog(ctx):
            if ctx.rank == 0:
                a = np.zeros(4, dtype=np.int32)
                b = np.zeros(4, dtype=np.int32)
                r1 = ctx.irecv(a, source=ANY_SOURCE, tag=ANY_TAG)
                r2 = ctx.irecv(b, source=ANY_SOURCE, tag=ANY_TAG)
                s1 = yield from r1.wait()
                s2 = yield from r2.wait()
                statuses.extend([s1, s2])
            elif ctx.rank == 1:
                # Rank 1 delays, so rank 2's message arrives first.
                yield ctx.sim.timeout(us(500.0))
                yield from ctx.send(
                    np.full(4, 11, dtype=np.int32), dest=0, tag=7
                )
            else:
                yield from ctx.send(
                    np.full(4, 22, dtype=np.int32), dest=0, tag=9
                )

        job.start(prog)
        job.run()
        assert [s.source for s in statuses] == [2, 1]
        assert [s.tag for s in statuses] == [9, 7]

    def test_tagged_irecv_skips_mismatched_arrival(self):
        """A tag-filtered irecv must not steal an earlier message with
        another tag; the wildcard posted later picks that one up."""
        sim, job = make_job(2, 2)
        out = {}

        def prog(ctx):
            if ctx.rank == 0:
                tagged = np.zeros(1, dtype=np.int64)
                wild = np.zeros(1, dtype=np.int64)
                r_tag = ctx.irecv(tagged, source=ANY_SOURCE, tag=5)
                r_wild = ctx.irecv(wild, source=ANY_SOURCE, tag=ANY_TAG)
                s_tag = yield from r_tag.wait()
                s_wild = yield from r_wild.wait()
                out["tagged"] = (int(tagged[0]), s_tag.tag)
                out["wild"] = (int(wild[0]), s_wild.tag)
            else:
                yield from ctx.send(np.array([100]), dest=0, tag=3)
                yield from ctx.send(np.array([200]), dest=0, tag=5)

        job.start(prog)
        job.run()
        assert out["tagged"] == (200, 5)
        assert out["wild"] == (100, 3)

    def test_out_of_order_completion_of_posted_irecvs(self):
        """irecvs posted for specific sources complete as their peers
        send, independent of posting order."""
        sim, job = make_job()
        order = []

        def prog(ctx):
            if ctx.rank == 0:
                bufs = [np.zeros(2, dtype=np.int32) for _ in range(2)]
                r1 = ctx.irecv(bufs[0], source=1)  # posted first
                r2 = ctx.irecv(bufs[1], source=2)
                # Rank 2 sends immediately; rank 1 is slow, so r2
                # completes first although posted second.
                yield from r2.wait()
                order.append("r2")
                assert not r1.test()
                yield from r1.wait()
                order.append("r1")
            elif ctx.rank == 1:
                yield ctx.sim.timeout(us(800.0))
                yield from ctx.send(np.zeros(2, dtype=np.int32), dest=0)
            else:
                yield from ctx.send(np.zeros(2, dtype=np.int32), dest=0)

        job.start(prog)
        job.run()
        assert order == ["r2", "r1"]


class TestRequestSemantics:
    def test_double_wait_returns_same_value(self):
        sim, job = make_job(2, 2)
        out = {}

        def prog(ctx):
            if ctx.rank == 0:
                buf = np.zeros(3, dtype=np.int32)
                req = ctx.irecv(buf, source=1)
                s1 = yield from req.wait()
                s2 = yield from req.wait()  # waiting again is legal
                out["statuses"] = (s1, s2)
            else:
                yield from ctx.send(np.arange(3, dtype=np.int32), dest=0)

        job.start(prog)
        job.run()
        s1, s2 = out["statuses"]
        assert s1 is s2
        assert s1.source == 1

    def test_test_before_and_after_completion(self):
        sim, job = make_job(2, 2)
        flags = {}

        def prog(ctx):
            if ctx.rank == 0:
                buf = np.zeros(1, dtype=np.int64)
                req = ctx.irecv(buf, source=1)
                flags["before"] = req.test()
                yield from req.wait()
                flags["after"] = req.test()
            else:
                yield ctx.sim.timeout(us(300.0))
                yield from ctx.send(np.array([1]), dest=0)

        job.start(prog)
        job.run()
        assert flags == {"before": False, "after": True}

    def test_isend_double_wait_and_test(self):
        sim, job = make_job(2, 2)
        out = {}

        def prog(ctx):
            if ctx.rank == 0:
                req = ctx.isend(np.zeros(8, dtype=np.int64), dest=1)
                yield from req.wait()
                assert req.test()
                yield from req.wait()  # second wait is a no-op join
                out["ok"] = True
            else:
                yield from ctx.recv(np.zeros(8, dtype=np.int64), source=0)

        job.start(prog)
        job.run()
        assert out["ok"]


# ---------------------------------------------------------------------------
# DCGN kernel-side nonblocking slot requests
# ---------------------------------------------------------------------------

def make_runtime(nodes=2, cpu_threads=0, gpus=1):
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=nodes, gpus_per_node=max(1, gpus))
    )
    cfg = DcgnConfig.homogeneous(
        nodes, cpu_threads=cpu_threads, gpus=gpus, slots_per_gpu=1
    )
    return sim, cluster, DcgnRuntime(cluster, cfg)


class TestGpuNonblocking:
    def test_isend_irecv_overlap_and_integrity(self):
        sim, cluster, rt = make_runtime(nodes=2)
        out = {}

        def kernel(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            peer = 1 - rank
            sbuf = kctx.device.alloc(1024, dtype=np.uint8, name="s")
            rbuf = kctx.device.alloc(1024, dtype=np.uint8, name="r")
            sbuf.data[...] = rank + 10
            hs = yield from comm.isend(0, peer, sbuf)
            hr = yield from comm.irecv(0, peer, rbuf)
            assert not hr.test()
            # Kernel keeps computing while the exchange progresses.
            yield from kctx.compute(seconds=2e-3)
            yield from hs.wait()
            status = yield from hr.wait()
            assert hr.test()
            out[rank] = (int(rbuf.data[0]), status.source)
            sbuf.free()
            rbuf.free()

        rt.launch_gpu(kernel, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=10.0)
        assert out[0] == (11, 1)
        assert out[1] == (10, 0)

    def test_paper_aliases_exist(self):
        from repro.dcgn import GpuCommApi

        assert GpuCommApi.iSendTo is GpuCommApi.isend
        assert GpuCommApi.iRecvFrom is GpuCommApi.irecv
        assert GpuCommApi.iAllreduce is GpuCommApi.iallreduce
        assert GpuCommApi.iBroadcast is GpuCommApi.ibroadcast

    def test_iallreduce_from_kernel(self):
        sim, cluster, rt = make_runtime(nodes=3)
        out = {}

        def kernel(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            buf = kctx.device.alloc(16, dtype=np.float64, name="x")
            buf.data[...] = float(rank + 1)
            h = yield from comm.iallreduce(0, buf, op="sum")
            yield from kctx.compute(seconds=1e-3)
            yield from h.wait()
            out[rank] = float(buf.data[0])
            buf.free()

        rt.launch_gpu(kernel, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=10.0)
        assert out == {0: 6.0, 1: 6.0, 2: 6.0}

    def test_ibroadcast_and_ibarrier_from_kernel(self):
        sim, cluster, rt = make_runtime(nodes=2)
        out = {}

        def kernel(kctx):
            comm = kctx.comm
            rank = comm.rank(0)
            buf = kctx.device.alloc(64, dtype=np.uint8, name="b")
            if rank == 0:
                buf.data[...] = 42
            h = yield from comm.ibroadcast(0, 0, buf)
            hb = yield from comm.ibarrier(0)
            yield from h.wait()
            yield from hb.wait()
            out[rank] = int(buf.data[0])
            buf.free()

        rt.launch_gpu(kernel, config=LaunchConfig(grid_blocks=1))
        rt.run(max_time=10.0)
        assert out == {0: 42, 1: 42}

    def test_overlap_beats_blocking_exchange(self):
        """The nonblocking exchange hides wire time under compute."""

        def elapsed(overlapped):
            sim, cluster, rt = make_runtime(nodes=2)
            marks = {}

            def kernel(kctx):
                comm = kctx.comm
                rank = comm.rank(0)
                peer = 1 - rank
                sbuf = kctx.device.alloc(
                    2 * 1024 * 1024, dtype=np.uint8, name="s"
                )
                rbuf = kctx.device.alloc(
                    2 * 1024 * 1024, dtype=np.uint8, name="r"
                )
                t0 = kctx.sim.now
                if overlapped:
                    hs = yield from comm.isend(0, peer, sbuf)
                    hr = yield from comm.irecv(0, peer, rbuf)
                    yield from kctx.compute(seconds=8e-3)
                    yield from hs.wait()
                    yield from hr.wait()
                else:
                    yield from comm.sendrecv(0, peer, sbuf, peer, rbuf)
                    yield from kctx.compute(seconds=8e-3)
                if rank == 0:
                    marks["t"] = kctx.sim.now - t0
                sbuf.free()
                rbuf.free()

            rt.launch_gpu(kernel, config=LaunchConfig(grid_blocks=1))
            rt.run(max_time=30.0)
            return marks["t"]

        t_block = elapsed(False)
        t_over = elapsed(True)
        assert t_over < t_block / 1.3


class TestCpuNonblocking:
    def test_cpu_iallreduce_and_ibarrier(self):
        sim, cluster, rt = make_runtime(nodes=2, cpu_threads=1, gpus=0)
        out = {}

        def cpu_kernel(ctx):
            send = np.full(8, ctx.rank + 1.0)
            recv = np.zeros(8)
            h = yield from ctx.iallreduce(send, recv, op="sum")
            yield from ctx.compute(seconds=1e-3)
            yield from h.wait()
            hb = yield from ctx.ibarrier()
            yield from hb.wait()
            out[ctx.rank] = recv[0]

        rt.launch_cpu(cpu_kernel)
        rt.run(max_time=10.0)
        assert out == {0: 3.0, 1: 3.0}

    def test_cpu_ibroadcast(self):
        sim, cluster, rt = make_runtime(nodes=2, cpu_threads=1, gpus=0)
        out = {}

        def cpu_kernel(ctx):
            buf = (
                np.arange(32, dtype=np.int64)
                if ctx.rank == 0
                else np.zeros(32, dtype=np.int64)
            )
            h = yield from ctx.ibroadcast(0, buf)
            yield from ctx.compute(seconds=5e-4)
            yield from h.wait()
            out[ctx.rank] = buf.copy()

        rt.launch_cpu(cpu_kernel)
        rt.run(max_time=10.0)
        assert np.array_equal(out[1], np.arange(32))
