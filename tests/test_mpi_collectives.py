"""Tests for simulated-MPI collectives."""

import numpy as np
import pytest

from repro.hw import HWParams, build_cluster, paper_cluster
from repro.hw.params import IbParams
from repro.mpi import MpiJob, ReduceOp, block_placement, round_robin_placement
from repro.sim import Simulator, us


def make_job(n_ranks, n_nodes=None):
    n_nodes = n_nodes if n_nodes is not None else max(1, n_ranks // 2)
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
    job = MpiJob(cluster, block_placement(n_ranks, n_nodes))
    return sim, job


@pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 7, 8])
class TestBarrier:
    def test_barrier_synchronizes(self, n_ranks):
        sim, job = make_job(n_ranks, n_nodes=1 if n_ranks < 2 else 1)
        after = {}

        def prog(ctx):
            # Stagger arrivals; nobody leaves before the last arrives.
            yield ctx.sim.timeout(float(ctx.rank))
            yield from ctx.barrier()
            after[ctx.rank] = ctx.sim.now

        job.start(prog)
        job.run()
        latest_arrival = float(n_ranks - 1)
        assert all(t >= latest_arrival for t in after.values())


@pytest.mark.parametrize("n_ranks,root", [(2, 0), (4, 0), (4, 2), (8, 3), (5, 1)])
class TestBcast:
    def test_bcast_delivers_payload(self, n_ranks, root):
        sim, job = make_job(n_ranks, n_nodes=1)
        result = {}

        def prog(ctx):
            buf = np.zeros(16, dtype=np.float64)
            if ctx.rank == root:
                buf[:] = np.arange(16) + 100
            yield from ctx.bcast(buf, root=root)
            result[ctx.rank] = buf.copy()

        job.start(prog)
        job.run()
        expected = np.arange(16) + 100.0
        for r in range(n_ranks):
            assert np.array_equal(result[r], expected), f"rank {r}"


class TestReduce:
    @pytest.mark.parametrize("op,expected", [
        (ReduceOp.SUM, 0 + 1 + 2 + 3),
        (ReduceOp.MAX, 3),
        (ReduceOp.MIN, 0),
        (ReduceOp.PROD, 0),
    ])
    def test_reduce_ops(self, op, expected):
        sim, job = make_job(4, n_nodes=2)
        result = {}

        def prog(ctx):
            send = np.array([float(ctx.rank)])
            recv = np.zeros(1) if ctx.rank == 0 else None
            yield from ctx.reduce(send, recv, op=op, root=0)
            if ctx.rank == 0:
                result["v"] = float(recv[0])

        job.start(prog)
        job.run()
        assert result["v"] == pytest.approx(expected)

    def test_reduce_vector_nonzero_root(self):
        sim, job = make_job(5, n_nodes=1)
        result = {}

        def prog(ctx):
            send = np.full(8, float(ctx.rank + 1))
            recv = np.zeros(8) if ctx.rank == 3 else None
            yield from ctx.reduce(send, recv, op=ReduceOp.SUM, root=3)
            if ctx.rank == 3:
                result["v"] = recv.copy()

        job.start(prog)
        job.run()
        assert np.allclose(result["v"], 15.0)  # 1+2+3+4+5

    def test_allreduce(self):
        sim, job = make_job(4, n_nodes=2)
        result = {}

        def prog(ctx):
            send = np.array([float(2 ** ctx.rank)])
            recv = np.zeros(1)
            yield from ctx.allreduce(send, recv, op=ReduceOp.SUM)
            result[ctx.rank] = float(recv[0])

        job.start(prog)
        job.run()
        assert all(v == pytest.approx(15.0) for v in result.values())


class TestGatherScatter:
    def test_gather(self):
        sim, job = make_job(4, n_nodes=2)
        result = {}

        def prog(ctx):
            send = np.full(4, float(ctx.rank))
            if ctx.rank == 0:
                recvbufs = [np.zeros(4) for _ in range(4)]
                yield from ctx.gather(send, recvbufs, root=0)
                result["rows"] = [b.copy() for b in recvbufs]
            else:
                yield from ctx.gather(send, None, root=0)

        job.start(prog)
        job.run()
        for r, row in enumerate(result["rows"]):
            assert np.allclose(row, float(r))

    def test_gatherv_unequal_sizes(self):
        sim, job = make_job(3, n_nodes=1)
        result = {}

        def prog(ctx):
            send = np.arange(ctx.rank + 1, dtype=np.float64)
            if ctx.rank == 0:
                recvbufs = [np.zeros(r + 1) for r in range(3)]
                yield from ctx.gather(send, recvbufs, root=0)
                result["rows"] = [b.copy() for b in recvbufs]
            else:
                yield from ctx.gather(send, None, root=0)

        job.start(prog)
        job.run()
        for r, row in enumerate(result["rows"]):
            assert np.array_equal(row, np.arange(r + 1, dtype=np.float64))

    def test_scatter(self):
        sim, job = make_job(4, n_nodes=2)
        result = {}

        def prog(ctx):
            recv = np.zeros(2)
            if ctx.rank == 1:
                sendbufs = [np.full(2, float(10 * r)) for r in range(4)]
                yield from ctx.scatter(sendbufs, recv, root=1)
            else:
                yield from ctx.scatter(None, recv, root=1)
            result[ctx.rank] = recv.copy()

        job.start(prog)
        job.run()
        for r in range(4):
            assert np.allclose(result[r], 10.0 * r)

    def test_allgather(self):
        sim, job = make_job(4, n_nodes=2)
        result = {}

        def prog(ctx):
            send = np.array([float(ctx.rank ** 2)])
            recvbufs = [np.zeros(1) for _ in range(4)]
            yield from ctx.allgather(send, recvbufs)
            result[ctx.rank] = [float(b[0]) for b in recvbufs]

        job.start(prog)
        job.run()
        for r in range(4):
            assert result[r] == [0.0, 1.0, 4.0, 9.0]

    def test_alltoall(self):
        sim, job = make_job(4, n_nodes=2)
        result = {}

        def prog(ctx):
            sendbufs = [
                np.array([float(ctx.rank * 10 + dst)]) for dst in range(4)
            ]
            recvbufs = [np.zeros(1) for _ in range(4)]
            yield from ctx.alltoall(sendbufs, recvbufs)
            result[ctx.rank] = [float(b[0]) for b in recvbufs]

        job.start(prog)
        job.run()
        # Rank r receives src*10 + r from each src.
        for r in range(4):
            assert result[r] == [float(s * 10 + r) for s in range(4)]


class TestCollectiveTiming:
    def _barrier_time(self, n_ranks, n_nodes):
        sim = Simulator()
        cluster = build_cluster(sim, paper_cluster(nodes=n_nodes))
        job = MpiJob(cluster, block_placement(n_ranks, n_nodes))

        def prog(ctx):
            yield from ctx.barrier()

        job.start(prog)
        job.run()
        return sim.now

    def test_barrier_scales_logarithmically(self):
        t2 = self._barrier_time(2, 1)
        t8 = self._barrier_time(8, 4)
        # 3 rounds vs 1 round; inter-node latency higher than intra.
        assert t8 > t2
        assert t8 < 20 * t2  # sanity: not linear blow-up

    def test_paper_table1_mpi_barrier_anchors(self):
        """MVAPICH2 barrier anchors: ~3/5/6 µs for 2/4/8 ranks (Table 1)."""
        t2 = self._barrier_time(2, 1) / us(1.0)
        t4 = self._barrier_time(4, 2) / us(1.0)
        t8 = self._barrier_time(8, 4) / us(1.0)
        assert 1.0 <= t2 <= 6.0, f"2-rank barrier {t2:.2f} µs"
        assert 2.5 <= t4 <= 10.0, f"4-rank barrier {t4:.2f} µs"
        assert 3.5 <= t8 <= 12.0, f"8-rank barrier {t8:.2f} µs"
        assert t2 < t4 < t8

    def test_bcast_time_grows_with_size(self):
        def bcast_time(nbytes):
            sim = Simulator()
            cluster = build_cluster(sim, paper_cluster(nodes=4))
            job = MpiJob(cluster, block_placement(8, 4))

            def prog(ctx):
                buf = np.zeros(nbytes, dtype=np.uint8)
                yield from ctx.bcast(buf, root=0)

            job.start(prog)
            job.run()
            return sim.now

        t_small = bcast_time(1024)
        t_big = bcast_time(1024 * 1024)
        assert t_big > 5 * t_small
