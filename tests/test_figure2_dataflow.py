"""Reproduce the paper's Figure 2: the dataflow of a cross-node GPU send.

The figure numbers the events of a GPU→GPU send between nodes:

  (0) Node 1 polls its GPU's memory and finds the send-request
      (meanwhile Node 2 polls and finds the receive-request);
  (1) Node 1 reads the requested send-data from GPU memory;
  (2) the request is packaged and relayed to the COMM thread;
  (3) the COMM thread executes the MPI call;
  (4) data moves NIC→NIC (and the sending GPU is signalled);
  (5) the receiving COMM thread gets the data;
  (6-7) the data is copied to the GPU thread and then to the GPU, and
      the GPU is signalled that the receive completed.

This test runs exactly that scenario under a tracer and asserts the
event ordering matches the figure.
"""

import numpy as np
import pytest

from repro.dcgn import DcgnConfig, DcgnRuntime
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator, Tracer


@pytest.fixture()
def traced_run():
    sim = Simulator()
    sim.tracer = Tracer(
        categories={
            "mailbox.post",
            "mailbox.complete",
            "gpu_thread.poll",
            "gpu_thread.harvest",
            "gpu_thread.relay",
            "gpu_thread.writeback",
            "comm.wire_send",
            "comm.wire_arrival",
            "mpi.send",
            "mpi.recv",
        },
        # Bounded ring buffer: far above this run's record count, so
        # nothing drops — exercises the maxlen path on a real workload.
        maxlen=100_000,
    )
    assert sim.tracer.maxlen == 100_000
    cluster = build_cluster(sim, paper_cluster(nodes=2))
    rt = DcgnRuntime(
        cluster, DcgnConfig.homogeneous(2, gpus=1, slots_per_gpu=1)
    )
    payload = {}

    def gpu_kernel(ctx):
        comm = ctx.comm
        dbuf = ctx.device.alloc(64, dtype=np.uint8)
        me = comm.rank(0)
        if me == 0:
            dbuf.data[:] = 7
            yield from comm.send(0, 1, dbuf)
        else:
            yield from comm.recv(0, 0, dbuf)
            payload["received"] = dbuf.data.copy()
        dbuf.free()

    rt.launch_gpu(gpu_kernel)
    rt.run()
    assert np.all(payload["received"] == 7)
    return sim.tracer


def first_time(tracer, category, predicate=None):
    recs = tracer.select(category, predicate)
    assert recs, f"no {category} events recorded"
    return recs[0].t


class TestFigure2Ordering:
    def test_send_side_sequence(self, traced_run):
        tr = traced_run
        t_post = first_time(tr, "mailbox.post",
                            lambda r: r["op"] == "send")
        t_harvest = first_time(
            tr, "gpu_thread.harvest",
            lambda r: r["thread"].startswith("dcgn.gpu0"),
        )
        t_relay = first_time(
            tr, "gpu_thread.relay", lambda r: r["op"] == "send"
        )
        t_wire = first_time(tr, "comm.wire_send", lambda r: r["node"] == 0)
        # (0) request posted -> (1) host notices & reads -> (2) relayed to
        # the COMM thread -> (3/4) MPI send toward the NIC.
        assert t_post < t_harvest < t_relay < t_wire

    def test_receive_side_sequence(self, traced_run):
        tr = traced_run
        t_recv_post = first_time(tr, "mailbox.post",
                                 lambda r: r["op"] == "recv")
        t_recv_relay = first_time(
            tr, "gpu_thread.relay", lambda r: r["op"] == "recv"
        )
        t_arrival = first_time(tr, "comm.wire_arrival",
                               lambda r: r["node"] == 1)
        t_writeback = first_time(
            tr, "gpu_thread.writeback", lambda r: r["op"] == "recv"
        )
        t_complete = first_time(tr, "mailbox.complete",
                                lambda r: r["op"] == "recv")
        # Node 2's receive-request was found by polling before the data
        # arrives (5); data is then copied to the GPU (6-7) and the GPU
        # is signalled.
        assert t_recv_post < t_recv_relay
        assert t_arrival < t_writeback <= t_complete

    def test_cross_node_ordering(self, traced_run):
        tr = traced_run
        t_wire_send = first_time(tr, "comm.wire_send",
                                 lambda r: r["node"] == 0)
        t_arrival = first_time(tr, "comm.wire_arrival",
                               lambda r: r["node"] == 1)
        t_send_flag = first_time(
            tr, "gpu_thread.writeback", lambda r: r["op"] == "send"
        )
        # The wire send precedes the remote arrival; the local send
        # completion flag ("the CPU on Node 1 signaling the GPU that the
        # send completed") happens after the MPI call commenced.
        assert t_wire_send < t_arrival
        assert t_wire_send < t_send_flag

    def test_mpi_carries_the_payload(self, traced_run):
        tr = traced_run
        # Header + payload = at least two MPI sends from node 0's rank.
        sends = tr.select("mpi.send", lambda r: r["src"] == 0)
        assert len(sends) >= 2
