"""Tests for the GPU simulator: memory, kernels, scheduling, mailboxes."""

import numpy as np
import pytest

from repro.hw.params import GpuParams, PcieParams
from repro.gpusim import (
    DeviceBuffer,
    GpuDevice,
    GpuOutOfMemory,
    InvalidMemorySpace,
    LaunchConfig,
    LaunchConfigError,
    SlotMailboxes,
    launch,
    launch_kernel,
    memcpy_d2d,
    memcpy_d2h,
    memcpy_h2d,
)
from repro.sim import DeadlockError, RngStreams, Simulator, us


def make_device(sim, num_sms=4, gflops=100.0, mem_mb=64, blocks_per_sm=1):
    return GpuDevice(
        sim,
        params=GpuParams(
            num_sms=num_sms,
            blocks_per_sm=blocks_per_sm,
            gflops=gflops,
            mem_bw_GBps=10.0,
            kernel_launch_us=5.0,
            mem_bytes=mem_mb * 1024 * 1024,
        ),
        pcie_params=PcieParams(lat_us=10.0, bw_GBps=1.0),
        node_id=0,
        device_id=0,
        rng=RngStreams(0),
    )


class TestDeviceMemory:
    def test_alloc_and_free(self):
        sim = Simulator()
        dev = make_device(sim, mem_mb=1)
        buf = dev.alloc(1024, dtype=np.uint8)
        assert dev.allocator.used == 1024
        buf.free()
        assert dev.allocator.used == 0

    def test_oom(self):
        sim = Simulator()
        dev = make_device(sim, mem_mb=1)
        dev.alloc(900 * 1024, dtype=np.uint8)
        with pytest.raises(GpuOutOfMemory):
            dev.alloc(200 * 1024, dtype=np.uint8)

    def test_double_free(self):
        sim = Simulator()
        dev = make_device(sim)
        buf = dev.alloc(16)
        buf.free()
        with pytest.raises(InvalidMemorySpace):
            buf.free()

    def test_use_after_free(self):
        sim = Simulator()
        dev = make_device(sim)
        buf = dev.alloc(16)
        buf.free()
        with pytest.raises(InvalidMemorySpace):
            buf.bytes_view()

    def test_peak_tracking(self):
        sim = Simulator()
        dev = make_device(sim, mem_mb=1)
        a = dev.alloc(1000, dtype=np.uint8)
        b = dev.alloc(2000, dtype=np.uint8)
        a.free()
        c = dev.alloc(500, dtype=np.uint8)
        assert dev.allocator.peak == 3000
        assert dev.allocator.used == 2500

    def test_owns(self):
        sim = Simulator()
        dev0 = make_device(sim)
        buf = dev0.alloc(8)
        assert dev0.owns(buf)
        dev1 = GpuDevice(
            sim,
            params=dev0.params,
            pcie_params=PcieParams(),
            node_id=0,
            device_id=1,
            rng=RngStreams(0),
        )
        assert not dev1.owns(buf)


class TestMemcpy:
    def test_h2d_d2h_roundtrip(self):
        sim = Simulator()
        dev = make_device(sim)
        dbuf = dev.alloc(8, dtype=np.float32)
        src = np.arange(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)

        def proc():
            yield from memcpy_h2d(dev, dbuf, src)
            yield from memcpy_d2h(dev, out, dbuf)

        sim.process(proc())
        sim.run()
        assert np.array_equal(out, src)
        # Two PCIe transactions of 32 B each at 10 µs latency.
        assert sim.now == pytest.approx(2 * (us(10.0) + 32 / 1e9))

    def test_d2d(self):
        sim = Simulator()
        dev = make_device(sim)
        a = dev.alloc(8, dtype=np.int64, fill=5)
        b = dev.alloc(8, dtype=np.int64)

        def proc():
            yield from memcpy_d2d(dev, b, a)

        sim.process(proc())
        sim.run()
        assert np.all(b.data == 5)
        # 2 * 64 bytes / 10 GB/s
        assert sim.now == pytest.approx(2 * 64 / 10e9)

    def test_wrong_device_rejected(self):
        sim = Simulator()
        dev0 = make_device(sim)
        dev1 = GpuDevice(
            sim,
            params=dev0.params,
            pcie_params=PcieParams(),
            node_id=0,
            device_id=1,
            rng=RngStreams(0),
        )
        buf1 = dev1.alloc(8)

        def proc():
            yield from memcpy_d2h(dev0, np.zeros(8), buf1)

        sim.process(proc())
        with pytest.raises(InvalidMemorySpace):
            sim.run()

    def test_host_buffer_where_device_expected(self):
        sim = Simulator()
        dev = make_device(sim)

        def proc():
            yield from memcpy_d2h(dev, np.zeros(8), np.zeros(8))  # type: ignore[arg-type]

        sim.process(proc())
        with pytest.raises(InvalidMemorySpace):
            sim.run()

    def test_oversized_copy_rejected(self):
        sim = Simulator()
        dev = make_device(sim)
        dbuf = dev.alloc(4, dtype=np.uint8)

        def proc():
            yield from memcpy_h2d(dev, dbuf, np.zeros(8, dtype=np.uint8), nbytes=8)

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()


class TestKernelLaunch:
    def test_blocks_all_run(self):
        sim = Simulator()
        dev = make_device(sim, num_sms=4)
        seen = []

        def kern(ctx):
            seen.append(ctx.block_idx)
            yield from ctx.compute(seconds=us(1.0))
            return ctx.block_idx * 10

        h = launch_kernel(dev, kern, LaunchConfig(grid_blocks=8))

        def waiter():
            yield h.done

        sim.process(waiter())
        sim.run()
        assert sorted(seen) == list(range(8))
        assert h.block_results == [i * 10 for i in range(8)]
        assert h.finished

    def test_run_to_completion_scheduling(self):
        """With 2 SMs, 4 equal blocks finish in two waves."""
        sim = Simulator()
        dev = make_device(sim, num_sms=2)
        finish = []

        def kern(ctx):
            yield from ctx.compute(seconds=1.0)
            finish.append((ctx.block_idx, sim.now))

        launch_kernel(dev, kern, LaunchConfig(grid_blocks=4))
        sim.run()
        times = sorted(t for _, t in finish)
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(1.0)
        assert times[2] == pytest.approx(2.0)
        assert times[3] == pytest.approx(2.0)

    def test_compute_roofline(self):
        sim = Simulator()
        dev = make_device(sim, num_sms=4, gflops=100.0)
        # Per-SM: 25 GFLOP/s, 2.5 GB/s.

        def kern(ctx):
            t = yield from ctx.compute(flops=25e9)  # 1 s of flops
            return t

        h = launch_kernel(dev, kern, LaunchConfig(grid_blocks=1))
        sim.run()
        assert h.block_results[0] == pytest.approx(1.0)

    def test_memory_bound_kernel(self):
        sim = Simulator()
        dev = make_device(sim, num_sms=4)
        # Per-SM mem bandwidth: 2.5 GB/s.

        def kern(ctx):
            t = yield from ctx.compute(flops=1.0, membytes=2.5e9)
            return t

        h = launch_kernel(dev, kern, LaunchConfig(grid_blocks=1))
        sim.run()
        assert h.block_results[0] == pytest.approx(1.0)

    def test_thread_range_grid_stride(self):
        sim = Simulator()
        dev = make_device(sim)

        def kern(ctx):
            yield from ctx.compute(seconds=0.0)
            return list(ctx.thread_range(10))

        h = launch_kernel(dev, kern, LaunchConfig(grid_blocks=4))
        sim.run()
        all_items = sorted(i for res in h.block_results for i in res)
        assert all_items == list(range(10))

    def test_driver_launch_charges_overhead(self):
        sim = Simulator()
        dev = make_device(sim)

        def kern(ctx):
            yield from ctx.compute(seconds=0.0)

        def host():
            h = yield from launch(dev, kern, LaunchConfig(grid_blocks=1))
            yield h.done
            return sim.now

        p = sim.process(host())
        sim.run()
        # 5 µs launch overhead + syncthreads-free kernel.
        assert p.value >= us(5.0)

    def test_invalid_config(self):
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid_blocks=0)
        with pytest.raises(LaunchConfigError):
            LaunchConfig(grid_blocks=1, threads_per_block=0)

    def test_syncthreads(self):
        sim = Simulator()
        dev = make_device(sim)

        def kern(ctx):
            yield from ctx.syncthreads()
            return True

        h = launch_kernel(dev, kern, LaunchConfig(grid_blocks=2))
        sim.run()
        assert h.block_results == [True, True]

    def test_cross_block_dependency_deadlocks(self):
        """Paper §3.2.4: blocks needing co-residency beyond capacity deadlock."""
        sim = Simulator()
        dev = make_device(sim, num_sms=2)
        gate = sim.event()

        def kern(ctx):
            # Block 3 releases everyone — but it can never be scheduled
            # because blocks 0-1 hold both SMs forever.
            if ctx.block_idx == 3:
                gate.succeed(None)
            yield gate

        launch_kernel(dev, kern, LaunchConfig(grid_blocks=4))
        with pytest.raises(DeadlockError):
            sim.run()

    def test_blocks_per_sm_increases_residency(self):
        sim = Simulator()
        dev = make_device(sim, num_sms=2, blocks_per_sm=2)
        gate = sim.event()

        def kern(ctx):
            if ctx.block_idx == 3:
                gate.succeed(None)
            yield gate

        h = launch_kernel(dev, kern, LaunchConfig(grid_blocks=4))
        sim.run()  # 4 resident blocks allowed -> completes
        assert h.finished


class TestMailboxes:
    def test_post_harvest_complete_cycle(self):
        sim = Simulator()
        mbox = SlotMailboxes(sim, n_slots=2, spin_check_us=1.0, desc_bytes=64)
        log = []

        def kernel_side():
            req = yield from mbox.post(0, "send", dst=1, nbytes=100)
            result = yield from mbox.wait(req)
            log.append(("kernel-done", result, sim.now))

        def host_side():
            # Poll until a request appears.
            while True:
                reqs = mbox.harvest()
                if reqs:
                    break
                yield sim.timeout(us(10.0))
            req = reqs[0]
            assert req.op == "send"
            assert req.args["dst"] == 1
            yield sim.timeout(us(5.0))  # pretend to service it
            mbox.complete(req, result="ok")

        sim.process(kernel_side())
        sim.process(host_side())
        sim.run()
        assert log[0][1] == "ok"

    def test_region_bytes(self):
        sim = Simulator()
        mbox = SlotMailboxes(sim, n_slots=8, spin_check_us=1.0, desc_bytes=64)
        assert mbox.region_bytes() == 512

    def test_bad_slot_rejected(self):
        sim = Simulator()
        mbox = SlotMailboxes(sim, n_slots=1, spin_check_us=1.0, desc_bytes=64)

        def proc():
            yield from mbox.post(5, "send")

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_harvest_empties_pending(self):
        sim = Simulator()
        mbox = SlotMailboxes(sim, n_slots=2, spin_check_us=1.0, desc_bytes=64)

        def kernel_side(slot):
            req = yield from mbox.post(slot, "barrier")
            yield from mbox.wait(req)

        def host_side():
            yield sim.timeout(us(100.0))
            reqs = mbox.harvest()
            assert len(reqs) == 2
            assert not mbox.has_pending()
            for r in reqs:
                mbox.complete(r)

        sim.process(kernel_side(0))
        sim.process(kernel_side(1))
        sim.process(host_side())
        sim.run()
        assert mbox.posted_count == 2
