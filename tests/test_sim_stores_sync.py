"""Tests for stores (FIFO queues) and synchronization primitives."""

import pytest

from repro.sim import (
    CyclicBarrier,
    FilterStore,
    Gate,
    Latch,
    Signal,
    Simulator,
    Store,
    Tracer,
)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)

        def producer():
            yield store.put("x")

        def consumer():
            item = yield store.get()
            return item

        sim.process(producer())
        c = sim.process(consumer())
        sim.run()
        assert c.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return item, sim.now

        def producer():
            yield sim.timeout(5.0)
            yield store.put(42)

        c = sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert c.value == (42, 5.0)

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_put(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", sim.now))
            yield store.put("b")
            log.append(("put-b", sim.now))

        def consumer():
            yield sim.timeout(3.0)
            item = yield store.get()
            log.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 3.0) in log

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put(9)
        ok, item = store.try_get()
        assert ok and item == 9

    def test_len_and_getters_waiting(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0

        def consumer():
            yield store.get()

        sim.process(consumer())
        sim.run(until=1.0, detect_deadlock=False)
        assert store.getters_waiting == 1

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Store(sim, capacity=0)


class TestFilterStore:
    def test_predicate_matching(self):
        sim = Simulator()
        store = FilterStore(sim)

        def producer():
            yield store.put(("tag", 1))
            yield store.put(("tag", 2))

        def consumer():
            item = yield store.get(lambda x: x[1] == 2)
            return item

        sim.process(producer())
        c = sim.process(consumer())
        sim.run()
        assert c.value == ("tag", 2)
        assert list(store.items) == [("tag", 1)]

    def test_waiting_getter_matched_by_later_put(self):
        sim = Simulator()
        store = FilterStore(sim)

        def consumer():
            item = yield store.get(lambda x: x > 10)
            return item, sim.now

        def producer():
            yield sim.timeout(1.0)
            yield store.put(5)  # doesn't match
            yield sim.timeout(1.0)
            yield store.put(50)  # matches

        c = sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert c.value == (50, 2.0)
        assert list(store.items) == [5]

    def test_multiple_getters_first_match_wins(self):
        sim = Simulator()
        store = FilterStore(sim)
        got = []

        def consumer(i, pred):
            item = yield store.get(pred)
            got.append((i, item))

        sim.process(consumer(0, lambda x: x % 2 == 0))
        sim.process(consumer(1, lambda x: x % 2 == 1))

        def producer():
            yield sim.timeout(1.0)
            yield store.put(3)
            yield store.put(4)

        sim.process(producer())
        sim.run()
        assert sorted(got) == [(0, 4), (1, 3)]

    def test_try_get_with_predicate(self):
        sim = Simulator()
        store = FilterStore(sim)
        store.put("apple")
        store.put("banana")
        ok, item = store.try_get(lambda s: s.startswith("b"))
        assert ok and item == "banana"
        ok, _ = store.try_get(lambda s: s.startswith("z"))
        assert not ok


class TestSignal:
    def test_fire_wakes_all_waiters(self):
        sim = Simulator()
        sig = Signal(sim)
        woken = []

        def waiter(i):
            val = yield sig.wait()
            woken.append((i, val, sim.now))

        def firer():
            yield sim.timeout(2.0)
            n = sig.fire("go")
            assert n == 3

        for i in range(3):
            sim.process(waiter(i))
        sim.process(firer())
        sim.run()
        assert woken == [(0, "go", 2.0), (1, "go", 2.0), (2, "go", 2.0)]

    def test_wait_after_fire_blocks_until_next(self):
        sim = Simulator()
        sig = Signal(sim)

        def late_waiter():
            yield sim.timeout(5.0)
            yield sig.wait()
            return sim.now

        def firer():
            yield sim.timeout(1.0)
            sig.fire()
            yield sim.timeout(9.0)
            sig.fire()

        w = sim.process(late_waiter())
        sim.process(firer())
        sim.run()
        assert w.value == pytest.approx(10.0)
        assert sig.fired_count == 2


class TestGate:
    def test_closed_gate_blocks(self):
        sim = Simulator()
        gate = Gate(sim)

        def waiter():
            yield gate.wait()
            return sim.now

        def opener():
            yield sim.timeout(4.0)
            gate.open()

        w = sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert w.value == pytest.approx(4.0)
        assert gate.is_open

    def test_open_gate_passes_immediately(self):
        sim = Simulator()
        gate = Gate(sim, open_=True)

        def waiter():
            yield gate.wait()
            return sim.now

        w = sim.process(waiter())
        sim.run()
        assert w.value == 0.0

    def test_close_reblocks(self):
        sim = Simulator()
        gate = Gate(sim, open_=True)
        gate.close()

        def waiter():
            yield gate.wait()
            return sim.now

        def opener():
            yield sim.timeout(2.0)
            gate.open()

        w = sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert w.value == pytest.approx(2.0)


class TestLatch:
    def test_counts_down(self):
        sim = Simulator()
        latch = Latch(sim, 3)

        def waiter():
            yield latch.wait()
            return sim.now

        def arriver(delay):
            yield sim.timeout(delay)
            latch.arrive()

        w = sim.process(waiter())
        for d in (1.0, 2.0, 3.0):
            sim.process(arriver(d))
        sim.run()
        assert w.value == pytest.approx(3.0)

    def test_zero_count_immediate(self):
        sim = Simulator()
        latch = Latch(sim, 0)

        def waiter():
            yield latch.wait()
            return sim.now

        w = sim.process(waiter())
        sim.run()
        assert w.value == 0.0

    def test_over_arrival_is_error(self):
        sim = Simulator()
        latch = Latch(sim, 1)
        latch.arrive()
        with pytest.raises(RuntimeError):
            latch.arrive()

    def test_arrive_n(self):
        sim = Simulator()
        latch = Latch(sim, 5)
        latch.arrive(5)
        assert latch.done.triggered


class TestCyclicBarrier:
    def test_barrier_releases_all_then_reuses(self):
        sim = Simulator()
        bar = CyclicBarrier(sim, parties=3)
        log = []

        def party(i, delay):
            yield sim.timeout(delay)
            yield bar.arrive()
            log.append((i, "cycle1", sim.now))
            yield sim.timeout(delay)
            yield bar.arrive()
            log.append((i, "cycle2", sim.now))

        sim.process(party(0, 1.0))
        sim.process(party(1, 2.0))
        sim.process(party(2, 3.0))
        sim.run()
        cycle1 = [t for (_, c, t) in log if c == "cycle1"]
        cycle2 = [t for (_, c, t) in log if c == "cycle2"]
        assert all(t == pytest.approx(3.0) for t in cycle1)
        assert all(t == pytest.approx(6.0) for t in cycle2)
        assert bar.cycles == 2

    def test_single_party_barrier_is_transparent(self):
        sim = Simulator()
        bar = CyclicBarrier(sim, parties=1)

        def proc():
            yield bar.arrive()
            yield bar.arrive()
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0


class TestTracer:
    def test_records_and_filters(self):
        sim = Simulator()
        sim.tracer = Tracer()

        def proc():
            sim.trace("poll", gpu=0)
            yield sim.timeout(1.0)
            sim.trace("send", nbytes=64)

        sim.process(proc())
        sim.run()
        assert sim.tracer.count("poll") == 1
        sends = sim.tracer.select("send")
        assert len(sends) == 1
        assert sends[0]["nbytes"] == 64
        assert sends[0].t == pytest.approx(1.0)

    def test_category_filter(self):
        sim = Simulator()
        sim.tracer = Tracer(categories={"keep"})
        sim.trace("keep", a=1)
        sim.trace("drop", b=2)
        assert sim.tracer.count("keep") == 1
        assert sim.tracer.count("drop") == 0

    def test_no_tracer_is_noop(self):
        sim = Simulator()
        sim.trace("anything", x=1)  # must not raise

    def test_clear(self):
        tr = Tracer()
        tr.record(0.0, "a")
        tr.clear()
        assert len(tr.records) == 0

    def test_maxlen_ring_buffer(self):
        tr = Tracer(maxlen=3)
        for i in range(10):
            tr.record(float(i), "tick", i=i)
        assert tr.maxlen == 3
        assert len(tr.records) == 3
        assert [r["i"] for r in tr.records] == [7, 8, 9]

    def test_pause_resume(self):
        tr = Tracer()
        tr.record(0.0, "kept")
        tr.pause()
        tr.record(1.0, "dropped")
        tr.resume()
        tr.record(2.0, "kept")
        assert tr.count("kept") == 2
        assert tr.count("dropped") == 0
