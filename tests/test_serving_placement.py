"""Placement-policy unit coverage: fragmentation scores across
topologies, packed-vs-spread behavior and tie-breaks, exhaustion and
error edges.
"""

import random

import pytest

from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.serve import (
    PlacementError,
    domains_of,
    fragmentation,
    placement_score,
    select_nodes,
)
from repro.sim import Simulator

KB = 1024


def topo(kind="fattree", nodes=16, **kw):
    sim = Simulator()
    spec = ClusterSpec(
        nodes=nodes, gpus_per_node=0, topology=TopologySpec(kind=kind, **kw)
    )
    return build_cluster(sim, spec).interconnect.topology


@pytest.fixture(scope="module")
def ft16():
    """16 nodes, 4 pods of 4, oversubscribed 4x."""
    return topo("fattree", nodes=16, pod_size=4, oversubscription=4.0)


# ---------------------------------------------------------------------------
# Fragmentation and scores
# ---------------------------------------------------------------------------

class TestFragmentation:
    def test_fattree_contiguous_pod(self, ft16):
        assert domains_of(ft16, [0, 1, 2, 3]) == {0: [0, 1, 2, 3]}
        assert fragmentation(ft16, [0, 1, 2, 3]) == (1, 0)

    def test_fattree_two_pods(self, ft16):
        # Two contiguous halves: 2 domains, 2 ring crossings.
        assert fragmentation(ft16, [0, 1, 4, 5]) == (2, 2)

    def test_fattree_fully_scattered(self, ft16):
        # One node per pod: every ring hop crosses.
        assert fragmentation(ft16, [0, 4, 8, 12]) == (4, 4)

    def test_singleton_has_no_crossings(self, ft16):
        assert fragmentation(ft16, [5]) == (1, 0)
        assert placement_score(ft16, [5]) == 0.0

    def test_empty_set_rejected(self, ft16):
        with pytest.raises(PlacementError):
            fragmentation(ft16, [])
        with pytest.raises(PlacementError):
            placement_score(ft16, [])

    def test_torus_domains_are_singletons(self):
        t = topo("torus2d", nodes=16, torus_x=4, torus_y=4)
        k = [0, 1, 5, 6]
        n_domains, crossings = fragmentation(t, k)
        assert n_domains == 4
        assert crossings == 4  # every hop of the sorted ring crosses

    def test_fattree_packed_scores_below_spread(self, ft16):
        packed_score = placement_score(ft16, [0, 1, 2, 3])
        spread_score = placement_score(ft16, [0, 4, 8, 12])
        # Oversubscribed uplinks make the scattered ring strictly
        # slower; the gap is the whole premise of the serving gate.
        assert spread_score > 1.5 * packed_score

    def test_score_scales_with_payload(self, ft16):
        small = placement_score(ft16, [0, 4, 8, 12], nbytes=1 * KB)
        large = placement_score(ft16, [0, 4, 8, 12], nbytes=1024 * KB)
        assert large > small

    def test_multirail_is_placement_indifferent(self):
        # Flat fabrics price crossings exactly like local hops, so
        # packed and scattered sets of equal size score identically.
        t = topo("multirail", nodes=16, rails=2)
        assert placement_score(t, [0, 1, 2, 3]) == pytest.approx(
            placement_score(t, [0, 5, 10, 15])
        )


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------

class TestPolicies:
    def rng(self):
        return random.Random(42)

    def test_packed_whole_pod(self, ft16):
        got = select_nodes("packed", ft16, range(16), 4, self.rng())
        assert got == [0, 1, 2, 3]
        assert fragmentation(ft16, got) == (1, 0)

    def test_packed_prefers_fullest_domain(self, ft16):
        # Pod 0 has 2 free, pod 1 has 4: a 4-node job takes pod 1.
        free = [0, 1, 4, 5, 6, 7]
        assert select_nodes("packed", ft16, free, 4, self.rng()) == [
            4, 5, 6, 7
        ]

    def test_packed_tie_breaks_to_lowest_pod(self, ft16):
        # Pods 1 and 2 both fully free: pod 1 wins the tie.
        free = [4, 5, 6, 7, 8, 9, 10, 11]
        assert select_nodes("packed", ft16, free, 4, self.rng()) == [
            4, 5, 6, 7
        ]

    def test_packed_spills_in_domain_order(self, ft16):
        # 6 nodes from pods of 4: the fullest pod plus the next one.
        got = select_nodes("packed", ft16, range(16), 6, self.rng())
        assert got == [0, 1, 2, 3, 4, 5]
        assert fragmentation(ft16, got)[0] == 2

    def test_spread_round_robins_pods(self, ft16):
        got = select_nodes("spread", ft16, range(16), 4, self.rng())
        assert got == [0, 4, 8, 12]
        assert fragmentation(ft16, got) == (4, 4)

    def test_spread_wraps_after_one_per_pod(self, ft16):
        got = select_nodes("spread", ft16, range(16), 6, self.rng())
        assert got == [0, 1, 4, 5, 8, 12]

    def test_spread_skips_exhausted_domains(self, ft16):
        # Pod 0 offers one node; the rotation drops it once taken.
        free = [0, 4, 5, 8, 9]
        got = select_nodes("spread", ft16, free, 5, self.rng())
        assert got == sorted(free)

    def test_random_is_seeded_and_sorted(self, ft16):
        a = select_nodes("random", ft16, range(16), 6, random.Random(7))
        b = select_nodes("random", ft16, range(16), 6, random.Random(7))
        c = select_nodes("random", ft16, range(16), 6, random.Random(8))
        assert a == b
        assert a == sorted(a)
        assert set(a) <= set(range(16))
        assert a != c  # overwhelmingly likely; fixed seeds make it exact

    def test_policies_return_exactly_k(self, ft16):
        for policy in ("packed", "spread", "random"):
            got = select_nodes(policy, ft16, range(16), 5, self.rng())
            assert len(got) == 5
            assert len(set(got)) == 5

    def test_exhaustion_raises(self, ft16):
        with pytest.raises(PlacementError):
            select_nodes("packed", ft16, [1, 2], 3, self.rng())

    def test_bad_policy_and_k(self, ft16):
        with pytest.raises(PlacementError):
            select_nodes("best-fit", ft16, range(16), 2, self.rng())
        with pytest.raises(PlacementError):
            select_nodes("packed", ft16, range(16), 0, self.rng())
