#!/usr/bin/env python3
"""Topology walkthrough: the same collective on four fabric shapes.

The paper's testbed is a single non-blocking IB switch; the topology
subsystem (``repro.hw.topology``) generalizes it.  This example runs
one 1 MB allreduce over 16 nodes on

* the flat switch (the paper's fabric, the seed model bit-for-bit),
* a 2:1-oversubscribed fat tree — contiguous and scheduler-scattered
  rank placements,
* a 2-rail multi-rail fabric,
* a 4×4 2-D torus,

and shows what the per-cluster autotuner
(:mod:`repro.mpi.algorithms.autotune`) derives for each: on the
scattered fat tree it switches to the hierarchical intra/inter-pod
schedule, on the multi-rail fabric it shifts the ring crossover because
striping doubles the wire bandwidth, on the torus it accounts for
per-hop latency.

Run:  python examples/topology_compare.py
"""

import argparse

import numpy as np

from repro.bench.harness import Table, fmt_time
from repro.hw import ClusterSpec, TopologySpec, build_cluster
from repro.mpi import (
    CollectiveTuning,
    MpiJob,
    ReduceOp,
    pod_cyclic_placement,
)
from repro.mpi.algorithms.autotune import autotune_tuning
from repro.sim import Simulator

MB = 1024 * 1024
POD = 4


def run_allreduce(topology, n_nodes, nbytes, placement=None, tuning=None):
    """One allreduce, 1 rank per node; returns (time, algorithm)."""
    sim = Simulator()
    spec = ClusterSpec(nodes=n_nodes, gpus_per_node=0, topology=topology)
    cluster = build_cluster(sim, spec)
    job = MpiJob(
        cluster,
        placement if placement is not None else list(range(n_nodes)),
        tuning=tuning,
    )

    def prog(ctx):
        send = np.zeros(nbytes, dtype=np.uint8)
        recv = np.zeros(nbytes, dtype=np.uint8)
        yield from ctx.allreduce(send, recv, op=ReduceOp.MAX)

    job.start(prog)
    job.run()
    algo = next(
        (
            k.split("[")[1].rstrip("]")
            for k in job.comm.stats
            if k.startswith("allreduce[")
        ),
        "?",
    )
    return sim.now, algo


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--mbytes", type=int, default=1)
    args = parser.parse_args(argv)
    n = args.nodes
    nbytes = args.mbytes * MB

    fabrics = [
        ("flat switch (paper)", TopologySpec(), None),
        ("fat tree 2:1, contiguous",
         TopologySpec(kind="fattree", pod_size=POD, oversubscription=2.0),
         None),
        ("fat tree 2:1, scattered",
         TopologySpec(kind="fattree", pod_size=POD, oversubscription=2.0),
         pod_cyclic_placement(n, POD)),
        ("multi-rail x2", TopologySpec(kind="multirail", rails=2), None),
        ("torus 2-D", TopologySpec(kind="torus2d"), None),
    ]

    table = Table(
        title=f"{args.mbytes} MB allreduce over {n} nodes, per fabric",
        columns=[
            "fabric", "flat-constants", "autotuned", "speedup", "algo",
        ],
    )
    for label, topo, placement in fabrics:
        t_const, _ = run_allreduce(
            topo, n, nbytes, placement, CollectiveTuning()
        )
        t_auto, algo = run_allreduce(topo, n, nbytes, placement, None)
        table.add(
            label,
            fmt_time(t_const),
            fmt_time(t_auto),
            f"{t_const / t_auto:.2f}×",
            algo,
        )
    table.note(
        "flat-constants = the flat-IB thresholds applied everywhere; "
        "autotuned = per-cluster derivation from the fabric profile"
    )
    print(table.render())

    print("\nWhat the autotuner derived per fabric:")
    for label, topo, _ in fabrics:
        sim = Simulator()
        cluster = build_cluster(
            sim, ClusterSpec(nodes=n, gpus_per_node=0, topology=topo)
        )
        t = autotune_tuning(cluster)
        hier = (
            f"hier>={t.allreduce_hier_min_bytes}B"
            if t.allreduce_hier_min_bytes is not None
            else "hier off"
        )
        print(
            f"  {label:28s} ring>={t.allreduce_ring_min_bytes:>7d}B  "
            f"bruck<={t.allgather_bruck_max_bytes}B  {hier}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
