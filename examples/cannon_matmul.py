#!/usr/bin/env python3
"""Cannon's matrix multiplication on 4 GPUs (paper §4, §5.1).

The "simultaneous communication" workload: after each local block
multiply, every target rotates its A-block left and its B-block up.
The DCGN version performs the rotation *inside the GPU kernel* with the
fused sendrecv_replace — no CPU mediation — while the GAS version must
pull blocks to the host, exchange over MPI, and push them back.

The result matrix is verified against NumPy in every variant.

Run:  python examples/cannon_matmul.py [--n 1024]
"""

import argparse

from repro.apps import cannon, efficiency, speedup
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--n", type=int, default=1024, help="matrix dimension")
    args = ap.parse_args()

    cfg = cannon.CannonConfig(n=args.n, grid=2)

    sim = Simulator()
    single = cannon.run_single_gpu(
        build_cluster(sim, paper_cluster(nodes=1, gpus_per_node=1)), cfg
    )
    sim = Simulator()
    gas = cannon.run_gas(build_cluster(sim, paper_cluster(nodes=2)), cfg)
    sim = Simulator()
    dcgn = cannon.run_dcgn(build_cluster(sim, paper_cluster(nodes=2)), cfg)

    print(f"Cannon {cfg.n}x{cfg.n} on {cfg.p} GPUs (grid {cfg.grid}x{cfg.grid})")
    print(f"  single GPU : {single.elapsed * 1e3:8.2f} ms")
    for res in (gas, dcgn):
        eff = efficiency(single.elapsed, res.elapsed, cfg.p)
        print(
            f"  {res.model:10s}: {res.elapsed * 1e3:8.2f} ms  "
            f"speedup {speedup(single.elapsed, res.elapsed):4.2f}x  "
            f"efficiency {eff:5.1%}"
        )
    print()
    print("Paper (§5.1): DCGN 71% vs GAS 74% efficiency — the fused")
    print("send/recv keeps DCGN within a few percent of the GAS model.")
    print("All results verified against numpy (A @ B).")


if __name__ == "__main__":
    main()
