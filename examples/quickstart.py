#!/usr/bin/env python3
"""Quickstart: the paper's ping-pong on a simulated two-node GPU cluster.

Reproduces Figures 1 and 3 of the paper: the same ping-pong written
against plain MPI (top of Fig. 3), against DCGN's CPU API (bottom of
Fig. 3), and against DCGN's GPU API from *inside a kernel* (Fig. 1).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.dcgn import DcgnConfig, DcgnRuntime
from repro.hw import build_cluster, paper_cluster
from repro.mpi import MpiJob
from repro.sim import Simulator, us


def mpi_pingpong() -> float:
    """Figure 3 (top): MPI_Send / MPI_Recv between two CPU ranks."""
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=2))
    job = MpiJob(cluster, placement=[0, 1])
    marks = {}

    def prog(ctx):
        x = np.zeros(1, dtype=np.int32)
        if ctx.rank == 0:
            t0 = ctx.sim.now
            yield from ctx.send(x, dest=1)      # send ping
            yield from ctx.recv(x, source=1)    # recv pong
            marks["rtt"] = ctx.sim.now - t0
        else:
            yield from ctx.recv(x, source=0)    # recv ping
            yield from ctx.send(x, dest=0)      # send pong

    job.start(prog)
    job.run()
    return marks["rtt"]


def dcgn_cpu_pingpong() -> float:
    """Figure 3 (bottom): dcgn::send / dcgn::recv between CPU kernels."""
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=2))
    rt = DcgnRuntime(
        cluster, DcgnConfig.homogeneous(2, cpu_threads=1)
    )
    marks = {}

    def kernel(ctx):
        x = np.zeros(1, dtype=np.int32)
        if ctx.rank == 0:
            t0 = ctx.sim.now
            yield from ctx.send(1, x)
            yield from ctx.recv(1, x)
            marks["rtt"] = ctx.sim.now - t0
        else:
            yield from ctx.recv(0, x)
            yield from ctx.send(0, x)

    rt.launch_cpu(kernel)
    rt.run()
    return marks["rtt"]


def dcgn_gpu_pingpong() -> float:
    """Figure 1: dcgn::gpu::send / recv issued from inside GPU kernels.

    Note the paper's comment reproduced faithfully: communication must
    use *global memory* (a DeviceBuffer), and requests name a SLOT_INDEX.
    """
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=2))
    rt = DcgnRuntime(
        cluster, DcgnConfig.homogeneous(2, gpus=1, slots_per_gpu=1)
    )
    marks = {}
    SLOT_INDEX = 0

    def gpu_kernel(ctx):
        comm = ctx.comm
        # note that for communication, we have to use global memory.
        gpu_mem = ctx.device.alloc(1, dtype=np.int32, name="gpuMem")
        if comm.rank(SLOT_INDEX) == 0:
            t0 = ctx.sim.now
            yield from comm.send(SLOT_INDEX, 1, gpu_mem)
            stat = yield from comm.recv(SLOT_INDEX, 1, gpu_mem)
            marks["rtt"] = ctx.sim.now - t0
        elif comm.rank(SLOT_INDEX) == 1:
            yield from comm.recv(SLOT_INDEX, 0, gpu_mem)
            yield from comm.send(SLOT_INDEX, 0, gpu_mem)
        yield from ctx.syncthreads()  # barrier for all threads in block
        gpu_mem.free()

    rt.launch_gpu(gpu_kernel)
    rt.run()
    return marks["rtt"]


def main() -> None:
    t_mpi = mpi_pingpong()
    t_cpu = dcgn_cpu_pingpong()
    t_gpu = dcgn_gpu_pingpong()
    print("Ping-pong round-trip times (simulated 2-node cluster):")
    print(f"  MPI  CPU<->CPU : {t_mpi / us(1):9.1f} µs")
    print(f"  DCGN CPU<->CPU : {t_cpu / us(1):9.1f} µs "
          f"({t_cpu / t_mpi:5.1f}x MPI)")
    print(f"  DCGN GPU<->GPU : {t_gpu / us(1):9.1f} µs "
          f"({t_gpu / t_mpi:5.1f}x MPI)")
    print()
    print("The ordering MPI < DCGN-CPU << DCGN-GPU is the paper's core")
    print("small-message finding (Section 5.2): thread-safe queues add")
    print("tens of microseconds, GPU mailbox polling adds hundreds.")


if __name__ == "__main__":
    main()
