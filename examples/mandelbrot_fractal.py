#!/usr/bin/env python3
"""Mandelbrot with a dynamic work queue — the paper's §4 showcase app.

Runs the fractal three ways on the simulated 4-node / 8-GPU cluster:

* single GPU (baseline),
* GAS + MPI master/worker,
* DCGN: GPU kernels request strips from the master *from inside the
  kernel* via dcgn::gpu::send/recv.

Prints speedups, efficiencies, and an ASCII rendering of the strip
ownership (Figure 5): run with different ``--seed`` values and jitter to
see the work distribution change run to run.

Run:  python examples/mandelbrot_fractal.py [--seed N]
"""

import argparse

from repro.apps import efficiency, mandelbrot, speedup
from repro.hw import HWParams, build_cluster, paper_cluster
from repro.sim import Simulator


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--jitter-us", type=float, default=8.0,
                    help="device timing jitter (0 = deterministic)")
    ap.add_argument("--width", type=int, default=256)
    ap.add_argument("--max-iter", type=int, default=256)
    args = ap.parse_args()

    cfg = mandelbrot.MandelbrotConfig(
        width=args.width,
        height=args.width,
        strip_height=max(8, args.width // 32),
        max_iter=args.max_iter,
    )
    params = HWParams(jitter_us=args.jitter_us)

    sim = Simulator()
    single = mandelbrot.run_single_gpu(
        build_cluster(
            sim, paper_cluster(nodes=1, gpus_per_node=1, seed=args.seed,
                               params=params)
        ),
        cfg,
    )
    sim = Simulator()
    gas = mandelbrot.run_gas(
        build_cluster(sim, paper_cluster(nodes=4, seed=args.seed,
                                         params=params)),
        cfg,
    )
    sim = Simulator()
    dcgn = mandelbrot.run_dcgn(
        build_cluster(sim, paper_cluster(nodes=4, seed=args.seed,
                                         params=params)),
        cfg,
    )

    print(f"Mandelbrot {cfg.width}x{cfg.height}, max_iter={cfg.max_iter}, "
          f"{cfg.n_strips} strips, 8 GPU workers")
    print(f"  single GPU : {single.elapsed * 1e3:8.2f} ms")
    for res in (gas, dcgn):
        sp = speedup(single.elapsed, res.elapsed)
        eff = efficiency(single.elapsed, res.elapsed, res.units)
        print(
            f"  {res.model:10s}: {res.elapsed * 1e3:8.2f} ms  "
            f"speedup {sp:4.2f}x  efficiency {eff:5.1%}  "
            f"{res.extras['pixels_per_s'] / 1e6:6.1f} Mpix/s"
        )
    print()
    print("Strip ownership (DCGN dynamic work queue; digits = worker rank):")
    owners = dcgn.extras["owners"]
    line = "".join(f"{int(o) % 10}" for o in owners)
    print(f"  {line}")
    print("Re-run with a different --seed: the distribution changes "
          "(paper Figure 5).")


if __name__ == "__main__":
    main()
