#!/usr/bin/env python3
"""Slots: virtualizing one GPU into several communication targets (§3.1).

The paper motivates slots with a skewed map-reduce example: when 0.001%
of work items cost 10000× more, "a single element can then delay an
entire DPM from communicating results" — unless the GPU exposes several
slots so other blocks keep talking to the master.

This example runs a master/worker item queue over ONE simulated GPU
and sweeps slots_per_gpu, showing the makespan improvement.

Run:  python examples/slots_virtualization.py
"""

import numpy as np

from repro.dcgn import ANY, DcgnConfig, DcgnRuntime, NodeConfig
from repro.gpusim import LaunchConfig
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator

N_ITEMS = 48
CHEAP_S = 40e-6
SLOW_S = 50 * CHEAP_S
STOP = -1


def item_cost(i: int) -> float:
    # Every 16th item is a straggler.
    return SLOW_S if i % 16 == 15 else CHEAP_S


def run(slots: int) -> float:
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=1))
    rt = DcgnRuntime(
        cluster,
        DcgnConfig([NodeConfig(cpu_threads=1, gpus=1, slots_per_gpu=slots)]),
    )
    marks = {}

    def master(ctx):
        t0 = ctx.sim.now
        next_item, stopped = 0, 0
        msg = np.zeros(1, dtype=np.int64)
        while stopped < slots:
            status = yield from ctx.recv(ANY, msg)
            if next_item < N_ITEMS:
                reply = np.array([next_item], dtype=np.int64)
                next_item += 1
            else:
                reply = np.array([STOP], dtype=np.int64)
                stopped += 1
            yield from ctx.send(status.source, reply)
        marks["makespan"] = ctx.sim.now - t0

    def gpu_worker(kctx):
        comm = kctx.comm
        slot = kctx.block_idx % comm.n_slots
        msg = kctx.device.alloc(1, dtype=np.int64)
        while True:
            yield from comm.send(slot, 0, msg)
            yield from comm.recv(slot, 0, msg)
            item = int(msg.data[0])
            if item == STOP:
                break
            yield from kctx.compute(seconds=item_cost(item))
        msg.free()

    rt.launch_cpu(master)
    rt.launch_gpu(gpu_worker, config=LaunchConfig(grid_blocks=slots))
    rt.run(max_time=60.0)
    return marks["makespan"]


def main() -> None:
    print(f"Skewed item queue ({N_ITEMS} items, every 16th costs 50x) on ONE GPU:")
    base = None
    for slots in (1, 2, 4, 8):
        t = run(slots)
        base = base or t
        print(f"  slots_per_gpu={slots}:  makespan {t * 1e3:7.2f} ms  "
              f"({base / t:4.2f}x vs 1 slot)")
    print()
    print("One slot serializes behind stragglers; more slots let cheap")
    print("items stream around them (paper §3.1: no single rank mapping")
    print("fits every data-parallel algorithm).")


if __name__ == "__main__":
    main()
