#!/usr/bin/env python3
"""Brute-force N-body simulation with per-target broadcasts (paper §4).

Sweeps the body count and prints the parallel-efficiency curve on
8 GPUs — the paper's §5.1 result: efficiency climbs from ~28% (4k
bodies) to >90% (32k) as O(N²) computation outgrows O(N) communication.

Small runs integrate real softened gravity and verify positions against
a NumPy reference; large runs model timing only (--no-verify).

Run:  python examples/nbody_simulation.py [--bodies 1024 4096 16384]
"""

import argparse

from repro.apps import efficiency, nbody
from repro.hw import build_cluster, paper_cluster
from repro.sim import Simulator


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument(
        "--bodies", type=int, nargs="+", default=[1024, 4096, 16384]
    )
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--verify", action="store_true",
                    help="run real physics + verification (slow for big N)")
    args = ap.parse_args()

    print(f"N-body on 8 simulated GPUs, {args.steps} steps per run")
    print(f"{'bodies':>8} | {'single':>10} | {'GAS':>16} | {'DCGN':>16}")
    for n in args.bodies:
        verify = args.verify and n <= 2048
        cfg = nbody.NBodyConfig(n_bodies=n, steps=args.steps, verify=verify)
        sim = Simulator()
        single = nbody.run_single_gpu(
            build_cluster(sim, paper_cluster(nodes=1, gpus_per_node=1)), cfg
        )
        sim = Simulator()
        gas = nbody.run_gas(build_cluster(sim, paper_cluster(nodes=4)), cfg)
        sim = Simulator()
        dcgn = nbody.run_dcgn(build_cluster(sim, paper_cluster(nodes=4)), cfg)
        eff_g = efficiency(single.elapsed, gas.elapsed, gas.units)
        eff_d = efficiency(single.elapsed, dcgn.elapsed, dcgn.units)
        tag = " (verified)" if verify else ""
        print(
            f"{n:>8} | {single.elapsed * 1e3:8.2f} ms"
            f" | {gas.elapsed * 1e3:8.2f} ms {eff_g:5.1%}"
            f" | {dcgn.elapsed * 1e3:8.2f} ms {eff_d:5.1%}{tag}"
        )
    print()
    print("Paper (§5.1): efficiency 28% @4k -> 64% @16k -> >90% @32k;")
    print("computation (O(N^2)) outgrows communication (O(N)).")


if __name__ == "__main__":
    main()
