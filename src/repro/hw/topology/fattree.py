"""Oversubscribed fat tree: pods of nodes behind a shared uplink.

Each pod of ``pod_size`` nodes hangs off a leaf switch whose links to
its own nodes are non-blocking, but whose uplink into the spine carries
only ``pod_size × bw / oversubscription`` — the classic oversubscribed
(or "tapered") fat tree every cost-conscious cluster runs.  Intra-pod
transfers behave like the flat switch; pod-crossing transfers
additionally pass through the sending pod's uplink channel, where they
queue FIFO against every other crossing from that pod (store-and-forward
at the spine; delivery into the destination pod is cut-through
latency-only, mirroring the flat model's rx side).

With ``oversubscription=1`` the uplink still serializes crossings, so a
fat tree is *not* byte-identical to :class:`FlatSwitch` even at 1:1 —
use the flat topology for the paper's testbed.
"""

from __future__ import annotations

import math
from typing import Any, Generator, List

from ...sim.core import Event, Simulator, us
from ...sim.resources import BandwidthChannel
from ..params import IbParams
from .base import FabricProfile, Topology
from .flat import FlatSwitch

__all__ = ["FatTree"]


class FatTree(FlatSwitch):
    """Pods behind oversubscribed uplinks (leaf/spine, one spine level)."""

    kind = "fattree"

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        params: IbParams,
        pod_size: int = 4,
        oversubscription: float = 2.0,
    ) -> None:
        if pod_size < 1:
            raise ValueError("pod_size must be >= 1")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        super().__init__(sim, n_nodes, params)
        self.pod_size = pod_size
        self.oversubscription = oversubscription
        self.n_pods = math.ceil(n_nodes / pod_size)
        up_bw_Bps = pod_size * params.bw_GBps * 1e9 / oversubscription
        self._up: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.lat_us) / 2.0,
                bandwidth_Bps=up_bw_Bps,
                name=f"pod{p}.up",
            )
            for p in range(self.n_pods)
        ]

    def pod(self, node: int) -> int:
        return node // self.pod_size

    def _route(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, None]:
        yield from self._tx[src].transfer(nbytes)
        if self.pod(src) != self.pod(dst):
            # Spine traversal: store-and-forward through the shared
            # uplink — this is where oversubscription bites.
            yield from self._up[self.pod(src)].transfer(nbytes)
        yield from self._rx[dst].occupy(us(self.params.lat_us) / 2.0)

    def _wire_time_internode(self, src: int, dst: int, nbytes: int) -> float:
        t = self._tx[src].transfer_time(nbytes) + us(self.params.lat_us) / 2.0
        if self.pod(src) != self.pod(dst):
            t += self._up[self.pod(src)].transfer_time(nbytes)
        return t

    def locality_group(self, node: int) -> int:
        self._check(node)
        return self.pod(node)

    def profile(self) -> FabricProfile:
        beta = 1.0 / (self.params.bw_GBps * 1e9)
        alpha = us(self.params.lat_us)
        beta_up = self.oversubscription / (
            self.pod_size * self.params.bw_GBps * 1e9
        )
        return FabricProfile(
            kind=self.kind,
            n_nodes=self.n_nodes,
            alpha_s=alpha,
            neighbor_alpha_s=alpha,
            beta_s_per_B=beta,
            cross_alpha_s=alpha * 1.5,
            cross_beta_s_per_B=beta + beta_up,
            # Whole pod crossing at once: the uplink FIFO drains
            # pod_size transfers, so the last one waits pod_size shares.
            cross_load_beta_s_per_B=beta + self.pod_size * beta_up,
            oversubscription=self.oversubscription,
            n_domains=self.n_pods,
            domain_size=min(self.pod_size, self.n_nodes),
        )
