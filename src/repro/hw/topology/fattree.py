"""Oversubscribed fat tree: pods of nodes behind a shared up/down link.

Each pod of ``pod_size`` nodes hangs off a leaf switch whose links to
its own nodes are non-blocking, but whose uplink into the spine carries
only ``pod_size × bw / oversubscription`` — the classic oversubscribed
(or "tapered") fat tree every cost-conscious cluster runs.  Intra-pod
transfers behave like the flat switch; pod-crossing transfers
additionally pass through the sending pod's uplink channel *and* the
destination pod's down-link channel (the leaf switch's spine-facing
port is tapered in both directions), queueing FIFO against every other
crossing sharing either link — store-and-forward at the spine and at
the destination leaf.  Incast into one pod therefore contends on the
victim pod's down-link even when the senders sit in different pods,
which latency-only delivery used to hide.

With ``oversubscription=1`` the up/down links still serialize
crossings, so a fat tree is *not* byte-identical to :class:`FlatSwitch`
even at 1:1 — use the flat topology for the paper's testbed.
"""

from __future__ import annotations

import math
from typing import Any, Generator, List

from ...sim.core import Event, Simulator, us
from ...sim.resources import BandwidthChannel
from ..params import IbParams
from .base import FabricProfile, Topology
from .flat import FlatSwitch

__all__ = ["FatTree"]


class FatTree(FlatSwitch):
    """Pods behind oversubscribed uplinks (leaf/spine, one spine level)."""

    kind = "fattree"

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        params: IbParams,
        pod_size: int = 4,
        oversubscription: float = 2.0,
    ) -> None:
        if pod_size < 1:
            raise ValueError("pod_size must be >= 1")
        if oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        super().__init__(sim, n_nodes, params)
        self.pod_size = pod_size
        self.oversubscription = oversubscription
        self.n_pods = math.ceil(n_nodes / pod_size)
        up_bw_Bps = pod_size * params.bw_GBps * 1e9 / oversubscription
        self._up: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.lat_us) / 2.0,
                bandwidth_Bps=up_bw_Bps,
                name=f"pod{p}.up",
            )
            for p in range(self.n_pods)
        ]
        #: Symmetric down-links: the destination leaf's spine-facing
        #: port has the same tapered bandwidth as the uplink.
        self._down: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.lat_us) / 2.0,
                bandwidth_Bps=up_bw_Bps,
                name=f"pod{p}.down",
            )
            for p in range(self.n_pods)
        ]

    def pod(self, node: int) -> int:
        return node // self.pod_size

    def _route(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, None]:
        yield from self._tx[src].transfer(nbytes)
        if self.pod(src) != self.pod(dst):
            # Spine traversal: store-and-forward through the sending
            # pod's shared uplink, then through the destination pod's
            # down-link — oversubscription bites in both directions.
            yield from self._up[self.pod(src)].transfer(nbytes)
            yield from self._down[self.pod(dst)].transfer(nbytes)
        yield from self._rx[dst].occupy(us(self.params.lat_us) / 2.0)

    def _wire_time_internode(self, src: int, dst: int, nbytes: int) -> float:
        t = self._tx[src].transfer_time(nbytes) + us(self.params.lat_us) / 2.0
        if self.pod(src) != self.pod(dst):
            t += self._up[self.pod(src)].transfer_time(nbytes)
            t += self._down[self.pod(dst)].transfer_time(nbytes)
        return t

    def locality_group(self, node: int) -> int:
        self._check(node)
        return self.pod(node)

    def _fabric_channels(self) -> List[BandwidthChannel]:
        return super()._fabric_channels() + list(self._up) + list(self._down)

    def _account_route(self, src: int, dst: int, nbytes: int) -> None:
        super()._account_route(src, dst, nbytes)
        if self.pod(src) != self.pod(dst):
            for ch in (self._up[self.pod(src)], self._down[self.pod(dst)]):
                ch.bytes_moved += nbytes
                ch.busy_s += ch.transfer_time(nbytes)

    def profile(self) -> FabricProfile:
        beta = 1.0 / (self.params.bw_GBps * 1e9)
        alpha = us(self.params.lat_us)
        beta_up = self.oversubscription / (
            self.pod_size * self.params.bw_GBps * 1e9
        )
        return FabricProfile(
            kind=self.kind,
            n_nodes=self.n_nodes,
            alpha_s=alpha,
            neighbor_alpha_s=alpha,
            beta_s_per_B=beta,
            # Crossings traverse tx + up + down channel latencies.
            cross_alpha_s=alpha * 2.0,
            cross_beta_s_per_B=beta + 2.0 * beta_up,
            # Whole pod crossing at once: the up- and down-link FIFOs
            # each drain pod_size transfers, so the last one waits
            # pod_size shares on both tapered hops.
            cross_load_beta_s_per_B=beta + 2.0 * self.pod_size * beta_up,
            oversubscription=self.oversubscription,
            n_domains=self.n_pods,
            domain_size=min(self.pod_size, self.n_nodes),
        )
