"""Multi-rail fabric: k parallel NICs per node with rail striping.

Every node owns ``rails`` independent tx/rx channel pairs into a
non-blocking core (dual-rail IB was the standard scale-up move of the
paper's era).  A transfer stripes its payload across all rails in
parallel — each rail carries an ``nbytes/rails`` slice concurrently —
so large messages see ``rails ×`` bandwidth while per-message latency
is unchanged (all slices pay the wire latency simultaneously).
Concurrent transfers from one node interleave FIFO per rail, which is
exactly the contention a real rail-striped MPI sees.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ...sim.core import Event, Simulator, us
from ...sim.primitives import AllOf
from ...sim.resources import BandwidthChannel
from ..params import IbParams
from .base import FabricProfile, Topology

__all__ = ["MultiRail"]


class MultiRail(Topology):
    """``rails`` parallel NIC pairs per node, payloads striped across all."""

    kind = "multirail"

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        params: IbParams,
        rails: int = 2,
    ) -> None:
        if rails < 1:
            raise ValueError("rails must be >= 1")
        super().__init__(sim, n_nodes, params)
        self.rails = rails
        self._tx: List[List[BandwidthChannel]] = [
            [
                BandwidthChannel(
                    sim,
                    latency_s=us(params.lat_us) / 2.0,
                    bandwidth_Bps=params.bw_GBps * 1e9,
                    name=f"nic{i}.rail{r}.tx",
                )
                for r in range(rails)
            ]
            for i in range(n_nodes)
        ]
        self._rx: List[List[BandwidthChannel]] = [
            [
                BandwidthChannel(
                    sim,
                    latency_s=us(params.lat_us) / 2.0,
                    bandwidth_Bps=params.bw_GBps * 1e9,
                    name=f"nic{i}.rail{r}.rx",
                )
                for r in range(rails)
            ]
            for i in range(n_nodes)
        ]

    def _route(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, None]:
        bounds = [(r * nbytes) // self.rails for r in range(self.rails + 1)]
        half_lat = us(self.params.lat_us) / 2.0

        def rail_leg(rail: int, slice_bytes: int):
            yield from self._tx[src][rail].transfer(slice_bytes)
            yield from self._rx[dst][rail].occupy(half_lat)

        procs = []
        for r in range(self.rails):
            slice_bytes = bounds[r + 1] - bounds[r]
            # Rail 0 always runs so 0-byte control messages still pay
            # one wire latency; empty trailing slices are skipped.
            if slice_bytes == 0 and r > 0:
                continue
            procs.append(
                self.sim.process(
                    rail_leg(r, slice_bytes), name=f"rail{r}({src}->{dst})"
                )
            )
        yield AllOf(self.sim, procs)

    def _wire_time_internode(self, src: int, dst: int, nbytes: int) -> float:
        widest = (nbytes + self.rails - 1) // self.rails
        return (
            self._tx[src][0].transfer_time(widest)
            + us(self.params.lat_us) / 2.0
        )

    def nic_utilization(self, node: int) -> float:
        self._check(node)
        return sum(ch.busy_s for ch in self._tx[node])

    def _fabric_channels(self) -> List[BandwidthChannel]:
        return [ch for node in self._tx for ch in node] + [
            ch for node in self._rx for ch in node
        ]

    def _account_route(self, src: int, dst: int, nbytes: int) -> None:
        bounds = [(r * nbytes) // self.rails for r in range(self.rails + 1)]
        half_lat = us(self.params.lat_us) / 2.0
        for r in range(self.rails):
            slice_bytes = bounds[r + 1] - bounds[r]
            if slice_bytes == 0 and r > 0:
                continue
            tx = self._tx[src][r]
            tx.bytes_moved += slice_bytes
            tx.busy_s += tx.transfer_time(slice_bytes)
            self._rx[dst][r].busy_s += half_lat

    def profile(self) -> FabricProfile:
        beta = 1.0 / (self.rails * self.params.bw_GBps * 1e9)
        alpha = us(self.params.lat_us)
        return FabricProfile(
            kind=self.kind,
            n_nodes=self.n_nodes,
            alpha_s=alpha,
            neighbor_alpha_s=alpha,
            beta_s_per_B=beta,
            cross_alpha_s=alpha,
            cross_beta_s_per_B=beta,
            cross_load_beta_s_per_B=beta,
            oversubscription=1.0,
            n_domains=self.n_nodes,
            domain_size=1,
        )
