"""Pluggable fabric topologies.

``make_topology`` builds a :class:`Topology` from a declarative
:class:`~repro.hw.params.TopologySpec`; the registry maps spec kinds to
classes so new fabrics plug in without touching the interconnect or
cluster assembly.
"""

from __future__ import annotations

from typing import Callable, Dict

from ...sim.core import Simulator
from ..params import IbParams, TopologySpec
from .base import FabricProfile, Topology
from .fattree import FatTree
from .flat import FlatSwitch
from .multirail import MultiRail
from .torus import Torus2D

__all__ = [
    "FabricProfile",
    "Topology",
    "FlatSwitch",
    "FatTree",
    "MultiRail",
    "Torus2D",
    "TOPOLOGIES",
    "make_topology",
]


def _make_flat(sim, n, params, spec):
    return FlatSwitch(sim, n, params)


def _make_fattree(sim, n, params, spec):
    return FatTree(
        sim,
        n,
        params,
        pod_size=spec.pod_size,
        oversubscription=spec.oversubscription,
    )


def _make_multirail(sim, n, params, spec):
    return MultiRail(sim, n, params, rails=spec.rails)


def _make_torus2d(sim, n, params, spec):
    return Torus2D(sim, n, params, nx=spec.torus_x, ny=spec.torus_y)


#: Registry: spec kind → factory(sim, n_nodes, ib_params, spec).
TOPOLOGIES: Dict[str, Callable[..., Topology]] = {
    "flat": _make_flat,
    "fattree": _make_fattree,
    "multirail": _make_multirail,
    "torus2d": _make_torus2d,
}


def make_topology(
    sim: Simulator, n_nodes: int, params: IbParams, spec: TopologySpec
) -> Topology:
    """Instantiate the topology a :class:`TopologySpec` describes."""
    try:
        factory = TOPOLOGIES[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown topology kind {spec.kind!r}; "
            f"choose from {sorted(TOPOLOGIES)}"
        ) from None
    return factory(sim, n_nodes, params, spec)
