"""Topology abstraction: how bytes move between nodes.

The seed modelled exactly the paper's testbed — a single non-blocking
InfiniBand switch — as one tx/rx channel pair per node.  A
:class:`Topology` generalizes that: it owns the fabric's
:class:`~repro.sim.resources.BandwidthChannel`s and routes every
transfer through the channel path its shape dictates, so contention
appears wherever the real fabric would contend (a shared fat-tree
uplink, a striped rail set, a multi-hop torus path).

Two consumer-facing views:

* the *dynamic* view — ``transfer`` / ``wire_time`` — drives the
  simulation (the :class:`~repro.hw.interconnect.Interconnect` facade
  delegates here);
* the *static* view — ``profile`` / ``locality_group`` — feeds the
  collective auto-tuner (:mod:`repro.mpi.algorithms.autotune`), which
  sweeps an analytic cost model over the profile to derive per-cluster
  selection thresholds instead of hardcoded constants.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Generator, List

from ...sim.core import Event, Simulator, us
from ...sim.resources import BandwidthChannel
from ..params import IbParams

__all__ = ["FabricProfile", "Topology"]


@dataclass(frozen=True)
class FabricProfile:
    """Static summary of a topology, consumed by the collective autotuner.

    ``alpha``/``beta`` are the classic LogP-style per-message latency and
    per-byte time of an ordinary inter-node hop; the ``cross_*`` fields
    describe a transfer that crosses the fabric's bottleneck (a fat-tree
    uplink, the torus diameter).  ``cross_load_beta_s_per_B`` is the
    effective per-byte time of a crossing when every node of a locality
    domain crosses at once — the regime a fragmented rank placement puts
    collectives in.  Frozen and hashable so it can key the autotune
    cache.
    """

    kind: str
    n_nodes: int
    #: Uncontended one-way inter-node latency (s), averaged over pairs.
    alpha_s: float
    #: Latency of a rank-adjacent hop (s) — what neighbor-exchange
    #: schedules (ring) pay; equals ``alpha_s`` except on multi-hop
    #: fabrics, where adjacent nodes are one router apart.
    neighbor_alpha_s: float
    #: Per-byte time through one NIC (s/B).
    beta_s_per_B: float
    #: Latency of a bottleneck-crossing transfer (s).
    cross_alpha_s: float
    #: Per-byte time of one uncontended crossing (s/B).
    cross_beta_s_per_B: float
    #: Per-byte time of a crossing when a whole domain crosses at once.
    cross_load_beta_s_per_B: float
    #: Fabric oversubscription factor (1.0 = non-blocking).
    oversubscription: float
    #: Number of locality domains (pods); equals n_nodes when flat.
    n_domains: int
    #: Nodes per domain (1 when the fabric has no grouping).
    domain_size: int


class Topology(ABC):
    """Base class: per-node shared-memory channels + routed NIC paths.

    Subclasses build their own NIC/fabric channels and implement
    ``_route`` (the inter-node path) plus the static views.  The
    intra-node shared-memory channel is common to every topology — it
    models ranks on one node, not the fabric.
    """

    kind: str = "?"

    def __init__(self, sim: Simulator, n_nodes: int, params: IbParams) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.n_nodes = n_nodes
        self.params = params
        #: When True, analytic backends charge their priced transfers
        #: onto the routed channel path via :meth:`account`, so the
        #: link-utilization report works even when nothing simulates
        #: channel occupancy.  Off by default (one extra branch per
        #: priced wire leg when on).
        self.accounting = False
        self._shm: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.intra_lat_us),
                bandwidth_Bps=params.intra_bw_GBps * 1e9,
                name=f"shm{i}",
            )
            for i in range(n_nodes)
        ]

    # -- dynamic view ------------------------------------------------------
    def _check(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0,{self.n_nodes})")

    def transfer(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, float]:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Returns the elapsed transfer time.  Intra-node transfers use the
        shared-memory channel; inter-node transfers follow the
        topology's routed channel path.
        """
        self._check(src)
        self._check(dst)
        t0 = self.sim.now
        if src == dst:
            yield from self._shm[src].transfer(nbytes)
            return self.sim.now - t0
        yield from self._route(src, dst, nbytes)
        return self.sim.now - t0

    @abstractmethod
    def _route(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, None]:
        """Inter-node path (``src != dst``, both validated)."""

    def wire_time(self, src: int, dst: int, nbytes: int) -> float:
        """Uncontended end-to-end transfer time."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return self._shm[src].transfer_time(nbytes)
        return self._wire_time_internode(src, dst, nbytes)

    @abstractmethod
    def _wire_time_internode(self, src: int, dst: int, nbytes: int) -> float:
        """Uncontended inter-node time (``src != dst``, both validated)."""

    @abstractmethod
    def nic_utilization(self, node: int) -> float:
        """Busy-seconds of the node's injection path (for reports)."""

    # -- observability -----------------------------------------------------
    def channels(self) -> List[BandwidthChannel]:
        """Every fabric channel, deterministically ordered.

        The utilization report (:mod:`repro.obs.links`) iterates this:
        per-node shared-memory channels first, then the subclass's
        fabric channels (NIC pairs, pod up/down links, rails).
        """
        return list(self._shm) + self._fabric_channels()

    def _fabric_channels(self) -> List[BandwidthChannel]:
        """Subclass hook: the inter-node channels, in report order."""
        return []

    def account(self, src: int, dst: int, nbytes: int) -> None:
        """Charge one priced transfer onto the routed channel path.

        The analytic backends never occupy channels — they price wire
        legs with :meth:`wire_time` and commit completions directly —
        so without this hook a fast-path run reports an idle fabric.
        ``account`` books the *uncontended* service demand (bytes and
        busy seconds, no queueing) onto exactly the channels
        :meth:`transfer` would have traversed.  Demand booked this way
        can exceed the wall clock on an oversubscribed link: that
        over-commit is the congestion signal the report exists to show.
        Timing-passive — never called from the exact path, never
        affects simulated time.
        """
        self._check(src)
        self._check(dst)
        self.sim.stats.chan_bytes += nbytes
        if src == dst:
            ch = self._shm[src]
            ch.bytes_moved += nbytes
            ch.busy_s += ch.transfer_time(nbytes)
            return
        self._account_route(src, dst, nbytes)

    def _account_route(self, src: int, dst: int, nbytes: int) -> None:
        """Subclass hook: book ``nbytes`` on the inter-node path."""

    # -- static view (autotune-facing) -------------------------------------
    def locality_group(self, node: int) -> int:
        """Domain id of ``node`` (nodes sharing cheap, non-bottlenecked
        links share a domain).  Flat fabrics have one node per domain."""
        self._check(node)
        return node

    @abstractmethod
    def profile(self) -> FabricProfile:
        """Static cost summary for the collective autotuner."""
