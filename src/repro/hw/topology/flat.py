"""Flat switch: the paper's single non-blocking IB crossbar (seed model).

Inter-node transfers occupy the sender's NIC injection channel and the
receiver's NIC ejection channel; the fabric itself is non-blocking (a
reasonable model for a small IB switch).  This reproduces the seed
``Interconnect`` behaviour bit-for-bit — same channels, same charge
sequence — so every calibrated timing is unchanged.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ...sim.core import Event, Simulator, us
from ...sim.resources import BandwidthChannel
from ..params import IbParams
from .base import FabricProfile, Topology

__all__ = ["FlatSwitch"]


class FlatSwitch(Topology):
    """Non-blocking crossbar among ``n`` nodes."""

    kind = "flat"

    def __init__(self, sim: Simulator, n_nodes: int, params: IbParams) -> None:
        super().__init__(sim, n_nodes, params)
        self._tx: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.lat_us) / 2.0,
                bandwidth_Bps=params.bw_GBps * 1e9,
                name=f"nic{i}.tx",
            )
            for i in range(n_nodes)
        ]
        self._rx: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.lat_us) / 2.0,
                bandwidth_Bps=params.bw_GBps * 1e9,
                name=f"nic{i}.rx",
            )
            for i in range(n_nodes)
        ]

    def _route(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, None]:
        # Injection: sender NIC occupies for latency/2 + size/bw.
        yield from self._tx[src].transfer(nbytes)
        # Ejection: receiver side adds its latency half; bandwidth was
        # already paid (cut-through) so this is latency-only occupancy.
        yield from self._rx[dst].occupy(us(self.params.lat_us) / 2.0)

    def _wire_time_internode(self, src: int, dst: int, nbytes: int) -> float:
        return (
            self._tx[src].transfer_time(nbytes) + us(self.params.lat_us) / 2.0
        )

    def nic_utilization(self, node: int) -> float:
        self._check(node)
        return self._tx[node].busy_s

    def _fabric_channels(self) -> List[BandwidthChannel]:
        return list(self._tx) + list(self._rx)

    def _account_route(self, src: int, dst: int, nbytes: int) -> None:
        tx = self._tx[src]
        tx.bytes_moved += nbytes
        tx.busy_s += tx.transfer_time(nbytes)
        self._rx[dst].busy_s += us(self.params.lat_us) / 2.0

    def profile(self) -> FabricProfile:
        beta = 1.0 / (self.params.bw_GBps * 1e9)
        alpha = us(self.params.lat_us)
        return FabricProfile(
            kind=self.kind,
            n_nodes=self.n_nodes,
            alpha_s=alpha,
            neighbor_alpha_s=alpha,
            beta_s_per_B=beta,
            cross_alpha_s=alpha,
            cross_beta_s_per_B=beta,
            cross_load_beta_s_per_B=beta,
            oversubscription=1.0,
            n_domains=self.n_nodes,
            domain_size=1,
        )
