"""2-D torus: hop-count-dependent latency (QCDSP/Blue-Gene style mesh).

Nodes sit on an ``nx × ny`` grid with wraparound links; a transfer's
latency grows with the Manhattan hop distance between the endpoints
(dimension-ordered routing, one router traversal per intermediate hop).
Bandwidth is charged at the injection NIC only — per-link contention
along the path is deliberately out of scope (see ROADMAP), which keeps
the torus a pure latency-shape study against the flat switch.
"""

from __future__ import annotations

from typing import Any, Generator

from ...sim.core import Event, Simulator, us
from ..params import IbParams
from .base import FabricProfile
from .flat import FlatSwitch

__all__ = ["Torus2D"]


class Torus2D(FlatSwitch):
    """``nx × ny`` wraparound grid with per-hop forwarding latency."""

    kind = "torus2d"

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        params: IbParams,
        nx: int = 0,
        ny: int = 0,
    ) -> None:
        if nx < 0 or ny < 0:
            raise ValueError("torus dimensions must be >= 0 (0 = derive)")
        if nx == 0 and ny == 0:
            # Derive the most square grid that tiles n_nodes.
            nx = 1
            for d in range(int(n_nodes ** 0.5), 0, -1):
                if n_nodes % d == 0:
                    nx = d
                    break
            ny = n_nodes // nx
        elif nx == 0 or ny == 0:
            given = nx or ny
            if n_nodes % given != 0:
                raise ValueError(
                    f"{n_nodes} nodes do not tile a {given}-wide torus"
                )
            nx = nx or n_nodes // ny
            ny = ny or n_nodes // nx
        if nx * ny != n_nodes:
            raise ValueError(
                f"torus {nx}x{ny} does not match {n_nodes} nodes"
            )
        super().__init__(sim, n_nodes, params)
        self.nx = nx
        self.ny = ny

    def _coords(self, node: int):
        return node % self.nx, node // self.nx

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance with wraparound (>= 1 for distinct nodes)."""
        self._check(src)
        self._check(dst)
        sx, sy = self._coords(src)
        dx, dy = self._coords(dst)
        hx = abs(sx - dx)
        hy = abs(sy - dy)
        return min(hx, self.nx - hx) + min(hy, self.ny - hy)

    def _forward_lat_s(self, src: int, dst: int) -> float:
        # Each intermediate router adds half a wire latency (the same
        # charge the flat model levies per switch traversal).
        return (self.hops(src, dst) - 1) * us(self.params.lat_us) / 2.0

    def _route(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, None]:
        yield from self._tx[src].transfer(nbytes)
        extra = self._forward_lat_s(src, dst)
        if extra > 0.0:
            yield self.sim.timeout(extra)
        yield from self._rx[dst].occupy(us(self.params.lat_us) / 2.0)

    def _wire_time_internode(self, src: int, dst: int, nbytes: int) -> float:
        return (
            self._tx[src].transfer_time(nbytes)
            + self._forward_lat_s(src, dst)
            + us(self.params.lat_us) / 2.0
        )

    def _mean_hops(self) -> float:
        """Average hop count over distinct node pairs (closed form)."""

        def mean_ring(k: int) -> float:
            # Mean wraparound distance from a fixed point to all k points
            # (including itself) on a k-ring.
            return sum(min(d, k - d) for d in range(k)) / k

        if self.n_nodes == 1:
            return 1.0
        total = (mean_ring(self.nx) + mean_ring(self.ny)) * self.n_nodes / (
            self.n_nodes - 1
        )
        return max(1.0, total)

    def profile(self) -> FabricProfile:
        beta = 1.0 / (self.params.bw_GBps * 1e9)
        half = us(self.params.lat_us) / 2.0
        mean_alpha = us(self.params.lat_us) + (self._mean_hops() - 1.0) * half
        diam = self.nx // 2 + self.ny // 2
        cross_alpha = us(self.params.lat_us) + max(0, diam - 1) * half
        return FabricProfile(
            kind=self.kind,
            n_nodes=self.n_nodes,
            alpha_s=mean_alpha,
            # Consecutive node ids are grid neighbors (one hop) apart
            # from row wraps, so neighbor schedules pay the base latency.
            neighbor_alpha_s=us(self.params.lat_us),
            beta_s_per_B=beta,
            cross_alpha_s=cross_alpha,
            cross_beta_s_per_B=beta,
            cross_load_beta_s_per_B=beta,
            oversubscription=1.0,
            n_domains=self.n_nodes,
            domain_size=1,
        )
