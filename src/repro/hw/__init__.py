"""Hardware cost models for the simulated GPU cluster."""

from .cluster import Cluster, build_cluster
from .interconnect import Interconnect
from .memory import HostBuffer, MemcpyEngine, as_bytes_view, nbytes_of
from .node import Node
from .params import (
    GB,
    KB,
    MB,
    ClusterSpec,
    CpuParams,
    DcgnParams,
    GpuParams,
    HWParams,
    IbParams,
    PcieParams,
    paper_cluster,
    single_node,
)
from .pcie import PcieLink

__all__ = [
    "KB",
    "MB",
    "GB",
    "CpuParams",
    "PcieParams",
    "IbParams",
    "GpuParams",
    "DcgnParams",
    "HWParams",
    "ClusterSpec",
    "paper_cluster",
    "single_node",
    "PcieLink",
    "Interconnect",
    "HostBuffer",
    "MemcpyEngine",
    "as_bytes_view",
    "nbytes_of",
    "Node",
    "Cluster",
    "build_cluster",
]
