"""Hardware cost models for the simulated GPU cluster."""

from .cluster import Cluster, build_cluster
from .interconnect import Interconnect
from .memory import HostBuffer, MemcpyEngine, as_bytes_view, nbytes_of
from .node import Node
from .params import (
    GB,
    KB,
    MB,
    ClusterSpec,
    CpuParams,
    DcgnParams,
    GpuParams,
    HWParams,
    IbParams,
    PcieParams,
    TopologySpec,
    paper_cluster,
    single_node,
)
from .pcie import PcieLink
from .topology import (
    FabricProfile,
    FatTree,
    FlatSwitch,
    MultiRail,
    Topology,
    Torus2D,
    make_topology,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "CpuParams",
    "PcieParams",
    "IbParams",
    "GpuParams",
    "DcgnParams",
    "HWParams",
    "ClusterSpec",
    "TopologySpec",
    "paper_cluster",
    "single_node",
    "PcieLink",
    "Interconnect",
    "Topology",
    "FabricProfile",
    "FlatSwitch",
    "FatTree",
    "MultiRail",
    "Torus2D",
    "make_topology",
    "HostBuffer",
    "MemcpyEngine",
    "as_bytes_view",
    "nbytes_of",
    "Node",
    "Cluster",
    "build_cluster",
]
