"""PCI-Express link model between a host and one GPU.

The paper's central overhead source: "Messages have to be polled from a
GPU; this requires several rounds of PCI-e transfers" (§3.2.3).  We model
the link as two independent directions (full duplex), each a serialized
latency+bandwidth channel, plus a cheap *probe* operation for small status
reads used by the polling loop.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim.core import Event, Simulator, us
from ..sim.resources import BandwidthChannel
from .params import PcieParams

__all__ = ["PcieLink"]


class PcieLink:
    """Full-duplex PCIe link with probe, h2d, and d2h operations."""

    def __init__(
        self, sim: Simulator, params: PcieParams, name: str = ""
    ) -> None:
        self.sim = sim
        self.params = params
        self.name = name or "pcie"
        self.h2d = BandwidthChannel(
            sim,
            latency_s=us(params.lat_us),
            bandwidth_Bps=params.bw_GBps * 1e9,
            name=f"{self.name}.h2d",
        )
        self.d2h = BandwidthChannel(
            sim,
            latency_s=us(params.lat_us),
            bandwidth_Bps=params.bw_GBps * 1e9,
            name=f"{self.name}.d2h",
        )
        #: Count of status-probe reads (polling-load accounting, ablation A1).
        self.probe_count = 0

    def probe(self) -> Generator[Event, Any, None]:
        """A small status read from device memory (mailbox flag check).

        Shares the d2h direction with bulk transfers — heavy polling
        therefore steals d2h bandwidth, which is part of the paper's
        "polling creates a significant CPU load" observation (§6.2).
        """
        self.probe_count += 1
        yield from self.d2h.occupy(us(self.params.probe_lat_us))

    def probe_time(self) -> float:
        """Pure latency of a single probe."""
        return us(self.params.probe_lat_us)

    def read(
        self, nbytes: int
    ) -> Generator[Event, Any, float]:
        """Device-to-host transfer of ``nbytes``; returns service time."""
        t = yield from self.d2h.transfer(nbytes)
        return t

    def write(
        self, nbytes: int
    ) -> Generator[Event, Any, float]:
        """Host-to-device transfer of ``nbytes``; returns service time."""
        t = yield from self.h2d.transfer(nbytes)
        return t

    def read_time(self, nbytes: int) -> float:
        """Uncontended d2h service time."""
        return self.d2h.transfer_time(nbytes)

    def write_time(self, nbytes: int) -> float:
        """Uncontended h2d service time."""
        return self.h2d.transfer_time(nbytes)
