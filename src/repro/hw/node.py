"""A cluster node: cores, host memory, NIC endpoint, attached GPUs."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

import numpy as np

from ..sim.core import Simulator
from ..sim.rng import RngStreams
from .memory import HostBuffer, MemcpyEngine
from .params import HWParams

if TYPE_CHECKING:  # pragma: no cover
    from ..gpusim.device import GpuDevice

__all__ = ["Node"]


class Node:
    """One machine in the simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        params: HWParams,
        cores: int,
        rng: RngStreams,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.params = params
        self.cores = cores
        self.rng = rng
        self.memcpy = MemcpyEngine(
            sim,
            lat_us=params.cpu.memcpy_lat_us,
            bw_GBps=params.cpu.memcpy_bw_GBps,
            name=f"node{node_id}.memcpy",
        )
        #: GPUs attached to this node (populated by the cluster builder).
        self.gpus: List["GpuDevice"] = []
        self._buf_seq = 0

    def alloc(
        self,
        shape,
        dtype=np.float64,
        name: str = "",
        fill: Optional[Any] = None,
    ) -> HostBuffer:
        """Allocate a host buffer on this node."""
        arr = np.zeros(shape, dtype=dtype)
        if fill is not None:
            arr[...] = fill
        self._buf_seq += 1
        return HostBuffer(
            arr,
            node_id=self.node_id,
            name=name or f"n{self.node_id}.buf{self._buf_seq}",
        )

    def wrap(self, arr: np.ndarray, name: str = "") -> HostBuffer:
        """Wrap an existing array as a host buffer on this node."""
        self._buf_seq += 1
        return HostBuffer(
            np.ascontiguousarray(arr),
            node_id=self.node_id,
            name=name or f"n{self.node_id}.buf{self._buf_seq}",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Node {self.node_id}: {self.cores} cores, "
            f"{len(self.gpus)} GPUs>"
        )
