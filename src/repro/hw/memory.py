"""Host memory: typed buffers backed by NumPy, and the memcpy engine.

Message payloads in the whole system are real bytes: sends snapshot the
source array, receives write into the destination array.  Only *time* is
simulated; data movement is executed eagerly so applications can verify
numerical results against sequential references.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple, Union

import numpy as np

from ..sim.core import Event, Simulator, us
from ..sim.resources import BandwidthChannel

__all__ = ["HostBuffer", "MemcpyEngine", "as_bytes_view", "nbytes_of"]


def as_bytes_view(obj: Union[np.ndarray, "HostBuffer"]) -> np.ndarray:
    """A flat uint8 view of a buffer's storage (no copy)."""
    arr = obj.data if isinstance(obj, HostBuffer) else obj
    if not isinstance(arr, np.ndarray):
        raise TypeError(f"expected ndarray or HostBuffer, got {type(obj)}")
    if not arr.flags["C_CONTIGUOUS"]:
        raise ValueError("buffers must be C-contiguous")
    return arr.view(np.uint8).reshape(-1)


def nbytes_of(obj: Union[np.ndarray, "HostBuffer", int]) -> int:
    """Byte size of an array, buffer, or plain byte count."""
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, HostBuffer):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    # Duck-typed fallback for payload holders defined in higher layers
    # (e.g. the MPI schedule's adoptable staging buffers).
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    raise TypeError(f"cannot size {type(obj)}")


class HostBuffer:
    """A named, typed region of host memory on a particular node.

    Thin wrapper around an ndarray carrying provenance (node id) so that
    cross-node "pointer" mistakes are caught in tests.
    """

    __slots__ = ("data", "node_id", "name")

    def __init__(
        self,
        data: np.ndarray,
        node_id: int,
        name: str = "",
    ) -> None:
        if not isinstance(data, np.ndarray):
            raise TypeError("HostBuffer wraps an ndarray")
        if not data.flags["C_CONTIGUOUS"]:
            raise ValueError("HostBuffer requires C-contiguous storage")
        self.data = data
        self.node_id = node_id
        self.name = name or f"hostbuf@{node_id}"

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def copy_from(self, src: np.ndarray) -> None:
        """Copy payload bytes in (shapes/dtypes must be compatible)."""
        view = as_bytes_view(self.data)
        sview = as_bytes_view(src)
        if sview.size > view.size:
            raise ValueError(
                f"payload {sview.size} B exceeds buffer {view.size} B"
            )
        view[: sview.size] = sview

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<HostBuffer {self.name!r} node={self.node_id} "
            f"{self.data.dtype}x{self.data.size}>"
        )


class MemcpyEngine:
    """Per-node host-memory copy engine (latency + bandwidth, serialized).

    Used for DCGN's local-communication staging (paper §6.2: intra-node
    messages are handled with memcpy instead of MPI).
    """

    def __init__(
        self,
        sim: Simulator,
        lat_us: float,
        bw_GBps: float,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.channel = BandwidthChannel(
            sim,
            latency_s=us(lat_us),
            bandwidth_Bps=bw_GBps * 1e9,
            name=name or "memcpy",
        )

    def copy_time(self, nbytes: int) -> float:
        """Service time of a copy of ``nbytes``."""
        return self.channel.transfer_time(nbytes)

    def copy(
        self,
        dst: Optional[Union[np.ndarray, HostBuffer]],
        src: Optional[Union[np.ndarray, HostBuffer]],
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, int]:
        """``yield from`` a host-to-host copy; returns bytes moved.

        Either real arrays (data actually copied) or ``None`` endpoints
        with an explicit ``nbytes`` (time-only accounting).
        """
        if nbytes is None:
            if src is None:
                raise ValueError("need src or explicit nbytes")
            nbytes = nbytes_of(src)
        yield from self.channel.transfer(nbytes)
        if dst is not None and src is not None:
            dview = as_bytes_view(dst)
            sview = as_bytes_view(src)
            n = min(nbytes, sview.size, dview.size)
            dview[:n] = sview[:n]
        return nbytes
