"""Cluster interconnect: InfiniBand-like fabric + intra-node channels.

Inter-node transfers occupy the sender's NIC injection channel and the
receiver's NIC ejection channel; the fabric itself is non-blocking (a
reasonable model for a small IB switch).  Intra-node transfers use a
per-node shared-memory channel with lower latency and higher bandwidth,
which is what MVAPICH2 does for ranks sharing a node — and what makes
the paper's Figure-7 claim ("DCGN broadcast beats MVAPICH2 because the MPI
call runs with half as many ranks") measurable.
"""

from __future__ import annotations

from typing import Any, Generator, List

from ..sim.core import Event, Simulator, us
from ..sim.resources import BandwidthChannel
from .params import IbParams

__all__ = ["Interconnect"]


class Interconnect:
    """Latency/bandwidth fabric among ``n`` nodes."""

    def __init__(self, sim: Simulator, n_nodes: int, params: IbParams) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.params = params
        self.n_nodes = n_nodes
        self._tx: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.lat_us) / 2.0,
                bandwidth_Bps=params.bw_GBps * 1e9,
                name=f"nic{i}.tx",
            )
            for i in range(n_nodes)
        ]
        self._rx: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.lat_us) / 2.0,
                bandwidth_Bps=params.bw_GBps * 1e9,
                name=f"nic{i}.rx",
            )
            for i in range(n_nodes)
        ]
        self._shm: List[BandwidthChannel] = [
            BandwidthChannel(
                sim,
                latency_s=us(params.intra_lat_us),
                bandwidth_Bps=params.intra_bw_GBps * 1e9,
                name=f"shm{i}",
            )
            for i in range(n_nodes)
        ]

    def _check(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0,{self.n_nodes})")

    def wire_time(self, src: int, dst: int, nbytes: int) -> float:
        """Uncontended end-to-end transfer time."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return self._shm[src].transfer_time(nbytes)
        return self._tx[src].transfer_time(nbytes) + us(self.params.lat_us) / 2.0

    def transfer(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, float]:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Returns the elapsed transfer time.  Intra-node transfers use the
        shared-memory channel; inter-node transfers serialize on the
        sender's tx channel then the receiver's rx channel (store-and-
        forward for the latency half, cut-through for bandwidth: the
        dominant term is charged once).
        """
        self._check(src)
        self._check(dst)
        t0 = self.sim.now
        if src == dst:
            yield from self._shm[src].transfer(nbytes)
            return self.sim.now - t0
        # Injection: sender NIC occupies for latency/2 + size/bw.
        yield from self._tx[src].transfer(nbytes)
        # Ejection: receiver side adds its latency half; bandwidth was
        # already paid (cut-through) so this is latency-only occupancy.
        yield from self._rx[dst].occupy(us(self.params.lat_us) / 2.0)
        return self.sim.now - t0

    def nic_utilization(self, node: int) -> float:
        """Busy-seconds of the node's tx channel (for reports)."""
        self._check(node)
        return self._tx[node].busy_s
