"""Cluster interconnect: a facade over the pluggable fabric topology.

The seed hardcoded the paper's testbed — one non-blocking IB switch —
directly in this class.  Transfers now route through a
:class:`~repro.hw.topology.Topology` (flat switch, oversubscribed fat
tree, multi-rail, 2-D torus; see :mod:`repro.hw.topology`), so the
channel path — and therefore where contention appears — is the
topology's decision.  The default remains the flat switch, bit-for-bit
identical to the seed model, which is what makes the paper's Figure-7
claim ("DCGN broadcast beats MVAPICH2 because the MPI call runs with
half as many ranks") measurable: intra-node transfers use a per-node
shared-memory channel with lower latency and higher bandwidth, as
MVAPICH2 does for ranks sharing a node.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from ..sim.core import Event, Simulator
from .params import IbParams, TopologySpec

__all__ = ["Interconnect"]


class Interconnect:
    """Latency/bandwidth fabric among ``n`` nodes.

    ``topology`` is a :class:`TopologySpec` (declarative, built here via
    the registry) or an already-constructed
    :class:`~repro.hw.topology.Topology`; omitted, it defaults to the
    seed's flat non-blocking switch.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        params: IbParams,
        topology: Optional[Union[TopologySpec, "Topology"]] = None,
    ) -> None:
        from .topology import Topology, make_topology

        self.sim = sim
        self.params = params
        self.n_nodes = n_nodes
        if topology is None:
            topology = TopologySpec()
        if isinstance(topology, TopologySpec):
            self.topology = make_topology(sim, n_nodes, params, topology)
        elif isinstance(topology, Topology):
            self.topology = topology
        else:
            raise TypeError(
                f"topology must be a TopologySpec or Topology, "
                f"got {type(topology).__name__}"
            )

    def wire_time(self, src: int, dst: int, nbytes: int) -> float:
        """Uncontended end-to-end transfer time."""
        return self.topology.wire_time(src, dst, nbytes)

    def transfer(
        self, src: int, dst: int, nbytes: int
    ) -> Generator[Event, Any, float]:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Returns the elapsed transfer time.  Intra-node transfers use the
        shared-memory channel; inter-node transfers follow the
        topology's routed channel path (for the flat switch: serialize
        on the sender's tx channel, then latency-only occupancy of the
        receiver's rx channel — store-and-forward for the latency half,
        cut-through for bandwidth).
        """
        t = yield from self.topology.transfer(src, dst, nbytes)
        return t

    def nic_utilization(self, node: int) -> float:
        """Busy-seconds of the node's injection path (for reports)."""
        return self.topology.nic_utilization(node)

    def channels(self):
        """All fabric channels (see :meth:`Topology.channels`)."""
        return self.topology.channels()

    @property
    def accounting(self) -> bool:
        """Whether analytic backends book priced transfers on channels."""
        return self.topology.accounting

    @accounting.setter
    def accounting(self, on: bool) -> None:
        self.topology.accounting = on

    def account(self, src: int, dst: int, nbytes: int) -> None:
        """Book one priced transfer (see :meth:`Topology.account`)."""
        self.topology.account(src, dst, nbytes)
