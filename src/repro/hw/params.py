"""Hardware cost-model parameters and calibration presets.

Every simulated time charge in the platform comes from one of these
dataclasses, so calibrating the model against the paper's testbed (4 nodes
x 2 dual-core Opteron 2216 + 2 NVIDIA G92, InfiniBand, MVAPICH2-1.0) is a
matter of editing numbers here — and ablations are parameter sweeps.

Calibration anchors taken from the paper's evaluation:

* MVAPICH2 barrier: 3 µs (2 ranks, 1 node), 5 µs (4 ranks, 2 nodes),
  6 µs (8 ranks, 4 nodes)                                    [Table 1]
* DCGN CPU barrier 2 ranks/1 node ≈ 38 µs; DCGN GPU barrier 2 GPUs/1 node
  ≈ 313 µs, 4 GPUs/2 nodes ≈ 747 µs, 8 GPUs/4 nodes ≈ 806 µs [Table 1]
* 0-byte send: DCGN CPU:CPU ≈ 28× MVAPICH2; GPU:GPU ≈ 564×    [§5.2]
* 1 MB send: DCGN CPU:CPU ≈ 1.04× MVAPICH2; GPU:GPU ≈ 1.5×    [§5.2]
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = [
    "KB",
    "MB",
    "GB",
    "CpuParams",
    "PcieParams",
    "IbParams",
    "GpuParams",
    "DcgnParams",
    "HWParams",
    "TopologySpec",
    "ClusterSpec",
    "paper_cluster",
    "single_node",
]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class CpuParams:
    """Host CPU / OS-thread cost model."""

    #: Lock + push/pop on a thread-safe queue (µs).
    queue_op_us: float = 0.4
    #: Cost of signalling a thread via condvar/flag, delivered immediately
    #: if the target is actively polling (µs).
    thread_signal_us: float = 2.0
    #: Host-memory memcpy bandwidth (GB/s) — dual-channel DDR2 era.
    memcpy_bw_GBps: float = 2.8
    #: Fixed memcpy call overhead (µs).
    memcpy_lat_us: float = 0.3
    #: Per-request bookkeeping by DCGN threads (descriptor alloc, TSD
    #: lookup, state machine) in µs.
    request_overhead_us: float = 1.5


@dataclass(frozen=True)
class PcieParams:
    """PCI-Express link between host and one GPU (PCIe 1.1 x16 era)."""

    #: Per-transaction latency (driver + DMA setup), µs.
    lat_us: float = 14.0
    #: Sustained bandwidth, GB/s (G92-era pinned transfers ~3).
    bw_GBps: float = 3.0
    #: Latency of a small status read (mailbox poll probe), µs.
    probe_lat_us: float = 12.0


@dataclass(frozen=True)
class IbParams:
    """InfiniBand (DDR era) + intra-node shared-memory channel."""

    #: One-way small-message latency between two nodes, µs.
    lat_us: float = 1.5
    #: Point-to-point bandwidth, GB/s.
    bw_GBps: float = 1.15
    #: Messages at or below this size use the eager protocol (bytes).
    eager_threshold: int = 16 * KB
    #: Extra round-trip for the rendezvous handshake, µs.
    rendezvous_rtt_us: float = 4.5
    #: Intra-node (shared-memory) small-message latency, µs.
    intra_lat_us: float = 1.0
    #: Intra-node copy bandwidth, GB/s.
    intra_bw_GBps: float = 2.2
    #: Per-rank software overhead of an MPI call (µs).
    sw_overhead_us: float = 0.25
    #: Origin-side cost of posting a one-sided (RMA) operation: build
    #: the work-queue element and ring the NIC doorbell (µs).  Cheaper
    #: than ``sw_overhead_us`` because the one-sided path skips the
    #: send/recv matching software stack entirely.
    rma_setup_us: float = 0.2


@dataclass(frozen=True)
class GpuParams:
    """NVIDIA G92-class device model."""

    #: Number of multiprocessors (G92: 16 SMs).
    num_sms: int = 16
    #: Concurrent blocks resident per SM for DCGN-style kernels (heavy
    #: register/shared-memory usage keeps this at 1).
    blocks_per_sm: int = 1
    #: Effective device throughput for app kernels, GFLOP/s.
    gflops: float = 250.0
    #: Device-memory bandwidth, GB/s (G92 ~60).
    mem_bw_GBps: float = 58.0
    #: Kernel launch overhead seen by the host, µs.
    kernel_launch_us: float = 12.0
    #: Device memory size in bytes (512 MB on the paper's G92 boards).
    mem_bytes: int = 512 * MB


@dataclass(frozen=True)
class DcgnParams:
    """DCGN runtime policy parameters (paper §3.2.3)."""

    #: Comm-thread sleep interval between work-queue polls (µs).  The
    #: comm thread uses sleep-based polling of its request queue.
    comm_poll_interval_us: float = 30.0
    #: CPU-kernel threads sleep-poll their completion flags at this
    #: interval (µs).
    cpu_wait_poll_us: float = 20.0
    #: GPU-kernel thread sleep interval between mailbox polls (µs).
    gpu_poll_interval_us: float = 300.0
    #: While in burst mode (recent activity or a kick), polls happen at
    #: this much shorter interval.
    gpu_poll_burst_us: float = 25.0
    #: Number of consecutive empty burst polls before falling back to the
    #: long interval.
    gpu_burst_polls: int = 4
    #: Adaptive polling: host-side request arrivals kick the GPU poller
    #: to poll immediately (models the poller being rescheduled by
    #: correlated host activity).  Ablation A1 flips this off.
    gpu_poll_kick: bool = True
    #: Device-side spin loop granularity when a kernel waits on its
    #: completion flag (µs).
    gpu_spin_check_us: float = 2.0
    #: Size of one mailbox request descriptor in device memory (bytes).
    mailbox_desc_bytes: int = 64
    #: Local (intra-process) messages staged through a host bounce buffer
    #: use memcpy rather than loopback MPI (paper §6.2).  Ablation A3
    #: flips this off.
    local_via_memcpy: bool = True
    #: FUTURE HARDWARE (paper §5.2 "Looking Forward" / §7): "a method for
    #: signaling the CPU from the GPU" — mailbox posts wake the GPU-kernel
    #: thread immediately instead of waiting for a poll tick.
    future_gpu_signaling: bool = False
    #: FUTURE HARDWARE: "a direct connection to the NIC ... and buffers in
    #: system memory so the GPU may push data" — payloads bypass the host
    #: bounce (no PCIe payload read/write charges; the wire still costs).
    future_gpu_direct: bool = False


@dataclass(frozen=True)
class HWParams:
    """Aggregate of all hardware/runtime cost models."""

    cpu: CpuParams = field(default_factory=CpuParams)
    pcie: PcieParams = field(default_factory=PcieParams)
    ib: IbParams = field(default_factory=IbParams)
    gpu: GpuParams = field(default_factory=GpuParams)
    dcgn: DcgnParams = field(default_factory=DcgnParams)
    #: Mean exponential timing jitter added to device/NIC operations (µs);
    #: zero disables jitter entirely (fully deterministic platform).
    jitter_us: float = 0.0

    def with_(self, **kwargs) -> "HWParams":
        """Functional update helper (``params.with_(dcgn=...)``)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative shape of the inter-node fabric.

    Consumed by :func:`repro.hw.topology.make_topology`; unknown kinds
    are rejected there (the registry is the source of truth so plugins
    can extend it).  Fields irrelevant to a kind are ignored.
    """

    #: One of ``flat`` (seed: non-blocking crossbar), ``fattree``
    #: (pods behind oversubscribed uplinks), ``multirail`` (k parallel
    #: NICs, rail striping), ``torus2d`` (wraparound grid, per-hop
    #: latency).
    kind: str = "flat"
    #: fattree: nodes per leaf switch.
    pod_size: int = 4
    #: fattree: uplink oversubscription factor (1.0 = non-blocking).
    oversubscription: float = 2.0
    #: multirail: parallel NICs per node.
    rails: int = 2
    #: torus2d: grid dimensions (0 = derive the squarest tiling).
    torus_x: int = 0
    torus_y: int = 0

    def __post_init__(self) -> None:
        if self.pod_size < 1:
            raise ValueError("pod_size must be >= 1")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1.0")
        if self.rails < 1:
            raise ValueError("rails must be >= 1")
        if self.torus_x < 0 or self.torus_y < 0:
            raise ValueError("torus dimensions must be >= 0 (0 = derive)")


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a simulated cluster."""

    nodes: int = 4
    #: CPU cores per node (paper: 2 × dual-core Opteron = 4).
    cores_per_node: int = 4
    #: GPUs per node (paper: 2 × G92).
    gpus_per_node: int = 2
    params: HWParams = field(default_factory=HWParams)
    #: Inter-node fabric shape (default: the paper's flat IB switch).
    topology: TopologySpec = field(default_factory=TopologySpec)
    #: Root seed for all per-component RNG streams.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("cluster needs at least one node")
        if self.cores_per_node < 1:
            raise ValueError("nodes need at least one core")
        if self.gpus_per_node < 0:
            raise ValueError("gpus_per_node must be >= 0")


def paper_cluster(
    nodes: int = 4,
    gpus_per_node: int = 2,
    params: Optional[HWParams] = None,
    topology: Optional[TopologySpec] = None,
    seed: int = 0,
) -> ClusterSpec:
    """The testbed of the paper: 4 nodes × (4 cores + 2 G92 GPUs + IB).

    ``topology`` swaps the fabric (default: the paper's flat switch)
    while keeping the node hardware — the knob topology ablations turn.
    """
    return ClusterSpec(
        nodes=nodes,
        cores_per_node=4,
        gpus_per_node=gpus_per_node,
        params=params if params is not None else HWParams(),
        topology=topology if topology is not None else TopologySpec(),
        seed=seed,
    )


def single_node(
    gpus: int = 1, params: Optional[HWParams] = None, seed: int = 0
) -> ClusterSpec:
    """A one-node workstation configuration."""
    return ClusterSpec(
        nodes=1,
        cores_per_node=4,
        gpus_per_node=gpus,
        params=params if params is not None else HWParams(),
        seed=seed,
    )
