"""Cluster assembly: nodes + GPUs + interconnect on one simulator."""

from __future__ import annotations

from typing import List

from ..sim.core import Simulator
from ..sim.rng import RngStreams
from .interconnect import Interconnect
from .node import Node
from .params import ClusterSpec

__all__ = ["Cluster", "build_cluster"]


class Cluster:
    """A fully wired simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        spec: ClusterSpec,
        nodes: List[Node],
        interconnect: Interconnect,
        rng: RngStreams,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.nodes = nodes
        self.interconnect = interconnect
        self.rng = rng

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(len(n.gpus) for n in self.nodes)

    def gpu(self, node_id: int, gpu_idx: int):
        """Convenience accessor for a specific device."""
        return self.nodes[node_id].gpus[gpu_idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Cluster {self.n_nodes} nodes, "
            f"{self.total_gpus} GPUs total>"
        )


def build_cluster(sim: Simulator, spec: ClusterSpec) -> Cluster:
    """Construct a cluster per ``spec`` on simulator ``sim``."""
    # Imported here to keep hw independent of gpusim at module load.
    from ..gpusim.device import GpuDevice

    rng = RngStreams(spec.seed)
    nodes: List[Node] = []
    for i in range(spec.nodes):
        node = Node(
            sim,
            node_id=i,
            params=spec.params,
            cores=spec.cores_per_node,
            rng=rng,
        )
        for g in range(spec.gpus_per_node):
            node.gpus.append(
                GpuDevice(
                    sim,
                    params=spec.params.gpu,
                    pcie_params=spec.params.pcie,
                    node_id=i,
                    device_id=g,
                    rng=rng,
                    jitter_us=spec.params.jitter_us,
                )
            )
        nodes.append(node)
    interconnect = Interconnect(
        sim, spec.nodes, spec.params.ib, topology=spec.topology
    )
    return Cluster(sim, spec, nodes, interconnect, rng)
