"""repro — reproduction of *Message Passing on Data-Parallel Architectures*
(Stuart & Owens, IPDPS 2009).

The package implements DCGN — an MPI-like message-passing library in which
GPUs are first-class communication targets via *slots* — together with
every substrate it needs, all running on a deterministic discrete-event
simulation of a GPU cluster:

``repro.sim``
    Generator-coroutine discrete-event kernel.
``repro.hw``
    Hardware cost models: PCIe, NIC, InfiniBand interconnect, nodes,
    clusters, calibration presets.
``repro.gpusim``
    Data-parallel machine (GPU) simulator: SIMT grid/block execution,
    run-to-completion block scheduling, device memory, driver API.
``repro.mpi``
    A simulated MPI implementation (the "MVAPICH2" baseline).
``repro.dcgn``
    The paper's contribution: slots, rank virtualization, the
    communication thread, sleep-based GPU polling, and MPI-like
    point-to-point + collective APIs callable from CPU and GPU kernels.
``repro.gas``
    The conventional GPU-as-slave + MPI baseline runtime.
``repro.apps``
    The paper's test applications (ping-pong, send/broadcast/barrier
    micro-benchmarks, Mandelbrot, Cannon's matrix multiply, N-body).
``repro.bench``
    Harness regenerating every table and figure of the evaluation.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
