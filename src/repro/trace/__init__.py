"""Traced demo runs behind the ``python -m repro.trace`` CLI.

One function per runnable app, all with the same contract: build a
cluster, attach a :class:`~repro.obs.spans.SpanRecorder`, enable fabric
accounting, run, and hand back a :class:`TraceRun` bundling everything
the CLI's report/export paths need.  The apps deliberately span the
three runtimes the span instrumentation covers:

* ``jacobi`` — the MPI halo-exchange stencil (collectives, p2p,
  schedule rounds);
* ``dcgn``   — the same stencil on the DCGN runtime (comm-thread slot
  servicing, poll ticks, one-sided windows);
* ``serve``  — an open-loop tile service on a fat tree (scheduler job
  phases, request queueing/service spans, pod uplink accounting).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["APPS", "TraceRun", "run_traced"]

#: Runnable app names, CLI order.
APPS = ("jacobi", "dcgn", "serve")


class TraceRun:
    """Everything one traced run produced."""

    def __init__(
        self,
        app: str,
        recorder: Any,
        sim: Any,
        interconnect: Any,
        wall_s: float,
        info: Dict[str, Any],
    ) -> None:
        self.app = app
        self.recorder = recorder
        self.sim = sim
        self.interconnect = interconnect
        self.wall_s = wall_s
        self.info = info


def run_traced(
    app: str,
    nodes: int = 8,
    backend: str = "exact",
    maxlen: Optional[int] = None,
) -> TraceRun:
    """Run ``app`` on ``nodes`` nodes with span tracing attached."""
    if app == "jacobi":
        return _run_jacobi(nodes, backend, maxlen)
    if app == "dcgn":
        return _run_dcgn(nodes, backend, maxlen)
    if app == "serve":
        return _run_serve(nodes, backend, maxlen)
    raise ValueError(f"unknown app {app!r}; pick one of {APPS}")


def _run_jacobi(nodes: int, backend: str, maxlen: Optional[int]) -> TraceRun:
    from ..apps.jacobi import JacobiConfig, run_mpi
    from ..hw import build_cluster, paper_cluster
    from ..obs import SpanRecorder
    from ..sim import Simulator

    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=nodes, gpus_per_node=0)
    )
    rec = sim.attach_spans(SpanRecorder(maxlen=maxlen))
    cluster.interconnect.accounting = True
    cfg = JacobiConfig(p=max(2, nodes), iters=4, cols=256)
    result = run_mpi(
        cluster, cfg, backend="nonblocking", exec_backend=backend
    )
    return TraceRun(
        "jacobi", rec, sim, cluster.interconnect, sim.now,
        {
            "ranks": cfg.p,
            "iters": cfg.iters,
            "elapsed_s": result.elapsed,
            "backend": backend,
        },
    )


def _run_dcgn(nodes: int, backend: str, maxlen: Optional[int]) -> TraceRun:
    from ..apps.jacobi import JacobiConfig, run_dcgn
    from ..hw import build_cluster, paper_cluster
    from ..obs import SpanRecorder
    from ..sim import Simulator

    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=nodes, gpus_per_node=2)
    )
    rec = sim.attach_spans(SpanRecorder(maxlen=maxlen))
    cluster.interconnect.accounting = True
    cfg = JacobiConfig(p=2 * nodes, iters=3, cols=128)
    result = run_dcgn(cluster, cfg, backend=backend)
    # The runtime watchdog horizon leaves hours of teardown poll ticks
    # past the app's end; trim the trace to the last real activity.
    app_end = max(
        (s.t1 for s in rec.spans
         if s.category != "dcgn.poll" and s.t1 is not None),
        default=sim.now,
    )
    rec.trim(app_end)
    return TraceRun(
        "dcgn", rec, sim, cluster.interconnect, rec.wall(),
        {
            "ranks": cfg.p,
            "iters": cfg.iters,
            "elapsed_s": result.elapsed,
            "backend": backend,
        },
    )


def _run_serve(nodes: int, backend: str, maxlen: Optional[int]) -> TraceRun:
    from ..apps.mandelbrot import MandelbrotConfig
    from ..apps.tile_service import TileService, TileServiceConfig
    from ..hw import ClusterSpec, TopologySpec, build_cluster
    from ..obs import SpanRecorder
    from ..serve import (
        ClusterScheduler, OpenLoopDriver, open_loop_arrivals,
    )
    from ..sim import Simulator

    pod = max(2, nodes // 4)
    sim = Simulator()
    cluster = build_cluster(
        sim,
        ClusterSpec(
            nodes=nodes,
            gpus_per_node=0,
            topology=TopologySpec(
                kind="fattree", pod_size=pod, oversubscription=4.0
            ),
        ),
    )
    rec = sim.attach_spans(SpanRecorder(maxlen=maxlen))
    cluster.interconnect.accounting = True
    sched = ClusterScheduler(cluster, policy="packed", backend=backend)
    svc = TileService(
        sim,
        TileServiceConfig(
            tile=MandelbrotConfig(
                width=128, height=128, strip_height=16, max_iter=64
            )
        ),
        name="svc",
    )
    sched.submit(svc.job_spec(n_nodes=pod))
    n_requests = 16
    OpenLoopDriver(
        sim, svc,
        open_loop_arrivals(200.0, n_requests, seed=1, start=0.01),
        name="drv",
    ).start()
    sim.run()
    done = sum(
        1 for r in svc.log.requests if r.done_t is not None
    )
    sched.release()
    return TraceRun(
        "serve", rec, sim, cluster.interconnect, sim.now,
        {
            "nodes": nodes,
            "pod_size": pod,
            "n_requests": n_requests,
            "n_completed": done,
            "backend": backend,
        },
    )
