"""CLI over the observability layer: run traced apps, profile, export.

Examples::

    # Run the MPI stencil on 8 nodes and write a Perfetto trace:
    python -m repro.trace run jacobi --nodes 8 --perfetto trace.json

    # Critical-path + per-collective profile + link utilization:
    python -m repro.trace report jacobi --nodes 8 --links --top 10

    # Perfetto export only (report suppressed):
    python -m repro.trace export serve --nodes 32 --backend analytic \\
        --perfetto serve.json

Open the JSON at https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import APPS, run_traced
from ..obs import (
    critical_path,
    format_critical_path,
    collective_profile,
    format_collective_profile,
    format_link_report,
    link_report,
    write_chrome_trace,
)


def _summary(run) -> None:
    rec = run.recorder
    info = " ".join(f"{k}={v}" for k, v in run.info.items())
    print(
        f"{run.app}: {len(rec.spans)} spans on {len(rec.tracks())} "
        f"tracks, wall {run.wall_s * 1e3:.3f} ms  ({info})"
    )


def _report(run, top: Optional[int], links: bool) -> None:
    print("\ncritical path:")
    print(format_critical_path(critical_path(run.recorder)))
    rows = collective_profile(run.recorder, top=top)
    if rows:
        print("\ncollectives:")
        print(format_collective_profile(rows))
    if links:
        print("\nlink utilization:")
        print(
            format_link_report(
                link_report(run.interconnect, wall_s=run.wall_s),
                top=top,
            )
        )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description=(
            "Run an instrumented app with span tracing attached, then "
            "report the critical path / collective profile / link "
            "utilization and optionally export a Perfetto trace."
        ),
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    for cmd, doc in (
        ("run", "run traced; print a summary (plus any requested outputs)"),
        ("report", "run traced; print critical path + profiles"),
        ("export", "run traced; write the Perfetto JSON only"),
    ):
        p = sub.add_parser(cmd, help=doc)
        p.add_argument("app", choices=APPS, help="which demo app to run")
        p.add_argument(
            "--nodes", type=int, default=8, help="cluster size (default 8)"
        )
        p.add_argument(
            "--backend",
            default="exact",
            choices=("exact", "analytic", "pricing"),
            help="timing engine (default exact)",
        )
        p.add_argument(
            "--maxlen",
            type=int,
            default=None,
            metavar="N",
            help="keep only the most recent N spans",
        )
        p.add_argument(
            "--perfetto",
            metavar="OUT.json",
            default=None,
            help="write a Chrome-trace/Perfetto JSON here",
        )
        p.add_argument(
            "--top",
            type=int,
            default=None,
            metavar="N",
            help="limit profile/link tables to the top N rows",
        )
        p.add_argument(
            "--links",
            action="store_true",
            help="include the per-channel utilization report",
        )
    args = parser.parse_args(argv)
    if args.cmd == "export" and args.perfetto is None:
        parser.error("export requires --perfetto OUT.json")

    run = run_traced(
        args.app, nodes=args.nodes, backend=args.backend,
        maxlen=args.maxlen,
    )
    _summary(run)
    if args.cmd in ("run", "report") and (
        args.cmd == "report" or args.links
    ):
        _report(run, args.top, args.links or args.cmd == "report")
    if args.perfetto is not None:
        doc = write_chrome_trace(run.recorder, args.perfetto)
        print(
            f"wrote {args.perfetto}: {len(doc['traceEvents'])} events "
            f"({len(run.recorder.tracks())} tracks)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
