"""Slot mailboxes: the device-memory rendezvous between kernels and host.

This is the heart of how DCGN sources communication from a GPU
(paper §3.2.3): GPU kernels "set regions of GPU memory that are monitored
by a GPU-kernel thread.  When the memory is noticed, the request is
obtained via cudaMemcpyAsync, handled, and the appropriate memory is set
on the GPU to flag the GPU kernel, telling it to continue execution."

The mailbox object lives in simulated device memory.  Time costs:

* device side — posting a request is a device-memory write (negligible);
  waiting on the completion flag is a spin loop with
  ``gpu_spin_check_us`` detection granularity;
* host side — *noticing* requests costs a PCIe probe of the mailbox
  region; fetching descriptors costs a PCIe read; completing a request
  costs a PCIe write.  Those are charged by the caller (the DCGN
  GPU-kernel thread) through :class:`~repro.hw.pcie.PcieLink`, because
  batching policy (one probe covering all slots) is a host-side decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..sim.core import Event, Simulator, us

__all__ = ["MailboxRequest", "SlotMailboxes"]


@dataclass
class MailboxRequest:
    """A communication request descriptor written by a GPU kernel."""

    slot: int
    op: str  #: "send" | "recv" | "barrier" | "bcast" | "reduce" | ...
    args: Dict[str, Any] = field(default_factory=dict)
    #: Set by the host when the request has been fully serviced.
    done: Optional[Event] = None
    #: Result payload delivered back to the kernel (e.g. CommStatus).
    result: Any = None
    #: Simulated time the kernel posted the request.
    posted_at: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MailboxRequest slot={self.slot} op={self.op}>"


class SlotMailboxes:
    """Per-kernel-launch mailbox array, one logical cell per slot."""

    def __init__(
        self,
        sim: Simulator,
        n_slots: int,
        spin_check_us: float,
        desc_bytes: int,
        notify=None,
    ) -> None:
        if n_slots < 1:
            raise ValueError("need at least one slot")
        self.sim = sim
        self.n_slots = n_slots
        self.spin_check_us = spin_check_us
        self.desc_bytes = desc_bytes
        #: Requests posted but not yet picked up by the host.
        self._pending: List[MailboxRequest] = []
        #: Total requests ever posted (accounting).
        self.posted_count = 0
        #: Optional callable invoked on every post — the "GPU signals the
        #: CPU" future-hardware hook (paper §5.2 Looking Forward).
        self.notify = notify

    # -- device side -----------------------------------------------------
    def post(
        self, slot: int, op: str, **args: Any
    ) -> Generator[Event, Any, MailboxRequest]:
        """Kernel-side: write a request into this slot's mailbox cell.

        Returns the request object; the kernel should then ``yield from``
        :meth:`wait` on it.
        """
        if not (0 <= slot < self.n_slots):
            raise ValueError(f"slot {slot} out of range [0,{self.n_slots})")
        req = MailboxRequest(
            slot=slot,
            op=op,
            args=args,
            done=self.sim.event(name=f"mbox.done(slot{slot},{op})"),
            posted_at=self.sim.now,
        )
        self._pending.append(req)
        self.posted_count += 1
        self.sim.trace("mailbox.post", slot=slot, op=op)
        # A global-memory write by the kernel: sub-microsecond; charge the
        # device-side spin granularity once as the write+fence cost.
        yield self.sim.timeout(us(self.spin_check_us))
        if self.notify is not None:
            self.notify()
        return req

    def wait(
        self, req: MailboxRequest
    ) -> Generator[Event, Any, Any]:
        """Kernel-side: spin on the request's completion flag.

        The host flips the flag with a PCIe write; the device notices it
        within one spin-check period.
        """
        yield req.done
        yield self.sim.timeout(us(self.spin_check_us))
        return req.result

    # -- host side ---------------------------------------------------------
    def region_bytes(self) -> int:
        """Size of the mailbox region a host poll must read."""
        return self.n_slots * self.desc_bytes

    def harvest(self) -> List[MailboxRequest]:
        """Host-side: take all currently posted, un-harvested requests.

        The caller has already paid the PCIe probe/read cost.
        """
        out, self._pending = self._pending, []
        return out

    def has_pending(self) -> bool:
        """Host-side cheap check (used only by tests/diagnostics)."""
        return bool(self._pending)

    def complete(self, req: MailboxRequest, result: Any = None) -> None:
        """Host-side: flag the request complete (after the PCIe write)."""
        req.result = result
        req.done.succeed(result)
        self.sim.trace("mailbox.complete", slot=req.slot, op=req.op)
