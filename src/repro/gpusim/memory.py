"""Device (global) memory: typed buffers + an allocation tracker.

Paper §3.2 (Figure 1 comment): "for communication, we have to use global
memory; this is a byproduct of the memory system on the GPU."  The DCGN
layer enforces exactly that — only :class:`DeviceBuffer` s may be passed
to GPU-sourced communication calls.
"""

from __future__ import annotations

import math
import operator
from typing import Dict, Optional, Tuple

import numpy as np

from .errors import GpuOutOfMemory, InvalidMemorySpace

__all__ = ["DeviceBuffer", "DeviceAllocator"]


class DeviceBuffer:
    """A region of GPU global memory backed by a NumPy array."""

    __slots__ = ("data", "node_id", "device_id", "name", "_allocator", "_freed")

    def __init__(
        self,
        data: np.ndarray,
        node_id: int,
        device_id: int,
        name: str = "",
        allocator: Optional["DeviceAllocator"] = None,
    ) -> None:
        if not data.flags["C_CONTIGUOUS"]:
            raise ValueError("DeviceBuffer requires C-contiguous storage")
        self.data = data
        self.node_id = node_id
        self.device_id = device_id
        self.name = name or f"dbuf@{node_id}.{device_id}"
        self._allocator = allocator
        self._freed = False

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def freed(self) -> bool:
        return self._freed

    def free(self) -> None:
        """Return this buffer's bytes to the allocator."""
        if self._freed:
            raise InvalidMemorySpace(f"double free of {self.name}")
        self._freed = True
        if self._allocator is not None:
            self._allocator._release(self.nbytes)

    def check_usable(self) -> None:
        """Raise if the buffer was freed (use-after-free guard)."""
        if self._freed:
            raise InvalidMemorySpace(f"use after free of {self.name}")

    def bytes_view(self) -> np.ndarray:
        """Flat uint8 view of the storage."""
        self.check_usable()
        return self.data.view(np.uint8).reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DeviceBuffer {self.name!r} gpu={self.node_id}.{self.device_id} "
            f"{self.data.dtype}x{self.data.size}{' FREED' if self._freed else ''}>"
        )


class DeviceAllocator:
    """Tracks device-memory usage against the device's capacity."""

    def __init__(self, capacity_bytes: int, label: str = "") -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_bytes
        self.used = 0
        self.label = label or "gpu"
        self.peak = 0
        self.alloc_count = 0

    def allocate(
        self,
        shape,
        dtype,
        node_id: int,
        device_id: int,
        name: str = "",
        fill=None,
    ) -> DeviceBuffer:
        """Allocate a buffer; raises :class:`GpuOutOfMemory` if over.

        The capacity check runs on the requested geometry *before* any
        host-side backing store exists, so an over-capacity request
        (e.g. a simulated 1 TB allocation) raises cleanly instead of
        exhausting host memory in ``np.zeros``.
        """
        dims = (
            (operator.index(shape),)
            if not hasattr(shape, "__iter__")
            else tuple(operator.index(s) for s in shape)
        )
        if any(d < 0 for d in dims):
            raise ValueError(f"negative dimension in shape {dims}")
        nbytes = math.prod(dims) * np.dtype(dtype).itemsize
        if self.used + nbytes > self.capacity:
            raise GpuOutOfMemory(
                f"{self.label}: requested {nbytes} B with "
                f"{self.capacity - self.used} B free "
                f"(capacity {self.capacity} B)"
            )
        arr = np.zeros(dims, dtype=dtype)
        if fill is not None:
            arr[...] = fill
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        self.alloc_count += 1
        return DeviceBuffer(
            arr,
            node_id=node_id,
            device_id=device_id,
            name=name or f"{self.label}.buf{self.alloc_count}",
            allocator=self,
        )

    def _release(self, nbytes: int) -> None:
        self.used -= nbytes
        if self.used < 0:  # pragma: no cover - defensive
            raise RuntimeError(f"{self.label}: allocator underflow")

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used
