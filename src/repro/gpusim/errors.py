"""GPU-simulator error types."""

from __future__ import annotations

__all__ = [
    "GpuError",
    "GpuOutOfMemory",
    "LaunchConfigError",
    "GpuCommDeadlock",
    "InvalidMemorySpace",
]


class GpuError(Exception):
    """Base class for GPU-simulator errors."""


class GpuOutOfMemory(GpuError):
    """Device memory allocation exceeded capacity."""


class LaunchConfigError(GpuError):
    """Invalid kernel launch configuration."""


class GpuCommDeadlock(GpuError):
    """Communicating kernel deadlocked on block scheduling.

    Reproduces the paper's §3.2.4 limitation: blocks are scheduled
    run-to-completion, so if a kernel needs more co-resident blocks than
    the device supports for a collective to complete, it deadlocks.
    """


class InvalidMemorySpace(GpuError):
    """Host pointer used where a device pointer is required (or vice versa)."""
