"""The simulated GPU device: SMs, memory, PCIe endpoint, cost model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..hw.params import GpuParams, PcieParams
from ..hw.pcie import PcieLink
from ..sim.core import Simulator, us
from ..sim.resources import Resource
from ..sim.rng import RngStreams
from .memory import DeviceAllocator, DeviceBuffer

__all__ = ["GpuDevice"]


class GpuDevice:
    """One data-parallel machine (paper terminology: DPM).

    Architectural properties the reproduction depends on:

    * blocks are scheduled onto multiprocessors and **run to completion**
      — no time-slicing (modelled with an SM-slot :class:`Resource`);
    * the device cannot initiate PCIe traffic — all host interaction is
      through memory the host reads/writes (the mailbox pattern);
    * compute throughput is shared: each block executes on one SM at
      ``gflops / num_sms``.
    """

    def __init__(
        self,
        sim: Simulator,
        params: GpuParams,
        pcie_params: PcieParams,
        node_id: int,
        device_id: int,
        rng: RngStreams,
        jitter_us: float = 0.0,
    ) -> None:
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.device_id = device_id
        self.rng = rng
        self.jitter_us = jitter_us
        self.label = f"gpu{node_id}.{device_id}"
        self.pcie = PcieLink(sim, pcie_params, name=f"{self.label}.pcie")
        self.sm_slots = Resource(
            sim,
            capacity=params.num_sms * params.blocks_per_sm,
            name=f"{self.label}.sms",
        )
        self.allocator = DeviceAllocator(params.mem_bytes, label=self.label)
        #: Number of kernels ever launched (accounting).
        self.kernels_launched = 0

    # -- memory -----------------------------------------------------------
    def alloc(
        self,
        shape,
        dtype=np.float64,
        name: str = "",
        fill=None,
    ) -> DeviceBuffer:
        """Allocate global memory on this device."""
        return self.allocator.allocate(
            shape,
            dtype,
            node_id=self.node_id,
            device_id=self.device_id,
            name=name,
            fill=fill,
        )

    def owns(self, buf: DeviceBuffer) -> bool:
        """True if ``buf`` lives on this device."""
        return (
            isinstance(buf, DeviceBuffer)
            and buf.node_id == self.node_id
            and buf.device_id == self.device_id
        )

    # -- scheduling capacity ----------------------------------------------
    @property
    def max_resident_blocks(self) -> int:
        """How many blocks can be co-resident (run-to-completion limit)."""
        return self.params.num_sms * self.params.blocks_per_sm

    # -- cost model ---------------------------------------------------------
    @property
    def sm_flops_per_s(self) -> float:
        """Per-SM compute throughput (flop/s)."""
        return self.params.gflops * 1e9 / self.params.num_sms

    @property
    def sm_mem_Bps(self) -> float:
        """Per-SM share of device-memory bandwidth (B/s)."""
        return self.params.mem_bw_GBps * 1e9 / self.params.num_sms

    def block_compute_time(
        self, flops: float = 0.0, membytes: float = 0.0
    ) -> float:
        """Roofline time for one block doing ``flops`` and ``membytes``."""
        t_flop = flops / self.sm_flops_per_s if flops else 0.0
        t_mem = membytes / self.sm_mem_Bps if membytes else 0.0
        return max(t_flop, t_mem)

    def jitter(self, stream: str) -> float:
        """A timing-jitter sample for this device (0 when disabled)."""
        if self.jitter_us <= 0.0:
            return 0.0
        return self.rng.jitter(f"{self.label}.{stream}", us(self.jitter_us))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GpuDevice {self.label} sms={self.params.num_sms}>"
