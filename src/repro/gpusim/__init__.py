"""Data-parallel machine (GPU) simulator."""

from .device import GpuDevice
from .driver import launch, memcpy_d2d, memcpy_d2h, memcpy_h2d
from .errors import (
    GpuCommDeadlock,
    GpuError,
    GpuOutOfMemory,
    InvalidMemorySpace,
    LaunchConfigError,
)
from .kernel import BlockContext, KernelHandle, LaunchConfig, launch_kernel
from .mailbox import MailboxRequest, SlotMailboxes
from .memory import DeviceAllocator, DeviceBuffer

__all__ = [
    "GpuDevice",
    "DeviceBuffer",
    "DeviceAllocator",
    "LaunchConfig",
    "BlockContext",
    "KernelHandle",
    "launch_kernel",
    "launch",
    "memcpy_h2d",
    "memcpy_d2h",
    "memcpy_d2d",
    "SlotMailboxes",
    "MailboxRequest",
    "GpuError",
    "GpuOutOfMemory",
    "LaunchConfigError",
    "GpuCommDeadlock",
    "InvalidMemorySpace",
]
