"""Kernel launch machinery: grids, blocks, and run-to-completion scheduling.

A *kernel* is a Python generator function ``fn(ctx, *args)`` executed once
per block with a :class:`BlockContext`.  Inside, the block charges compute
time (:meth:`BlockContext.compute`), synchronizes its (implicit) threads
(:meth:`BlockContext.syncthreads`), and — when wrapped by the DCGN layer —
issues communication requests through slot mailboxes.

Blocks wait for a free SM slot, then run **to completion**; this is the
property behind the paper's §3.2.4 deadlock limitation, which the test
suite reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence

from ..sim.core import Event, Process, Simulator, us
from ..sim.sync import Latch
from .device import GpuDevice
from .errors import LaunchConfigError

__all__ = ["LaunchConfig", "BlockContext", "KernelHandle", "launch_kernel"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry of a kernel launch (1-D, as the paper's apps use)."""

    grid_blocks: int
    threads_per_block: int = 128

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise LaunchConfigError(
                f"grid_blocks must be >= 1, got {self.grid_blocks}"
            )
        if self.threads_per_block < 1:
            raise LaunchConfigError(
                f"threads_per_block must be >= 1, got {self.threads_per_block}"
            )

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block


class BlockContext:
    """Execution context handed to the kernel body for one block."""

    def __init__(
        self,
        device: GpuDevice,
        block_idx: int,
        config: LaunchConfig,
        handle: "KernelHandle",
    ) -> None:
        self.device = device
        self.sim = device.sim
        self.block_idx = block_idx
        self.config = config
        self.handle = handle
        #: Set by the DCGN layer: per-launch GPU communication API.
        self.comm: Any = None

    @property
    def grid_blocks(self) -> int:
        return self.config.grid_blocks

    @property
    def threads_per_block(self) -> int:
        return self.config.threads_per_block

    def thread_range(self, total_items: int) -> range:
        """Grid-stride partition: the item indices this block owns."""
        return range(self.block_idx, total_items, self.config.grid_blocks)

    def compute(
        self,
        flops: float = 0.0,
        membytes: float = 0.0,
        seconds: Optional[float] = None,
    ) -> Generator[Event, Any, float]:
        """Charge block compute time (roofline of flops vs memory traffic).

        ``seconds`` overrides the model with an explicit duration.
        Returns the charged time.
        """
        if seconds is not None:
            t = float(seconds)
        else:
            t = self.device.block_compute_time(flops=flops, membytes=membytes)
        t += self.device.jitter("compute")
        if t > 0:
            yield self.sim.timeout(t)
        return t

    def syncthreads(self) -> Generator[Event, Any, None]:
        """Intra-block barrier.

        Threads within a block are executed as one SIMD unit in this
        model, so the barrier only charges a small fixed cost.
        """
        yield self.sim.timeout(us(0.05))


class KernelHandle:
    """Host-visible state of a running kernel launch."""

    def __init__(
        self,
        sim: Simulator,
        device: GpuDevice,
        config: LaunchConfig,
        name: str,
    ) -> None:
        self.sim = sim
        self.device = device
        self.config = config
        self.name = name
        self._latch = Latch(sim, config.grid_blocks, name=f"{name}.blocks")
        self.block_results: List[Any] = [None] * config.grid_blocks
        self._processes: List[Process] = []

    @property
    def done(self) -> Event:
        """Fires when every block has finished."""
        return self._latch.wait()

    @property
    def finished(self) -> bool:
        return self._latch.done.triggered

    @property
    def blocks_remaining(self) -> int:
        return self._latch.remaining

    def describe_blocked(self) -> str:
        """Human-readable schedule state (used in deadlock diagnostics)."""
        running = sum(1 for p in self._processes if p.is_alive)
        return (
            f"kernel {self.name!r}: {self.blocks_remaining}/"
            f"{self.config.grid_blocks} blocks unfinished, "
            f"{running} block processes alive, device allows "
            f"{self.device.max_resident_blocks} resident blocks"
        )


KernelFn = Callable[..., Generator[Event, Any, Any]]


def launch_kernel(
    device: GpuDevice,
    fn: KernelFn,
    config: LaunchConfig,
    args: Sequence[Any] = (),
    name: str = "",
    comm_factory: Optional[Callable[[BlockContext], Any]] = None,
) -> KernelHandle:
    """Start a kernel on ``device``; returns immediately with a handle.

    ``comm_factory``, when given, builds the per-block communication API
    object attached as ``ctx.comm`` (the DCGN layer uses this hook).

    The host-side launch overhead (``kernel_launch_us``) is *not* charged
    here — the driver/runtime layer charges it, because launches issued
    by different host threads contend differently.
    """
    sim = device.sim
    device.kernels_launched += 1
    kname = name or f"{device.label}.k{device.kernels_launched}"
    handle = KernelHandle(sim, device, config, kname)

    def block_proc(block_idx: int):
        # Wait for a free multiprocessor slot; blocks run to completion.
        yield device.sm_slots.request()
        try:
            ctx = BlockContext(device, block_idx, config, handle)
            if comm_factory is not None:
                ctx.comm = comm_factory(ctx)
            result = yield from fn(ctx, *args)
            handle.block_results[block_idx] = result
            return result
        finally:
            device.sm_slots.release()
            handle._latch.arrive()

    for b in range(config.grid_blocks):
        p = sim.process(block_proc(b), name=f"{kname}.b{b}")
        handle._processes.append(p)
    return handle
