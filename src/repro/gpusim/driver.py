"""Host-side driver API: memcpy and kernel launch (the CUDA-driver analogue).

All functions are generators to be driven from host-thread processes.
They move real bytes and charge PCIe/device time.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence, Union

import numpy as np

from ..hw.memory import HostBuffer, as_bytes_view
from ..sim.core import Event, us
from .device import GpuDevice
from .errors import InvalidMemorySpace
from .kernel import KernelFn, KernelHandle, LaunchConfig, launch_kernel
from .memory import DeviceBuffer

__all__ = ["memcpy_h2d", "memcpy_d2h", "memcpy_d2d", "launch"]

HostLike = Union[np.ndarray, HostBuffer]


def _host_view(obj: HostLike) -> np.ndarray:
    if isinstance(obj, DeviceBuffer):
        raise InvalidMemorySpace(f"{obj!r} is device memory, host expected")
    return as_bytes_view(obj)


def _device_view(device: GpuDevice, obj: DeviceBuffer) -> np.ndarray:
    if not isinstance(obj, DeviceBuffer):
        raise InvalidMemorySpace(f"{obj!r} is not device memory")
    if not device.owns(obj):
        raise InvalidMemorySpace(
            f"{obj!r} does not live on {device.label}"
        )
    return obj.bytes_view()


def memcpy_h2d(
    device: GpuDevice,
    dst: DeviceBuffer,
    src: HostLike,
    nbytes: Optional[int] = None,
) -> Generator[Event, Any, int]:
    """Host-to-device copy over PCIe; returns bytes moved."""
    dview = _device_view(device, dst)
    sview = _host_view(src)
    n = int(nbytes) if nbytes is not None else min(sview.size, dview.size)
    if n > dview.size or n > sview.size:
        raise ValueError(f"copy of {n} B exceeds endpoint sizes")
    yield from device.pcie.write(n)
    dview[:n] = sview[:n]
    return n


def memcpy_d2h(
    device: GpuDevice,
    dst: HostLike,
    src: DeviceBuffer,
    nbytes: Optional[int] = None,
) -> Generator[Event, Any, int]:
    """Device-to-host copy over PCIe; returns bytes moved."""
    sview = _device_view(device, src)
    dview = _host_view(dst)
    n = int(nbytes) if nbytes is not None else min(sview.size, dview.size)
    if n > dview.size or n > sview.size:
        raise ValueError(f"copy of {n} B exceeds endpoint sizes")
    yield from device.pcie.read(n)
    dview[:n] = sview[:n]
    return n


def memcpy_d2d(
    device: GpuDevice,
    dst: DeviceBuffer,
    src: DeviceBuffer,
    nbytes: Optional[int] = None,
) -> Generator[Event, Any, int]:
    """Device-to-device copy within one GPU (device memory bandwidth)."""
    dview = _device_view(device, dst)
    sview = _device_view(device, src)
    n = int(nbytes) if nbytes is not None else min(sview.size, dview.size)
    if n > dview.size or n > sview.size:
        raise ValueError(f"copy of {n} B exceeds endpoint sizes")
    # Read + write through device memory: 2n bytes of traffic.
    t = 2.0 * n / (device.params.mem_bw_GBps * 1e9)
    if t > 0:
        yield device.sim.timeout(t)
    dview[:n] = sview[:n]
    return n


def launch(
    device: GpuDevice,
    fn: KernelFn,
    config: LaunchConfig,
    args: Sequence[Any] = (),
    name: str = "",
    comm_factory=None,
) -> Generator[Event, Any, KernelHandle]:
    """Launch a kernel from a host thread (charges launch overhead)."""
    yield device.sim.timeout(us(device.params.kernel_launch_us))
    handle = launch_kernel(
        device, fn, config, args=args, name=name, comm_factory=comm_factory
    )
    return handle
