"""The simulated MPI library: communicator, contexts, point-to-point.

Semantics follow MPI (and mpi4py's buffer interface) closely:

* ``send``/``recv`` are blocking; ``isend``/``irecv`` return
  :class:`Request` objects with ``wait``/``test``.
* Small messages use the **eager** protocol (one wire transfer, sender
  completes on injection); large messages use **rendezvous**
  (RTS → CTS → payload), with the threshold taken from
  :class:`~repro.hw.params.IbParams` — this is what produces the
  characteristic small/large message behaviour of MVAPICH2 in Figure 6.
* Matching is FIFO per (source, tag) with ``ANY_SOURCE``/``ANY_TAG``
  wildcards; non-overtaking order is preserved.
* Payloads are real NumPy arrays, snapshotted at send time and copied
  into the receive buffer at completion.

The communicator is deliberately *process-agnostic*: any simulated
process (a plain MPI rank, a DCGN communication thread, a GAS master)
may drive a rank's :class:`MpiContext`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Union

import numpy as np

from ..hw.cluster import Cluster
from ..hw.memory import HostBuffer, nbytes_of
from ..sim.core import Event, Process, Simulator, us
from ..sim.stores import FilterStore
from .datatypes import Payload, ReduceOp, payload_array, snapshot
from .errors import MpiError, RankError, TagError, TruncationError
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["Communicator", "MpiContext", "Request", "HEADER_BYTES"]

#: Size of protocol headers on the wire (match/envelope data).
HEADER_BYTES = 64

#: User tags must be below this; collectives use the space above it.
INTERNAL_TAG_BASE = 1 << 20


@dataclass
class _WireMsg:
    """A message (or RTS) sitting in a rank's matching queue."""

    kind: str  # "eager" | "rts"
    src: int
    tag: int
    nbytes: int
    data: Optional[np.ndarray] = None
    #: rendezvous: receiver fires this to grant the clear-to-send.
    cts: Optional[Event] = None
    #: rendezvous: sender fires this (with the data) after the payload lands.
    payload_arrived: Optional[Event] = None


class Request:
    """Handle for a non-blocking operation."""

    def __init__(self, proc: Process) -> None:
        self._proc = proc

    def wait(self) -> Generator[Event, Any, Any]:
        """``yield from`` until complete; returns the operation's value."""
        value = yield self._proc
        return value

    def test(self) -> bool:
        """True once the operation has completed."""
        return not self._proc.is_alive

    @property
    def event(self) -> Event:
        """The completion event (the underlying process)."""
        return self._proc


class Communicator:
    """COMM_WORLD for one job: rank→node placement + matching state.

    ``tuning`` overrides the collective-algorithm selection thresholds
    (see :class:`repro.mpi.algorithms.CollectiveTuning`); by default the
    thresholds are *autotuned* from the cluster's fabric topology and
    ``IbParams`` (:mod:`repro.mpi.algorithms.autotune`), cached per
    fabric shape.
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: Sequence[int],
        tuning: Optional["CollectiveTuning"] = None,
    ) -> None:
        from .algorithms import AlgorithmSelector
        from .algorithms.autotune import autotune_tuning
        from .algorithms.schedule import ScheduleEngine

        if not placement:
            raise MpiError("placement must name at least one rank")
        for node in placement:
            if not (0 <= node < cluster.n_nodes):
                raise RankError(f"placement node {node} out of range")
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.placement = list(placement)
        self.size = len(placement)
        self.tuning = (
            tuning if tuning is not None else autotune_tuning(cluster)
        )
        #: Per-call collective algorithm selection (collectives.py asks).
        self.selector = AlgorithmSelector(self.tuning)
        #: Nonblocking progress engine executing collective schedules.
        self.engine = ScheduleEngine(self)
        self._match: List[FilterStore] = [
            FilterStore(self.sim, name=f"mpi.match[{r}]")
            for r in range(self.size)
        ]
        self._coll_seq = [0] * self.size
        #: Operation counters for reports/tests.
        self.stats: Dict[str, int] = {}
        self._ib = cluster.spec.params.ib
        self._init_locality()

    def _init_locality(self) -> None:
        """Group ranks by the topology's locality domains.

        ``locality_groups`` (domain-ordered, ranks sorted within) feeds
        the hierarchical collectives; ``hier_capable`` says whether the
        grouping is regular enough for them (≥ 2 equal-size groups);
        ``fragmented`` says whether the rank-order ring crosses domains
        more often than a contiguous placement would — the regime where
        hierarchical schedules pay off (a contiguous ring touches each
        domain boundary once, so the flat ring is already near-optimal).
        """
        topo = self.cluster.interconnect.topology
        domains = [topo.locality_group(n) for n in self.placement]
        by_domain: Dict[int, List[int]] = {}
        for rank, dom in enumerate(domains):
            by_domain.setdefault(dom, []).append(rank)
        #: Rank groups by locality domain, ordered by domain id.
        self.locality_groups: List[List[int]] = [
            by_domain[d] for d in sorted(by_domain)
        ]
        group_sizes = {len(g) for g in self.locality_groups}
        #: True when hierarchical collectives can run on this placement.
        self.hier_capable: bool = (
            len(self.locality_groups) >= 2
            and len(group_sizes) == 1
            and group_sizes.pop() >= 2
        )
        crossings = sum(
            1
            for r in range(self.size)
            if domains[r] != domains[(r + 1) % self.size]
        )
        #: True when rank order is scattered across domains.
        self.fragmented: bool = crossings > len(self.locality_groups)

    # -- helpers -----------------------------------------------------------
    def ctx(self, rank: int) -> "MpiContext":
        """The context a process uses to act as ``rank``."""
        self._check_rank(rank)
        return MpiContext(self, rank)

    def contexts(self) -> List["MpiContext"]:
        """One context per rank, in rank order."""
        return [self.ctx(r) for r in range(self.size)]

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return self.placement[rank]

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} out of range [0,{self.size})")

    def _check_tag(self, tag: int) -> None:
        if tag < 0 or tag >= INTERNAL_TAG_BASE:
            raise TagError(f"user tag {tag} out of range")

    def _count(self, op: str) -> None:
        self.stats[op] = self.stats.get(op, 0) + 1

    def _sw(self) -> Event:
        """Per-call software overhead."""
        return self.sim.timeout(us(self._ib.sw_overhead_us))

    # -- wire primitives -----------------------------------------------------
    def _wire(
        self, src_rank: int, dst_rank: int, nbytes: int
    ) -> Generator[Event, Any, float]:
        t = yield from self.cluster.interconnect.transfer(
            self.placement[src_rank], self.placement[dst_rank], nbytes
        )
        return t

    # -- point-to-point (internal, tag-space-unchecked) -------------------
    def _send_impl(
        self,
        src: int,
        dst: int,
        buf: Payload,
        tag: int,
    ) -> Generator[Event, Any, None]:
        yield self._sw()
        nbytes = nbytes_of(buf) if buf is not None else 0
        data = snapshot(buf)
        self.sim.trace("mpi.send", src=src, dst=dst, tag=tag, nbytes=nbytes)
        if nbytes <= self._ib.eager_threshold:
            yield from self._wire(src, dst, nbytes + HEADER_BYTES)
            self._match[dst].put(
                _WireMsg("eager", src=src, tag=tag, nbytes=nbytes, data=data)
            )
            return
        # Rendezvous: RTS -> (receiver matches, sends CTS) -> payload.
        cts = self.sim.event(name=f"cts({src}->{dst})")
        arrived = self.sim.event(name=f"payload({src}->{dst})")
        yield from self._wire(src, dst, HEADER_BYTES)
        self._match[dst].put(
            _WireMsg(
                "rts",
                src=src,
                tag=tag,
                nbytes=nbytes,
                data=data,
                cts=cts,
                payload_arrived=arrived,
            )
        )
        yield cts
        yield from self._wire(src, dst, nbytes)
        arrived.succeed(data)

    def _recv_impl(
        self,
        me: int,
        src: int,
        buf: Payload,
        tag: int,
    ) -> Generator[Event, Any, Status]:
        yield self._sw()

        def matches(m: _WireMsg) -> bool:
            if src != ANY_SOURCE and m.src != src:
                return False
            if tag != ANY_TAG and m.tag != tag:
                return False
            return True

        msg: _WireMsg = yield self._match[me].get(matches)
        if msg.kind == "rts":
            # Grant the clear-to-send, then wait for the payload.
            yield from self._wire(me, msg.src, HEADER_BYTES)
            msg.cts.succeed(None)
            data = yield msg.payload_arrived
        else:
            data = msg.data
        self._deliver(buf, data, msg.nbytes)
        self.sim.trace(
            "mpi.recv", me=me, src=msg.src, tag=msg.tag, nbytes=msg.nbytes
        )
        return Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes)

    @staticmethod
    def _deliver(buf: Payload, data: Optional[np.ndarray], nbytes: int) -> None:
        arr = payload_array(buf)
        if arr is None:
            return  # timing-only receive
        if data is None:
            return
        dview = arr.view(np.uint8).reshape(-1)
        sview = data.view(np.uint8).reshape(-1)
        if sview.size > dview.size:
            raise TruncationError(
                f"message of {sview.size} B exceeds recv buffer "
                f"of {dview.size} B"
            )
        dview[: sview.size] = sview


class MpiContext:
    """Rank-bound facade: what an MPI process calls.

    All communication methods are generators (``yield from`` them inside a
    simulated process).
    """

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.sim = comm.sim

    # -- identity -----------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def node_id(self) -> int:
        return self.comm.node_of(self.rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MpiContext rank={self.rank}/{self.size}>"

    # -- blocking p2p ------------------------------------------------------
    def send(
        self, buf: Payload, dest: int, tag: int = 0
    ) -> Generator[Event, Any, None]:
        """Blocking send (eager: completes on injection)."""
        self.comm._check_rank(dest)
        self.comm._check_tag(tag)
        self.comm._count("send")
        yield from self.comm._send_impl(self.rank, dest, buf, tag)

    def recv(
        self,
        buf: Payload,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        """Blocking receive into ``buf``; returns a :class:`Status`."""
        if source != ANY_SOURCE:
            self.comm._check_rank(source)
        if tag != ANY_TAG:
            self.comm._check_tag(tag)
        self.comm._count("recv")
        status = yield from self.comm._recv_impl(self.rank, source, buf, tag)
        return status

    # -- non-blocking p2p ------------------------------------------------
    def isend(self, buf: Payload, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; payload snapshotted immediately."""
        self.comm._check_rank(dest)
        self.comm._check_tag(tag)
        self.comm._count("isend")
        data = snapshot(buf)
        nbytes = nbytes_of(buf) if buf is not None else 0

        def runner():
            yield from self.comm._send_impl(self.rank, dest, data if data is not None else nbytes, tag)

        return Request(
            self.sim.process(runner(), name=f"isend(r{self.rank}->r{dest})")
        )

    def irecv(
        self,
        buf: Payload,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Request:
        """Non-blocking receive."""
        if source != ANY_SOURCE:
            self.comm._check_rank(source)
        if tag != ANY_TAG:
            self.comm._check_tag(tag)
        self.comm._count("irecv")

        def runner():
            status = yield from self.comm._recv_impl(
                self.rank, source, buf, tag
            )
            return status

        return Request(
            self.sim.process(runner(), name=f"irecv(r{self.rank}<-{source})")
        )

    # -- combined p2p ------------------------------------------------------
    def sendrecv(
        self,
        sendbuf: Payload,
        dest: int,
        recvbuf: Payload,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        """Simultaneous send+receive (deadlock-free)."""
        self.comm._count("sendrecv")
        sreq = self.isend(sendbuf, dest, sendtag)
        status = yield from self.recv(recvbuf, source, recvtag)
        yield from sreq.wait()
        return status

    def sendrecv_replace(
        self,
        buf: Payload,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        """The ``MPI_Sendrecv_replace`` used by Cannon's algorithm."""
        self.comm._count("sendrecv_replace")
        status = yield from self.sendrecv(
            buf, dest, buf, source, sendtag, recvtag
        )
        return status

    # -- collectives (implementations in .collectives) --------------------
    def barrier(self) -> Generator[Event, Any, None]:
        """Dissemination barrier across all ranks."""
        from . import collectives as c

        yield from c.barrier(self)

    def bcast(self, buf: Payload, root: int = 0) -> Generator[Event, Any, None]:
        """Topology-adaptive broadcast (binomial or hierarchical)."""
        from . import collectives as c

        yield from c.bcast(self, buf, root=root)

    def reduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """Binomial-tree reduction to the root."""
        from . import collectives as c

        yield from c.reduce(self, sendbuf, recvbuf, op=op, root=root)

    def allreduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
    ) -> Generator[Event, Any, None]:
        """Reduce + broadcast."""
        from . import collectives as c

        yield from c.allreduce(self, sendbuf, recvbuf, op=op)

    def gather(
        self,
        sendbuf: Payload,
        recvbufs: Optional[Sequence[Payload]] = None,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """Gather per-rank buffers at the root (vector variant included).

        Non-root ranks may omit ``recvbufs`` (as in mpi4py).
        """
        from . import collectives as c

        yield from c.gather(self, sendbuf, recvbufs, root=root)

    def scatter(
        self,
        sendbufs: Optional[Sequence[Payload]],
        recvbuf: Payload,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """Scatter per-rank buffers from the root (vector variant included)."""
        from . import collectives as c

        yield from c.scatter(self, sendbufs, recvbuf, root=root)

    def allgather(
        self, sendbuf: Payload, recvbufs: Sequence[Payload]
    ) -> Generator[Event, Any, None]:
        """Ring allgather."""
        from . import collectives as c

        yield from c.allgather(self, sendbuf, recvbufs)

    def alltoall(
        self, sendbufs: Sequence[Payload], recvbufs: Sequence[Payload]
    ) -> Generator[Event, Any, None]:
        """Pairwise-exchange all-to-all."""
        from . import collectives as c

        yield from c.alltoall(self, sendbufs, recvbufs)

    # -- nonblocking collectives (MPI-3 style) -----------------------------
    # Each returns a :class:`Request` immediately; the collective's
    # schedule progresses in the background (the communicator's
    # ScheduleEngine) while this rank keeps computing.  As in real MPI,
    # all ranks must issue their collectives in the same order — the
    # algorithm and tag block are claimed synchronously at call time.
    def ibarrier(self) -> Request:
        """Nonblocking dissemination barrier."""
        from . import collectives as c

        return c.ibarrier(self)

    def ibcast(self, buf: Payload, root: int = 0) -> Request:
        """Nonblocking broadcast."""
        from . import collectives as c

        return c.ibcast(self, buf, root=root)

    def ireduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
        root: int = 0,
    ) -> Request:
        """Nonblocking reduction to the root."""
        from . import collectives as c

        return c.ireduce(self, sendbuf, recvbuf, op=op, root=root)

    def iallreduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
    ) -> Request:
        """Nonblocking allreduce."""
        from . import collectives as c

        return c.iallreduce(self, sendbuf, recvbuf, op=op)

    def iallgather(
        self, sendbuf: Payload, recvbufs: Sequence[Payload]
    ) -> Request:
        """Nonblocking allgather."""
        from . import collectives as c

        return c.iallgather(self, sendbuf, recvbufs)

    def ialltoall(
        self, sendbufs: Sequence[Payload], recvbufs: Sequence[Payload]
    ) -> Request:
        """Nonblocking all-to-all."""
        from . import collectives as c

        return c.ialltoall(self, sendbufs, recvbufs)

    def igather(
        self,
        sendbuf: Payload,
        recvbufs: Optional[Sequence[Payload]] = None,
        root: int = 0,
    ) -> Request:
        """Nonblocking linear gather."""
        from . import collectives as c

        return c.igather(self, sendbuf, recvbufs, root=root)

    def iscatter(
        self,
        sendbufs: Optional[Sequence[Payload]],
        recvbuf: Payload,
        root: int = 0,
    ) -> Request:
        """Nonblocking linear scatter."""
        from . import collectives as c

        return c.iscatter(self, sendbufs, recvbuf, root=root)
