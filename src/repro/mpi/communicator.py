"""The simulated MPI library: communicator, groups, contexts, p2p.

Semantics follow MPI (and mpi4py's buffer interface) closely:

* ``send``/``recv`` are blocking; ``isend``/``irecv`` return
  :class:`Request` objects with ``wait``/``test``.
* Small messages use the **eager** protocol (one wire transfer, sender
  completes on injection); large messages use **rendezvous**
  (RTS → CTS → payload), with the threshold taken from
  :class:`~repro.hw.params.IbParams` — this is what produces the
  characteristic small/large message behaviour of MVAPICH2 in Figure 6.
* Matching is FIFO per (source, tag) with ``ANY_SOURCE``/``ANY_TAG``
  wildcards; non-overtaking order is preserved.
* Payloads are real NumPy arrays, snapshotted at send time and copied
  into the receive buffer at completion.
* Communicators are **derivable**: :meth:`Communicator.split` /
  :meth:`~Communicator.split_type` / :meth:`~Communicator.dup` /
  :meth:`~Communicator.create` build sub-communicators over
  :class:`~repro.mpi.group.Group`\\ s of ranks.  Every derived
  communicator owns its own matching stores, tag space,
  :class:`~repro.mpi.algorithms.schedule.ScheduleEngine` and autotuned
  :class:`~repro.mpi.algorithms.CollectiveTuning` (derived from the
  *sub-fabric* its nodes span — an intra-pod communicator tunes for
  pod-local α/β), so collectives on disjoint sub-communicators overlap
  on the wire without tag coordination.

The communicator is deliberately *process-agnostic*: any simulated
process (a plain MPI rank, a DCGN communication thread, a GAS master)
may drive a rank's :class:`MpiContext`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..hw.cluster import Cluster
from ..hw.memory import HostBuffer, nbytes_of
from ..sim.core import Event, Process, Simulator, us
from ..sim.stores import FilterStore
from .datatypes import AdoptBuf, Payload, ReduceOp, payload_array, snapshot
from .errors import MpiError, RankError, TagError, TruncationError
from .group import Group, UNDEFINED
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = [
    "Communicator",
    "MpiContext",
    "Request",
    "HEADER_BYTES",
    "COMM_TYPE_NODE",
    "COMM_TYPE_LOCALITY",
]

#: Size of protocol headers on the wire (match/envelope data).
HEADER_BYTES = 64

#: User tags must be below this; collectives use the space above it.
INTERNAL_TAG_BASE = 1 << 20

#: ``split_type`` kinds: ranks sharing a node / a topology locality
#: domain (a fat-tree pod, a torus row) land in the same communicator.
COMM_TYPE_NODE = "node"
COMM_TYPE_LOCALITY = "locality"


@dataclass
class _WireMsg:
    """A message (or RTS) sitting in a rank's matching queue."""

    kind: str  # "eager" | "rts"
    src: int
    tag: int
    nbytes: int
    data: Optional[np.ndarray] = None
    #: rendezvous: receiver fires this to grant the clear-to-send.
    cts: Optional[Event] = None
    #: rendezvous: sender fires this (with the data) after the payload lands.
    payload_arrived: Optional[Event] = None
    #: the payload array is private to the wire (defensive copy or a
    #: donated builder-local array) — the receiver may adopt it outright.
    private: bool = False
    #: observability: sid of the sender's span, so the receiver's wait
    #: span can link to it (critical-path edge across tracks).
    span: Optional[int] = None


class Request:
    """Handle for a non-blocking operation.

    Wraps the operation's completion — a spawned :class:`Process` on
    the exact path, or a bare :class:`Event` scheduled by an analytic
    pricer (one-sided fast path).
    """

    def __init__(self, proc: Event) -> None:
        self._proc = proc

    def wait(self) -> Generator[Event, Any, Any]:
        """``yield from`` until complete; returns the operation's value."""
        value = yield self._proc
        return value

    def test(self) -> bool:
        """True once the operation has completed."""
        ev = self._proc
        if isinstance(ev, Process):
            return not ev.is_alive
        return ev.processed

    @property
    def event(self) -> Event:
        """The completion event (the underlying process)."""
        return self._proc


class Communicator:
    """A communicator: rank→node placement + matching state.

    Built directly over a cluster it is the job's COMM_WORLD; built via
    :meth:`split` / :meth:`split_type` / :meth:`dup` / :meth:`create`
    it is a *derived* communicator over a :class:`Group` of the
    parent's ranks, with its own tag space, matching stores, schedule
    engine and per-sub-fabric autotuned thresholds.

    ``tuning`` overrides the collective-algorithm selection thresholds
    (see :class:`repro.mpi.algorithms.CollectiveTuning`); by default the
    thresholds are *autotuned* from the fabric the communicator's nodes
    actually span (:mod:`repro.mpi.algorithms.autotune`), cached per
    sub-fabric profile — so an intra-pod communicator tunes for
    pod-local α/β while its parent tunes for the whole machine.  An
    explicit ``tuning`` is inherited by derived communicators.
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: Sequence[int],
        tuning: Optional["CollectiveTuning"] = None,
        parent: Optional["Communicator"] = None,
        world_ranks: Optional[Sequence[int]] = None,
        name: str = "world",
        backend: str = "exact",
    ) -> None:
        from .algorithms import AlgorithmSelector
        from .algorithms.autotune import autotune_tuning
        from .algorithms.fastpath import FastPathEngine
        from .algorithms.schedule import ScheduleEngine

        if not placement:
            raise MpiError("placement must name at least one rank")
        for node in placement:
            if not (0 <= node < cluster.n_nodes):
                raise RankError(f"placement node {node} out of range")
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.placement = list(placement)
        self.size = len(placement)
        #: Parent communicator (None for a world communicator).
        self.parent = parent
        #: The root (world) communicator this one ultimately derives from.
        self.root_comm: "Communicator" = (
            parent.root_comm if parent is not None else self
        )
        #: Local rank → rank in the root communicator (identity at root).
        self.world_ranks: Tuple[int, ...] = (
            tuple(range(self.size))
            if world_ranks is None
            else tuple(int(w) for w in world_ranks)
        )
        if len(self.world_ranks) != self.size:
            raise MpiError("world_ranks must match the placement length")
        self._world_index = {w: r for r, w in enumerate(self.world_ranks)}
        self.name = name
        #: The tuning *argument* (None = autotune); derived communicators
        #: inherit an explicit tuning, else autotune their sub-fabric.
        self._tuning_arg = tuning
        if tuning is not None:
            self.tuning = tuning
        elif parent is None:
            self.tuning = autotune_tuning(cluster)
        else:
            self.tuning = autotune_tuning(
                cluster, nodes=tuple(self.placement)
            )
        #: Per-call collective algorithm selection (collectives.py asks).
        self.selector = AlgorithmSelector(self.tuning)
        if backend not in ("exact", "analytic", "pricing"):
            raise MpiError(
                f"unknown execution backend {backend!r}; "
                "use 'exact', 'analytic' or 'pricing'"
            )
        #: Collective execution backend: ``"exact"`` simulates every
        #: packet; ``"analytic"`` prices whole schedules from the fabric
        #: profile (:class:`~repro.mpi.algorithms.fastpath.FastPathEngine`)
        #: while still moving data bit-exactly; ``"pricing"`` prices only
        #: — collective receive buffers are left untouched, which is what
        #: the large-P benchmark sweeps use.  Algorithm *selection* is
        #: identical in all three.
        self.backend = backend
        #: Nonblocking progress engine executing collective schedules.
        self.engine = (
            ScheduleEngine(self) if backend == "exact"
            else FastPathEngine(self, price_only=(backend == "pricing"))
        )
        self._match: List[FilterStore] = [
            FilterStore(self.sim, name=f"mpi.match[{name}:{r}]")
            for r in range(self.size)
        ]
        self._coll_seq = [0] * self.size
        #: Per-rank counters sequencing collective ``split`` calls.
        self._split_seq = [0] * self.size
        #: Lazily-built rank → span-track cache (:meth:`span_track` is on
        #: the traced p2p hot path; formatting the name once per rank
        #: instead of once per message keeps tracing cheap).
        self._span_tracks: Dict[int, str] = {}
        #: Peer → interned span-name caches for the traced p2p wire
        #: protocol ("send->7", "recv<-3", ...) — same rationale as
        #: ``_span_tracks``: pay the f-string once per peer, not once
        #: per message.
        self._send_names: Dict[int, str] = {}
        self._recv_names: Dict[int, str] = {}
        self._rndv_names: Dict[Tuple[str, int], str] = {}
        #: split seq → (per-rank sub-communicators, retrievals left).
        self._split_built: Dict[int, Tuple[List, int]] = {}
        self._hier: Optional[_HierComms] = None
        #: True once :meth:`free` ran; every subsequent use raises.
        self._freed = False
        #: Ranks that have completed the collective :meth:`MpiContext.free`.
        self._free_calls = 0
        #: Point-to-point operations currently inside the wire protocol
        #: (the collective free drains these before releasing state).
        self._inflight_ops = 0
        #: Per-rank counters sequencing collective window creations.
        self._win_seq = [0] * self.size
        #: win seq → per-rank deposited local buffers.
        self._win_deposits: Dict[int, Dict[int, Any]] = {}
        #: win seq → (shared Window, retrievals left).
        self._win_built: Dict[int, Tuple[Any, int]] = {}
        #: Windows ever created over this communicator (id allocation).
        self._win_count = 0
        #: Live (not yet freed) windows exposed over this communicator;
        #: :meth:`free` refuses while any remain (a landing RMA transfer
        #: would write through released state).
        self._windows: List[Any] = []
        #: Operation counters for reports/tests.
        self.stats: Dict[str, int] = {}
        self._ib = cluster.spec.params.ib
        self._init_locality()

    def _init_locality(self) -> None:
        """Group ranks by the topology's locality domains.

        ``locality_groups`` (domain-ordered, ranks sorted within) feeds
        the hierarchical collectives; ``hier_capable`` says whether the
        grouping offers any hierarchy to exploit (≥ 2 groups, at least
        one of them non-trivial — sizes may differ, the sub-communicator
        composition handles unequal pods); ``fragmented`` says whether
        the rank-order ring crosses domains more often than a contiguous
        placement would — the regime where hierarchical schedules pay
        off (a contiguous ring touches each domain boundary once, so
        the flat ring is already near-optimal).
        """
        topo = self.cluster.interconnect.topology
        domains = [topo.locality_group(n) for n in self.placement]
        by_domain: Dict[int, List[int]] = {}
        for rank, dom in enumerate(domains):
            by_domain.setdefault(dom, []).append(rank)
        #: Rank groups by locality domain, ordered by domain id.
        self.locality_groups: List[List[int]] = [
            by_domain[d] for d in sorted(by_domain)
        ]
        #: True when hierarchical collectives can run on this placement.
        self.hier_capable: bool = (
            len(self.locality_groups) >= 2
            and max(len(g) for g in self.locality_groups) >= 2
        )
        crossings = sum(
            1
            for r in range(self.size)
            if domains[r] != domains[(r + 1) % self.size]
        )
        #: True when rank order is scattered across domains.
        self.fragmented: bool = crossings > len(self.locality_groups)

    # -- lifetime ----------------------------------------------------------
    def _ensure_alive(self) -> None:
        if self._freed:
            raise MpiError(
                f"communicator {self.name!r} has been freed "
                "(MPI_Comm_free); operations on it are erroneous"
            )

    def live_windows(self) -> List[Any]:
        """Windows created over this communicator and not yet freed."""
        return [w for w in self._windows if not w._freed]

    def free(self, force: bool = False) -> None:
        """``MPI_Comm_free`` for a *derived* communicator (driver-level;
        simulated ranks use the collective :meth:`MpiContext.free`).

        Releases the heavy per-communicator state — matching stores,
        schedule engine, split/window bookkeeping, the hierarchical
        sub-communicator bundle — so long split-heavy runs keep bounded
        memory.  The communicator is unusable afterwards: any operation
        raises :class:`~repro.mpi.errors.MpiError`.  World communicators
        cannot be freed.

        Freeing while one-sided windows are still live is erroneous (as
        in MPI): an RMA transfer landing after the release would write
        through freed state, so this raises unless ``force=True``.
        **Force-free semantics:** ``force`` severs the live windows —
        each is marked freed without completing its in-flight
        operations, every later operation on it raises — and then
        releases the communicator.  It is a teardown escape hatch
        (tests, error recovery), not a substitute for the orderly
        ``WinContext.free`` → ``free`` sequence.
        """
        self._ensure_alive()
        if self.parent is None:
            raise MpiError("cannot free a world communicator")
        self._release_checked(force)

    def release(self, force: bool = False) -> None:
        """Driver-level teardown that — unlike :meth:`free` — is allowed
        on **world** communicators.

        ``MPI_Comm_free`` refusing the world communicator is the right
        *rank-level* rule, but it left drivers that churn whole jobs
        (the serving scheduler's per-job worlds, repeated
        ``MpiJob``/``DcgnRuntime`` builds on one long-lived cluster)
        with no way to drop a retired world's matching stores, schedule
        engine and window bookkeeping — thousands of job churns grew
        memory without bound.  ``release`` is the ``MPI_Finalize``
        analogue: quiescence is required (no in-flight operations, and
        live windows refuse unless ``force=True`` severs them, exactly
        as in :meth:`free`), then the state drops.  Derived
        communicators may also use it; it behaves like :meth:`free`.
        """
        self._ensure_alive()
        self._release_checked(force)

    def _release_checked(self, force: bool) -> None:
        live = self.live_windows()
        if live and not force:
            names = ", ".join(repr(w.name) for w in live)
            raise MpiError(
                f"cannot free communicator {self.name!r} with live "
                f"window(s) {names}; free them first (WinContext.free) "
                "or pass force=True to sever them"
            )
        if self._inflight_ops or self.engine.active:
            raise MpiError(
                f"cannot free communicator {self.name!r} with "
                "operations in flight (use the collective "
                "MpiContext.free, which drains them)"
            )
        for w in live:
            w._freed = True
        self._free_now()

    def _free_now(self) -> None:
        """Release state (idempotent entry for the collective free)."""
        if self._freed:
            return
        self._freed = True
        # Recursively retire the derived communicators the hierarchical
        # bundle holds — they are unreachable once self is freed.
        hier = self._hier
        self._hier = None
        if hier is not None:
            for sub in hier.children():
                if sub is not None and not sub._freed:
                    sub._free_now()
        self._match.clear()
        self._split_built.clear()
        self._win_deposits.clear()
        self._win_built.clear()
        self._windows.clear()
        self.engine = None
        self._count_unchecked("comm_free")

    # -- groups and derived communicators ----------------------------------
    @property
    def group(self) -> Group:
        """This communicator's members as a :class:`Group` of world ids."""
        return Group(self.world_ranks)

    def rank_of_world(self, world_id: int) -> int:
        """Local rank of a world process id (UNDEFINED if absent)."""
        return self._world_index.get(int(world_id), UNDEFINED)

    def _derive(
        self, world_ranks: Sequence[int], name: str
    ) -> "Communicator":
        root = self.root_comm
        placement = [root.placement[w] for w in world_ranks]
        return Communicator(
            self.cluster,
            placement,
            tuning=self._tuning_arg,
            parent=self,
            world_ranks=world_ranks,
            name=name,
            backend=self.backend,
        )

    def split(
        self,
        colors: Sequence[int],
        keys: Optional[Sequence[int]] = None,
    ) -> List[Optional["Communicator"]]:
        """``MPI_Comm_split`` with the whole color/key vector in hand.

        ``colors[r]`` / ``keys[r]`` are what rank ``r`` would pass;
        ranks with color :data:`~repro.mpi.group.UNDEFINED` opt out.
        Returns one entry per rank: its new communicator (shared between
        the ranks of one color) or ``None``.  Ranks order within each
        new communicator by (key, parent rank).  This is the
        deterministic driver-level constructor; simulated ranks use the
        collective :meth:`MpiContext.split`, which exchanges the
        color/key pairs over the wire and lands here.
        """
        if len(colors) != self.size:
            raise MpiError("split needs one color per rank")
        if keys is None:
            keys = [0] * self.size
        if len(keys) != self.size:
            raise MpiError("split needs one key per rank")
        by_color: Dict[int, List[int]] = {}
        for r in range(self.size):
            color = int(colors[r])
            if color == UNDEFINED:
                continue
            if color < 0:
                raise MpiError(
                    f"split color must be >= 0 or UNDEFINED, got {color}"
                )
            by_color.setdefault(color, []).append(r)
        comms: Dict[int, Communicator] = {}
        for color, members in by_color.items():
            members.sort(key=lambda r: (int(keys[r]), r))
            comms[color] = self._derive(
                [self.world_ranks[r] for r in members],
                name=f"{self.name}/split{color}",
            )
        self._count("comm_split")
        return [
            comms[int(colors[r])] if int(colors[r]) != UNDEFINED else None
            for r in range(self.size)
        ]

    def split_type(
        self, kind: str, keys: Optional[Sequence[int]] = None
    ) -> List["Communicator"]:
        """Topology-aware split: one communicator per node
        (:data:`COMM_TYPE_NODE`) or per fabric locality domain
        (:data:`COMM_TYPE_LOCALITY` — a fat-tree pod, a torus row),
        colors derived from the placement and
        :meth:`~repro.hw.topology.base.Topology.locality_group`.
        """
        return self.split(self._type_colors(kind), keys)

    def _type_colors(self, kind: str) -> List[int]:
        if kind == COMM_TYPE_NODE:
            return list(self.placement)
        if kind == COMM_TYPE_LOCALITY:
            topo = self.cluster.interconnect.topology
            return [topo.locality_group(n) for n in self.placement]
        raise MpiError(
            f"unknown split_type kind {kind!r}; use COMM_TYPE_NODE or "
            f"COMM_TYPE_LOCALITY"
        )

    def dup(self) -> "Communicator":
        """A congruent communicator: same members, fresh tag space."""
        self._count("comm_dup")
        return self._derive(self.world_ranks, name=f"{self.name}/dup")

    def create(self, group: Group) -> Optional["Communicator"]:
        """``MPI_Comm_create``: a communicator over ``group``'s members
        (which must all belong to this communicator); ``None`` for the
        empty group."""
        for w in group.members:
            if w not in self._world_index:
                raise MpiError(
                    f"group member {w} is not part of communicator "
                    f"{self.name!r}"
                )
        if group.size == 0:
            return None
        self._count("comm_create")
        return self._derive(group.members, name=f"{self.name}/create")

    def hier_comms(self) -> "_HierComms":
        """The derived-communicator bundle hierarchical collectives run
        on: an intra-domain communicator per locality group, a leader
        communicator (first member of each group), and — when every
        group has the same size — one *peer* communicator per member
        index (member *i* of every domain), which is what the
        bandwidth-optimal equal-pod allreduce rings over.  Built lazily
        on first use and cached; construction itself is free, like the
        implicit world communicator.
        """
        if self._hier is None:
            groups = self.locality_groups
            dom_of = [0] * self.size
            member_idx = [0] * self.size
            for gi, g in enumerate(groups):
                for mi, r in enumerate(g):
                    dom_of[r] = gi
                    member_idx[r] = mi
            intra = self.split(dom_of)
            leader_ranks = [g[0] for g in groups]
            leader = self.create(self.group.incl(leader_ranks))
            sizes = {len(g) for g in groups}
            peers: Optional[List[Optional[Communicator]]] = None
            if len(sizes) == 1 and len(groups[0]) >= 2 and len(groups) >= 2:
                peers = self.split(member_idx, keys=dom_of)
            # Locality-contiguous reordering of the whole communicator:
            # neighbor schedules (rings) on it cross each domain
            # boundary exactly once per step, uncontended — the general
            # any-pod-size fallback.
            reordered = self.split([0] * self.size, keys=dom_of)
            self._hier = _HierComms(
                comm=self,
                intra=intra,
                leader=leader,
                peers=peers,
                reordered=reordered,
                dom_of=dom_of,
                member_idx=member_idx,
                leader_ranks=leader_ranks,
            )
        return self._hier

    # -- collective-split bookkeeping (MpiContext.split lands here) --------
    def _split_claim(self, rank: int) -> int:
        seq = self._split_seq[rank]
        self._split_seq[rank] += 1
        return seq

    def _split_result(
        self, seq: int, rank: int, pairs: Sequence[Tuple[int, int]]
    ) -> Optional["Communicator"]:
        """Per-rank pickup of a collective split's result.

        The first rank whose color/key exchange completes constructs
        the sub-communicators (deterministically — every rank gathered
        identical pairs); later ranks reuse them.  State is dropped
        once every rank has picked up.
        """
        entry = self._split_built.get(seq)
        if entry is None:
            built = self.split([p[0] for p in pairs], [p[1] for p in pairs])
            entry = (built, self.size)
            self._split_built[seq] = entry
        built, remaining = entry
        remaining -= 1
        if remaining == 0:
            del self._split_built[seq]
        else:
            self._split_built[seq] = (built, remaining)
        return built[rank]

    # -- collective-window bookkeeping (MpiContext.win_create lands here) --
    def _win_claim(self, rank: int) -> int:
        seq = self._win_seq[rank]
        self._win_seq[rank] += 1
        return seq

    def _win_deposit(self, seq: int, rank: int, buf: Any) -> None:
        self._win_deposits.setdefault(seq, {})[rank] = buf

    def _win_result(self, seq: int, rank: int, coalesce: bool = False) -> Any:
        """Per-rank pickup of a collective window creation.

        The first rank whose size exchange completes constructs the
        shared :class:`~repro.mpi.rma.Window` from the deposited
        buffers (every rank deposited before entering the exchange);
        later ranks reuse it.  State is dropped once all have picked up.
        ``coalesce`` must match across ranks (a collective argument).
        """
        entry = self._win_built.get(seq)
        if entry is None:
            from .rma import Window

            deposits = self._win_deposits.pop(seq)
            bufs = [deposits.get(r) for r in range(self.size)]
            entry = (Window(self, bufs, coalesce=coalesce), self.size)
            self._win_built[seq] = entry
        win, remaining = entry
        remaining -= 1
        if remaining == 0:
            del self._win_built[seq]
        else:
            self._win_built[seq] = (win, remaining)
        return win

    # -- helpers -----------------------------------------------------------
    def ctx(self, rank: int) -> "MpiContext":
        """The context a process uses to act as ``rank``."""
        self._ensure_alive()
        self._check_rank(rank)
        return MpiContext(self, rank)

    def contexts(self) -> List["MpiContext"]:
        """One context per rank, in rank order."""
        return [self.ctx(r) for r in range(self.size)]

    def node_of(self, rank: int) -> int:
        self._check_rank(rank)
        return self.placement[rank]

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} out of range [0,{self.size})")

    def _check_tag(self, tag: int) -> None:
        if tag < 0 or tag >= INTERNAL_TAG_BASE:
            raise TagError(f"user tag {tag} out of range")

    def _count(self, op: str) -> None:
        self._ensure_alive()
        self.stats[op] = self.stats.get(op, 0) + 1

    def _count_unchecked(self, op: str) -> None:
        self.stats[op] = self.stats.get(op, 0) + 1

    def _sw(self) -> Event:
        """Per-call software overhead."""
        return self.sim.timeout(us(self._ib.sw_overhead_us))

    def span_track(self, rank: int) -> str:
        """Observability track for a local rank.

        Tracks live in the *root* communicator's rank space so a
        hierarchical collective's sub-communicator traffic lands on the
        owning rank's track rather than scattering per derived
        communicator.
        """
        track = self._span_tracks.get(rank)
        if track is None:
            track = f"{self.root_comm.name}.r{self.world_ranks[rank]}"
            self._span_tracks[rank] = track
        return track

    def _rndv_name(self, prefix: str, peer: int) -> str:
        """Interned span name for a rendezvous protocol leg."""
        key = (prefix, peer)
        name = self._rndv_names.get(key)
        if name is None:
            name = self._rndv_names[key] = prefix + str(peer)
        return name

    # -- wire primitives -----------------------------------------------------
    def _wire(
        self, src_rank: int, dst_rank: int, nbytes: int
    ) -> Generator[Event, Any, float]:
        t = yield from self.cluster.interconnect.transfer(
            self.placement[src_rank], self.placement[dst_rank], nbytes
        )
        return t

    # -- point-to-point (internal, tag-space-unchecked) -------------------
    def _send_impl(
        self,
        src: int,
        dst: int,
        buf: Payload,
        tag: int,
        copy: bool = True,
        donate: bool = False,
    ) -> Generator[Event, Any, None]:
        self._ensure_alive()
        self._inflight_ops += 1
        spans = self.sim.spans
        # Inlined span_track cache hit — one dict probe instead of a
        # method call on every traced message.
        track = "" if spans is None else (
            self._span_tracks.get(src) or self.span_track(src)
        )
        try:
            if spans is not None:
                # Traced branches read the slot directly: the ``now``
                # property costs real time at this call rate.
                t0 = self.sim._now
                yield self._sw()
                spans.complete(t0, self.sim._now, "sw", "overhead", track)
            else:
                yield self._sw()
            nbytes = nbytes_of(buf) if buf is not None else 0
            data = snapshot(buf, copy=copy)
            if data is not None:
                if copy:
                    self.sim.stats.payload_copies += 1
                else:
                    self.sim.stats.payload_views += 1
            # A defensive copy is private by construction; a donated
            # zero-copy view is private by the builder's promise (the
            # sender will never write the array again before the
            # receiver consumes it).  Either way the receiver may adopt
            # the array instead of memcpying it out.
            private = copy or donate
            self.sim.trace(
                "mpi.send", src=src, dst=dst, tag=tag, nbytes=nbytes
            )
            if nbytes <= self._ib.eager_threshold:
                if spans is not None:
                    # The sid is stamped into the wire message (the
                    # receiver's wait span links to it), so reserve it
                    # up front and record the span retrospectively.
                    sid = spans.alloc_sid()
                    t0 = self.sim._now
                    yield from self._wire(src, dst, nbytes + HEADER_BYTES)
                    self._match[dst].put(
                        _WireMsg(
                            "eager", src=src, tag=tag, nbytes=nbytes,
                            data=data, private=private, span=sid,
                        )
                    )
                    name = self._send_names.get(dst)
                    if name is None:
                        name = self._send_names[dst] = f"send->{dst}"
                    spans.complete(
                        t0, self.sim._now, name, "p2p.send", track,
                        None, None,
                        {"nbytes": nbytes, "tag": tag, "proto": "eager"},
                        sid,
                    )
                else:
                    yield from self._wire(src, dst, nbytes + HEADER_BYTES)
                    self._match[dst].put(
                        _WireMsg(
                            "eager", src=src, tag=tag, nbytes=nbytes,
                            data=data, private=private,
                        )
                    )
                return
            # Rendezvous: RTS -> (receiver matches, sends CTS) -> payload.
            cts = self.sim.event(name=f"cts({src}->{dst})")
            arrived = self.sim.event(name=f"payload({src}->{dst})")
            if spans is not None:
                sid = spans.alloc_sid()
                t0 = self.sim._now
                yield from self._wire(src, dst, HEADER_BYTES)
                self._match[dst].put(
                    _WireMsg(
                        "rts", src=src, tag=tag, nbytes=nbytes, data=data,
                        cts=cts, payload_arrived=arrived, private=private,
                        span=sid,
                    )
                )
                spans.complete(
                    t0, self.sim._now, self._rndv_name("rts->", dst),
                    "p2p.send", track, None, None,
                    {"nbytes": nbytes, "tag": tag, "proto": "rndv"}, sid,
                )
                t0 = self.sim._now
                yield cts
                spans.complete(
                    t0, self.sim._now, self._rndv_name("cts<-", dst),
                    "p2p.wait", track,
                )
                t0 = self.sim._now
                yield from self._wire(src, dst, nbytes)
                arrived.succeed(data)
                spans.complete(
                    t0, self.sim._now, self._rndv_name("payload->", dst),
                    "p2p.send", track, None, None,
                    {"nbytes": nbytes, "proto": "rndv"},
                )
            else:
                yield from self._wire(src, dst, HEADER_BYTES)
                self._match[dst].put(
                    _WireMsg(
                        "rts", src=src, tag=tag, nbytes=nbytes, data=data,
                        cts=cts, payload_arrived=arrived, private=private,
                    )
                )
                yield cts
                yield from self._wire(src, dst, nbytes)
                arrived.succeed(data)
        finally:
            self._inflight_ops -= 1

    def _recv_impl(
        self,
        me: int,
        src: int,
        buf: Payload,
        tag: int,
    ) -> Generator[Event, Any, Status]:
        self._ensure_alive()
        self._inflight_ops += 1
        spans = self.sim.spans
        track = "" if spans is None else (
            self._span_tracks.get(me) or self.span_track(me)
        )
        try:
            if spans is not None:
                # Traced branches read the slot directly: the ``now``
                # property costs real time at this call rate.
                t0 = self.sim._now
                yield self._sw()
                spans.complete(t0, self.sim._now, "sw", "overhead", track)
            else:
                yield self._sw()

            def matches(m: _WireMsg) -> bool:
                if src != ANY_SOURCE and m.src != src:
                    return False
                if tag == ANY_TAG:
                    # ANY_TAG is only ever posted by user code; internal
                    # collective/RMA traffic lives above
                    # INTERNAL_TAG_BASE (MPI: a separate context) and
                    # must never satisfy a user wildcard.
                    return m.tag < INTERNAL_TAG_BASE
                return m.tag == tag

            if spans is not None:
                t0 = self.sim._now
                msg: _WireMsg = yield self._match[me].get(matches)
                name = self._recv_names.get(src)
                if name is None:
                    name = self._recv_names[src] = f"recv<-{src}"
                spans.complete(
                    t0, self.sim._now, name, "p2p.wait", track,
                    None, msg.span, {"tag": tag},
                )
            else:
                msg = yield self._match[me].get(matches)
            if msg.kind == "rts":
                # Grant the clear-to-send, then wait for the payload.
                if spans is not None:
                    t0 = self.sim._now
                    yield from self._wire(me, msg.src, HEADER_BYTES)
                    msg.cts.succeed(None)
                    spans.complete(
                        t0, self.sim._now, self._rndv_name("cts->", msg.src),
                        "p2p.send", track, None, None,
                        {"nbytes": HEADER_BYTES},
                    )
                    t0 = self.sim._now
                    data = yield msg.payload_arrived
                    spans.complete(
                        t0, self.sim._now,
                        self._rndv_name("payload<-", msg.src),
                        "p2p.wait", track, None, msg.span,
                        {"nbytes": msg.nbytes},
                    )
                else:
                    yield from self._wire(me, msg.src, HEADER_BYTES)
                    msg.cts.succeed(None)
                    data = yield msg.payload_arrived
            else:
                data = msg.data
            if (
                isinstance(buf, AdoptBuf)
                and msg.private
                and data is not None
                and buf.adopt(data)
            ):
                # Adopted the in-flight array outright: no delivery copy.
                self.sim.stats.payload_adopted += 1
            else:
                self._deliver(buf, data, msg.nbytes)
            self.sim.trace(
                "mpi.recv", me=me, src=msg.src, tag=msg.tag,
                nbytes=msg.nbytes,
            )
            return Status(source=msg.src, tag=msg.tag, nbytes=msg.nbytes)
        finally:
            self._inflight_ops -= 1

    @staticmethod
    def _deliver(buf: Payload, data: Optional[np.ndarray], nbytes: int) -> None:
        arr = payload_array(buf)
        if arr is None:
            return  # timing-only receive
        if data is None:
            return
        dview = arr.view(np.uint8).reshape(-1)
        sview = data.view(np.uint8).reshape(-1)
        if sview.size > dview.size:
            raise TruncationError(
                f"message of {sview.size} B exceeds recv buffer "
                f"of {dview.size} B"
            )
        dview[: sview.size] = sview


@dataclass
class _HierComms:
    """Derived-communicator bundle for hierarchical collectives.

    ``intra[r]`` is rank *r*'s intra-domain communicator; ``leader`` is
    the communicator over the first member of each locality group (or
    ``None`` when there is a single group); ``peers[r]`` — equal-size
    groups only — is the communicator joining member index
    ``member_idx[r]`` of every group, ordered by domain.
    """

    comm: "Communicator"
    intra: List[Optional["Communicator"]]
    leader: Optional["Communicator"]
    peers: Optional[List[Optional["Communicator"]]]
    reordered: List[Optional["Communicator"]]
    dom_of: List[int]
    member_idx: List[int]
    leader_ranks: List[int]

    @property
    def equal_groups(self) -> bool:
        """True when the peer communicators exist (equal-size pods)."""
        return self.peers is not None

    def children(self) -> List[Optional["Communicator"]]:
        """Every derived communicator in the bundle (deduplicated)."""
        subs: List[Optional["Communicator"]] = []
        seen = set()
        for sub in (
            list(self.intra)
            + [self.leader]
            + list(self.peers or [])
            + list(self.reordered)
        ):
            if sub is not None and id(sub) not in seen:
                seen.add(id(sub))
                subs.append(sub)
        return subs

    def reordered_ctx(self, rank: int) -> "MpiContext":
        """This rank's context on the locality-contiguous reordering."""
        sub = self.reordered[rank]
        return sub.ctx(sub.rank_of_world(self.comm.world_ranks[rank]))

    def intra_ctx(self, rank: int) -> "MpiContext":
        sub = self.intra[rank]
        return sub.ctx(sub.rank_of_world(self.comm.world_ranks[rank]))

    def leader_ctx(self, rank: int) -> Optional["MpiContext"]:
        if self.leader is None or rank not in self.leader_ranks:
            return None
        sub = self.leader
        return sub.ctx(sub.rank_of_world(self.comm.world_ranks[rank]))

    def peer_ctx(self, rank: int) -> Optional["MpiContext"]:
        if self.peers is None:
            return None
        sub = self.peers[rank]
        return sub.ctx(sub.rank_of_world(self.comm.world_ranks[rank]))


class MpiContext:
    """Rank-bound facade: what an MPI process calls.

    All communication methods are generators (``yield from`` them inside a
    simulated process).
    """

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.sim = comm.sim

    # -- identity -----------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def node_id(self) -> int:
        return self.comm.node_of(self.rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MpiContext rank={self.rank}/{self.size}"
            f" comm={self.comm.name!r}>"
        )

    # -- derived communicators (collective calls) ---------------------------
    def split(
        self, color: int, key: int = 0
    ) -> Generator[Event, Any, Optional["MpiContext"]]:
        """``MPI_Comm_split``: every rank of this communicator calls
        with its own ``color``/``key``; ranks sharing a color get a new
        communicator ordered by (key, parent rank).  Returns this
        rank's context on the new communicator, or ``None`` for color
        :data:`~repro.mpi.group.UNDEFINED`.

        The color/key pairs travel over the wire (an allgather, as in
        real MPI), so the call is collective and costs what the
        exchange costs; constructing the communicator objects
        themselves is free.
        """
        comm = self.comm
        from . import collectives as c

        seq = comm._split_claim(self.rank)
        mine = np.array([int(color), int(key)], dtype=np.int64)
        recv = [np.empty(2, dtype=np.int64) for _ in range(comm.size)]
        yield from c.allgather(self, mine, recv)
        pairs = [(int(b[0]), int(b[1])) for b in recv]
        sub = comm._split_result(seq, self.rank, pairs)
        if sub is None:
            return None
        return sub.ctx(sub.rank_of_world(comm.world_ranks[self.rank]))

    def split_type(
        self, kind: str, key: int = 0
    ) -> Generator[Event, Any, Optional["MpiContext"]]:
        """Topology-aware split (:data:`COMM_TYPE_NODE` /
        :data:`COMM_TYPE_LOCALITY`): the color is derived from where
        this rank's node sits in the fabric."""
        color = self.comm._type_colors(kind)[self.rank]
        sub = yield from self.split(color, key)
        return sub

    def dup(self) -> Generator[Event, Any, "MpiContext"]:
        """Collective duplicate: same members and order, fresh tag
        space (what a library layer uses to keep its traffic isolated
        from the application's)."""
        sub = yield from self.split(0, self.rank)
        return sub

    def create(
        self, group: Group
    ) -> Generator[Event, Any, Optional["MpiContext"]]:
        """``MPI_Comm_create``: collective over the parent; ranks in
        ``group`` (world ids) get a communicator ordered by group rank,
        everyone else ``None``."""
        my_world = self.comm.world_ranks[self.rank]
        gr = group.rank(my_world)
        color = 0 if gr != UNDEFINED else UNDEFINED
        sub = yield from self.split(color, gr if gr != UNDEFINED else 0)
        return sub

    def free(self) -> Generator[Event, Any, None]:
        """``MPI_Comm_free``: collective retirement of a derived
        communicator.  Every rank calls it; after an internal barrier
        the *last* rank to arrive releases the matching stores,
        schedule engine and split/window bookkeeping (earlier arrivals
        may still have barrier traffic draining — freeing eagerly
        would yank the stores out from under them), and any further
        use raises :class:`~repro.mpi.errors.MpiError`."""
        comm = self.comm
        if comm.parent is None:
            raise MpiError("cannot free a world communicator")
        live = comm.live_windows()
        if live:
            names = ", ".join(repr(w.name) for w in live)
            raise MpiError(
                f"cannot free communicator {comm.name!r} with live "
                f"window(s) {names}; free them first (WinContext.free)"
            )
        from . import collectives as c

        yield from c.barrier(self)
        comm._free_calls += 1
        if comm._free_calls >= comm.size:
            # MPI allows pending nonblocking ops at free time (their
            # completion is merely deferred): drain p2p ops *and*
            # background collective schedules before the stores go
            # away.  A pending receive that can never match turns this
            # into a visible hang — the MPI-legal outcome of freeing a
            # communicator while a wildcard recv waits.
            while comm._inflight_ops > 0 or comm.engine.active > 0:
                yield self.sim.timeout(us(1.0))
            comm._free_now()

    # -- one-sided windows (implementations in .rma) -----------------------
    def win_create(
        self, buf: Any, coalesce: bool = False
    ) -> Generator[Event, Any, "WinContext"]:
        """``MPI_Win_create``: collective; every rank exposes ``buf``
        (a NumPy array, :class:`~repro.hw.memory.HostBuffer`,
        :class:`~repro.gpusim.memory.DeviceBuffer`, or ``None`` for a
        zero-size window) and gets back its rank-bound
        :class:`~repro.mpi.rma.WinContext`.  The per-rank sizes travel
        over the wire (an allgather, as in a real registration
        exchange); building the window object itself is free.
        ``coalesce`` (a collective argument: pass the same value on
        every rank) enables small-put batching — see
        :class:`~repro.mpi.rma.Window`."""
        comm = self.comm
        from . import collectives as c

        seq = comm._win_claim(self.rank)
        comm._win_deposit(seq, self.rank, buf)
        # ndarray, HostBuffer and DeviceBuffer all expose .nbytes.
        nbytes = 0 if buf is None else int(buf.nbytes)
        mine = np.array([nbytes], dtype=np.int64)
        recv = [np.empty(1, dtype=np.int64) for _ in range(comm.size)]
        yield from c.allgather(self, mine, recv)
        win = comm._win_result(seq, self.rank, coalesce=coalesce)
        return win.ctx(self.rank)

    def win_allocate(
        self, count: int, dtype=np.float64, coalesce: bool = False
    ) -> Generator[Event, Any, "WinContext"]:
        """``MPI_Win_allocate``: collective; allocates ``count``
        elements of ``dtype`` in simulated host memory on this rank's
        node and exposes them as a window."""
        node = self.comm.cluster.nodes[self.node_id]
        buf = node.alloc(count, dtype=dtype, name=f"win.r{self.rank}")
        wctx = yield from self.win_create(buf, coalesce=coalesce)
        return wctx

    # -- blocking p2p ------------------------------------------------------
    def send(
        self, buf: Payload, dest: int, tag: int = 0
    ) -> Generator[Event, Any, None]:
        """Blocking send (eager: completes on injection)."""
        self.comm._check_rank(dest)
        self.comm._check_tag(tag)
        self.comm._count("send")
        yield from self.comm._send_impl(self.rank, dest, buf, tag)

    def recv(
        self,
        buf: Payload,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        """Blocking receive into ``buf``; returns a :class:`Status`."""
        if source != ANY_SOURCE:
            self.comm._check_rank(source)
        if tag != ANY_TAG:
            self.comm._check_tag(tag)
        self.comm._count("recv")
        status = yield from self.comm._recv_impl(self.rank, source, buf, tag)
        return status

    # -- non-blocking p2p ------------------------------------------------
    def isend(self, buf: Payload, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; payload snapshotted immediately."""
        self.comm._check_rank(dest)
        self.comm._check_tag(tag)
        self.comm._count("isend")
        data = snapshot(buf)
        nbytes = nbytes_of(buf) if buf is not None else 0

        def runner():
            yield from self.comm._send_impl(self.rank, dest, data if data is not None else nbytes, tag)

        return Request(
            self.sim.process(runner(), name=f"isend(r{self.rank}->r{dest})")
        )

    def irecv(
        self,
        buf: Payload,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Request:
        """Non-blocking receive."""
        if source != ANY_SOURCE:
            self.comm._check_rank(source)
        if tag != ANY_TAG:
            self.comm._check_tag(tag)
        self.comm._count("irecv")

        def runner():
            status = yield from self.comm._recv_impl(
                self.rank, source, buf, tag
            )
            return status

        return Request(
            self.sim.process(runner(), name=f"irecv(r{self.rank}<-{source})")
        )

    # -- combined p2p ------------------------------------------------------
    def sendrecv(
        self,
        sendbuf: Payload,
        dest: int,
        recvbuf: Payload,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        """Simultaneous send+receive (deadlock-free)."""
        self.comm._count("sendrecv")
        sreq = self.isend(sendbuf, dest, sendtag)
        status = yield from self.recv(recvbuf, source, recvtag)
        yield from sreq.wait()
        return status

    def sendrecv_replace(
        self,
        buf: Payload,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        """The ``MPI_Sendrecv_replace`` used by Cannon's algorithm."""
        self.comm._count("sendrecv_replace")
        status = yield from self.sendrecv(
            buf, dest, buf, source, sendtag, recvtag
        )
        return status

    # -- collectives (implementations in .collectives) --------------------
    def barrier(self) -> Generator[Event, Any, None]:
        """Dissemination barrier across all ranks."""
        from . import collectives as c

        yield from c.barrier(self)

    def bcast(self, buf: Payload, root: int = 0) -> Generator[Event, Any, None]:
        """Topology-adaptive broadcast (binomial or hierarchical)."""
        from . import collectives as c

        yield from c.bcast(self, buf, root=root)

    def reduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """Binomial-tree reduction to the root."""
        from . import collectives as c

        yield from c.reduce(self, sendbuf, recvbuf, op=op, root=root)

    def allreduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
    ) -> Generator[Event, Any, None]:
        """Reduce + broadcast."""
        from . import collectives as c

        yield from c.allreduce(self, sendbuf, recvbuf, op=op)

    def gather(
        self,
        sendbuf: Payload,
        recvbufs: Optional[Sequence[Payload]] = None,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """Gather per-rank buffers at the root (vector variant included).

        Non-root ranks may omit ``recvbufs`` (as in mpi4py).
        """
        from . import collectives as c

        yield from c.gather(self, sendbuf, recvbufs, root=root)

    def scatter(
        self,
        sendbufs: Optional[Sequence[Payload]],
        recvbuf: Payload,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """Scatter per-rank buffers from the root (vector variant included)."""
        from . import collectives as c

        yield from c.scatter(self, sendbufs, recvbuf, root=root)

    def allgather(
        self, sendbuf: Payload, recvbufs: Sequence[Payload]
    ) -> Generator[Event, Any, None]:
        """Ring allgather."""
        from . import collectives as c

        yield from c.allgather(self, sendbuf, recvbufs)

    def alltoall(
        self, sendbufs: Sequence[Payload], recvbufs: Sequence[Payload]
    ) -> Generator[Event, Any, None]:
        """Pairwise-exchange all-to-all."""
        from . import collectives as c

        yield from c.alltoall(self, sendbufs, recvbufs)

    # -- nonblocking collectives (MPI-3 style) -----------------------------
    # Each returns a :class:`Request` immediately; the collective's
    # schedule progresses in the background (the communicator's
    # ScheduleEngine) while this rank keeps computing.  As in real MPI,
    # all ranks must issue their collectives in the same order — the
    # algorithm and tag block are claimed synchronously at call time.
    def ibarrier(self) -> Request:
        """Nonblocking dissemination barrier."""
        from . import collectives as c

        return c.ibarrier(self)

    def ibcast(self, buf: Payload, root: int = 0) -> Request:
        """Nonblocking broadcast."""
        from . import collectives as c

        return c.ibcast(self, buf, root=root)

    def ireduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
        root: int = 0,
    ) -> Request:
        """Nonblocking reduction to the root."""
        from . import collectives as c

        return c.ireduce(self, sendbuf, recvbuf, op=op, root=root)

    def iallreduce(
        self,
        sendbuf: Payload,
        recvbuf: Payload,
        op: "ReduceOp" = ReduceOp.SUM,
    ) -> Request:
        """Nonblocking allreduce."""
        from . import collectives as c

        return c.iallreduce(self, sendbuf, recvbuf, op=op)

    def iallgather(
        self, sendbuf: Payload, recvbufs: Sequence[Payload]
    ) -> Request:
        """Nonblocking allgather."""
        from . import collectives as c

        return c.iallgather(self, sendbuf, recvbufs)

    def ialltoall(
        self, sendbufs: Sequence[Payload], recvbufs: Sequence[Payload]
    ) -> Request:
        """Nonblocking all-to-all."""
        from . import collectives as c

        return c.ialltoall(self, sendbufs, recvbufs)

    def igather(
        self,
        sendbuf: Payload,
        recvbufs: Optional[Sequence[Payload]] = None,
        root: int = 0,
    ) -> Request:
        """Nonblocking linear gather."""
        from . import collectives as c

        return c.igather(self, sendbuf, recvbufs, root=root)

    def iscatter(
        self,
        sendbufs: Optional[Sequence[Payload]],
        recvbuf: Payload,
        root: int = 0,
    ) -> Request:
        """Nonblocking linear scatter."""
        from . import collectives as c

        return c.iscatter(self, sendbufs, recvbuf, root=root)
