"""Process groups: the ordered rank sets beneath derived communicators.

MPI builds every sub-communicator out of one primitive — an ordered set
of processes (``MPI_Group``) plus the constructors that combine them
(union / intersection / difference / incl / excl) and
``MPI_Group_translate_ranks`` to map rank numbers between two groups.
The QCDSP message-passing layer the paper descends from organizes its
grid communication the same way: every collective is an operation over
an indexed subset of the machine, never implicitly over the world.

A :class:`Group` here is a value object: an ordered tuple of *world*
process ids (ranks of the job's root communicator).  It carries no
simulation state, so group algebra is free and deterministic — the
expensive part (building a communicator over the group) lives in
:meth:`repro.mpi.communicator.Communicator.create`.

Ordering semantics follow MPI exactly:

* ``union`` — members of ``self`` in order, then members of ``other``
  not already present, in ``other``'s order;
* ``intersection`` / ``difference`` — members of ``self`` that are /
  are not in ``other``, in ``self``'s order;
* ``incl(ranks)`` — a reordered subset: local ranks of ``self`` in the
  *given* order (so ``incl`` also permutes);
* ``excl(ranks)`` — ``self`` minus the named local ranks, order kept.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from .errors import MpiError, RankError

__all__ = ["Group", "UNDEFINED", "GROUP_EMPTY"]

#: Returned by rank queries / ``translate_ranks`` when a process is not
#: a member (mirrors ``MPI_UNDEFINED``); also the ``color`` value that
#: opts a rank out of :meth:`Communicator.split`.
UNDEFINED = -1


class Group:
    """An ordered, duplicate-free set of world process ids."""

    __slots__ = ("_members", "_index")

    def __init__(self, members: Iterable[int] = ()) -> None:
        mem: Tuple[int, ...] = tuple(int(m) for m in members)
        index = {}
        for i, m in enumerate(mem):
            if m < 0:
                raise RankError(f"negative process id {m} in group")
            if m in index:
                raise MpiError(f"duplicate process id {m} in group")
            index[m] = i
        self._members = mem
        self._index = index

    # -- identity ----------------------------------------------------------
    @property
    def members(self) -> Tuple[int, ...]:
        """World process ids, in group-rank order."""
        return self._members

    @property
    def size(self) -> int:
        return len(self._members)

    def rank(self, world_id: int) -> int:
        """Group rank of ``world_id`` (:data:`UNDEFINED` if absent)."""
        return self._index.get(int(world_id), UNDEFINED)

    def __contains__(self, world_id: int) -> bool:
        return int(world_id) in self._index

    def __iter__(self):
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._members == other._members

    def __hash__(self) -> int:
        return hash(self._members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group{self._members!r}"

    # -- set algebra (MPI_Group_union & friends) ---------------------------
    def union(self, other: "Group") -> "Group":
        extra = [m for m in other._members if m not in self._index]
        return Group(self._members + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        return Group(m for m in self._members if m in other._index)

    def difference(self, other: "Group") -> "Group":
        return Group(m for m in self._members if m not in other._index)

    # -- subsetting (MPI_Group_incl/excl) ----------------------------------
    def _check_local(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise RankError(
                f"group rank {rank} out of range [0,{self.size})"
            )

    def incl(self, ranks: Sequence[int]) -> "Group":
        """Subset (and permutation) by *group-local* ranks."""
        out: List[int] = []
        for r in ranks:
            self._check_local(r)
            out.append(self._members[r])
        return Group(out)

    def excl(self, ranks: Sequence[int]) -> "Group":
        """Everything but the named *group-local* ranks, order kept."""
        drop = set()
        for r in ranks:
            self._check_local(r)
            drop.add(r)
        return Group(
            m for i, m in enumerate(self._members) if i not in drop
        )

    # -- rank translation (MPI_Group_translate_ranks) ----------------------
    def translate_ranks(
        self, ranks: Sequence[int], other: "Group"
    ) -> List[int]:
        """Map *group-local* ranks of ``self`` to ranks in ``other``.

        Processes absent from ``other`` translate to :data:`UNDEFINED`.
        """
        out: List[int] = []
        for r in ranks:
            self._check_local(r)
            out.append(other.rank(self._members[r]))
        return out


#: The empty group (mirrors ``MPI_GROUP_EMPTY``).
GROUP_EMPTY = Group()
