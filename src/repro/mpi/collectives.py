"""Collective operations over the simulated point-to-point layer.

Every collective algorithm compiles to a round-based
:class:`~repro.mpi.algorithms.schedule.Schedule` executed by the
communicator's :class:`~repro.mpi.algorithms.schedule.ScheduleEngine`.
The blocking MPI-2 entry points below run the schedule to completion in
the calling process; the ``i``-prefixed MPI-3 entry points start the
same schedule in a background process and return a
:class:`~repro.mpi.communicator.Request` immediately, so a rank (or
DCGN's comm thread) can overlap the collective with computation.

``allreduce``, ``allgather``, ``alltoall``, ``bcast`` and ``reduce``
have a *menu* of algorithms (see :mod:`repro.mpi.algorithms`) and
dispatch per call through the communicator's
:class:`~repro.mpi.algorithms.AlgorithmSelector`, which picks by
message size × communicator size — and, for the hierarchical
allreduce/bcast variants, by whether the placement is fragmented across
an oversubscribed topology.  The chosen algorithm is recorded in
``comm.stats`` as ``"<op>[<algo>]"``.  ``gather``/``scatter`` keep the
fixed linear-at-root shape MVAPICH2-era implementations used.

Every collective call consumes one slot of the internal tag space, kept
consistent across ranks by the requirement (as in real MPI) that all
ranks invoke collectives in the same order — for nonblocking
collectives the tag block and algorithm are claimed synchronously at
issue time, so mixed blocking/nonblocking sequences stay aligned.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

import numpy as np

from ..hw.memory import nbytes_of
from ..sim.core import Event
from .datatypes import Payload, ReduceOp, payload_array
from .errors import MpiError

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "ibarrier",
    "ibcast",
    "ireduce",
    "iallreduce",
    "iallgather",
    "ialltoall",
    "igather",
    "iscatter",
]

from .algorithms.base import (
    hier_ok as _hier_ok,
    isend_internal as _isend_internal,
    next_tag as _next_tag,
    recv_internal as _recv_internal,
    send_internal as _send_internal,
)
from .algorithms.barrier import build_barrier_dissemination
from .algorithms.selector import SCHEDULES
from .communicator import MpiContext, Request


# ---------------------------------------------------------------------------
# Schedule-building dispatch helpers (shared by blocking and nonblocking)
# ---------------------------------------------------------------------------

def _with_meta(sched, op: str, algo: str, nbytes: int):
    """Stamp collective identity on a built schedule (observability:
    the engines label the span they emit with it)."""
    sched.meta = {"op": op, "algo": algo, "nbytes": nbytes}
    return sched


def _build_barrier(ctx: MpiContext):
    ctx.comm._count("barrier")
    return _with_meta(
        build_barrier_dissemination(ctx), "barrier", "dissemination", 0
    )


def _build_bcast(ctx: MpiContext, buf: Payload, root: int):
    ctx.comm._count("bcast")
    ctx.comm._check_rank(root)
    nbytes = nbytes_of(buf) if buf is not None else 0
    algo = ctx.comm.selector.bcast(nbytes, ctx.size, hier_ok=_hier_ok(ctx))
    ctx.comm._count(f"bcast[{algo}]")
    return _with_meta(
        SCHEDULES["bcast"][algo](ctx, buf, root=root), "bcast", algo, nbytes
    )


def _check_reduce_op(op: ReduceOp, what: str) -> None:
    """``REPLACE`` exists for one-sided accumulate only: in a
    reduction tree, which rank's contribution "wins" would depend on
    the schedule — a silent nondeterminism, so reject it loudly."""
    if op is ReduceOp.REPLACE:
        raise MpiError(
            f"ReduceOp.REPLACE is only valid for one-sided accumulate, "
            f"not {what}"
        )


def _build_reduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Optional[Payload],
    op: ReduceOp,
    root: int,
):
    ctx.comm._count("reduce")
    ctx.comm._check_rank(root)
    _check_reduce_op(op, "reduce")
    nbytes = nbytes_of(sendbuf) if sendbuf is not None else 0
    algo = ctx.comm.selector.reduce(nbytes, ctx.size)
    ctx.comm._count(f"reduce[{algo}]")
    return _with_meta(
        SCHEDULES["reduce"][algo](ctx, sendbuf, recvbuf, op=op, root=root),
        "reduce", algo, nbytes,
    )


def _build_allreduce(
    ctx: MpiContext, sendbuf: Payload, recvbuf: Payload, op: ReduceOp
):
    ctx.comm._count("allreduce")
    _check_reduce_op(op, "allreduce")
    if payload_array(recvbuf) is None:
        raise MpiError("allreduce requires a recv buffer on every rank")
    nbytes = nbytes_of(sendbuf) if sendbuf is not None else 0
    algo = ctx.comm.selector.allreduce(
        nbytes, ctx.size, hier_ok=_hier_ok(ctx)
    )
    ctx.comm._count(f"allreduce[{algo}]")
    return _with_meta(
        SCHEDULES["allreduce"][algo](ctx, sendbuf, recvbuf, op),
        "allreduce", algo, nbytes,
    )


def _build_allgather(
    ctx: MpiContext, sendbuf: Payload, recvbufs: Sequence[Payload]
):
    ctx.comm._count("allgather")
    if len(recvbufs) != ctx.size:
        raise MpiError("allgather needs one recv buffer per rank")
    sizes = [nbytes_of(b) if payload_array(b) is not None else None
             for b in recvbufs]
    uniform = None not in sizes and len(set(sizes)) <= 1
    block = sizes[ctx.rank] if uniform else 0
    algo = ctx.comm.selector.allgather(
        block, ctx.size, uniform=uniform, hier_ok=_hier_ok(ctx)
    )
    ctx.comm._count(f"allgather[{algo}]")
    return _with_meta(
        SCHEDULES["allgather"][algo](ctx, sendbuf, recvbufs),
        "allgather", algo, block * ctx.size,
    )


def _build_alltoall(
    ctx: MpiContext,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
):
    ctx.comm._count("alltoall")
    if len(sendbufs) != ctx.size or len(recvbufs) != ctx.size:
        raise MpiError("alltoall needs one send and recv buffer per rank")
    sizes = [
        nbytes_of(b) if payload_array(b) is not None else None
        for b in list(sendbufs) + list(recvbufs)
    ]
    uniform = None not in sizes and len(set(sizes)) <= 1
    block = sizes[0] if uniform else 0
    algo = ctx.comm.selector.alltoall(
        block, ctx.size, uniform=uniform, hier_ok=_hier_ok(ctx)
    )
    ctx.comm._count(f"alltoall[{algo}]")
    return _with_meta(
        SCHEDULES["alltoall"][algo](ctx, sendbufs, recvbufs),
        "alltoall", algo, block * ctx.size,
    )


# ---------------------------------------------------------------------------
# Blocking collectives (MPI-2): execute the schedule inline
# ---------------------------------------------------------------------------

def barrier(ctx: MpiContext) -> Generator[Event, Any, None]:
    """Dissemination barrier (the engine may defer the DAG build)."""
    ctx.comm._count("barrier")
    yield from ctx.comm.engine.execute_barrier(ctx)


def bcast(
    ctx: MpiContext, buf: Payload, root: int = 0
) -> Generator[Event, Any, None]:
    """Topology-adaptive broadcast (binomial tree, domain-leader
    hierarchical on fragmented oversubscribed fabrics, or segmented
    pipeline for large payloads)."""
    yield from ctx.comm.engine.execute(ctx, _build_bcast(ctx, buf, root))


def reduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Size-adaptive reduction to ``root`` (binomial tree, or
    Rabenseifner reduce-scatter + gather for large vectors)."""
    yield from ctx.comm.engine.execute(
        ctx, _build_reduce(ctx, sendbuf, recvbuf, op, root)
    )


def allreduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Generator[Event, Any, None]:
    """Size-adaptive allreduce (see :mod:`repro.mpi.algorithms`)."""
    yield from ctx.comm.engine.execute(
        ctx, _build_allreduce(ctx, sendbuf, recvbuf, op)
    )


def allgather(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Size-adaptive allgather (ring, recursive doubling, or Bruck)."""
    yield from ctx.comm.engine.execute(
        ctx, _build_allgather(ctx, sendbuf, recvbufs)
    )


def alltoall(
    ctx: MpiContext,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Schedule-adaptive all-to-all (shift, pairwise, or Bruck)."""
    yield from ctx.comm.engine.execute(
        ctx, _build_alltoall(ctx, sendbufs, recvbufs)
    )


# ---------------------------------------------------------------------------
# Nonblocking collectives (MPI-3): start the schedule, return a Request
# ---------------------------------------------------------------------------

def ibarrier(ctx: MpiContext) -> Request:
    """Nonblocking dissemination barrier."""
    return ctx.comm.engine.start(
        ctx, _build_barrier(ctx), name=f"ibarrier(r{ctx.rank})"
    )


def ibcast(ctx: MpiContext, buf: Payload, root: int = 0) -> Request:
    """Nonblocking broadcast (same schedules as ``bcast``)."""
    return ctx.comm.engine.start(
        ctx, _build_bcast(ctx, buf, root), name=f"ibcast(r{ctx.rank})"
    )


def ireduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
) -> Request:
    """Nonblocking reduction to ``root``."""
    return ctx.comm.engine.start(
        ctx, _build_reduce(ctx, sendbuf, recvbuf, op, root),
        name=f"ireduce(r{ctx.rank})",
    )


def iallreduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Request:
    """Nonblocking allreduce (same schedules as ``allreduce``)."""
    return ctx.comm.engine.start(
        ctx, _build_allreduce(ctx, sendbuf, recvbuf, op),
        name=f"iallreduce(r{ctx.rank})",
    )


def iallgather(
    ctx: MpiContext, sendbuf: Payload, recvbufs: Sequence[Payload]
) -> Request:
    """Nonblocking allgather."""
    return ctx.comm.engine.start(
        ctx, _build_allgather(ctx, sendbuf, recvbufs),
        name=f"iallgather(r{ctx.rank})",
    )


def ialltoall(
    ctx: MpiContext,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Request:
    """Nonblocking all-to-all."""
    return ctx.comm.engine.start(
        ctx, _build_alltoall(ctx, sendbufs, recvbufs),
        name=f"ialltoall(r{ctx.rank})",
    )


# ---------------------------------------------------------------------------
# Rooted linear collectives (fixed schedules, as in the seed)
# ---------------------------------------------------------------------------

def gather(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Optional[Sequence[Payload]],
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Linear gather: every rank sends its buffer to the root.

    At the root, ``recvbufs`` is a sequence of per-rank destination
    buffers (the vector variant — MPI_Gatherv — falls out naturally since
    the buffers may have different sizes).
    """
    ctx.comm._count("gather")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    yield from _gather_impl(ctx, sendbuf, recvbufs, root, tag)


def igather(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Optional[Sequence[Payload]],
    root: int = 0,
) -> Request:
    """Nonblocking linear gather.

    The tag block is claimed synchronously (like every nonblocking
    collective) so concurrent collectives stay aligned across ranks;
    the wire work runs in a background process.
    """
    ctx.comm._count("gather")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    return Request(ctx.sim.process(
        _gather_impl(ctx, sendbuf, recvbufs, root, tag),
        name=f"igather(r{ctx.rank})",
    ))


def _gather_impl(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Optional[Sequence[Payload]],
    root: int,
    tag: int,
) -> Generator[Event, Any, None]:
    size, rank = ctx.size, ctx.rank
    if rank == root:
        if recvbufs is None or len(recvbufs) != size:
            raise MpiError("root needs one recv buffer per rank")
        reqs = []
        for src in range(size):
            if src == root:
                continue
            reqs.append(
                ctx.sim.process(
                    _recv_internal(ctx, recvbufs[src], src, tag),
                    name=f"gather.recv({src})",
                )
            )
        # Local contribution via direct copy.
        own = payload_array(recvbufs[root])
        mine = payload_array(sendbuf)
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)
        for r in reqs:
            yield r
    else:
        yield from _send_internal(ctx, sendbuf, root, tag)


def scatter(
    ctx: MpiContext,
    sendbufs: Optional[Sequence[Payload]],
    recvbuf: Payload,
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Linear scatter from the root (vector variant included)."""
    ctx.comm._count("scatter")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    yield from _scatter_impl(ctx, sendbufs, recvbuf, root, tag)


def iscatter(
    ctx: MpiContext,
    sendbufs: Optional[Sequence[Payload]],
    recvbuf: Payload,
    root: int = 0,
) -> Request:
    """Nonblocking linear scatter (tag claimed synchronously)."""
    ctx.comm._count("scatter")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    return Request(ctx.sim.process(
        _scatter_impl(ctx, sendbufs, recvbuf, root, tag),
        name=f"iscatter(r{ctx.rank})",
    ))


def _scatter_impl(
    ctx: MpiContext,
    sendbufs: Optional[Sequence[Payload]],
    recvbuf: Payload,
    root: int,
    tag: int,
) -> Generator[Event, Any, None]:
    size, rank = ctx.size, ctx.rank
    if rank == root:
        if sendbufs is None or len(sendbufs) != size:
            raise MpiError("root needs one send buffer per rank")
        reqs = []
        for dst in range(size):
            if dst == root:
                continue
            reqs.append(_isend_internal(ctx, sendbufs[dst], dst, tag))
        own = payload_array(recvbuf)
        mine = payload_array(sendbufs[root])
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)
        for r in reqs:
            yield from r.wait()
    else:
        yield from _recv_internal(ctx, recvbuf, root, tag)
