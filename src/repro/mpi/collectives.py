"""Collective algorithms over the simulated point-to-point layer.

The algorithm choices match what MVAPICH2-era implementations used and are
what give the baseline its performance *shape*:

* barrier — dissemination (⌈log2 P⌉ rounds of 0-byte messages);
* bcast — binomial tree (⌈log2 P⌉ message hops on the critical path);
* reduce — binomial tree with elementwise operator combination;
* allreduce — reduce to root + binomial bcast;
* gather/scatter — linear at the root;
* allgather — ring (P−1 steps, bandwidth-optimal);
* alltoall — pairwise exchange rounds.

Every collective call consumes one slot of the internal tag space, kept
consistent across ranks by the requirement (as in real MPI) that all
ranks invoke collectives in the same order.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

import numpy as np

from ..sim.core import Event
from .datatypes import Payload, ReduceOp, payload_array
from .errors import MpiError, RankError
from .status import ANY_TAG

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]

from .communicator import INTERNAL_TAG_BASE, MpiContext

#: Stride between the tag blocks of successive collective calls.
_TAG_STRIDE = 8


def _next_tag(ctx: MpiContext) -> int:
    comm = ctx.comm
    seq = comm._coll_seq[ctx.rank]
    comm._coll_seq[ctx.rank] += 1
    return INTERNAL_TAG_BASE + (seq * _TAG_STRIDE)


def _isend_internal(ctx: MpiContext, buf: Payload, dest: int, tag: int):
    """Internal isend that bypasses the user-tag check."""
    from .communicator import Request

    comm = ctx.comm
    comm._check_rank(dest)

    def runner():
        yield from comm._send_impl(ctx.rank, dest, buf, tag)

    return Request(
        ctx.sim.process(runner(), name=f"coll.isend(r{ctx.rank}->r{dest})")
    )


def _send_internal(
    ctx: MpiContext, buf: Payload, dest: int, tag: int
) -> Generator[Event, Any, None]:
    yield from ctx.comm._send_impl(ctx.rank, dest, buf, tag)


def _recv_internal(
    ctx: MpiContext, buf: Payload, source: int, tag: int
) -> Generator[Event, Any, Any]:
    status = yield from ctx.comm._recv_impl(ctx.rank, source, buf, tag)
    return status


def barrier(ctx: MpiContext) -> Generator[Event, Any, None]:
    """Dissemination barrier."""
    ctx.comm._count("barrier")
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if size == 1:
        yield ctx.comm._sw()
        return
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        req = _isend_internal(ctx, None, dst, tag)
        yield from _recv_internal(ctx, None, src, tag)
        yield from req.wait()
        k <<= 1


def bcast(
    ctx: MpiContext, buf: Payload, root: int = 0
) -> Generator[Event, Any, None]:
    """Binomial-tree broadcast of ``buf`` (in place for non-roots)."""
    ctx.comm._count("bcast")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if size == 1:
        yield ctx.comm._sw()
        return
    vrank = (rank - root) % size
    # Phase 1 — non-roots receive from their parent.  ``mask`` stops at
    # the lowest set bit of vrank (or the first power of two >= size for
    # the root).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield from _recv_internal(ctx, buf, parent, tag)
            break
        mask <<= 1
    # Phase 2 — forward to children: vrank + m for each m below mask.
    mask >>= 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < size:
            child = (child_v + root) % size
            yield from _send_internal(ctx, buf, child, tag)
        mask >>= 1


def reduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Binomial-tree reduction to ``root``."""
    ctx.comm._count("reduce")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    src_arr = payload_array(sendbuf)
    if src_arr is None:
        raise MpiError("reduce requires an array payload")
    acc = src_arr.copy()
    if size > 1:
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = ((vrank & ~mask) + root) % size
                yield from _send_internal(ctx, acc, dst, tag)
                break
            partner_v = vrank | mask
            if partner_v < size:
                tmp = np.empty_like(acc)
                partner = (partner_v + root) % size
                yield from _recv_internal(ctx, tmp, partner, tag)
                acc = op.combine(acc, tmp)
            mask <<= 1
    else:
        yield ctx.comm._sw()
    if rank == root:
        out = payload_array(recvbuf)
        if out is None:
            raise MpiError("root needs a recv buffer for reduce")
        out[...] = acc.reshape(out.shape)


def allreduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Generator[Event, Any, None]:
    """Reduce to rank 0, then broadcast (MVAPICH2 general-case algorithm)."""
    ctx.comm._count("allreduce")
    out = payload_array(recvbuf)
    if out is None:
        raise MpiError("allreduce requires a recv buffer on every rank")
    if ctx.rank == 0:
        yield from reduce(ctx, sendbuf, recvbuf, op=op, root=0)
    else:
        yield from reduce(ctx, sendbuf, None, op=op, root=0)
    yield from bcast(ctx, recvbuf, root=0)


def gather(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Optional[Sequence[Payload]],
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Linear gather: every rank sends its buffer to the root.

    At the root, ``recvbufs`` is a sequence of per-rank destination
    buffers (the vector variant — MPI_Gatherv — falls out naturally since
    the buffers may have different sizes).
    """
    ctx.comm._count("gather")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if rank == root:
        if recvbufs is None or len(recvbufs) != size:
            raise MpiError("root needs one recv buffer per rank")
        reqs = []
        for src in range(size):
            if src == root:
                continue
            reqs.append(
                ctx.sim.process(
                    _recv_internal(ctx, recvbufs[src], src, tag),
                    name=f"gather.recv({src})",
                )
            )
        # Local contribution via direct copy.
        own = payload_array(recvbufs[root])
        mine = payload_array(sendbuf)
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)
        for r in reqs:
            yield r
    else:
        yield from _send_internal(ctx, sendbuf, root, tag)


def scatter(
    ctx: MpiContext,
    sendbufs: Optional[Sequence[Payload]],
    recvbuf: Payload,
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Linear scatter from the root (vector variant included)."""
    ctx.comm._count("scatter")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if rank == root:
        if sendbufs is None or len(sendbufs) != size:
            raise MpiError("root needs one send buffer per rank")
        reqs = []
        for dst in range(size):
            if dst == root:
                continue
            reqs.append(_isend_internal(ctx, sendbufs[dst], dst, tag))
        own = payload_array(recvbuf)
        mine = payload_array(sendbufs[root])
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)
        for r in reqs:
            yield from r.wait()
    else:
        yield from _recv_internal(ctx, recvbuf, root, tag)


def allgather(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Ring allgather: P−1 steps, each forwarding one block."""
    ctx.comm._count("allgather")
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if len(recvbufs) != size:
        raise MpiError("allgather needs one recv buffer per rank")
    own = payload_array(recvbufs[rank])
    mine = payload_array(sendbuf)
    if own is not None and mine is not None:
        own[...] = mine.reshape(own.shape)
    if size == 1:
        yield ctx.comm._sw()
        return
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        req = _isend_internal(ctx, recvbufs[send_block], right, tag + step % 4)
        yield from _recv_internal(ctx, recvbufs[recv_block], left, tag + step % 4)
        yield from req.wait()


def alltoall(
    ctx: MpiContext,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Pairwise-exchange all-to-all."""
    ctx.comm._count("alltoall")
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if len(sendbufs) != size or len(recvbufs) != size:
        raise MpiError("alltoall needs one send and recv buffer per rank")
    own = payload_array(recvbufs[rank])
    mine = payload_array(sendbufs[rank])
    if own is not None and mine is not None:
        own[...] = mine.reshape(own.shape)
    for k in range(1, size):
        dst = (rank + k) % size
        src = (rank - k) % size
        req = _isend_internal(ctx, sendbufs[dst], dst, tag)
        yield from _recv_internal(ctx, recvbufs[src], src, tag)
        yield from req.wait()
