"""Collective operations over the simulated point-to-point layer.

Fixed-schedule primitives (the shapes MVAPICH2-era implementations used):

* barrier — dissemination (⌈log2 P⌉ rounds of 0-byte messages);
* reduce — binomial tree with elementwise operator combination;
* gather/scatter — linear at the root.

``allreduce``, ``allgather``, ``alltoall`` and ``bcast`` have a *menu*
of algorithms (see :mod:`repro.mpi.algorithms`) and dispatch per call
through the communicator's :class:`~repro.mpi.algorithms.AlgorithmSelector`,
which picks by message size × communicator size — and, for the
hierarchical allreduce/bcast variants, by whether the placement is
fragmented across an oversubscribed topology.  The chosen algorithm is
recorded in ``comm.stats`` as ``"<op>[<algo>]"``.

Every collective call consumes one slot of the internal tag space, kept
consistent across ranks by the requirement (as in real MPI) that all
ranks invoke collectives in the same order.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

import numpy as np

from ..hw.memory import nbytes_of
from ..sim.core import Event
from .datatypes import Payload, ReduceOp, payload_array
from .errors import MpiError

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
]

from .algorithms.base import (
    isend_internal as _isend_internal,
    next_tag as _next_tag,
    recv_internal as _recv_internal,
    send_internal as _send_internal,
)
from .algorithms.selector import ALGORITHMS
from .communicator import MpiContext


def barrier(ctx: MpiContext) -> Generator[Event, Any, None]:
    """Dissemination barrier."""
    ctx.comm._count("barrier")
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if size == 1:
        yield ctx.comm._sw()
        return
    k = 1
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        req = _isend_internal(ctx, None, dst, tag)
        yield from _recv_internal(ctx, None, src, tag)
        yield from req.wait()
        k <<= 1


def _hier_ok(ctx: MpiContext) -> bool:
    """Hierarchical variants apply when the placement is regular enough
    (equal locality groups) *and* fragmented across the topology's
    domains — a contiguous placement's flat ring/tree is already
    near-optimal (one bottleneck crossing per domain)."""
    comm = ctx.comm
    return bool(
        getattr(comm, "hier_capable", False)
        and getattr(comm, "fragmented", False)
    )


def bcast(
    ctx: MpiContext, buf: Payload, root: int = 0
) -> Generator[Event, Any, None]:
    """Topology-adaptive broadcast (binomial tree, or domain-leader
    hierarchical on fragmented oversubscribed fabrics)."""
    ctx.comm._count("bcast")
    ctx.comm._check_rank(root)
    nbytes = nbytes_of(buf) if buf is not None else 0
    algo = ctx.comm.selector.bcast(nbytes, ctx.size, hier_ok=_hier_ok(ctx))
    ctx.comm._count(f"bcast[{algo}]")
    yield from ALGORITHMS["bcast"][algo](ctx, buf, root=root)


def reduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Binomial-tree reduction to ``root``."""
    ctx.comm._count("reduce")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    src_arr = payload_array(sendbuf)
    if src_arr is None:
        raise MpiError("reduce requires an array payload")
    acc = src_arr.copy()
    if size > 1:
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = ((vrank & ~mask) + root) % size
                yield from _send_internal(ctx, acc, dst, tag)
                break
            partner_v = vrank | mask
            if partner_v < size:
                tmp = np.empty_like(acc)
                partner = (partner_v + root) % size
                yield from _recv_internal(ctx, tmp, partner, tag)
                acc = op.combine(acc, tmp)
            mask <<= 1
    else:
        yield ctx.comm._sw()
    if rank == root:
        out = payload_array(recvbuf)
        if out is None:
            raise MpiError("root needs a recv buffer for reduce")
        out[...] = acc.reshape(out.shape)


def allreduce(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Generator[Event, Any, None]:
    """Size-adaptive allreduce (see :mod:`repro.mpi.algorithms`)."""
    ctx.comm._count("allreduce")
    if payload_array(recvbuf) is None:
        raise MpiError("allreduce requires a recv buffer on every rank")
    nbytes = nbytes_of(sendbuf) if sendbuf is not None else 0
    algo = ctx.comm.selector.allreduce(
        nbytes, ctx.size, hier_ok=_hier_ok(ctx)
    )
    ctx.comm._count(f"allreduce[{algo}]")
    yield from ALGORITHMS["allreduce"][algo](ctx, sendbuf, recvbuf, op)


def gather(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Optional[Sequence[Payload]],
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Linear gather: every rank sends its buffer to the root.

    At the root, ``recvbufs`` is a sequence of per-rank destination
    buffers (the vector variant — MPI_Gatherv — falls out naturally since
    the buffers may have different sizes).
    """
    ctx.comm._count("gather")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if rank == root:
        if recvbufs is None or len(recvbufs) != size:
            raise MpiError("root needs one recv buffer per rank")
        reqs = []
        for src in range(size):
            if src == root:
                continue
            reqs.append(
                ctx.sim.process(
                    _recv_internal(ctx, recvbufs[src], src, tag),
                    name=f"gather.recv({src})",
                )
            )
        # Local contribution via direct copy.
        own = payload_array(recvbufs[root])
        mine = payload_array(sendbuf)
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)
        for r in reqs:
            yield r
    else:
        yield from _send_internal(ctx, sendbuf, root, tag)


def scatter(
    ctx: MpiContext,
    sendbufs: Optional[Sequence[Payload]],
    recvbuf: Payload,
    root: int = 0,
) -> Generator[Event, Any, None]:
    """Linear scatter from the root (vector variant included)."""
    ctx.comm._count("scatter")
    ctx.comm._check_rank(root)
    tag = _next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if rank == root:
        if sendbufs is None or len(sendbufs) != size:
            raise MpiError("root needs one send buffer per rank")
        reqs = []
        for dst in range(size):
            if dst == root:
                continue
            reqs.append(_isend_internal(ctx, sendbufs[dst], dst, tag))
        own = payload_array(recvbuf)
        mine = payload_array(sendbufs[root])
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)
        for r in reqs:
            yield from r.wait()
    else:
        yield from _recv_internal(ctx, recvbuf, root, tag)


def allgather(
    ctx: MpiContext,
    sendbuf: Payload,
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Size-adaptive allgather (ring or recursive doubling)."""
    ctx.comm._count("allgather")
    if len(recvbufs) != ctx.size:
        raise MpiError("allgather needs one recv buffer per rank")
    sizes = [nbytes_of(b) if payload_array(b) is not None else None
             for b in recvbufs]
    uniform = None not in sizes and len(set(sizes)) <= 1
    block = sizes[ctx.rank] if uniform else 0
    algo = ctx.comm.selector.allgather(block, ctx.size, uniform=uniform)
    ctx.comm._count(f"allgather[{algo}]")
    yield from ALGORITHMS["allgather"][algo](ctx, sendbuf, recvbufs)


def alltoall(
    ctx: MpiContext,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Schedule-adaptive all-to-all (shift, or pairwise on pof2 P)."""
    ctx.comm._count("alltoall")
    if len(sendbufs) != ctx.size or len(recvbufs) != ctx.size:
        raise MpiError("alltoall needs one send and recv buffer per rank")
    algo = ctx.comm.selector.alltoall(0, ctx.size)
    ctx.comm._count(f"alltoall[{algo}]")
    yield from ALGORITHMS["alltoall"][algo](ctx, sendbufs, recvbufs)
