"""One-sided communication: MPI-3 windows over the simulated fabric.

The send/recv layer always needs the target's cooperation — a matching
receive, tag FIFO order, rendezvous handshakes.  A :class:`Window`
removes all of that from the data path: a rank exposes a region of its
memory, and any other rank moves bytes into or out of it with
``put``/``get``/``accumulate`` while the target's CPU does nothing at
all.  That is RDMA semantics, and it is the natural extension of the
paper's DCGN model (communication *sourced* by data-parallel code, no
CPU rendezvous) down into the wire protocol itself: a GPU kernel's halo
push needs no matching receive anywhere.

Wire model (all charges ride the existing
:class:`~repro.hw.topology.Topology` channels, so contention appears
wherever the fabric would contend):

* **eager** — payloads at or below the autotuned
  ``rma_eager_max_bytes`` travel as one wire transfer (header +
  inlined payload) and land through a bounce copy on the target host's
  staging path (the intra-node shared-memory channel).  One fabric
  latency, but the target memory system pays a copy.
* **rendezvous (true RDMA)** — larger payloads first pay an
  rkey/validation header round-trip, then the payload is written
  *directly* into the registered window memory: zero-copy, no target
  involvement beyond the NIC.  Window memory is registered at creation,
  which is why no per-operation registration appears.
* the origin charges :attr:`~repro.hw.params.IbParams.rma_setup_us`
  per operation (WQE build + doorbell) instead of the heavier
  two-sided ``sw_overhead_us`` — the one-sided path has no matching
  software stack.

Synchronization implements all three MPI-3 modes:

* **fence** — collective epochs (:meth:`WinContext.fence`);
* **PSCW** — post/start/complete/wait generalized active target
  (:meth:`WinContext.post` / :meth:`~WinContext.start` /
  :meth:`~WinContext.complete` / :meth:`~WinContext.wait_sync`);
* **passive target** — :meth:`WinContext.lock` /
  :meth:`~WinContext.lock_all` with shared/exclusive semantics and
  :meth:`~WinContext.flush` completion.

Completion semantics are *remote completion*: the simulated process
behind every operation finishes only once the bytes have landed in (or
been read from) the target window, so ``flush``/``fence``/``rput.wait``
all guarantee target visibility — the strongest of the completions MPI
allows, and the one that keeps the model simple to reason about.

Accumulates additionally honour MPI's per-(origin, target) ordering
guarantee: they apply in program order even when their wire transfers
would complete out of order, and each element applies atomically (one
simulated instant).

**Analytic fast path.**  On a communicator with ``backend="analytic"``
or ``"pricing"``, host-window operations stop spawning per-op wire
processes: each op is priced at issue time against per-node *cursors*
(the origin's NIC injection path and the target's staging channel, the
two serialization points of the exact model), with every wire leg's
end-to-end time interned in a ``(src, dst, nbytes)`` cache
(``sim.stats.wire_cost_hits``/``wire_cost_misses``).  The resulting
epoch is a per-(origin, target) batch of finish times committed at the
synchronization point — ``fence``/``complete``/``unlock``/``flush``
wait for one computed instant per pair instead of joining a process
per op, and a coalesced-put batch prices as the single transfer it
rides.  Payload bytes are applied synchronously at issue (legal:
epochs forbid conflicting access until the sync point; ``"pricing"``
skips data application entirely), accumulate program order is
preserved through the same per-pair chain the exact path uses, and
ops needing an observable completion (``get``/``rput``/``rget``/
``get_accumulate``) get a real event scheduled at their computed
finish.  Device-memory windows keep the exact per-op path (the PCIe
hop is a contended resource the cursors do not model), as does the
lock machinery.  What the cursors ignore: receive-side occupancy
queueing and spine contention — second-order on the modeled fabrics.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..hw.memory import HostBuffer
from ..sim.batch import EventBatch
from ..sim.core import Event, Process, us
from .communicator import Communicator, HEADER_BYTES, MpiContext, Request
from .datatypes import ReduceOp
from .errors import RmaError

__all__ = ["Window", "WinContext", "RMA_TAG_BASE"]

#: Tag space of RMA control messages (PSCW post/complete notifications),
#: far above the collective tag blocks.
RMA_TAG_BASE = 1 << 28

#: Per-window control-tag stride (post, complete).
_TAG_STRIDE = 4
_TAG_POST = 0
_TAG_COMPLETE = 1


class _LockState:
    """Passive-target lock state of one window rank (NIC-side)."""

    __slots__ = ("holders", "waitq")

    def __init__(self) -> None:
        #: origin rank → holds exclusively?
        self.holders: Dict[int, bool] = {}
        #: FIFO of (grant event, origin, exclusive) waiters.
        self.waitq: List[Tuple[Event, int, bool]] = []

    def can_grant(self, exclusive: bool) -> bool:
        if exclusive:
            return not self.holders
        return not any(self.holders.values())


class Window:
    """A one-sided memory window over a communicator.

    ``bufs`` names each rank's exposed region: a NumPy array, a
    :class:`~repro.hw.memory.HostBuffer`, a
    :class:`~repro.gpusim.memory.DeviceBuffer` (GPU global memory —
    remote access then pays the target-side PCIe hop, G92-era hardware
    has no NIC-to-GPU path), or ``None`` for a zero-size window.
    Offsets in every operation are in *elements* of the target rank's
    window dtype (MPI displacement-unit semantics).

    Simulated ranks create windows collectively via
    :meth:`MpiContext.win_create` / :meth:`MpiContext.win_allocate`;
    the driver-level constructor here is what those land on (and what
    tests/benchmarks may call directly).

    ``passive_all=True`` puts the window in the permanently-exposed
    mode DCGN's comm threads use: no epoch discipline is enforced and
    every operation completes remotely on its own — the comm thread,
    as the sole MPI caller on its node, provides the consistency the
    epochs would.
    """

    def __init__(
        self,
        comm: Communicator,
        bufs: Sequence[Any],
        name: str = "",
        passive_all: bool = False,
        coalesce: bool = False,
    ) -> None:
        comm._ensure_alive()
        if len(bufs) != comm.size:
            raise RmaError("win_create needs one buffer entry per rank")
        self.comm = comm
        self.sim = comm.sim
        self.passive_all = passive_all
        self.wid = comm._win_count
        comm._win_count += 1
        self.name = name or f"{comm.name}.win{self.wid}"
        self._ib = comm._ib
        self._freed = False
        self._arrays: List[Optional[np.ndarray]] = []
        self._device: List[Optional[Any]] = []
        for rank, buf in enumerate(bufs):
            arr, dev = self._adopt(rank, buf)
            self._arrays.append(arr)
            self._device.append(dev)
        size = comm.size
        #: Per-origin access-epoch mode: None | "fence" | "pscw".
        self._mode: List[Optional[str]] = [None] * size
        #: Per-origin PSCW access group (targets ``start`` named).
        self._start_group: List[Optional[frozenset]] = [None] * size
        #: Per-target PSCW exposure group (origins ``post`` named).
        self._exposure: List[Optional[Tuple[int, ...]]] = [None] * size
        #: Per-origin passive locks held: target → exclusive?
        self._locks_held: List[Dict[int, bool]] = [dict() for _ in range(size)]
        self._lock_all: List[bool] = [False] * size
        #: Per-target NIC lock state.
        self._lock_state: List[_LockState] = [_LockState() for _ in range(size)]
        #: Per-origin in-flight operation processes, by target.
        self._outgoing: List[Dict[int, List[Process]]] = [
            dict() for _ in range(size)
        ]
        #: (origin, target) → completion event of the last accumulate
        #: (MPI ordering guarantee: same-pair accumulates apply in
        #: program order).
        self._acc_tail: Dict[Tuple[int, int], Event] = {}
        self._eager_max = int(
            getattr(comm.tuning, "rma_eager_max_bytes", 8 * 1024)
        )
        #: MVAPICH2-style put coalescing: consecutive small eager puts
        #: to one target inside an epoch are buffered and ride a single
        #: wire transfer (one header, one fabric latency) at the next
        #: completion point or conflicting operation.  Off by default —
        #: existing timings stay byte-stable.
        self.coalesce = coalesce
        #: origin → target → list of (payload snapshot, offset) puts
        #: not yet on the wire, plus their byte total.
        self._pending_puts: List[Dict[int, List[Tuple[np.ndarray, int]]]] = [
            dict() for _ in range(size)
        ]
        self._pending_bytes: List[Dict[int, int]] = [
            dict() for _ in range(size)
        ]
        #: Analytic fast path (see module doc): price host-window ops
        #: against per-node cursors instead of spawning wire processes.
        self._an = comm.backend != "exact"
        self._price_only = comm.backend == "pricing"
        if self._an:
            prof = comm.cluster.interconnect.topology.profile()
            #: NIC injection-path occupancy model: alpha/2 + nbytes*beta
            #: — the tx channel's exact hold time on the modeled fabrics
            #: (the latency's other half rides the receiver's ejection
            #: channel, which the pricer folds into the wire time).
            self._alpha_inj = float(prof.alpha_s) / 2.0
            self._beta = float(prof.beta_s_per_B)
            #: node → time its NIC injection path frees up.
            self._tx_free: Dict[int, float] = {}
            #: node → time its host staging (shm) channel frees up.
            self._shm_free: Dict[int, float] = {}
            #: (origin, target) → finish time of the last accumulate
            #: (the analytic twin of ``_acc_tail``).
            self._acc_free: Dict[Tuple[int, int], float] = {}
            #: origin → target → latest analytic op finish time.
            self._an_fins: List[Dict[int, float]] = [
                dict() for _ in range(size)
            ]
            #: Interned end-to-end wire times (src, dst, nbytes) → s.
            self._wt_cache: Dict[Tuple[int, int, int], float] = {}
            self._an_max_fin = 0.0
        comm._windows.append(self)
        comm._count("win_create")

    # -- construction helpers ----------------------------------------------
    def _adopt(
        self, rank: int, buf: Any
    ) -> Tuple[Optional[np.ndarray], Optional[Any]]:
        if buf is None:
            return None, None
        if isinstance(buf, HostBuffer):
            node = self.comm.placement[rank]
            if buf.node_id != node:
                raise RmaError(
                    f"rank {rank} (node {node}) cannot expose host "
                    f"memory living on node {buf.node_id}"
                )
            return buf.data, None
        if isinstance(buf, np.ndarray):
            if not buf.flags["C_CONTIGUOUS"]:
                raise RmaError("window memory must be C-contiguous")
            return buf, None
        # DeviceBuffer duck-typed to avoid importing gpusim eagerly.
        if hasattr(buf, "device_id") and hasattr(buf, "data"):
            node = self.comm.placement[rank]
            if buf.node_id != node:
                raise RmaError(
                    f"rank {rank} (node {node}) cannot expose device "
                    f"memory living on node {buf.node_id}"
                )
            return buf.data, buf
        raise RmaError(
            f"cannot expose {type(buf).__name__} as window memory"
        )

    @classmethod
    def allocate(
        cls,
        comm: Communicator,
        count: int,
        dtype=np.float64,
        name: str = "",
        passive_all: bool = False,
        coalesce: bool = False,
    ) -> "Window":
        """Driver-level ``MPI_Win_allocate``: every rank gets ``count``
        fresh elements of ``dtype`` on its own node."""
        bufs = [
            comm.cluster.nodes[comm.placement[r]].alloc(
                count, dtype=dtype, name=f"win.r{r}"
            )
            for r in range(comm.size)
        ]
        return cls(
            comm, bufs, name=name, passive_all=passive_all,
            coalesce=coalesce,
        )

    # -- introspection ------------------------------------------------------
    @property
    def size(self) -> int:
        return self.comm.size

    def region(self, rank: int) -> Optional[np.ndarray]:
        """Rank ``rank``'s exposed memory (driver/tests view)."""
        return self._arrays[rank]

    def nbytes_of(self, rank: int) -> int:
        arr = self._arrays[rank]
        return 0 if arr is None else int(arr.nbytes)

    def ctx(self, rank: int) -> "WinContext":
        """The window facade rank ``rank`` drives."""
        self.comm._check_rank(rank)
        return WinContext(self, rank)

    def free(self) -> None:
        """Driver-level release; any further operation raises.  Refuses
        while operations are still on the wire (a landing transfer
        would write through the released arrays) — complete them first
        (``flush`` / the collective :meth:`WinContext.free`)."""
        self._ensure_usable()
        if any(pend for pend in self._pending_puts):
            raise RmaError(
                f"cannot free window {self.name!r} with coalesced puts "
                "still buffered (flush first)"
            )
        for lists in self._outgoing:
            for procs in lists.values():
                if any(p.is_alive for p in procs):
                    raise RmaError(
                        f"cannot free window {self.name!r} with "
                        "operations in flight (flush first)"
                    )
        if self._an and any(fins for fins in self._an_fins):
            raise RmaError(
                f"cannot free window {self.name!r} with analytic "
                "operations unflushed (flush first)"
            )
        self._freed = True
        self._arrays = []
        self._device = []
        self._outgoing = []
        self._pending_puts = []
        self._pending_bytes = []
        self._acc_tail.clear()
        if self in self.comm._windows:
            self.comm._windows.remove(self)
        self.comm._count("win_free")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Window {self.name!r} over {self.comm.name!r}>"

    # -- guards -------------------------------------------------------------
    def _ensure_usable(self) -> None:
        self.comm._ensure_alive()
        if self._freed:
            raise RmaError(f"window {self.name!r} has been freed")

    def _require_access(self, origin: int, target: int, what: str) -> None:
        self._ensure_usable()
        self.comm._check_rank(target)
        if self.passive_all:
            return
        mode = self._mode[origin]
        if mode == "fence":
            return
        if mode == "pscw" and target in (self._start_group[origin] or ()):
            return
        if self._lock_all[origin] or target in self._locks_held[origin]:
            return
        raise RmaError(
            f"{what} by rank {origin} targeting rank {target} outside "
            "any access epoch (fence / start / lock first)"
        )

    def _target_view(
        self, target: int, offset: int, count: int, what: str
    ) -> np.ndarray:
        arr = self._arrays[target]
        if arr is None:
            raise RmaError(f"rank {target} exposes a zero-size window")
        flat = arr.reshape(-1)
        if offset < 0 or offset + count > flat.size:
            raise RmaError(
                f"{what}: [{offset}, {offset + count}) outside rank "
                f"{target}'s window of {flat.size} elements"
            )
        return flat[offset : offset + count]

    @staticmethod
    def _as_elems(
        data: Any, dtype: np.dtype, what: str, writable: bool = False
    ) -> np.ndarray:
        arr = data.data if isinstance(data, HostBuffer) else data
        if not isinstance(arr, np.ndarray):
            raise RmaError(f"{what} needs an array payload")
        if arr.dtype != dtype:
            raise RmaError(
                f"{what}: payload dtype {arr.dtype} does not match the "
                f"target window dtype {dtype}"
            )
        if writable and not arr.flags["C_CONTIGUOUS"]:
            # reshape(-1) would hand back a copy and the results would
            # silently vanish into it; fail loudly like the two-sided
            # deliver path does.
            raise RmaError(
                f"{what} needs a C-contiguous result buffer"
            )
        return arr.reshape(-1)

    # -- wire building blocks ----------------------------------------------
    def _setup(self) -> Event:
        """Origin-side WQE/doorbell charge of one one-sided op."""
        return self.sim.timeout(us(self._ib.rma_setup_us))

    def _op_span(
        self, t0: float, t1: float, origin: int, target: int,
        name: str, nbytes: int, **attrs: Any,
    ) -> None:
        """Record one one-sided op as a span on the origin's track.

        Exact procs call this with their own lifetime; analytic issue
        points call it with ``[now, priced fin]`` — the span carries
        the priced duration even though nothing simulates it.
        """
        spans = self.sim.spans
        if spans is not None:
            spans.complete(
                t0, t1, f"{name}->r{target}", "rma.op",
                self.comm.span_track(origin),
                attrs={"nbytes": nbytes, "win": self.name, **attrs},
            )

    def _wire(self, src: int, dst: int, nbytes: int):
        yield from self.comm._wire(src, dst, nbytes)

    def _bounce(self, target: int, nbytes: int):
        """Target-host staging copy of an eager payload (shm channel)."""
        yield from self.comm._wire(target, target, nbytes)

    def _pcie(self, target: int):
        """The target's PCIe link when its window is device memory."""
        dev = self._device[target]
        if dev is None:
            return None
        node = self.comm.cluster.nodes[self.comm.placement[target]]
        return node.gpus[dev.device_id].pcie

    # -- analytic pricers (fast-path backends; see module doc) -------------
    def _an_usable(self, target: int) -> bool:
        """Host-window targets price analytically; device windows keep
        the exact per-op path (PCIe contention)."""
        return self._an and self._device[target] is None

    def _wt(self, src_node: int, dst_node: int, nbytes: int) -> float:
        """Interned uncontended end-to-end wire time of one leg."""
        key = (src_node, dst_node, nbytes)
        cost = self._wt_cache.get(key)
        stats = self.sim.stats
        if cost is None:
            stats.wire_cost_misses += 1
            cost = self.comm.cluster.interconnect.wire_time(
                src_node, dst_node, nbytes
            )
            self._wt_cache[key] = cost
        else:
            stats.wire_cost_hits += 1
        return cost

    def _leg(self, src_node: int, dst_node: int, nbytes: int,
             t: float) -> float:
        """One wire leg starting no earlier than ``t``: serializes on
        the source's injection path, returns the arrival time."""
        if src_node == dst_node:
            # Same-node leg rides the staging channel outright.
            return self._bounce_leg(src_node, nbytes, t)
        interconnect = self.comm.cluster.interconnect
        if interconnect.accounting:
            interconnect.account(src_node, dst_node, nbytes)
        free = self._tx_free.get(src_node, 0.0)
        s = t if t >= free else free
        self._tx_free[src_node] = s + self._alpha_inj + nbytes * self._beta
        return s + self._wt(src_node, dst_node, nbytes)

    def _bounce_leg(self, node: int, nbytes: int, t: float) -> float:
        """Target-host staging copy: serializes on the shm channel."""
        interconnect = self.comm.cluster.interconnect
        if interconnect.accounting:
            interconnect.account(node, node, nbytes)
        free = self._shm_free.get(node, 0.0)
        s = t if t >= free else free
        fin = s + self._wt(node, node, nbytes)
        self._shm_free[node] = fin
        return fin

    def _an_record(self, origin: int, target: int, fin: float) -> float:
        """Book an analytic op's finish into the epoch batch."""
        fins = self._an_fins[origin]
        prev = fins.get(target, 0.0)
        if fin > prev:
            fins[target] = fin
        if fin > self._an_max_fin:
            self._an_max_fin = fin
        self.sim.stats.fastpath_rma_ops += 1
        return fin

    def _an_event(self, fin: float, name: str) -> Event:
        """A real event firing at the computed finish (rput/rget/...)."""
        ev = self.sim.event(name=name)
        batch = EventBatch(self.sim, name="rma")
        batch.add(fin, ev, None)
        batch.commit()
        return ev

    def _an_put(self, origin: int, target: int, nbytes: int,
                t: float) -> float:
        o_n = self.comm.placement[origin]
        t_n = self.comm.placement[target]
        if nbytes <= self._eager_max:
            self.comm._count_unchecked("rma_put[eager]")
            a = self._leg(o_n, t_n, HEADER_BYTES + nbytes, t)
            return self._bounce_leg(t_n, nbytes, a)
        self.comm._count_unchecked("rma_put[rendezvous]")
        # rkey/validation round-trip, then the zero-copy RDMA write.
        # The CTS reply is a response leg: pure wire time, no cursor
        # (a future booking on the target's cursor would delay traffic
        # the target issues *now* — a start-time inversion the exact
        # FIFO channels never exhibit).
        a = self._leg(o_n, t_n, HEADER_BYTES, t)
        a += self._wt(t_n, o_n, HEADER_BYTES)
        return self._leg(o_n, t_n, HEADER_BYTES + nbytes, a)

    def _an_get(self, origin: int, target: int, nbytes: int,
                t: float) -> float:
        o_n = self.comm.placement[origin]
        t_n = self.comm.placement[target]
        a = self._leg(o_n, t_n, HEADER_BYTES, t)
        # Payload return: response leg (see _an_put) — its own
        # serialization is inside the wire time; only its queueing
        # effect on the target's other traffic is dropped.
        return a + self._wt(t_n, o_n, HEADER_BYTES + nbytes)

    def _an_acc(self, origin: int, target: int, nbytes: int, t: float,
                fetch: bool) -> float:
        o_n = self.comm.placement[origin]
        t_n = self.comm.placement[target]
        if nbytes <= self._eager_max:
            self.comm._count_unchecked("rma_accumulate[eager]")
            a = self._leg(o_n, t_n, HEADER_BYTES + nbytes, t)
        else:
            self.comm._count_unchecked("rma_accumulate[rendezvous]")
            a = self._leg(o_n, t_n, HEADER_BYTES, t)
            a += self._wt(t_n, o_n, HEADER_BYTES)
            a = self._leg(o_n, t_n, HEADER_BYTES + nbytes, a)
        # Same-pair program order: the RMW applies behind the previous
        # accumulate of this (origin, target) pair.
        prev = self._acc_free.get((origin, target), 0.0)
        if prev > a:
            a = prev
        fin = self._bounce_leg(t_n, nbytes, a)
        self._acc_free[(origin, target)] = fin
        if fetch:
            fin += self._wt(t_n, o_n, HEADER_BYTES + nbytes)
        return fin

    def _track(self, origin: int, target: int, proc: Process) -> Process:
        lists = self._outgoing[origin]
        procs = lists.setdefault(target, [])
        # Prune completed ops lazily so long passive epochs stay bounded.
        if len(procs) > 32:
            lists[target] = procs = [p for p in procs if p.is_alive]
        procs.append(proc)
        return proc

    # -- the one-sided data movers (spawned processes) ---------------------
    def _put_proc(
        self, origin: int, target: int, data: np.ndarray, offset: int
    ) -> Generator[Event, Any, None]:
        nbytes = int(data.nbytes)
        t0 = self.sim.now
        if nbytes <= self._eager_max:
            self.comm._count_unchecked("rma_put[eager]")
            proto = "eager"
            yield from self._wire(origin, target, HEADER_BYTES + nbytes)
            yield from self._bounce(target, nbytes)
        else:
            self.comm._count_unchecked("rma_put[rendezvous]")
            proto = "rndv"
            # rkey/validation round-trip, then a direct RDMA write into
            # the registered region — no target-side copy.
            yield from self._wire(origin, target, HEADER_BYTES)
            yield from self._wire(target, origin, HEADER_BYTES)
            yield from self._wire(origin, target, HEADER_BYTES + nbytes)
        pcie = self._pcie(target)
        if pcie is not None:
            yield from pcie.write(nbytes)
        view = self._target_view(target, offset, data.size, "put")
        view[...] = data
        self.sim.trace(
            "rma.put", win=self.name, origin=origin, target=target,
            nbytes=nbytes,
        )
        self._op_span(t0, self.sim.now, origin, target, "put", nbytes,
                      proto=proto)

    def _coalesced_put_proc(
        self,
        origin: int,
        target: int,
        ops: List[Tuple[np.ndarray, int]],
        nbytes: int,
    ) -> Generator[Event, Any, None]:
        """One wire transfer carrying a batch of buffered small puts.

        The batch pays a single header and a single fabric traversal —
        the whole point of coalescing — then lands each constituent put
        in issue order through the usual target-side staging copy."""
        self.comm._count_unchecked("rma_put[coalesced_flush]")
        t0 = self.sim.now
        yield from self._wire(origin, target, HEADER_BYTES + nbytes)
        yield from self._bounce(target, nbytes)
        pcie = self._pcie(target)
        if pcie is not None:
            yield from pcie.write(nbytes)
        for data, offset in ops:
            view = self._target_view(target, offset, data.size, "put")
            view[...] = data
        self.sim.trace(
            "rma.put_coalesced", win=self.name, origin=origin,
            target=target, nbytes=nbytes, n_ops=len(ops),
        )
        self._op_span(t0, self.sim.now, origin, target, "put_coalesced",
                      nbytes, n_ops=len(ops))

    def _flush_pending_puts(self, origin: int, target: int) -> None:
        """Materialize the buffered puts to ``target`` (if any) as one
        tracked wire process.  Called from every completion point and
        before any conflicting operation to the same target.

        On the analytic path the batch prices as the single eager-shaped
        transfer it rides (one header, one fabric traversal, one staging
        copy of the byte total); the constituent puts already landed at
        issue time."""
        ops = self._pending_puts[origin].pop(target, None)
        if not ops:
            return
        nbytes = self._pending_bytes[origin].pop(target)
        if self._an_usable(target):
            self.comm._count_unchecked("rma_put[coalesced_flush]")
            o_n = self.comm.placement[origin]
            t_n = self.comm.placement[target]
            a = self._leg(o_n, t_n, HEADER_BYTES + nbytes, self.sim.now)
            fin = self._bounce_leg(t_n, nbytes, a)
            self._an_record(origin, target, fin)
            self.sim.trace(
                "rma.put_coalesced", win=self.name, origin=origin,
                target=target, nbytes=nbytes, n_ops=len(ops),
            )
            self._op_span(self.sim.now, fin, origin, target,
                          "put_coalesced", nbytes, n_ops=len(ops))
            return
        proc = self.sim.process(
            self._coalesced_put_proc(origin, target, ops, nbytes),
            name=f"{self.name}.cput(r{origin}->r{target})",
        )
        self._track(origin, target, proc)

    def _get_proc(
        self,
        origin: int,
        target: int,
        recvbuf: np.ndarray,
        offset: int,
    ) -> Generator[Event, Any, None]:
        count = recvbuf.size
        view = self._target_view(target, offset, count, "get")
        nbytes = int(view.nbytes)
        t0 = self.sim.now
        yield from self._wire(origin, target, HEADER_BYTES)
        pcie = self._pcie(target)
        if pcie is not None:
            yield from pcie.read(nbytes)
        # Snapshot at the instant the NIC reads the region: writes
        # landing while the payload is on the wire must not appear in
        # the result (the real RDMA read could not have carried them).
        data = self._target_view(target, offset, count, "get").copy()
        yield from self._wire(target, origin, HEADER_BYTES + nbytes)
        recvbuf[...] = data
        self.sim.trace(
            "rma.get", win=self.name, origin=origin, target=target,
            nbytes=nbytes,
        )
        self._op_span(t0, self.sim.now, origin, target, "get", nbytes)

    def _acc_proc(
        self,
        origin: int,
        target: int,
        data: np.ndarray,
        offset: int,
        op: ReduceOp,
        prev: Optional[Event],
        done: Event,
        fetch_into: Optional[np.ndarray] = None,
    ) -> Generator[Event, Any, None]:
        nbytes = int(data.nbytes)
        t0 = self.sim.now
        try:
            if nbytes <= self._eager_max:
                self.comm._count_unchecked("rma_accumulate[eager]")
                yield from self._wire(origin, target, HEADER_BYTES + nbytes)
            else:
                self.comm._count_unchecked("rma_accumulate[rendezvous]")
                yield from self._wire(origin, target, HEADER_BYTES)
                yield from self._wire(target, origin, HEADER_BYTES)
                yield from self._wire(origin, target, HEADER_BYTES + nbytes)
            # MPI ordering guarantee: accumulates between the same
            # (origin, target) pair apply in program order.
            if prev is not None and not prev.triggered:
                yield prev
            pcie = self._pcie(target)
            if pcie is not None:
                # Read-modify-write through the target's PCIe link.
                yield from pcie.read(nbytes)
            # The read-modify-write pass through target memory (an
            # accumulate can never be a zero-copy NIC write).
            yield from self._bounce(target, nbytes)
            view = self._target_view(target, offset, data.size, "accumulate")
            if fetch_into is not None:
                fetch_into[...] = view
            view[...] = op.combine(view, data)
            if pcie is not None:
                yield from pcie.write(nbytes)
            if fetch_into is not None:
                yield from self._wire(target, origin, HEADER_BYTES + nbytes)
            self.sim.trace(
                "rma.accumulate", win=self.name, origin=origin,
                target=target, nbytes=nbytes, op=op.value,
            )
            self._op_span(t0, self.sim.now, origin, target, "accumulate",
                          nbytes, op=op.value)
        finally:
            done.succeed(None)

    # -- op issue (shared by WinContext and the DCGN comm threads) ---------
    def start_put(
        self,
        origin: int,
        target: int,
        data: Any,
        offset: int = 0,
        snapshot: bool = True,
        defer: bool = False,
        want_event: bool = False,
    ) -> Generator[Event, Any, Optional[Event]]:
        """Charge the origin setup and launch the put's wire process.

        ``snapshot=False`` skips the defensive payload copy when the
        caller already owns a private snapshot (the DCGN comm threads
        do — their requests snapshotted at kernel issue/harvest time).

        ``defer=True`` (only honoured on a ``coalesce=True`` window,
        for small eager payloads) buffers the put instead of launching
        it and returns ``None``; the batch rides one wire transfer at
        the next completion point or conflicting operation.

        ``want_event=True`` asks for a waitable completion (``rput``);
        without it the analytic path books only the finish time — no
        per-op event, no heap entry.
        """
        self._require_access(origin, target, "put")
        an = self._an_usable(target)
        dtype = self._window_dtype(target, "put")
        payload = self._as_elems(data, dtype, "put")
        if snapshot and not an:
            # Analytic never copies: the bytes land synchronously at
            # issue (epochs forbid conflicting access until the sync).
            payload = payload.copy()
        self._target_view(target, offset, payload.size, "put")  # bounds
        self.comm._count("rma_put")
        nbytes = int(payload.nbytes)
        if defer and self.coalesce and nbytes <= self._eager_max:
            self.comm._count_unchecked("rma_put[coalesced]")
            self.sim.stats.rma_coalesced_puts += 1
            yield self._setup()
            if an:
                if not self._price_only:
                    view = self._target_view(
                        target, offset, payload.size, "put"
                    )
                    view[...] = payload
                pend = self._pending_puts[origin].setdefault(target, [])
                pend.append((None, offset))
            else:
                pend = self._pending_puts[origin].setdefault(target, [])
                pend.append(
                    (payload if snapshot else payload.copy(), offset)
                )
            total = self._pending_bytes[origin].get(target, 0) + nbytes
            self._pending_bytes[origin][target] = total
            if total > self._eager_max:
                # Batch outgrew the eager path: put it on the wire now.
                self._flush_pending_puts(origin, target)
            return None
        self._flush_pending_puts(origin, target)
        yield self._setup()
        if an:
            fin = self._an_put(origin, target, nbytes, self.sim.now)
            self._an_record(origin, target, fin)
            if not self._price_only:
                view = self._target_view(target, offset, payload.size, "put")
                view[...] = payload
            self.sim.trace(
                "rma.put", win=self.name, origin=origin, target=target,
                nbytes=nbytes,
            )
            self._op_span(self.sim.now, fin, origin, target, "put", nbytes,
                          proto="analytic")
            if want_event:
                return self._an_event(
                    fin, f"{self.name}.put(r{origin}->r{target})"
                )
            return None
        proc = self.sim.process(
            self._put_proc(origin, target, payload, offset),
            name=f"{self.name}.put(r{origin}->r{target})",
        )
        return self._track(origin, target, proc)

    def start_get(
        self, origin: int, target: int, recvbuf: Any, offset: int = 0
    ) -> Generator[Event, Any, Event]:
        self._require_access(origin, target, "get")
        # A get must observe this origin's earlier puts (program order
        # per origin-target pair): flush any buffered batch first.
        self._flush_pending_puts(origin, target)
        dtype = self._window_dtype(target, "get")
        dst = self._as_elems(recvbuf, dtype, "get", writable=True)
        self._target_view(target, offset, dst.size, "get")  # bounds
        self.comm._count("rma_get")
        yield self._setup()
        if self._an_usable(target):
            nbytes = int(dst.nbytes)
            fin = self._an_get(origin, target, nbytes, self.sim.now)
            self._an_record(origin, target, fin)
            if not self._price_only:
                # Snapshot now = snapshot at NIC read: epoch discipline
                # means no conflicting write can land in between.
                dst[...] = self._target_view(target, offset, dst.size, "get")
            self.sim.trace(
                "rma.get", win=self.name, origin=origin, target=target,
                nbytes=nbytes,
            )
            self._op_span(self.sim.now, fin, origin, target, "get", nbytes,
                          proto="analytic")
            # A get always has an observable completion (the data).
            return self._an_event(
                fin, f"{self.name}.get(r{origin}<-r{target})"
            )
        proc = self.sim.process(
            self._get_proc(origin, target, dst, offset),
            name=f"{self.name}.get(r{origin}<-r{target})",
        )
        return self._track(origin, target, proc)

    def start_accumulate(
        self,
        origin: int,
        target: int,
        data: Any,
        op: Union[str, ReduceOp] = ReduceOp.SUM,
        offset: int = 0,
        fetch_into: Optional[np.ndarray] = None,
        snapshot: bool = True,
        want_event: bool = False,
    ) -> Generator[Event, Any, Optional[Event]]:
        what = "get_accumulate" if fetch_into is not None else "accumulate"
        self._require_access(origin, target, what)
        an = self._an_usable(target)
        self._flush_pending_puts(origin, target)
        op = ReduceOp(op)
        dtype = self._window_dtype(target, what)
        payload = self._as_elems(data, dtype, what)
        if snapshot and not an:
            payload = payload.copy()
        self._target_view(target, offset, payload.size, what)  # bounds
        self.comm._count("rma_accumulate")
        yield self._setup()
        if an:
            fin = self._an_acc(
                origin, target, int(payload.nbytes), self.sim.now,
                fetch_into is not None,
            )
            self._an_record(origin, target, fin)
            if not self._price_only:
                # Issue order per (origin, target) IS program order, so
                # applying synchronously preserves the MPI accumulate
                # ordering guarantee by construction.
                view = self._target_view(target, offset, payload.size, what)
                if fetch_into is not None:
                    fetch_into[...] = view
                view[...] = op.combine(view, payload)
            self.sim.trace(
                "rma.accumulate", win=self.name, origin=origin,
                target=target, nbytes=int(payload.nbytes), op=op.value,
            )
            self._op_span(self.sim.now, fin, origin, target, "accumulate",
                          int(payload.nbytes), proto="analytic",
                          op=op.value)
            if want_event or fetch_into is not None:
                return self._an_event(
                    fin, f"{self.name}.acc(r{origin}->r{target})"
                )
            return None
        prev = self._acc_tail.get((origin, target))
        done = self.sim.event(name=f"{self.name}.accdone")
        self._acc_tail[(origin, target)] = done
        proc = self.sim.process(
            self._acc_proc(
                origin, target, payload, offset, op, prev, done,
                fetch_into=fetch_into,
            ),
            name=f"{self.name}.acc(r{origin}->r{target})",
        )
        return self._track(origin, target, proc)

    def _window_dtype(self, target: int, what: str) -> np.dtype:
        arr = self._arrays[target]
        if arr is None:
            raise RmaError(
                f"{what}: rank {target} exposes a zero-size window"
            )
        return arr.dtype

    # -- completion --------------------------------------------------------
    def flush_ops(
        self, origin: int, target: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """Wait until this origin's operations (to ``target``, or all)
        have completed *remotely*.

        Analytic ops resolve to one computed instant per (origin,
        target) pair — the wait is a single timeout to the latest
        finish, not a per-op process join.  Device-window ops (exact
        even on a fast-path backend) still join their processes."""
        if target is not None:
            self._flush_pending_puts(origin, target)
        else:
            for t in list(self._pending_puts[origin]):
                self._flush_pending_puts(origin, t)
        lists = self._outgoing[origin]
        targets = [target] if target is not None else list(lists)
        for t in targets:
            for proc in lists.get(t, []):
                if proc.is_alive:
                    yield proc
            lists[t] = []
        if self._an:
            fins = self._an_fins[origin]
            if target is not None:
                t_max = fins.pop(target, 0.0)
            else:
                t_max = max(fins.values(), default=0.0)
                fins.clear()
            now = self.sim.now
            if t_max > now:
                yield self.sim.timeout(t_max - now)

    # -- passive-target lock machinery (NIC-side state) --------------------
    def _acquire(
        self, origin: int, target: int, exclusive: bool
    ) -> Generator[Event, Any, None]:
        st = self._lock_state[target]
        if st.can_grant(exclusive) and not st.waitq:
            st.holders[origin] = exclusive
            return
        kind = "excl" if exclusive else "shared"
        holders = ",".join(
            f"r{o}" for o in sorted(st.holders)
        ) or "granting"
        ev = self.sim.event(
            name=(
                f"{self.name}.lockwait({kind} r{origin}@r{target} "
                f"behind {holders})"
            )
        )
        st.waitq.append((ev, origin, exclusive))
        yield ev

    def _release(self, origin: int, target: int) -> None:
        st = self._lock_state[target]
        st.holders.pop(origin, None)
        while st.waitq:
            ev, o, exclusive = st.waitq[0]
            if not st.can_grant(exclusive):
                break
            st.waitq.pop(0)
            st.holders[o] = exclusive
            ev.succeed(None)


class WinContext:
    """Rank-bound facade of a :class:`Window`: what a rank's program
    calls.  All communication/synchronization methods are generators —
    ``yield from`` them inside a simulated process.  The request-based
    :meth:`rput`/:meth:`rget` are generators too (they charge the
    origin-side issue cost), returning a
    :class:`~repro.mpi.communicator.Request` whose ``wait`` observes
    completion: ``req = yield from w.rput(...)``.
    """

    def __init__(self, win: Window, rank: int) -> None:
        self.win = win
        self.rank = rank
        self.sim = win.sim
        self.comm = win.comm

    # -- identity -----------------------------------------------------------
    @property
    def size(self) -> int:
        return self.win.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WinContext rank={self.rank} win={self.win.name!r}>"

    @property
    def local(self) -> Optional[np.ndarray]:
        """This rank's own exposed memory (read after sync)."""
        return self.win.region(self.rank)

    def _mpi_ctx(self) -> MpiContext:
        return self.comm.ctx(self.rank)

    # -- one-sided operations ----------------------------------------------
    def put(
        self, target: int, data: Any, offset: int = 0
    ) -> Generator[Event, Any, None]:
        """One-sided write of ``data`` into ``target``'s window at
        element ``offset``.  Returns after the origin-side issue; the
        transfer completes at the next synchronization (or
        :meth:`flush`).  On a ``coalesce=True`` window, small eager
        puts are buffered and batched onto one wire transfer at that
        completion point."""
        yield from self.win.start_put(
            self.rank, target, data, offset, defer=True
        )

    def rput(
        self, target: int, data: Any, offset: int = 0
    ) -> Generator[Event, Any, Request]:
        """Request-based put (``req = yield from w.rput(...)``):
        ``req.wait()`` guarantees *remote* completion — the bytes are
        visible in the target window."""
        proc = yield from self.win.start_put(
            self.rank, target, data, offset, want_event=True
        )
        return Request(proc)

    def get(
        self, target: int, recvbuf: Any, offset: int = 0
    ) -> Generator[Event, Any, None]:
        """One-sided read of ``recvbuf.size`` elements from ``target``'s
        window at ``offset`` into ``recvbuf``.  Blocking form: returns
        once the data has arrived."""
        proc = yield from self.win.start_get(
            self.rank, target, recvbuf, offset
        )
        yield proc

    def rget(
        self, target: int, recvbuf: Any, offset: int = 0
    ) -> Generator[Event, Any, Request]:
        """Request-based get (``req = yield from w.rget(...)``);
        ``req.wait()`` returns once ``recvbuf`` is filled."""
        proc = yield from self.win.start_get(
            self.rank, target, recvbuf, offset
        )
        return Request(proc)

    def accumulate(
        self,
        target: int,
        data: Any,
        op: Union[str, ReduceOp] = ReduceOp.SUM,
        offset: int = 0,
    ) -> Generator[Event, Any, None]:
        """One-sided read-modify-write: ``win[target][off:] = win OP
        data``.  Same-(origin, target) accumulates apply in program
        order (the MPI ordering guarantee); ``ReduceOp.REPLACE`` turns
        this into MPI_Put-with-ordering."""
        yield from self.win.start_accumulate(
            self.rank, target, data, op=op, offset=offset
        )

    def get_accumulate(
        self,
        target: int,
        data: Any,
        result: Any,
        op: Union[str, ReduceOp] = ReduceOp.SUM,
        offset: int = 0,
    ) -> Generator[Event, Any, None]:
        """Atomic fetch-and-accumulate: ``result`` receives the target
        elements as they were *before* ``data`` was combined in.
        Blocking form (returns once ``result`` is filled)."""
        dtype = self.win._window_dtype(target, "get_accumulate")
        dst = Window._as_elems(
            result, dtype, "get_accumulate", writable=True
        )
        proc = yield from self.win.start_accumulate(
            self.rank, target, data, op=op, offset=offset, fetch_into=dst
        )
        yield proc

    def fetch_and_op(
        self,
        target: int,
        value: Any,
        result: Any,
        op: Union[str, ReduceOp] = ReduceOp.SUM,
        offset: int = 0,
    ) -> Generator[Event, Any, None]:
        """Single-element atomic fetch-and-op (``MPI_Fetch_and_op``)."""
        yield from self.get_accumulate(
            target, value, result, op=op, offset=offset
        )

    # -- observability ------------------------------------------------------
    def _espan(self, name: str):
        """Open an ``rma.epoch`` span on this rank's track (or None)."""
        spans = self.sim.spans
        if spans is None:
            return None
        return spans.begin(
            self.sim.now, name, "rma.epoch",
            self.comm.span_track(self.rank),
            attrs={"win": self.win.name},
        )

    def _espan_end(self, sp) -> None:
        if sp is not None and self.sim.spans is not None:
            self.sim.spans.end(self.sim.now, sp)

    # -- active-target synchronization: fence ------------------------------
    def fence(self, end: bool = False) -> Generator[Event, Any, None]:
        """Collective fence: completes every operation this rank issued
        (remote completion), then synchronizes all ranks — after it
        returns, every rank's window reflects every pre-fence operation.

        As in MPI, every fence both closes the preceding epoch and
        opens the next one, so RMA calls are legal between any two
        fences.  ``end=True`` (the ``MPI_MODE_NOSUCCEED`` assertion)
        declares that no epoch follows: the access epoch closes, later
        operations raise, and other sync modes (PSCW, locks) become
        usable again."""
        self.win._ensure_usable()
        self.comm._count("rma_fence")
        from . import collectives as c

        sp = self._espan("fence")
        yield from self.win.flush_ops(self.rank)
        yield from c.barrier(self._mpi_ctx())
        self.win._mode[self.rank] = None if end else "fence"
        self._espan_end(sp)

    # -- active-target synchronization: PSCW -------------------------------
    def post(self, origins: Sequence[int]) -> Generator[Event, Any, None]:
        """Expose this rank's window to ``origins`` (MPI_Win_post).
        Non-blocking: the post notifications are injected and travel
        while this rank continues."""
        win = self.win
        win._ensure_usable()
        if win._exposure[self.rank] is not None:
            raise RmaError(
                f"rank {self.rank} already has an exposure epoch open"
            )
        origins = tuple(sorted(set(int(o) for o in origins)))
        for o in origins:
            self.comm._check_rank(o)
            if o == self.rank:
                raise RmaError("a rank cannot post to itself")
        win._exposure[self.rank] = origins
        self.comm._count("rma_post")
        tag = RMA_TAG_BASE + win.wid * _TAG_STRIDE + _TAG_POST
        sp = self._espan("post")
        yield self.sim.timeout(us(win._ib.rma_setup_us))
        for o in origins:
            self.sim.process(
                self.comm._send_impl(self.rank, o, None, tag),
                name=f"{win.name}.post(r{self.rank}->r{o})",
            )
        self._espan_end(sp)

    def start(self, targets: Sequence[int]) -> Generator[Event, Any, None]:
        """Open an access epoch to ``targets`` (MPI_Win_start): waits
        until each target's matching :meth:`post` notification arrives."""
        win = self.win
        win._ensure_usable()
        if win._mode[self.rank] is not None:
            raise RmaError(
                f"rank {self.rank} already has an access epoch open "
                f"({win._mode[self.rank]})"
            )
        targets = tuple(sorted(set(int(t) for t in targets)))
        tag = RMA_TAG_BASE + win.wid * _TAG_STRIDE + _TAG_POST
        sp = self._espan("start")
        for t in targets:
            self.comm._check_rank(t)
            yield from self.comm._recv_impl(self.rank, t, None, tag)
        self._espan_end(sp)
        win._mode[self.rank] = "pscw"
        win._start_group[self.rank] = frozenset(targets)
        self.comm._count("rma_start")

    def complete(self) -> Generator[Event, Any, None]:
        """Close the access epoch (MPI_Win_complete): completes all
        operations of this epoch, then notifies the targets."""
        win = self.win
        win._ensure_usable()
        if win._mode[self.rank] != "pscw":
            raise RmaError(
                f"rank {self.rank} has no PSCW access epoch to complete"
            )
        group = win._start_group[self.rank] or frozenset()
        sp = self._espan("complete")
        yield from win.flush_ops(self.rank)
        tag = RMA_TAG_BASE + win.wid * _TAG_STRIDE + _TAG_COMPLETE
        for t in sorted(group):
            self.sim.process(
                self.comm._send_impl(self.rank, t, None, tag),
                name=f"{win.name}.complete(r{self.rank}->r{t})",
            )
        self._espan_end(sp)
        win._mode[self.rank] = None
        win._start_group[self.rank] = None
        self.comm._count("rma_complete")

    def wait_sync(self) -> Generator[Event, Any, None]:
        """Close the exposure epoch (MPI_Win_wait): waits for the
        :meth:`complete` notification of every posted origin — after it
        returns, their operations are visible in this rank's window."""
        win = self.win
        win._ensure_usable()
        origins = win._exposure[self.rank]
        if origins is None:
            raise RmaError(
                f"rank {self.rank} has no exposure epoch to wait on"
            )
        tag = RMA_TAG_BASE + win.wid * _TAG_STRIDE + _TAG_COMPLETE
        sp = self._espan("wait")
        for o in origins:
            yield from self.comm._recv_impl(self.rank, o, None, tag)
        self._espan_end(sp)
        win._exposure[self.rank] = None
        self.comm._count("rma_wait")

    # -- passive-target synchronization ------------------------------------
    def lock(
        self, target: int, exclusive: bool = False
    ) -> Generator[Event, Any, None]:
        """Acquire ``target``'s window lock (shared by default).  The
        lock lives at the target NIC: acquisition costs one header
        round-trip plus any wait for conflicting holders; the target
        CPU is never involved."""
        win = self.win
        win._ensure_usable()
        self.comm._check_rank(target)
        if target in win._locks_held[self.rank] or win._lock_all[self.rank]:
            raise RmaError(
                f"rank {self.rank} already holds a lock on rank {target}"
            )
        self.comm._count("rma_lock")
        sp = self._espan("lock")
        yield self.sim.timeout(us(win._ib.rma_setup_us))
        yield from win._wire(self.rank, target, HEADER_BYTES)
        yield from win._acquire(self.rank, target, exclusive)
        yield from win._wire(target, self.rank, HEADER_BYTES)
        self._espan_end(sp)
        win._locks_held[self.rank][target] = exclusive

    def unlock(self, target: int) -> Generator[Event, Any, None]:
        """Release ``target``'s lock; completes this origin's pending
        operations to it first (flush semantics, as in MPI)."""
        win = self.win
        win._ensure_usable()
        if target not in win._locks_held[self.rank]:
            raise RmaError(
                f"rank {self.rank} holds no lock on rank {target}"
            )
        sp = self._espan("unlock")
        yield from win.flush_ops(self.rank, target)
        yield from win._wire(self.rank, target, HEADER_BYTES)
        self._espan_end(sp)
        del win._locks_held[self.rank][target]
        win._release(self.rank, target)
        self.comm._count("rma_unlock")

    def lock_all(self) -> Generator[Event, Any, None]:
        """Shared-lock every rank's window (MPI_Win_lock_all).  Lazy
        acquisition (no per-target wire traffic), as real
        implementations defer it to first access — but conflicting
        exclusive holders are still waited for."""
        win = self.win
        win._ensure_usable()
        if win._lock_all[self.rank] or win._locks_held[self.rank]:
            raise RmaError(
                f"rank {self.rank} already holds window locks"
            )
        self.comm._count("rma_lock_all")
        sp = self._espan("lock_all")
        yield self.sim.timeout(us(win._ib.rma_setup_us))
        for t in range(win.size):
            yield from win._acquire(self.rank, t, False)
        self._espan_end(sp)
        win._lock_all[self.rank] = True

    def unlock_all(self) -> Generator[Event, Any, None]:
        """Release every lock taken by :meth:`lock_all` (flushes first)."""
        win = self.win
        win._ensure_usable()
        if not win._lock_all[self.rank]:
            raise RmaError(f"rank {self.rank} holds no lock_all")
        sp = self._espan("unlock_all")
        yield from win.flush_ops(self.rank)
        yield self.sim.timeout(us(win._ib.rma_setup_us))
        for t in range(win.size):
            win._release(self.rank, t)
        self._espan_end(sp)
        win._lock_all[self.rank] = False
        self.comm._count("rma_unlock_all")

    def flush(self, target: int) -> Generator[Event, Any, None]:
        """Complete (remotely) every pending operation to ``target``."""
        self.win._ensure_usable()
        self.comm._count("rma_flush")
        sp = self._espan("flush")
        yield from self.win.flush_ops(self.rank, target)
        self._espan_end(sp)

    def flush_all(self) -> Generator[Event, Any, None]:
        """Complete (remotely) every pending operation of this rank."""
        self.win._ensure_usable()
        self.comm._count("rma_flush")
        sp = self._espan("flush_all")
        yield from self.win.flush_ops(self.rank)
        self._espan_end(sp)

    # -- lifetime -----------------------------------------------------------
    def free(self) -> Generator[Event, Any, None]:
        """Collective window release: completes local operations,
        synchronizes, then frees.  Further use raises
        :class:`~repro.mpi.errors.RmaError`."""
        win = self.win
        win._ensure_usable()
        from . import collectives as c

        yield from win.flush_ops(self.rank)
        yield from c.barrier(self._mpi_ctx())
        if not win._freed:
            win.free()
