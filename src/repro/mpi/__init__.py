"""Simulated MPI (the MVAPICH2-like baseline library)."""

from .algorithms import (
    ALGORITHMS,
    AlgorithmSelector,
    CollectiveTuning,
    SEED_TUNING,
    autotune_tuning,
    derive_tuning,
)
from .communicator import (
    COMM_TYPE_LOCALITY,
    COMM_TYPE_NODE,
    HEADER_BYTES,
    Communicator,
    MpiContext,
    Request,
)
from .datatypes import ReduceOp, payload_array, snapshot
from .errors import MpiError, RankError, RmaError, TagError, TruncationError
from .group import GROUP_EMPTY, UNDEFINED, Group
from .rma import Window, WinContext
from .job import (
    MpiJob,
    block_placement,
    pod_cyclic_placement,
    round_robin_placement,
)
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = [
    "ALGORITHMS",
    "AlgorithmSelector",
    "CollectiveTuning",
    "SEED_TUNING",
    "autotune_tuning",
    "derive_tuning",
    "Communicator",
    "MpiContext",
    "Request",
    "HEADER_BYTES",
    "Group",
    "GROUP_EMPTY",
    "UNDEFINED",
    "COMM_TYPE_NODE",
    "COMM_TYPE_LOCALITY",
    "ReduceOp",
    "payload_array",
    "snapshot",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiJob",
    "block_placement",
    "round_robin_placement",
    "pod_cyclic_placement",
    "MpiError",
    "RankError",
    "RmaError",
    "TagError",
    "TruncationError",
    "Window",
    "WinContext",
]
