"""Receive-status records (the analogue of ``MPI_Status``)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status", "ANY_SOURCE", "ANY_TAG"]

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Source, tag and byte count of a completed receive."""

    source: int
    tag: int
    nbytes: int
