"""MPI job launcher: ``mpiexec`` for the simulated cluster."""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence

from ..hw.cluster import Cluster
from ..sim.core import Event, Process
from .communicator import Communicator, MpiContext
from .errors import MpiError

__all__ = [
    "MpiJob",
    "block_placement",
    "round_robin_placement",
    "pod_cyclic_placement",
]


def block_placement(n_ranks: int, n_nodes: int) -> List[int]:
    """Fill nodes in blocks (ranks 0..k-1 on node 0, ...).

    This matches the paper's setup note for Figure 7: "Up to two MPI
    processes ... run on the same node" — 8 ranks over 4 nodes become
    [0,0,1,1,2,2,3,3].  Uneven divisions follow standard MPI block
    semantics: the first ``n_ranks mod n_nodes`` nodes take one extra
    rank — 7 ranks over 3 nodes become [0,0,0,1,1,2,2] — so odd rank
    counts run on any cluster.  Fewer ranks than nodes leaves the
    trailing nodes empty.
    """
    if n_ranks < 1 or n_nodes < 1:
        raise MpiError("block_placement needs >= 1 rank and >= 1 node")
    base, extra = divmod(n_ranks, n_nodes)
    placement: List[int] = []
    for node in range(n_nodes):
        count = base + (1 if node < extra else 0)
        placement.extend([node] * count)
    return placement


def round_robin_placement(n_ranks: int, n_nodes: int) -> List[int]:
    """Cycle ranks over nodes (0,1,2,3,0,1,...)."""
    return [r % n_nodes for r in range(n_ranks)]


def pod_cyclic_placement(n_nodes: int, pod_size: int) -> List[int]:
    """Cycle ranks over *pods* (Slurm-cyclic style), one rank per node.

    Rank ``r`` lands in pod ``r mod G`` at slot ``r div G`` (G = number
    of pods), so consecutive ranks sit in different pods — the
    fragmented placement a busy scheduler produces on a pod-structured
    fabric, and the regime where the hierarchical collectives pay off.
    ``n_nodes`` must be a multiple of ``pod_size`` (else the cyclic
    formula would collide node ids).
    """
    if pod_size < 1:
        raise MpiError("pod_size must be >= 1")
    if n_nodes % pod_size != 0:
        raise MpiError(
            f"{n_nodes} nodes do not divide into pods of {pod_size}"
        )
    G = n_nodes // pod_size
    return [(r % G) * pod_size + (r // G) for r in range(n_nodes)]


class MpiJob:
    """A set of MPI processes with a COMM_WORLD over the cluster.

    ``tuning`` (a :class:`repro.mpi.algorithms.CollectiveTuning`) adjusts
    the communicator's collective-algorithm selection thresholds.
    ``backend`` selects the collective execution engine: ``"exact"``
    (default, per-packet simulation), ``"analytic"`` (the fast-path
    backend of :mod:`repro.mpi.algorithms.fastpath` — analytic timing,
    bit-exact data), or ``"pricing"`` (analytic timing only; collective
    receive buffers are left untouched — sweep mode).
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: Sequence[int],
        tuning=None,
        backend: str = "exact",
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.comm = Communicator(
            cluster, placement, tuning=tuning, backend=backend
        )
        self._procs: List[Process] = []

    @property
    def size(self) -> int:
        return self.comm.size

    def start(
        self,
        fn: Callable[..., Generator[Event, Any, Any]],
        *args: Any,
        ranks: Optional[Sequence[int]] = None,
    ) -> List[Process]:
        """Spawn ``fn(ctx, *args)`` as a process for each rank.

        ``ranks`` restricts which ranks run this function (so different
        programs can run on different ranks, as in master/worker apps).
        """
        targets = range(self.size) if ranks is None else ranks
        procs = []
        for r in targets:
            ctx = self.comm.ctx(r)
            p = self.sim.process(fn(ctx, *args), name=f"mpi.rank{r}")
            procs.append(p)
        self._procs.extend(procs)
        return procs

    def run(self, until: Optional[float] = None) -> List[Any]:
        """Run the simulation; returns per-process results in spawn order."""
        self.sim.run(until=until)
        for p in self._procs:
            if p.is_alive:
                raise MpiError(f"{p} still alive after run()")
        return [p.value for p in self._procs]

    def shutdown(self) -> None:
        """Release the job's COMM_WORLD (``MPI_Finalize`` analogue).

        Call after :meth:`run` when many jobs churn on one long-lived
        cluster — a serving scheduler, a parameter sweep — so each
        retired world's matching stores and schedule engine drop
        instead of accumulating.  The job is unusable afterwards.
        """
        if not self.comm._freed:
            self.comm.release()
        self._procs.clear()
