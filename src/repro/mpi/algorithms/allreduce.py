"""Allreduce algorithms: reduce+bcast (seed), recursive doubling, ring.

Cost shapes (P ranks, n bytes, α latency, β per-byte):

* ``reduce_bcast`` — 2·⌈log2 P⌉·(α + nβ): the MVAPICH2 general-case
  fallback the seed shipped with.
* ``recursive_doubling`` — ⌈log2 P⌉·(α + nβ) (+2 fold steps when P is
  not a power of two): best when latency dominates.
* ``ring`` — 2·(P−1)·α + 2·n·β·(P−1)/P: bandwidth-optimal
  reduce-scatter + allgather (the Rabenseifner scatter-allgather family),
  best for large messages.

Every algorithm is expressed as a round-based :class:`Schedule` (a
``build_*`` function) executed by the communicator's
:class:`~repro.mpi.algorithms.schedule.ScheduleEngine`; the blocking
entry points below run the same schedules to completion, so blocking
and nonblocking (``iallreduce``) calls share one code path and one
timing model.

All :class:`~repro.mpi.datatypes.ReduceOp` operators are commutative, so
the fold-in step of non-power-of-two recursive doubling is safe; combines
still run lower-rank-first so floating-point results stay deterministic
per rank.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..datatypes import AdoptBuf, Payload, ReduceOp, payload_array
from ..errors import MpiError
from .base import hier_ok as _hier_ok, largest_pof2, next_tag
from .schedule import Schedule

__all__ = [
    "build_allreduce_reduce_bcast",
    "build_allreduce_recursive_doubling",
    "build_allreduce_ring",
    "append_ring_reduce_scatter",
    "append_ring_allgather",
]


def _setup(ctx, sendbuf: Payload, recvbuf: Payload):
    src = payload_array(sendbuf)
    out = payload_array(recvbuf)
    if src is None:
        raise MpiError("allreduce requires an array payload")
    if out is None:
        raise MpiError("allreduce requires a recv buffer on every rank")
    return src, out


def build_allreduce_reduce_bcast(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Schedule:
    """Reduce to rank 0, then broadcast (the seed's fixed algorithm).

    Composed from the binomial-reduce and broadcast schedules; the bcast
    leg is selector-dispatched exactly like a standalone ``bcast`` call
    (same counters, same tag sequence), so timings match the old
    generator composition byte for byte.
    """
    from ...hw.memory import nbytes_of
    from .bcast import append_bcast
    from .reduce import append_reduce_binomial

    _setup(ctx, sendbuf, recvbuf)
    sched = Schedule()
    ctx.comm._count("reduce")
    ends = append_reduce_binomial(
        sched, ctx, sendbuf,
        recvbuf if ctx.rank == 0 else None,
        op=op, root=0, after=(),
    )
    ctx.comm._count("bcast")
    nbytes = nbytes_of(recvbuf) if recvbuf is not None else 0
    algo = ctx.comm.selector.bcast(nbytes, ctx.size, hier_ok=_hier_ok(ctx))
    ctx.comm._count(f"bcast[{algo}]")
    # The bcast leg's rounds start past the reduce leg's on EVERY rank:
    # the offset is the binomial tree's global depth, not this rank's
    # own round count (a leaf's reduce part is a single round).
    append_bcast(algo, sched, ctx, recvbuf, root=0, after=ends,
                 round0=(ctx.size - 1).bit_length())
    return sched


def build_allreduce_recursive_doubling(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Schedule:
    """Recursive-doubling allreduce (MPICH small-message algorithm).

    Non-power-of-two sizes use the standard fold: the first 2·rem ranks
    pair up (even sends to odd) so ``pof2`` ranks run the doubling
    rounds, then the even partners receive the final result back.
    """
    src, out = _setup(ctx, sendbuf, recvbuf)
    size, rank = ctx.size, ctx.rank
    sched = Schedule()
    st = {"acc": src.copy()}
    if size == 1:
        sched.overhead()
        sched.compute(
            lambda: out.__setitem__(..., st["acc"].reshape(out.shape)),
            after=(sched.last,),
        )
        return sched
    tag = next_tag(ctx)
    pof2 = largest_pof2(size)
    rem = size - pof2
    deps: List[int] = []
    rnd = 0
    # Fold-in (tag offset 4): even ranks below 2·rem contribute and sit out.
    if rank < 2 * rem:
        if rank % 2 == 0:
            # donate: acc is rebound, never mutated, and the fold-out
            # recv that overwrites it is causally behind the partner's
            # fold-in, which is the last read of the donated array.
            deps = [sched.send(lambda: st["acc"], rank + 1, tag + 4,
                               donate=True)]
            newrank = -1
        else:
            tmp0 = AdoptBuf(st["acc"])
            r = sched.recv(tmp0, rank - 1, tag + 4)

            def fold_in(tmp0=tmp0):
                st["acc"] = op.combine(tmp0.arr, st["acc"])

            deps = [sched.compute(fold_in, after=(r,))]
            newrank = rank // 2
    else:
        newrank = rank - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            rnd += 1
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem
                else partner_new + rem
            )
            tmp = AdoptBuf(st["acc"])
            # donate: acc is rebound (never mutated), so the in-flight
            # array can never observe a later write — the partner may
            # adopt it as its combine input.
            s = sched.send(lambda: st["acc"], partner, tag,
                           after=deps, round=rnd, donate=True)
            r = sched.recv(tmp, partner, tag, after=deps, round=rnd)

            def combine(tmp=tmp, partner=partner):
                st["acc"] = (
                    op.combine(tmp.arr, st["acc"])
                    if partner < rank
                    else op.combine(st["acc"], tmp.arr)
                )

            deps = [sched.compute(combine, after=(s, r), round=rnd)]
            mask <<= 1
    # Fold-out (tag offset 5): odd partners hand the result back.
    if rank < 2 * rem:
        rnd += 1
        if rank % 2 == 1:
            # alias_ok (not donate): acc holds this rank's final result
            # and is still read by the trailing out-copy below.
            deps = [sched.send(lambda: st["acc"], rank - 1, tag + 5,
                               after=deps, round=rnd, alias_ok=True)]
        else:
            deps = [sched.recv(lambda: st["acc"], rank + 1, tag + 5,
                               after=deps, round=rnd)]
    sched.compute(
        lambda: out.__setitem__(..., st["acc"].reshape(out.shape)),
        after=deps,
    )
    return sched


def _ring_chunker(acc: np.ndarray, size: int):
    """Chunk accessor for a ring over ``size`` pieces of ``acc``."""
    n = acc.size
    bounds: List[int] = [(c * n) // size for c in range(size + 1)]

    def chunk(c: int) -> np.ndarray:
        c %= size
        return acc[bounds[c] : bounds[c + 1]]

    return chunk


def append_ring_reduce_scatter(
    sched,
    ctx,
    acc: np.ndarray,
    op: ReduceOp,
    tag: int,
    after=(),
    round0: int = 0,
) -> List[int]:
    """Ring reduce-scatter over ``ctx``'s communicator (tag offsets
    0..3): after P−1 steps rank *r* owns the fully combined chunk
    ``(r+1) mod P`` of the flat ``acc``.

    Shared by the flat ring allreduce and — through a
    :class:`~repro.mpi.algorithms.schedule.SubSchedule` bound to an
    intra-domain or peer communicator — the hierarchical composition.
    No defensive copies on the sends: ``_send_impl`` snapshots at send
    time and each step only writes the (disjoint) received chunk.
    """
    size, rank = ctx.size, ctx.rank
    chunk = _ring_chunker(acc, size)
    right = (rank + 1) % size
    left = (rank - 1) % size
    deps = list(after)
    for step in range(size - 1):
        send_c = chunk(rank - step)
        recv_c = chunk(rank - step - 1)
        tmp = AdoptBuf(recv_c)
        rnd = round0 + step
        # donate: acc is collective-private and the sent chunk is next
        # written only in the allgather phase, which is causally behind
        # the right neighbor's combine — the last read of the adopted
        # chunk view.
        s = sched.send(send_c, right, tag + step % 4, after=deps, round=rnd,
                       donate=True)
        r = sched.recv(tmp, left, tag + step % 4, after=deps, round=rnd)

        def combine(tmp=tmp, recv_c=recv_c):
            recv_c[...] = op.combine(tmp.arr, recv_c)

        deps = [sched.compute(combine, after=(s, r), round=rnd)]
    return deps


def append_ring_allgather(
    sched,
    ctx,
    acc: np.ndarray,
    tag: int,
    after=(),
    round0: int = 0,
) -> List[int]:
    """Ring allgather of the chunks a reduce-scatter left behind (tag
    offsets 0..3): circulates from each rank's owned chunk
    ``(r+1) mod P`` until every rank holds all of ``acc``."""
    size, rank = ctx.size, ctx.rank
    chunk = _ring_chunker(acc, size)
    right = (rank + 1) % size
    left = (rank - 1) % size
    deps = list(after)
    for step in range(size - 1):
        rnd = round0 + step
        # alias_ok: acc is collective-private and a forwarded chunk is
        # never written again after its send.
        s = sched.send(chunk(rank + 1 - step), right, tag + step % 4,
                       after=deps, round=rnd, alias_ok=True)
        r = sched.recv(chunk(rank - step), left, tag + step % 4,
                       after=deps, round=rnd)
        deps = [s, r]
    return deps


def build_allreduce_ring(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Schedule:
    """Ring allreduce: reduce-scatter then allgather over 1/P chunks.

    Works for any P (including non-powers of two) and any element count
    (trailing chunks may be empty when count < P).
    """
    src, out = _setup(ctx, sendbuf, recvbuf)
    size = ctx.size
    sched = Schedule()
    acc = src.copy().reshape(-1)
    if size == 1:
        sched.overhead()
        sched.compute(
            lambda: out.__setitem__(..., acc.reshape(out.shape)),
            after=(sched.last,),
        )
        return sched
    tag = next_tag(ctx)
    deps = append_ring_reduce_scatter(sched, ctx, acc, op, tag)
    deps = append_ring_allgather(
        sched, ctx, acc, tag + 4, after=deps, round0=size - 1
    )
    sched.compute(
        lambda: out.__setitem__(..., acc.reshape(out.shape)),
        after=deps,
    )
    return sched

