"""Allreduce algorithms: reduce+bcast (seed), recursive doubling, ring.

Cost shapes (P ranks, n bytes, α latency, β per-byte):

* ``reduce_bcast`` — 2·⌈log2 P⌉·(α + nβ): the MVAPICH2 general-case
  fallback the seed shipped with.
* ``recursive_doubling`` — ⌈log2 P⌉·(α + nβ) (+2 fold steps when P is
  not a power of two): best when latency dominates.
* ``ring`` — 2·(P−1)·α + 2·n·β·(P−1)/P: bandwidth-optimal
  reduce-scatter + allgather (the Rabenseifner scatter-allgather family),
  best for large messages.

All :class:`~repro.mpi.datatypes.ReduceOp` operators are commutative, so
the fold-in step of non-power-of-two recursive doubling is safe; combines
still run lower-rank-first so floating-point results stay deterministic
per rank.
"""

from __future__ import annotations

from typing import Any, Generator, List

import numpy as np

from ...sim.core import Event
from ..datatypes import Payload, ReduceOp, payload_array
from ..errors import MpiError
from .base import isend_internal, next_tag, recv_internal, send_internal

__all__ = [
    "allreduce_reduce_bcast",
    "allreduce_recursive_doubling",
    "allreduce_ring",
]


def _setup(ctx, sendbuf: Payload, recvbuf: Payload):
    src = payload_array(sendbuf)
    out = payload_array(recvbuf)
    if src is None:
        raise MpiError("allreduce requires an array payload")
    if out is None:
        raise MpiError("allreduce requires a recv buffer on every rank")
    return src, out


def allreduce_reduce_bcast(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Generator[Event, Any, None]:
    """Reduce to rank 0, then broadcast (the seed's fixed algorithm)."""
    from ..collectives import bcast, reduce

    _setup(ctx, sendbuf, recvbuf)
    if ctx.rank == 0:
        yield from reduce(ctx, sendbuf, recvbuf, op=op, root=0)
    else:
        yield from reduce(ctx, sendbuf, None, op=op, root=0)
    yield from bcast(ctx, recvbuf, root=0)


def allreduce_recursive_doubling(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Generator[Event, Any, None]:
    """Recursive-doubling allreduce (MPICH small-message algorithm).

    Non-power-of-two sizes use the standard fold: the first 2·rem ranks
    pair up (even sends to odd) so ``pof2`` ranks run the doubling
    rounds, then the even partners receive the final result back.
    """
    src, out = _setup(ctx, sendbuf, recvbuf)
    size, rank = ctx.size, ctx.rank
    acc = src.copy()
    if size == 1:
        yield ctx.comm._sw()
        out[...] = acc.reshape(out.shape)
        return
    tag = next_tag(ctx)
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    # Fold-in (tag offset 4): even ranks below 2·rem contribute and sit out.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from send_internal(ctx, acc, rank + 1, tag + 4)
            newrank = -1
        else:
            tmp = np.empty_like(acc)
            yield from recv_internal(ctx, tmp, rank - 1, tag + 4)
            acc = op.combine(tmp, acc)
            newrank = rank // 2
    else:
        newrank = rank - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = (
                partner_new * 2 + 1 if partner_new < rem
                else partner_new + rem
            )
            tmp = np.empty_like(acc)
            # No defensive copy: _send_impl snapshots at send time and
            # acc is rebound (never mutated) before req.wait() returns.
            req = isend_internal(ctx, acc, partner, tag)
            yield from recv_internal(ctx, tmp, partner, tag)
            yield from req.wait()
            acc = op.combine(tmp, acc) if partner < rank else op.combine(acc, tmp)
            mask <<= 1
    # Fold-out (tag offset 5): odd partners hand the result back.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from send_internal(ctx, acc, rank - 1, tag + 5)
        else:
            yield from recv_internal(ctx, acc, rank + 1, tag + 5)
    out[...] = acc.reshape(out.shape)


def allreduce_ring(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Generator[Event, Any, None]:
    """Ring allreduce: reduce-scatter then allgather over 1/P chunks.

    Works for any P (including non-powers of two) and any element count
    (trailing chunks may be empty when count < P).
    """
    src, out = _setup(ctx, sendbuf, recvbuf)
    size, rank = ctx.size, ctx.rank
    acc = src.copy().reshape(-1)
    if size == 1:
        yield ctx.comm._sw()
        out[...] = acc.reshape(out.shape)
        return
    tag = next_tag(ctx)
    n = acc.size
    bounds: List[int] = [(c * n) // size for c in range(size + 1)]

    def chunk(c: int) -> np.ndarray:
        c %= size
        return acc[bounds[c] : bounds[c + 1]]

    right = (rank + 1) % size
    left = (rank - 1) % size
    # Reduce-scatter (tag offsets 0..3): after P−1 steps this rank owns
    # the fully combined chunk (rank+1) mod P.
    # No defensive copies on the isends: _send_impl snapshots at send
    # time and each step only writes the (disjoint) received chunk.
    for step in range(size - 1):
        send_c = chunk(rank - step)
        recv_c = chunk(rank - step - 1)
        req = isend_internal(ctx, send_c, right, tag + step % 4)
        tmp = np.empty_like(recv_c)
        yield from recv_internal(ctx, tmp, left, tag + step % 4)
        yield from req.wait()
        recv_c[...] = op.combine(tmp, recv_c)
    # Allgather (tag offsets 4..7): circulate the finished chunks.
    for step in range(size - 1):
        send_c = chunk(rank + 1 - step)
        recv_c = chunk(rank - step)
        req = isend_internal(ctx, send_c, right, tag + 4 + step % 4)
        yield from recv_internal(ctx, recv_c, left, tag + 4 + step % 4)
        yield from req.wait()
    out[...] = acc.reshape(out.shape)
