"""Hierarchical collectives composed from real sub-communicators.

On an oversubscribed fabric with a fragmented rank placement, every
step of a flat schedule crosses the bottleneck uplinks, paying the
oversubscription factor each time.  The hierarchical schedules cross
only in their middle phase — and these days that decomposition is
*literally* communicator composition: the communicator's
:meth:`~repro.mpi.communicator.Communicator.hier_comms` bundle supplies
an **intra-domain** communicator per locality group, a **leader**
communicator (first member of each group), and — for equal-size groups
— one **peer** communicator per member index.  Each phase is an
ordinary collective schedule built *against the sub-communicator* (its
local ranks, its tag space) and spliced into one composite
:class:`~repro.mpi.algorithms.schedule.Schedule` through
:class:`~repro.mpi.algorithms.schedule.SubSchedule`, so no domain rank
arithmetic is hand-rolled here.

* ``allreduce`` — equal pods (s members × G domains): intra-domain
  ring reduce-scatter → peer-communicator ring allreduce of the owned
  chunk (the only phase crossing uplinks, moving n/(s·G) per step) →
  intra-domain ring allgather.  *Unequal* pods: intra-domain binomial
  reduce to the domain leader → ring allreduce on the leader
  communicator → intra-domain binomial broadcast.  The equal-pod path
  reproduces the PR 2 hand-rolled schedule step for step; the unequal
  path is what the old code refused to run.
* ``allgather`` — intra-domain gather to the leader → ring allgather
  of the (possibly unequal) domain blocks on the leader communicator →
  intra-domain broadcast + local scatter into the per-rank buffers.
* ``alltoall`` — intra-domain gather of per-destination buckets to the
  leader → leader-communicator alltoall of domain super-buckets →
  intra-domain dispersal (uniform block sizes; the selector guards).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datatypes import Payload, ReduceOp, payload_array
from ..errors import MpiError
from .allreduce import append_ring_allgather, append_ring_reduce_scatter
from .base import next_tag
from .schedule import Schedule, SubSchedule

__all__ = [
    "build_allreduce_hierarchical",
    "build_allgather_hierarchical",
    "build_alltoall_hierarchical",
]


def _hier_setup(ctx):
    """Common preamble: the communicator's sub-communicator bundle."""
    comm = ctx.comm
    groups: List[List[int]] = getattr(comm, "locality_groups", None)
    if not groups or len(groups) < 2:
        raise MpiError(
            "hierarchical collectives need >= 2 locality groups; "
            "use the flat schedules on single-domain communicators"
        )
    return comm.hier_comms(), groups


def _u8(arr: np.ndarray) -> np.ndarray:
    return arr.view(np.uint8).reshape(-1)


# ---------------------------------------------------------------------------
# Allreduce
# ---------------------------------------------------------------------------

def build_allreduce_hierarchical(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Schedule:
    """Two-level allreduce over the communicator's locality groups."""
    src = payload_array(sendbuf)
    out = payload_array(recvbuf)
    if src is None:
        raise MpiError("allreduce requires an array payload")
    if out is None:
        raise MpiError("allreduce requires a recv buffer on every rank")
    sched = Schedule()
    acc = src.copy().reshape(-1)
    if ctx.size == 1:
        sched.overhead()
        sched.compute(
            lambda: out.__setitem__(..., acc.reshape(out.shape)),
            after=(sched.last,),
        )
        return sched
    hier, _groups = _hier_setup(ctx)
    if hier.equal_groups:
        _allreduce_equal_pods(sched, ctx, hier, acc, out, op)
    else:
        _allreduce_unequal_pods(sched, ctx, hier, acc, out, op)
    return sched


def _allreduce_equal_pods(sched, ctx, hier, acc, out, op) -> None:
    """Equal pods: intra RS → peer-comm ring allreduce → intra AG.

    Same message sequence as the PR 2 hand-rolled schedule, but every
    phase is the ordinary ring schedule over a sub-communicator.
    """
    intra = hier.intra_ctx(ctx.rank)
    peer = hier.peer_ctx(ctx.rank)
    s = intra.size
    intra_sub = SubSchedule(sched, intra)
    deps: List[int] = []
    itag = next_tag(intra)
    if s > 1:
        deps = append_ring_reduce_scatter(
            intra_sub, intra, acc, op, itag
        )
    # After the reduce-scatter this member owns chunk (m+1) mod s; the
    # peer communicator (member m of every domain) allreduces it.
    n = acc.size
    bounds = [(c * n) // s for c in range(s + 1)]
    own = (intra.rank + 1) % s if s > 1 else 0
    mine = acc[bounds[own] : bounds[own + 1]]
    if peer is not None and peer.size > 1:
        peer_sub = SubSchedule(sched, peer)
        ptag = next_tag(peer)
        rnd = sched.n_rounds
        deps = append_ring_reduce_scatter(
            peer_sub, peer, mine, op, ptag, after=deps, round0=rnd
        )
        deps = append_ring_allgather(
            peer_sub, peer, mine, ptag + 4, after=deps,
            round0=sched.n_rounds,
        )
    if s > 1:
        deps = append_ring_allgather(
            intra_sub, intra, acc, itag + 4, after=deps,
            round0=sched.n_rounds,
        )
    sched.compute(
        lambda: out.__setitem__(..., acc.reshape(out.shape)),
        after=deps,
    )


def _allreduce_unequal_pods(sched, ctx, hier, acc, out, op) -> None:
    """Unequal pods: ring allreduce on a locality-reordered comm.

    The peer rings of the equal-pod path need member *i* to exist in
    every domain; with ragged pod sizes the hierarchy is instead
    exploited through *rank reordering*: ``split(color=0, key=domain)``
    yields a communicator whose rank order walks the pods contiguously,
    so every step of the ordinary ring allreduce crosses each domain
    boundary exactly once — G simultaneous crossings, one per uplink,
    each **uncontended** — where the fragmented flat ring crossed the
    loaded bottleneck on every hop.  Works for any pod sizes (including
    singletons); the allreduce result is rank-symmetric, so no data
    reordering is needed.
    """
    rctx = hier.reordered_ctx(ctx.rank)
    sub = SubSchedule(sched, rctx)
    tag = next_tag(rctx)
    deps = append_ring_reduce_scatter(sub, rctx, acc, op, tag)
    deps = append_ring_allgather(
        sub, rctx, acc, tag + 4, after=deps, round0=sched.n_rounds
    )
    sched.compute(
        lambda: out.__setitem__(..., acc.reshape(out.shape)),
        after=deps,
    )


# ---------------------------------------------------------------------------
# Allgather
# ---------------------------------------------------------------------------

def build_allgather_hierarchical(
    ctx,
    sendbuf: Payload,
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Topology-aware allgather: gather → leader ring → broadcast.

    Every rank's block first travels to its domain leader (leaf-switch
    traffic); the leaders then ring-allgather the concatenated domain
    blocks — the only phase crossing the fabric bottleneck, once per
    domain instead of once per rank — and finally fan the full vector
    out inside their domains.  Handles unequal pod sizes and unequal
    block sizes (the vector variant).
    """
    from .bcast import _append_binomial

    mine = payload_array(sendbuf)
    if mine is None:
        raise MpiError("hierarchical allgather requires an array payload")
    arrays = [payload_array(b) for b in recvbufs]
    if any(a is None for a in arrays):
        raise MpiError(
            "hierarchical allgather needs a recv buffer for every rank"
        )
    sched = Schedule()
    hier, groups = _hier_setup(ctx)
    comm = ctx.comm
    intra = hier.intra_ctx(ctx.rank)
    s = intra.size
    G = len(groups)
    gi = hier.dom_of[ctx.rank]

    # Assembly order: domain-major, member-minor (parent-rank order
    # within each group) — offsets are derived per rank, so unequal
    # blocks fall out naturally.
    block_bytes = [a.nbytes for a in arrays]
    offset: Dict[int, int] = {}
    off = 0
    for g in groups:
        for r in g:
            offset[r] = off
            off += block_bytes[r]
    total = off
    full = np.empty(total, dtype=np.uint8)
    dom_lo = [offset[g[0]] for g in groups]
    dom_hi = [offset[g[-1]] + block_bytes[g[-1]] for g in groups]

    intra_sub = SubSchedule(sched, intra)
    itag = next_tag(intra)
    deps: List[int] = []
    members = groups[gi]
    if intra.rank == 0:
        # Leader: collect the domain's blocks (own block via memcpy).
        my_r = ctx.rank

        def own_copy():
            full[offset[my_r] : offset[my_r] + block_bytes[my_r]] = _u8(mine)

        deps = [sched.compute(own_copy)]
        for m in range(1, s):
            r_parent = members[m]
            lo = offset[r_parent]
            deps.append(intra_sub.recv(
                full[lo : lo + block_bytes[r_parent]], m, itag
            ))
    elif s > 1:
        deps = [intra_sub.send(_u8(mine), 0, itag)]

    # Leader ring over the (unequal) domain blocks of ``full``.
    leader = hier.leader_ctx(ctx.rank)
    if leader is not None and leader.size > 1:
        lsub = SubSchedule(sched, leader)
        ltag = next_tag(leader)
        right = (leader.rank + 1) % G
        left = (leader.rank - 1) % G
        rnd0 = sched.n_rounds
        for step in range(G - 1):
            send_d = (gi - step) % G
            recv_d = (gi - step - 1) % G
            snd = lsub.send(full[dom_lo[send_d] : dom_hi[send_d]], right,
                            ltag + step % 4, after=deps, round=rnd0 + step)
            rcv = lsub.recv(full[dom_lo[recv_d] : dom_hi[recv_d]], left,
                            ltag + step % 4, after=deps, round=rnd0 + step)
            deps = [snd, rcv]

    # Intra-domain broadcast of the assembled vector.
    btag = next_tag(intra)
    if s > 1:
        deps = _append_binomial(
            intra_sub, intra, full, list(range(s)), 0, btag,
            after=deps, round0=sched.n_rounds,
        )

    def scatter_out():
        for r, arr in enumerate(arrays):
            lo = offset[r]
            _u8(arr)[...] = full[lo : lo + block_bytes[r]]

    sched.compute(scatter_out, after=deps)
    return sched


# ---------------------------------------------------------------------------
# Alltoall
# ---------------------------------------------------------------------------

def build_alltoall_hierarchical(
    ctx,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Topology-aware alltoall: bucket-gather → leader exchange →
    dispersal.

    Members ship their whole per-destination payload to the domain
    leader; leaders exchange per-domain *super-buckets* (all the data
    domain g holds for domain d, in one transfer) so the bottleneck
    sees G−1 large transfers per leader instead of P−1 small ones per
    rank; leaders then deal each member its slice.  Uniform block sizes
    only (as the selector guarantees).
    """
    mine = [payload_array(b) for b in sendbufs]
    outs = [payload_array(b) for b in recvbufs]
    if any(a is None for a in mine) or any(a is None for a in outs):
        raise MpiError(
            "hierarchical alltoall needs array payloads on every rank"
        )
    B = mine[0].nbytes
    if any(a.nbytes != B for a in mine) or any(
        a.nbytes != B for a in outs
    ):
        raise MpiError("hierarchical alltoall needs uniform block sizes")
    sched = Schedule()
    hier, groups = _hier_setup(ctx)
    intra = hier.intra_ctx(ctx.rank)
    s = intra.size
    G = len(groups)
    gi = hier.dom_of[ctx.rank]
    members = groups[gi]
    sizes = [len(g) for g in groups]
    P = ctx.size

    # Destination order inside every payload: domain-major,
    # member-minor (``dm_order``), so a domain's bucket is contiguous.
    dm_order: List[int] = [r for g in groups for r in g]
    dstart = [0] * (G + 1)
    for d in range(G):
        dstart[d + 1] = dstart[d] + sizes[d] * B

    def payload_of(send_arrays) -> np.ndarray:
        return np.concatenate([_u8(send_arrays[j]) for j in dm_order])

    intra_sub = SubSchedule(sched, intra)
    itag = next_tag(intra)
    deps: List[int] = []
    if intra.rank == 0:
        # Leader: stage[m] = member m's full payload in dm_order.
        stage: List[Optional[np.ndarray]] = [None] * s

        def own_stage():
            stage[0] = payload_of(mine)

        deps = [sched.compute(own_stage)]
        for m in range(1, s):
            buf = np.empty(P * B, dtype=np.uint8)
            stage[m] = buf
            deps.append(intra_sub.recv(buf, m, itag))

        # Leader exchange: shift schedule over super-buckets.  The
        # super-bucket for domain d concatenates every local member's
        # bucket for d — resolved lazily, once phase 1 delivered.
        inbuf: List[Optional[np.ndarray]] = [None] * G

        def super_bucket(d: int) -> np.ndarray:
            return np.concatenate(
                [stage[m][dstart[d] : dstart[d + 1]] for m in range(s)]
            )

        def keep_own(d=gi):
            inbuf[d] = super_bucket(d)

        deps = [sched.compute(keep_own, after=deps)]
        leader = hier.leader_ctx(ctx.rank)
        if leader is not None and leader.size > 1:
            lsub = SubSchedule(sched, leader)
            ltag = next_tag(leader)
            rnd0 = sched.n_rounds
            for k in range(1, G):
                dst = (gi + k) % G
                src = (gi - k) % G
                rbuf = np.empty(sizes[src] * s * B, dtype=np.uint8)
                inbuf[src] = rbuf
                snd = lsub.send(
                    lambda d=dst: super_bucket(d), dst, ltag + (k - 1) % 4,
                    after=deps, round=rnd0 + k - 1,
                )
                rcv = lsub.recv(rbuf, src, ltag + (k - 1) % 4,
                                after=deps, round=rnd0 + k - 1)
                deps = [snd, rcv]

        # Dispersal: member m's result is, per source domain d and
        # source member index q, the m-th block of bucket (q → my
        # domain) inside inbuf[d].
        def member_result(m: int) -> np.ndarray:
            parts = []
            for d in range(G):
                buf = inbuf[d]
                for q in range(sizes[d]):
                    lo = (q * s + m) * B
                    parts.append(buf[lo : lo + B])
            return np.concatenate(parts)

        dtag = next_tag(intra)
        rnd = sched.n_rounds
        for m in range(1, s):
            intra_sub.send(
                lambda m=m: member_result(m), m, dtag,
                after=deps, round=rnd,
            )

        def own_unpack():
            res = member_result(0)
            for k, j in enumerate(dm_order):
                _u8(outs[j])[...] = res[k * B : (k + 1) * B]

        sched.compute(own_unpack, after=deps)
    else:
        # Member: ship the payload up, await the dealt result.
        snd = intra_sub.send(lambda: payload_of(mine), 0, itag)
        dtag = next_tag(intra)
        res = np.empty(P * B, dtype=np.uint8)
        rcv = intra_sub.recv(res, 0, dtag)

        def unpack():
            for k, j in enumerate(dm_order):
                _u8(outs[j])[...] = res[k * B : (k + 1) * B]

        sched.compute(unpack, after=(snd, rcv))
    return sched
