"""Hierarchical allreduce: intra-domain / inter-domain phase decomposition.

On an oversubscribed fabric with a fragmented rank placement, every
step of the flat ring allreduce crosses the bottleneck uplinks, paying
the oversubscription factor on each of its 2·(P−1) steps.  The
hierarchical schedule crosses only in its middle phase, and only with
1/s of the payload per member (s = domain size, G = domain count):

1. *intra-domain reduce-scatter* (ring over the s domain members, s−1
   steps of n/s) — member i ends owning chunk i, combined within its
   domain.  Ranks sharing a node exchange over shm here; ranks sharing
   a pod stay behind their leaf switch.
2. *inter-domain ring allreduce* of chunk i across the G domains
   (member i of every domain; 2·(G−1) steps of n/(s·G)) — the only
   phase that crosses uplinks, moving the information-theoretic minimum
   2·n·(G−1)/G bytes per domain.
3. *intra-domain ring allgather* (s−1 steps of n/s) — every member
   recovers the full reduced vector.

Requires equal-size locality groups (the regular-pod case the selector
checks); all phases tolerate empty chunks when count < s·G.  Compiled
to a :class:`~repro.mpi.algorithms.schedule.Schedule` like every other
algorithm in the package.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..datatypes import Payload, ReduceOp, payload_array
from ..errors import MpiError
from .base import next_tag
from .schedule import Schedule

__all__ = ["build_allreduce_hierarchical"]


def build_allreduce_hierarchical(
    ctx,
    sendbuf: Payload,
    recvbuf: Payload,
    op: ReduceOp = ReduceOp.SUM,
) -> Schedule:
    """Two-level allreduce over the communicator's locality groups."""
    src = payload_array(sendbuf)
    out = payload_array(recvbuf)
    if src is None:
        raise MpiError("allreduce requires an array payload")
    if out is None:
        raise MpiError("allreduce requires a recv buffer on every rank")
    groups: List[List[int]] = getattr(ctx.comm, "locality_groups", None)
    if not groups:
        raise MpiError("hierarchical allreduce needs locality groups")
    sizes = {len(g) for g in groups}
    if len(sizes) != 1:
        raise MpiError(
            "hierarchical allreduce needs equal-size locality groups "
            f"(got sizes {sorted(len(g) for g in groups)})"
        )
    sched = Schedule()
    acc = src.copy().reshape(-1)
    if ctx.size == 1:
        sched.overhead()
        sched.compute(
            lambda: out.__setitem__(..., acc.reshape(out.shape)),
            after=(sched.last,),
        )
        return sched
    tag = next_tag(ctx)
    g_idx, m_idx = next(
        (g, m)
        for g, members in enumerate(groups)
        for m, r in enumerate(members)
        if r == ctx.rank
    )
    members = groups[g_idx]
    s, G = len(members), len(groups)
    n = acc.size
    # Domain-level partition: member i owns chunk i after phase 1.
    b1 = [(c * n) // s for c in range(s + 1)]

    def chunk(c: int) -> np.ndarray:
        c %= s
        return acc[b1[c] : b1[c + 1]]

    deps: List[int] = []
    rnd = 0
    # Phase 1 (tags +0/+1) — intra-domain ring reduce-scatter.
    if s > 1:
        right = members[(m_idx + 1) % s]
        left = members[(m_idx - 1) % s]
        for step in range(s - 1):
            send_c = chunk(m_idx - step)
            recv_c = chunk(m_idx - step - 1)
            tmp = np.empty_like(recv_c)
            snd = sched.send(send_c, right, tag + step % 2, after=deps,
                             round=rnd)
            rcv = sched.recv(tmp, left, tag + step % 2, after=deps,
                             round=rnd)

            def combine(tmp=tmp, recv_c=recv_c):
                recv_c[...] = op.combine(tmp, recv_c)

            deps = [sched.compute(combine, after=(snd, rcv), round=rnd)]
            rnd += 1

    # Phase 2 (tags +2..+5) — ring allreduce of my chunk across domains.
    # After the reduce-scatter this member owns chunk (m_idx+1) mod s
    # (same convention as allreduce_ring).
    if G > 1:
        mine = chunk(m_idx + 1) if s > 1 else chunk(m_idx)
        nc = mine.size
        b2 = [(c * nc) // G for c in range(G + 1)]

        def sub(c: int) -> np.ndarray:
            c %= G
            return mine[b2[c] : b2[c + 1]]

        right = groups[(g_idx + 1) % G][m_idx]
        left = groups[(g_idx - 1) % G][m_idx]
        for step in range(G - 1):
            send_c = sub(g_idx - step)
            recv_c = sub(g_idx - step - 1)
            tmp = np.empty_like(recv_c)
            snd = sched.send(send_c, right, tag + 2 + step % 2, after=deps,
                             round=rnd)
            rcv = sched.recv(tmp, left, tag + 2 + step % 2, after=deps,
                             round=rnd)

            def combine2(tmp=tmp, recv_c=recv_c):
                recv_c[...] = op.combine(tmp, recv_c)

            deps = [sched.compute(combine2, after=(snd, rcv), round=rnd)]
            rnd += 1
        for step in range(G - 1):
            snd = sched.send(sub(g_idx + 1 - step), right,
                             tag + 4 + step % 2, after=deps, round=rnd)
            rcv = sched.recv(sub(g_idx - step), left,
                             tag + 4 + step % 2, after=deps, round=rnd)
            deps = [snd, rcv]
            rnd += 1

    # Phase 3 (tags +6/+7) — intra-domain ring allgather of the chunks
    # (circulating from the owned chunk (m_idx+1) mod s outward).
    if s > 1:
        right = members[(m_idx + 1) % s]
        left = members[(m_idx - 1) % s]
        for step in range(s - 1):
            snd = sched.send(chunk(m_idx + 1 - step), right,
                             tag + 6 + step % 2, after=deps, round=rnd)
            rcv = sched.recv(chunk(m_idx - step), left,
                             tag + 6 + step % 2, after=deps, round=rnd)
            deps = [snd, rcv]
            rnd += 1

    sched.compute(
        lambda: out.__setitem__(..., acc.reshape(out.shape)),
        after=deps,
    )
    return sched

