"""Dissemination barrier as a round-based schedule.

⌈log2 P⌉ rounds of 0-byte messages: in round k every rank signals
``rank+2^k`` while awaiting ``rank−2^k``.  The schedule form exists so
``ibarrier`` can progress in the background (MPI-3 nonblocking barrier)
while the blocking ``barrier`` executes the identical DAG inline.
"""

from __future__ import annotations

from typing import List

from .base import next_tag
from .schedule import Schedule, blocking

__all__ = ["barrier_dissemination", "build_barrier_dissemination"]


def build_barrier_dissemination(ctx) -> Schedule:
    """Dissemination barrier schedule for this rank."""
    sched = Schedule()
    tag = next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    # The DAG is a pure function of size (0-byte wire steps only), so
    # the fast-path engine can intern its resolved completion offsets
    # across repeat barriers — the fence-per-iteration hot path.
    sched.intern_key = ("barrier_dissemination", size)
    if size == 1:
        sched.overhead()
        return sched
    deps: List[int] = []
    k = 1
    rnd = 0
    while k < size:
        dst = (rank + k) % size
        src = (rank - k) % size
        s = sched.send(None, dst, tag, after=deps, round=rnd)
        r = sched.recv(None, src, tag, after=deps, round=rnd)
        deps = [s, r]
        k <<= 1
        rnd += 1
    return sched


barrier_dissemination = blocking(build_barrier_dissemination)
