"""Topology-derived collective auto-tuning.

PR 1 calibrated the :class:`CollectiveTuning` crossovers as constants
against one fabric — the paper's flat non-blocking IB switch.  This
module re-derives them at cluster-build time from the cluster's actual
:class:`~repro.hw.topology.base.FabricProfile` and
:class:`~repro.hw.params.IbParams`, by sweeping an analytic cost model
over message sizes and communicator sizes.  The model mirrors the
simulated wire protocol exactly (software overhead, eager vs rendezvous
breakpoints, per-channel latency halves), which makes it track the
simulator to within a fraction of a percent on uncontended schedules —
validated by ``benchmarks/bench_collectives_algos.py``.

The derived tuning is cached per ``(FabricProfile, IbParams)`` pair (both
frozen dataclasses), so every cluster of the same shape shares one
derivation and repeated ``Communicator`` construction is free.

What this kills relative to the constants:

* the flat-switch-only crossovers — a fat tree, multi-rail fabric or
  torus now each get thresholds matching *their* α/β;
* the eager-threshold leak — ``allgather_rd_small_max_bytes`` is derived
  as ``eager_threshold // 2`` (the largest block whose packed doubling
  rounds all stay eager) instead of a constant that silently encoded it;
* the non-power-of-two gap — Bruck's threshold is swept, and the
  hierarchical allreduce/bcast gates open only when the topology
  actually reports oversubscription.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ...hw.params import IbParams
from ...sim.core import us
from .base import largest_pof2
from .tuning import CollectiveTuning

__all__ = [
    "autotune_tuning",
    "derive_tuning",
    "subfabric_profile",
    "clear_cache",
    "p2p_time",
    "cost_allreduce",
    "cost_allgather",
    "cost_alltoall",
    "cost_bcast",
    "cost_reduce",
    "cost_rma_put",
]

#: Size of protocol headers on the wire — must match
#: ``repro.mpi.communicator.HEADER_BYTES`` (imported lazily there to
#: avoid a package cycle; guarded by a test).
HEADER_BYTES = 64

#: Derivation cache: (FabricProfile, IbParams) → CollectiveTuning.
_CACHE: Dict[Tuple, CollectiveTuning] = {}

#: Scan grid: 256 B … 16 MB in quarter-octave steps.
_GRID: List[int] = sorted(
    {int(round(2.0 ** (k / 4.0))) for k in range(8 * 4, 24 * 4 + 1)}
)

#: Sentinel for "no upper bound inside the swept range".
_UNBOUNDED = _GRID[-1]

_EPS = 1e-12


# ---------------------------------------------------------------------------
# Analytic cost model (mirrors communicator._send_impl/_recv_impl)
# ---------------------------------------------------------------------------

def p2p_time(
    nbytes: int, alpha_s: float, beta_s_per_B: float, ib: IbParams
) -> float:
    """One blocking point-to-point of ``nbytes`` over an (α, β) hop.

    Eager: sender software overhead, one wire traversal carrying the
    envelope.  Rendezvous: RTS and CTS headers each pay a full wire
    latency before the payload travels — three latencies total, which
    is exactly what the simulated protocol charges.
    """
    sw = us(ib.sw_overhead_us)
    hdr = HEADER_BYTES * beta_s_per_B
    if nbytes <= ib.eager_threshold:
        return sw + alpha_s + nbytes * beta_s_per_B + hdr
    return sw + 3.0 * alpha_s + 2.0 * hdr + nbytes * beta_s_per_B


def _log2ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 0


def _cross_beta_eff(nbytes: int, prof, ib: IbParams) -> float:
    """Per-byte cost of a domain-wide bottleneck crossing.

    Eager-sized messages overlap their NIC wire time with the shared
    uplink's queue drain (the simulator's FIFO channels pipeline them),
    so only rendezvous-sized crossings feel the full domain fan-in.
    """
    if nbytes <= ib.eager_threshold:
        return prof.cross_beta_s_per_B
    return prof.cross_load_beta_s_per_B


def cost_allreduce(
    algo: str, P: int, nbytes: int, prof, ib: IbParams
) -> float:
    """Analytic allreduce cost.

    Distance-doubling schedules (recursive doubling, reduce+bcast) are
    costed at the fabric's bottleneck under load — their partners span
    the whole machine, so on an oversubscribed or multi-hop fabric
    every round crosses it at full domain fan-in.  The ring is a
    *neighbor* schedule: consecutive ranks exchange, so it pays the
    adjacent-hop latency and at most one uncontended bottleneck
    crossing per domain per step.  On flat fabrics all terms coincide
    and this is simply the uncontended cost.
    """
    a = prof.cross_alpha_s
    b = _cross_beta_eff(nbytes, prof, ib)
    if P <= 1:
        return 0.0
    if algo == "recursive_doubling":
        rounds = _log2ceil(P)
        fold = 0 if (P & (P - 1)) == 0 else 2
        return (rounds + fold) * p2p_time(nbytes, a, b, ib)
    if algo == "ring":
        chunk = math.ceil(nbytes / P)
        return 2.0 * (P - 1) * p2p_time(
            chunk, prof.neighbor_alpha_s, prof.cross_beta_s_per_B, ib
        )
    if algo == "reduce_bcast":
        return 2.0 * _log2ceil(P) * p2p_time(nbytes, a, b, ib)
    if algo == "hierarchical":
        s, G = prof.domain_size, prof.n_domains
        if s < 2 or G < 2:
            return math.inf
        intra = p2p_time(math.ceil(nbytes / s), prof.alpha_s,
                         prof.beta_s_per_B, ib)
        cross = p2p_time(math.ceil(nbytes / (s * G)), prof.cross_alpha_s,
                         prof.cross_load_beta_s_per_B, ib)
        return 2.0 * (s - 1) * intra + 2.0 * (G - 1) * cross
    raise ValueError(f"unknown allreduce algorithm {algo!r}")


def cost_allgather(
    algo: str, P: int, block_nbytes: int, prof, ib: IbParams
) -> float:
    """Analytic allgather cost (uncontended regime: allgather selection
    is size-driven, and its ring/doubling schedules keep per-step
    crossings sparse even when fragmented).  The ``hierarchical``
    schedule is the exception — it exists for the fragmented
    oversubscribed regime, so it is costed against the bottleneck
    terms; the derivation compares it to a fragmented-ring baseline
    (every step a loaded crossing), not to this function's ``ring``."""
    a, b = prof.alpha_s, prof.beta_s_per_B
    if P <= 1:
        return 0.0
    if algo == "hierarchical":
        s, G = prof.domain_size, prof.n_domains
        if s < 2 or G < 2:
            return math.inf
        gather = (s - 1) * p2p_time(block_nbytes, a, b, ib)
        ring = (G - 1) * p2p_time(
            s * block_nbytes, prof.cross_alpha_s,
            prof.cross_beta_s_per_B, ib,
        )
        fanout = _log2ceil(s) * p2p_time(P * block_nbytes, a, b, ib)
        return gather + ring + fanout
    if algo == "ring":
        return (P - 1) * p2p_time(block_nbytes, a, b, ib)
    if algo == "recursive_doubling":
        return sum(
            p2p_time((1 << i) * block_nbytes, a, b, ib)
            for i in range(_log2ceil(P))
        )
    if algo == "bruck":
        total, step = 0.0, 1
        while step < P:
            count = min(step, P - step)
            total += p2p_time(count * block_nbytes, a, b, ib)
            step <<= 1
        return total
    raise ValueError(f"unknown allgather algorithm {algo!r}")


def cost_bcast(algo: str, P: int, nbytes: int, prof, ib: IbParams) -> float:
    """Analytic bcast cost under the fragmented-placement regime.

    Schedules are costed per round: the binomial tree pays ⌈log2 P⌉
    full-payload rounds on its critical path; the pipelined chain pays
    one round per segment plus the P−2 fill rounds, each one segment
    deep — exactly the round structure its :class:`Schedule` carries.
    """
    if P <= 1:
        return 0.0
    if algo == "binomial":
        return _log2ceil(P) * p2p_time(
            nbytes, prof.cross_alpha_s, _cross_beta_eff(nbytes, prof, ib), ib
        )
    if algo == "hierarchical":
        s, G = prof.domain_size, prof.n_domains
        if s < 2 or G < 2:
            return math.inf
        # Leaders cross one at a time per domain (uncontended crossing);
        # the intra-domain fan-out never leaves the leaf switch.
        leaders = _log2ceil(G) * p2p_time(
            nbytes, prof.cross_alpha_s, prof.cross_beta_s_per_B, ib
        )
        intra = _log2ceil(s) * p2p_time(
            nbytes, prof.alpha_s, prof.beta_s_per_B, ib
        )
        return leaders + intra
    if algo == "pipelined":
        from .bcast import best_pipeline_segments

        if P <= 2:
            return math.inf
        S = best_pipeline_segments(nbytes, P, ib)
        if S < 2:
            return math.inf
        seg = math.ceil(nbytes / S)
        # Chain hops are rank-adjacent but a fragmented placement makes
        # every hop a bottleneck crossing, one segment at a time.
        per_round = p2p_time(seg, prof.cross_alpha_s,
                             prof.cross_beta_s_per_B, ib)
        return (S + P - 2) * per_round
    raise ValueError(f"unknown bcast algorithm {algo!r}")


def cost_reduce(algo: str, P: int, nbytes: int, prof, ib: IbParams) -> float:
    """Analytic reduce-to-root cost (per-round, like the schedules).

    The binomial tree's critical path is ⌈log2 P⌉ full-payload rounds;
    Rabenseifner's is ⌈log2 P⌉ halving rounds of n/2, n/4, … followed
    by the mirror-image gather rounds — ≈2·nβ total bytes.
    """
    a = prof.cross_alpha_s
    b = _cross_beta_eff(nbytes, prof, ib)
    if P <= 1:
        return 0.0
    if algo == "binomial":
        return _log2ceil(P) * p2p_time(nbytes, a, b, ib)
    if algo == "rabenseifner":
        if P <= 2:
            return math.inf
        pof2 = largest_pof2(P)
        # Non-powers of two pay one extra full-size fold-in round.
        total = 0.0 if pof2 == P else p2p_time(nbytes, a, b, ib)
        part = nbytes
        for _ in range(_log2ceil(pof2)):
            part = math.ceil(part / 2)
            # One halving round and its mirrored gather round.
            total += 2.0 * p2p_time(part, a, b, ib)
        return total
    raise ValueError(f"unknown reduce algorithm {algo!r}")


def cost_alltoall(
    algo: str, P: int, block_nbytes: int, prof, ib: IbParams
) -> float:
    """Analytic alltoall cost per round.

    Linear schedules (shift/pairwise) pay P−1 rounds of one block;
    Bruck pays ⌈log2 P⌉ rounds each shipping the ⌊P/2⌋-ish packed run
    its schedule forwards.
    """
    a, b = prof.alpha_s, prof.beta_s_per_B
    if P <= 1:
        return 0.0
    if algo == "hierarchical":
        s, G = prof.domain_size, prof.n_domains
        if s < 2 or G < 2:
            return math.inf
        updown = 2.0 * (s - 1) * p2p_time(P * block_nbytes, a, b, ib)
        exchange = (G - 1) * p2p_time(
            s * s * block_nbytes, prof.cross_alpha_s,
            prof.cross_beta_s_per_B, ib,
        )
        return updown + exchange
    if algo in ("shift", "pairwise"):
        return (P - 1) * p2p_time(block_nbytes, a, b, ib)
    if algo == "bruck":
        total, step = 0.0, 1
        while step < P:
            count = len([i for i in range(P) if i & step])
            total += p2p_time(count * block_nbytes, a, b, ib)
            step <<= 1
        return total
    raise ValueError(f"unknown alltoall algorithm {algo!r}")


def cost_rma_put(mode: str, nbytes: int, prof, ib: IbParams) -> float:
    """Analytic one-sided put cost (mirrors ``repro.mpi.rma``).

    ``eager``: one wire transfer with the payload inlined behind the
    header, then a bounce copy through the target host's staging path
    (the intra-node α/β — the same channel the simulator charges).
    ``rendezvous``: an rkey/validation header round-trip, then the
    payload written directly into the registered window (zero-copy —
    no target-side copy at all).  Costed at the fabric's bottleneck
    crossing, since a one-sided target may be anywhere in the machine.
    """
    setup = us(ib.rma_setup_us)
    a, b = prof.cross_alpha_s, prof.cross_beta_s_per_B
    wire = a + (HEADER_BYTES + nbytes) * b
    if mode == "eager":
        bounce = us(ib.intra_lat_us) + nbytes / (ib.intra_bw_GBps * 1e9)
        return setup + wire + bounce
    if mode == "rendezvous":
        hdr = a + HEADER_BYTES * b
        return setup + 2.0 * hdr + wire
    raise ValueError(f"unknown RMA put mode {mode!r}")


# ---------------------------------------------------------------------------
# Threshold derivation
# ---------------------------------------------------------------------------

def _first_grid_where(pred) -> int:
    """Smallest grid size satisfying ``pred`` (sentinel when none)."""
    for n in _GRID:
        if pred(n):
            return n
    return _UNBOUNDED


def derive_tuning(prof, ib: IbParams) -> CollectiveTuning:
    """Sweep the cost model over the profile; return the tuning."""
    P = max(4, prof.n_nodes)

    # Allreduce: ring beats doubling once bandwidth dominates latency.
    ring_min = _first_grid_where(
        lambda n: cost_allreduce("ring", P, n, prof, ib)
        < cost_allreduce("recursive_doubling", P, n, prof, ib) - _EPS
    )

    # Allgather doubling: find the rank counts and block sizes where its
    # packed rounds (which cross the eager threshold early) still beat
    # the ring.  min_ranks = above the largest power of two that ever
    # loses; rd_max = largest prefix of the grid that wins everywhere.
    pof2_sizes = [1 << k for k in range(1, 8)]  # 2 … 128

    def rd_ok(p: int, n: int) -> bool:
        return (
            cost_allgather("recursive_doubling", p, n, prof, ib)
            <= cost_allgather("ring", p, n, prof, ib) + _EPS
        )

    losers = [
        p for p in pof2_sizes
        if not all(rd_ok(p, n) for n in _GRID)
    ]
    rd_min_ranks = 2 * max(losers) if losers else 2
    winners = [p for p in pof2_sizes if p >= rd_min_ranks]
    rd_max = 0
    for n in _GRID:
        if winners and not all(rd_ok(p, n) for p in winners):
            break
        rd_max = n

    # Small-block exception: every packed doubling round stays eager as
    # long as the final round's P/2 blocks fit under the threshold —
    # with the min-ranks gate in place the binding round is the second
    # (2 blocks), hence half the eager threshold.  This *derives* the
    # constant that previously leaked the eager threshold silently.
    rd_small_max = ib.eager_threshold // 2

    # Bruck: latency-optimal on non-power-of-two communicators for
    # blocks small enough that its packed rounds stay cheap.
    npof2_sizes = [3, 5, 6, 7, 9, 12, 24, 48, 96]

    def bruck_ok(p: int, n: int) -> bool:
        return (
            cost_allgather("bruck", p, n, prof, ib)
            <= cost_allgather("ring", p, n, prof, ib) + _EPS
        )

    bruck_max = 0
    for n in _GRID:
        if not all(bruck_ok(p, n) for p in npof2_sizes):
            break
        bruck_max = n

    # Bruck alltoall: its packed rounds beat the linear schedules only
    # while the block is small enough that ⌈log2 P⌉ latencies dominate
    # the ~(P/2)·log2 P extra block volume.  Swept over both linear
    # baselines so the threshold is safe on any communicator size.
    a2a_sizes = [4, 6, 8, 12, 16, 24, 32, 48, 96]

    def a2a_bruck_ok(p: int, n: int) -> bool:
        linear = min(
            cost_alltoall("shift", p, n, prof, ib),
            cost_alltoall("pairwise", p, n, prof, ib),
        )
        return cost_alltoall("bruck", p, n, prof, ib) <= linear + _EPS

    a2a_bruck_max = 0
    for n in _GRID:
        if not all(a2a_bruck_ok(p, n) for p in a2a_sizes):
            break
        a2a_bruck_max = n

    # Pipelined bcast: the chain beats the binomial tree once segments
    # amortize their fixed cost; demand a decisive (≥1.5×) modelled win
    # so razor-edge crossovers never regress a real broadcast, and sweep
    # every plausible rank count ≥ 4 (at P ≤ 2 the chain degenerates).
    pipe_sizes = [p for p in (4, 6, 8, 12, 16, 24, 32, 48, 96)]

    def pipe_ok(p: int, n: int) -> bool:
        tree = min(
            cost_bcast("binomial", p, n, prof, ib),
            cost_bcast("hierarchical", p, n, prof, ib),
        )
        return cost_bcast("pipelined", p, n, prof, ib) * 1.5 <= tree + _EPS

    bcast_pipe_min = _first_grid_where(
        lambda n: all(pipe_ok(p, n) for p in pipe_sizes)
        and all(pipe_ok(p, m) for p in pipe_sizes for m in _GRID if m >= n)
    )
    bcast_pipe_min = None if bcast_pipe_min >= _UNBOUNDED else bcast_pipe_min

    # Rabenseifner reduce: same shape as the allreduce ring crossover —
    # bandwidth-optimal once nβ dominates the extra log P latencies.
    # Non-powers of two are swept too: their fold-in round raises the
    # crossover, and the threshold must be safe for every P.
    raben_sizes = [4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128]

    def raben_ok(p: int, n: int) -> bool:
        return (
            cost_reduce("rabenseifner", p, n, prof, ib)
            <= cost_reduce("binomial", p, n, prof, ib) + _EPS
        )

    raben_min = _first_grid_where(
        lambda n: all(raben_ok(p, n) for p in raben_sizes)
        and all(raben_ok(p, m) for p in raben_sizes for m in _GRID if m >= n)
    )
    raben_min = None if raben_min >= _UNBOUNDED else raben_min

    # Hierarchical gates: only on fabrics that report oversubscription
    # and a regular domain structure.
    hier_min = None
    bcast_hier_min = None
    if (
        prof.oversubscription > 1.0
        and prof.domain_size >= 2
        and prof.n_domains >= 2
    ):
        n_hier = _first_grid_where(
            lambda n: cost_allreduce("hierarchical", P, n, prof, ib)
            < min(
                cost_allreduce("ring", P, n, prof, ib),
                cost_allreduce("recursive_doubling", P, n, prof, ib),
            )
            - _EPS
        )
        if n_hier < _UNBOUNDED:
            # Floor at half the eager threshold: below it the schedule
            # is latency-bound and recursive doubling's fewer rounds
            # win in practice — eager-sized rounds overlap their wire
            # time with the uplink queue drain, which the additive load
            # model cannot see.
            hier_min = max(n_hier, ib.eager_threshold // 2)
        n_bhier = _first_grid_where(
            lambda n: cost_bcast("hierarchical", P, n, prof, ib)
            < cost_bcast("binomial", P, n, prof, ib) - _EPS
        )
        if n_bhier < _UNBOUNDED:
            bcast_hier_min = n_bhier

    # Hierarchical allgather/alltoall: costed against the *fragmented*
    # flat schedules (every step a loaded bottleneck crossing — the
    # only regime hier_ok admits them in), with the same eager-floor
    # guard as the hierarchical allreduce.
    ag_hier_min = None
    a2a_hier_min = None
    if (
        prof.oversubscription > 1.0
        and prof.domain_size >= 2
        and prof.n_domains >= 2
    ):
        P_hier = prof.domain_size * prof.n_domains

        def frag_linear(n: int) -> float:
            return (P_hier - 1) * p2p_time(
                n, prof.cross_alpha_s, _cross_beta_eff(n, prof, ib), ib
            )

        n_aghier = _first_grid_where(
            lambda n: cost_allgather("hierarchical", P_hier, n, prof, ib)
            < frag_linear(n) - _EPS
        )
        if n_aghier < _UNBOUNDED:
            ag_hier_min = max(n_aghier, ib.eager_threshold // 2)
        n_a2ahier = _first_grid_where(
            lambda n: cost_alltoall("hierarchical", P_hier, n, prof, ib)
            < frag_linear(n) - _EPS
        )
        if n_a2ahier < _UNBOUNDED:
            a2a_hier_min = max(n_a2ahier, ib.eager_threshold // 2)

    # RMA eager/rendezvous: eager wins while the target bounce copy is
    # cheaper than the rkey round-trip; the crossover therefore grows
    # with the fabric's latency (a torus keeps eager puts longer than
    # the flat switch).  Largest grid prefix where eager still wins.
    rma_eager = 0
    for n in _GRID:
        if (
            cost_rma_put("eager", n, prof, ib)
            > cost_rma_put("rendezvous", n, prof, ib) + _EPS
        ):
            break
        rma_eager = n

    return CollectiveTuning(
        allreduce_ring_min_bytes=ring_min,
        allgather_rd_max_bytes=rd_max,
        allgather_rd_min_ranks=rd_min_ranks,
        allgather_rd_small_max_bytes=rd_small_max,
        allgather_bruck_max_bytes=bruck_max,
        alltoall_bruck_max_bytes=a2a_bruck_max,
        bcast_pipeline_min_bytes=bcast_pipe_min,
        reduce_raben_min_bytes=raben_min,
        allreduce_hier_min_bytes=hier_min,
        bcast_hier_min_bytes=bcast_hier_min,
        allgather_hier_min_bytes=ag_hier_min,
        alltoall_hier_min_bytes=a2a_hier_min,
        rma_eager_max_bytes=rma_eager,
    )


def subfabric_profile(topology, nodes: Sequence[int]):
    """The :class:`~repro.hw.topology.base.FabricProfile` of the slice
    of the fabric a set of nodes actually spans.

    A derived communicator sees only its own nodes: an intra-pod
    communicator never crosses the spine, so its profile collapses to
    the pod-local α/β with no oversubscription — which is exactly what
    its collective thresholds should be tuned against.  A communicator
    spanning several domains keeps the cross-bottleneck terms but with
    the domain structure *it* sees (its domain count, its largest
    domain).  The result is frozen/hashable, so it keys the same
    derivation cache full-fabric profiles use.
    """
    prof = topology.profile()
    uniq = sorted(set(int(n) for n in nodes))
    domains: Dict[int, List[int]] = {}
    for n in uniq:
        domains.setdefault(topology.locality_group(n), []).append(n)
    if len(domains) <= 1:
        # Never crosses the fabric bottleneck: pod-local hops only.
        return replace(
            prof,
            n_nodes=len(uniq),
            cross_alpha_s=prof.alpha_s,
            cross_beta_s_per_B=prof.beta_s_per_B,
            cross_load_beta_s_per_B=prof.beta_s_per_B,
            oversubscription=1.0,
            n_domains=len(uniq),
            domain_size=1,
        )
    return replace(
        prof,
        n_nodes=len(uniq),
        n_domains=len(domains),
        domain_size=max(len(v) for v in domains.values()),
    )


def autotune_tuning(
    cluster, nodes: Optional[Sequence[int]] = None
) -> CollectiveTuning:
    """Per-cluster tuning, derived once and cached by fabric shape.

    ``nodes`` restricts the derivation to the sub-fabric those nodes
    span (what derived communicators pass); the cache is keyed by the
    resulting profile, so every communicator over the same sub-fabric
    shape shares one derivation.
    """
    topo = cluster.interconnect.topology
    prof = (
        topo.profile() if nodes is None else subfabric_profile(topo, nodes)
    )
    ib = cluster.spec.params.ib
    key = (prof, ib)
    tuning = _CACHE.get(key)
    if tuning is None:
        tuning = derive_tuning(prof, ib)
        _CACHE[key] = tuning
    return tuning


def clear_cache() -> None:
    """Drop all cached derivations (tests and parameter sweeps)."""
    _CACHE.clear()
