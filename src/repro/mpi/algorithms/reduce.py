"""Reduce-to-root algorithms: binomial tree (seed) and Rabenseifner.

* ``binomial`` — ⌈log2 P⌉ rounds each moving the full vector: the
  classic MVAPICH2 tree the seed shipped with.  Latency-optimal; every
  round ships all n bytes, so large vectors pay ⌈log2 P⌉·nβ.
* ``rabenseifner`` — recursive-halving reduce-scatter followed by a
  binomial gather of the combined chunks to the root: 2·⌈log2 P⌉
  rounds but only ≈2·nβ total bytes on the critical path — the
  bandwidth-optimal root-ended reduction (Rabenseifner 2004), selected
  for large messages on any communicator size (non-powers of two pay
  one extra fold-in round first).

Both compile to :class:`~repro.mpi.algorithms.schedule.Schedule` DAGs;
``mpi/collectives.py`` dispatches blocking ``reduce`` (and the new
``ireduce``) through the selector onto these builders, and the
reduce+bcast allreduce splices the binomial schedule in front of its
broadcast leg.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..datatypes import AdoptBuf, Payload, ReduceOp, payload_array
from ..errors import MpiError
from .base import largest_pof2, next_tag
from .schedule import Schedule

__all__ = [
    "build_reduce_binomial",
    "build_reduce_rabenseifner",
    "append_reduce_binomial",
]


def _setup(ctx, sendbuf: Payload, recvbuf: Optional[Payload], root: int):
    src = payload_array(sendbuf)
    if src is None:
        raise MpiError("reduce requires an array payload")
    out = payload_array(recvbuf) if recvbuf is not None else None
    if ctx.rank == root and out is None:
        raise MpiError("root needs a recv buffer for reduce")
    return src, out


def append_reduce_binomial(
    sched: Schedule,
    ctx,
    sendbuf: Payload,
    recvbuf: Optional[Payload],
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
    after: Sequence[int] = (),
) -> List[int]:
    """Binomial-tree reduction to ``root`` (the seed schedule).

    Same virtual-rank arithmetic and message sequence as the original
    run-to-completion loop; returns the terminal step indices.
    """
    src, out = _setup(ctx, sendbuf, recvbuf, root)
    size, rank = ctx.size, ctx.rank
    tag = next_tag(ctx)
    st = {"acc": src.copy()}
    deps = list(after)
    if size > 1:
        vrank = (rank - root) % size
        mask = 1
        rnd = 0
        while mask < size:
            if vrank & mask:
                dst = ((vrank & ~mask) + root) % size
                # donate: acc is rebound, and this rank's tree role
                # ends at this send — nothing touches acc afterwards.
                deps = [sched.send(lambda: st["acc"], dst, tag,
                                   after=deps, round=rnd, donate=True)]
                break
            partner_v = vrank | mask
            if partner_v < size:
                tmp = AdoptBuf(st["acc"])
                partner = (partner_v + root) % size
                r = sched.recv(tmp, partner, tag, after=deps, round=rnd)

                def combine(tmp=tmp):
                    st["acc"] = op.combine(st["acc"], tmp.arr)

                deps = [sched.compute(combine, after=(r,), round=rnd)]
            mask <<= 1
            rnd += 1
    else:
        deps = [sched.overhead(after=deps)]
    if rank == root:
        deps = [sched.compute(
            lambda: out.__setitem__(..., st["acc"].reshape(out.shape)),
            after=deps,
        )]
    return deps


def build_reduce_binomial(
    ctx,
    sendbuf: Payload,
    recvbuf: Optional[Payload],
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
) -> Schedule:
    sched = Schedule()
    append_reduce_binomial(sched, ctx, sendbuf, recvbuf, op=op, root=root)
    return sched


def build_reduce_rabenseifner(
    ctx,
    sendbuf: Payload,
    recvbuf: Optional[Payload],
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
) -> Schedule:
    """Recursive-halving reduce-scatter + binomial gather to the root.

    Any communicator size: on non-powers of two the ``rem = P − pof2``
    excess virtual ranks first fold their full vector into virtual rank
    ``vr − pof2`` (one extra round, mirroring the recursive-doubling
    allreduce fold-in; no fold-out — only the root needs the result and
    virtual rank 0 always participates), then the power-of-two
    participant set runs the standard halving + gather.  Tolerates
    element counts below P (trailing chunks are empty).  Chunk c of the
    vector ends fully combined on virtual rank c after the halving
    phase, then the gather phase folds the chunk ranges upward to the
    root in ⌈log2 pof2⌉ doubling rounds.
    """
    src, out = _setup(ctx, sendbuf, recvbuf, root)
    size, rank = ctx.size, ctx.rank
    sched = Schedule()
    acc = src.copy().reshape(-1)
    if size == 1:
        sched.overhead()
        sched.compute(
            lambda: out.__setitem__(..., acc.reshape(out.shape)),
            after=(sched.last,),
        )
        return sched
    tag = next_tag(ctx)
    vr = (rank - root) % size
    pof2 = largest_pof2(size)
    rem = size - pof2
    n = acc.size
    bounds = [(c * n) // pof2 for c in range(pof2 + 1)]

    def seg(lo: int, hi: int) -> np.ndarray:
        return acc[bounds[lo] : bounds[hi]]

    def real(v: int) -> int:
        return (v + root) % size

    deps: List[int] = []
    rnd = 0
    # Fold-in (tag offset 6) — the excess virtual ranks (vr ≥ pof2)
    # hand their whole vector to vr − pof2 and are done; the receiver
    # combines it and carries both contributions forward.
    if rem:
        if vr >= pof2:
            # donate: acc is collective-private and this rank is done.
            sched.send(acc, real(vr - pof2), tag + 6, after=deps,
                       round=rnd, donate=True)
            return sched
        if vr < rem:
            fold_src = real(vr + pof2)
            tmp0 = AdoptBuf(acc)
            r = sched.recv(tmp0, fold_src, tag + 6, after=deps, round=rnd)

            def fold_in(tmp0=tmp0, fold_src=fold_src):
                acc[...] = (
                    op.combine(tmp0.arr, acc) if fold_src < rank
                    else op.combine(acc, tmp0.arr)
                )

            deps = [sched.compute(fold_in, after=(r,), round=rnd)]
        rnd += 1
    # Phase 1 (tag offsets 0/1) — recursive halving reduce-scatter: each
    # round trades half of the live range with the partner at distance
    # ``half`` and combines the kept half.
    lo, hi = 0, pof2
    while hi - lo > 1:
        half = (hi - lo) // 2
        mid = lo + half
        partner = real(vr ^ half)
        if vr < mid:
            keep_lo, keep_hi = lo, mid
            give_lo, give_hi = mid, hi
        else:
            keep_lo, keep_hi = mid, hi
            give_lo, give_hi = lo, mid
        tmp = AdoptBuf(seg(keep_lo, keep_hi))
        # donate: acc is collective-private; the given-away half is
        # next written only by a gather recv, causally behind the
        # partner's combine — the last read of the adopted view.
        s = sched.send(seg(give_lo, give_hi), partner, tag + rnd % 2,
                       after=deps, round=rnd, donate=True)
        r = sched.recv(tmp, partner, tag + rnd % 2, after=deps, round=rnd)

        def combine(tmp=tmp, klo=keep_lo, khi=keep_hi, partner=partner):
            mine = seg(klo, khi)
            mine[...] = (
                op.combine(tmp.arr, mine) if partner < rank
                else op.combine(mine, tmp.arr)
            )

        deps = [sched.compute(combine, after=(s, r), round=rnd)]
        lo, hi = keep_lo, keep_hi
        rnd += 1
    # Phase 2 (tag offsets 2/3) — binomial gather of the combined chunks:
    # vrank v owns chunk range [v, v + m) after absorbing partners at
    # distances 1, 2, ... until its bit fires and it ships the range to
    # v − mask.
    mask = 1
    own_lo, own_hi = vr, vr + 1
    while mask < pof2:
        if vr & mask:
            dst = real(vr - mask)
            # alias_ok: acc is collective-private and this rank's gather
            # role ends here — nothing writes the sent range afterwards.
            deps = [sched.send(seg(own_lo, own_hi), dst, tag + 2 + rnd % 2,
                               after=deps, round=rnd, alias_ok=True)]
            break
        partner_v = vr + mask
        if partner_v < pof2:
            deps = [sched.recv(seg(partner_v, min(partner_v + mask, pof2)),
                               real(partner_v), tag + 2 + rnd % 2,
                               after=deps, round=rnd)]
            own_hi = min(partner_v + mask, pof2)
        mask <<= 1
        rnd += 1
    if rank == root:
        sched.compute(
            lambda: out.__setitem__(..., acc.reshape(out.shape)),
            after=deps,
        )
    return sched

