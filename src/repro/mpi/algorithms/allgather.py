"""Allgather algorithms: ring (seed), recursive doubling, and Bruck.

* ``ring`` — P−1 steps each forwarding one block: bandwidth-optimal,
  handles unequal block sizes (the vector variant) and any P.
* ``recursive_doubling`` — ⌈log2 P⌉ rounds, doubling the forwarded
  volume each round; same total bytes, far fewer per-message latencies.
  Requires a power-of-two communicator and equal block sizes (as
  MPI_Allgather guarantees); the selector falls back to the ring
  otherwise.
* ``bruck`` — ⌈log2 P⌉ rounds for *any* P (the store-and-rotate
  schedule of Bruck et al.): round k forwards the min(2^k, P−2^k)
  blocks accumulated so far to rank−2^k, receiving the matching run
  from rank+2^k.  Latency-optimal on non-power-of-two communicators,
  where recursive doubling cannot run; the final rotation is a local
  index remap (no wire traffic).  Equal block sizes only.

Each algorithm is a ``build_*`` function compiling to a round-based
:class:`~repro.mpi.algorithms.schedule.Schedule`; packing and the Bruck
rotation use lazy buffers because a round's payload only exists once the
previous round delivered.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..datatypes import AdoptBuf, Payload, payload_array
from ..errors import MpiError
from .base import is_pof2, next_tag
from .schedule import Schedule

__all__ = [
    "build_allgather_ring",
    "build_allgather_recursive_doubling",
    "build_allgather_bruck",
]


def build_allgather_ring(
    ctx,
    sendbuf: Payload,
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Ring allgather: P−1 steps, each forwarding one block.

    Buffer-count validation happens once at the dispatch layer
    (``collectives.allgather``).
    """
    sched = Schedule()
    tag = next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    own = payload_array(recvbufs[rank])
    mine = payload_array(sendbuf)

    def local_copy():
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)

    deps = [sched.compute(local_copy)]
    if size == 1:
        sched.overhead(after=deps)
        return sched
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        s = sched.send(recvbufs[send_block], right, tag + step % 4,
                       after=deps, round=step)
        r = sched.recv(recvbufs[recv_block], left, tag + step % 4,
                       after=deps, round=step)
        deps = [s, r]
    return sched


def _contiguous_span(
    arrays: Sequence[Optional[np.ndarray]], block: int
) -> Optional[np.ndarray]:
    """One uint8 view covering ``arrays`` back-to-back, or ``None``.

    When the recv blocks are adjacent equal-size slices of a single
    buffer (the common flat-recvbuf layout), recursive doubling can
    receive each round's packed run straight into its final location
    and send fully-assembled runs as zero-copy views — no staging
    buffers, no pack/unpack memcpy at all.
    """
    if block == 0 or any(a is None for a in arrays):
        return None
    base = arrays[0].base
    if base is None or not isinstance(base, np.ndarray):
        return None
    if not base.flags.c_contiguous:
        return None
    if any(
        a.base is not base or not a.flags.c_contiguous or a.nbytes != block
        for a in arrays
    ):
        return None
    flat = base.view(np.uint8).reshape(-1)
    p0 = flat.__array_interface__["data"][0]
    offs = [a.__array_interface__["data"][0] - p0 for a in arrays]
    if offs[0] < 0 or offs[-1] + block > flat.size:
        return None
    if any(offs[i + 1] - offs[i] != block for i in range(len(arrays) - 1)):
        return None
    return flat[offs[0] : offs[0] + len(arrays) * block]


def build_allgather_recursive_doubling(
    ctx,
    sendbuf: Payload,
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Recursive-doubling allgather (power-of-two P, equal blocks).

    After round ``i`` every rank holds the contiguous run of ``2^(i+1)``
    blocks it shares with its partner's half, so both sides always know
    exactly which blocks travel: the packed exchange needs no index
    metadata on the wire.

    When the recv blocks are adjacent slices of one flat buffer the
    packed runs already exist contiguously in place, so the exchange
    sends zero-copy views of the assembled run and receives directly
    into the destination run (see :func:`_contiguous_span`).  Wire
    traffic — message sizes, tags, rounds, dependencies — is identical
    to the staging variant, so timing is unchanged.
    """
    size, rank = ctx.size, ctx.rank
    if not is_pof2(size):
        raise MpiError("recursive-doubling allgather needs power-of-two P")
    sched = Schedule()
    tag = next_tag(ctx)
    arrays: List[Optional[np.ndarray]] = [payload_array(b) for b in recvbufs]
    mine = payload_array(sendbuf)
    own = arrays[rank]

    def local_copy():
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)

    deps = [sched.compute(local_copy)]
    if size == 1:
        sched.overhead(after=deps)
        return sched

    block = arrays[0].nbytes if arrays[0] is not None else 0
    span = _contiguous_span(arrays, block)
    if span is not None:
        mask = 1
        rnd = 0
        while mask < size:
            partner = rank ^ mask
            my_lo = rank & ~(mask - 1)
            peer_lo = my_lo ^ mask
            # alias_ok: the sent run is fully assembled (its blocks
            # arrived in earlier rounds, which are dependencies) and is
            # never written again — later receives only ever fill the
            # disjoint peer half.
            s = sched.send(
                span[my_lo * block : (my_lo + mask) * block],
                partner, tag, after=deps, round=rnd, alias_ok=True,
            )
            r = sched.recv(
                span[peer_lo * block : (peer_lo + mask) * block],
                partner, tag, after=deps, round=rnd,
            )
            deps = [s, r]
            mask <<= 1
            rnd += 1
        return sched

    def pack(lo: int, count: int) -> np.ndarray:
        views = [
            a.view(np.uint8).reshape(-1)
            for a in arrays[lo : lo + count]
            if a is not None
        ]
        if not views:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(views)

    def unpack(buf: np.ndarray, lo: int, count: int) -> None:
        off = 0
        for a in arrays[lo : lo + count]:
            if a is None:
                continue
            view = a.view(np.uint8).reshape(-1)
            view[...] = buf[off : off + view.size]
            off += view.size

    mask = 1
    rnd = 0
    while mask < size:
        partner = rank ^ mask
        my_lo = rank & ~(mask - 1)
        peer_lo = my_lo ^ mask
        peer_bytes = sum(
            a.nbytes for a in arrays[peer_lo : peer_lo + mask] if a is not None
        )
        # AdoptBuf staging: the unpack below reads through ``.arr`` at
        # compute time, so the receive may adopt the in-flight pack.
        recvpack = AdoptBuf(peer_bytes)
        # The outgoing pack only exists once earlier rounds unpacked —
        # resolve it lazily at send time.  donate: pack() returns a
        # fresh concatenation nothing else ever writes or reads again.
        s = sched.send(lambda lo=my_lo, c=mask: pack(lo, c), partner, tag,
                       after=deps, round=rnd, donate=True)
        r = sched.recv(recvpack, partner, tag, after=deps, round=rnd)
        deps = [s, sched.compute(
            lambda b=recvpack, lo=peer_lo, c=mask: unpack(b.arr, lo, c),
            after=(r,), round=rnd,
        )]
        mask <<= 1
        rnd += 1
    return sched


def build_allgather_bruck(
    ctx,
    sendbuf: Payload,
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Bruck allgather (any P, equal blocks): ⌈log2 P⌉ rounds.

    The working vector is kept in rank-rotated order — slot ``i`` holds
    block ``(rank + i) mod P`` — so every round forwards a contiguous
    run of slots with no index metadata on the wire, exactly like the
    recursive-doubling pack.  The de-rotation at the end is a local
    remap into ``recvbufs``.
    """
    size, rank = ctx.size, ctx.rank
    arrays: List[Optional[np.ndarray]] = [payload_array(b) for b in recvbufs]
    mine = payload_array(sendbuf)
    if mine is None:
        raise MpiError("bruck allgather requires an array payload")
    block = mine.nbytes
    if any(a is None or a.nbytes != block for a in arrays):
        raise MpiError("bruck allgather needs equal-size recv blocks")
    sched = Schedule()
    tag = next_tag(ctx)
    if size == 1:
        own = arrays[rank]
        sched.compute(lambda: own.__setitem__(..., mine.reshape(own.shape)))
        sched.overhead(after=(sched.last,))
        return sched
    work: List[np.ndarray] = [mine.view(np.uint8).reshape(-1).copy()]
    deps: List[int] = []
    step = 1
    rnd = 0
    while step < size:
        count = min(step, size - step)
        dst = (rank - step) % size
        src = (rank + step) % size
        recvpack = AdoptBuf(count * block)
        # donate: the payload is a fresh concatenation (np.concatenate
        # copies even for a single input), or work[0] — this rank's
        # private copy of its own block, which nobody ever writes (so
        # donating it to several receivers across rounds stays safe).
        s = sched.send(
            lambda c=count: np.concatenate(work[:c]) if c > 1 else work[0],
            dst, tag + rnd % 2, after=deps, round=rnd, donate=True,
        )
        r = sched.recv(recvpack, src, tag + rnd % 2, after=deps, round=rnd)

        def absorb(buf=recvpack, c=count):
            # Received slots step..step+count−1: blocks (rank+step+j) mod P.
            arr = buf.arr
            for j in range(c):
                work.append(arr[j * block : (j + 1) * block])

        deps = [s, sched.compute(absorb, after=(r,), round=rnd)]
        step <<= 1
        rnd += 1

    def derotate():
        # De-rotate: slot i is block (rank + i) mod P.
        for i, blk in enumerate(work):
            dest = arrays[(rank + i) % size]
            view = dest.view(np.uint8).reshape(-1)
            view[...] = blk

    sched.compute(derotate, after=deps)
    return sched

