"""Broadcast algorithms: binomial tree (seed) and hierarchical.

* ``binomial`` — the ⌈log2 P⌉-hop tree MVAPICH2-era MPIs run; the seed's
  only broadcast and still the default on non-blocking fabrics.
* ``hierarchical`` — two nested binomial trees: root → one leader per
  locality domain (pod), then each leader → its domain.  The payload
  crosses the fabric's bottleneck once per domain instead of once per
  rank, which is what wins on an oversubscribed fat tree with a
  fragmented rank placement.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from ...sim.core import Event
from ..datatypes import Payload
from ..errors import MpiError
from .base import next_tag, recv_internal, send_internal

__all__ = ["bcast_binomial", "bcast_hierarchical"]


def _binomial(
    ctx,
    buf: Payload,
    members: Sequence[int],
    root: int,
    tag: int,
) -> Generator[Event, Any, None]:
    """Binomial-tree broadcast among ``members`` (``root`` ∈ members).

    With ``members == range(P)`` this is exactly the seed broadcast:
    same virtual-rank arithmetic, same message sequence.
    """
    size = len(members)
    if size == 1:
        return
    idx = members.index(ctx.rank)
    ridx = members.index(root)
    vrank = (idx - ridx) % size
    # Phase 1 — non-roots receive from their parent.  ``mask`` stops at
    # the lowest set bit of vrank (or the first power of two >= size for
    # the root).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = members[((vrank - mask) + ridx) % size]
            yield from recv_internal(ctx, buf, parent, tag)
            break
        mask <<= 1
    # Phase 2 — forward to children: vrank + m for each m below mask.
    mask >>= 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < size:
            child = members[(child_v + ridx) % size]
            yield from send_internal(ctx, buf, child, tag)
        mask >>= 1


def bcast_binomial(
    ctx, buf: Payload, root: int = 0
) -> Generator[Event, Any, None]:
    """Binomial-tree broadcast of ``buf`` (in place for non-roots)."""
    tag = next_tag(ctx)
    if ctx.size == 1:
        yield ctx.comm._sw()
        return
    yield from _binomial(ctx, buf, list(range(ctx.size)), root, tag)


def bcast_hierarchical(
    ctx, buf: Payload, root: int = 0
) -> Generator[Event, Any, None]:
    """Domain-leader broadcast: root → leaders → domain members.

    Requires the communicator to expose locality groups (every rank in
    exactly one group); the root acts as its own group's leader so the
    payload never takes a detour.
    """
    groups: List[List[int]] = getattr(ctx.comm, "locality_groups", None)
    if not groups or len(groups) < 2:
        raise MpiError(
            "hierarchical bcast needs >= 2 locality groups; "
            "use the binomial tree on flat fabrics"
        )
    tag = next_tag(ctx)
    if ctx.size == 1:
        yield ctx.comm._sw()
        return
    my_group = next(g for g in groups if ctx.rank in g)
    leaders = [root if root in g else g[0] for g in groups]
    my_leader = root if root in my_group else my_group[0]
    # Phase 1 (tag+0): binomial over the domain leaders.
    if ctx.rank in leaders:
        yield from _binomial(ctx, buf, leaders, root, tag)
    # Phase 2 (tag+1): each leader fans out inside its domain.
    yield from _binomial(ctx, buf, my_group, my_leader, tag + 1)
