"""Broadcast algorithms: binomial tree (seed), hierarchical, pipelined.

* ``binomial`` — the ⌈log2 P⌉-hop tree MVAPICH2-era MPIs run; the seed's
  only broadcast and still the default on non-blocking fabrics.
* ``hierarchical`` — two nested binomial trees: root → one leader per
  locality domain (pod), then each leader → its domain.  The payload
  crosses the fabric's bottleneck once per domain instead of once per
  rank, which is what wins on an oversubscribed fat tree with a
  fragmented rank placement.
* ``pipelined`` — the message is cut into S segments streamed down a
  chain in rank order: rank i forwards segment s while receiving
  segment s+1, so for large messages the whole broadcast approaches a
  single nβ transfer instead of the tree's ⌈log2 P⌉·nβ.  This schedule
  is only expressible with the round-based engine: its win *is* the
  overlap of each hop's send with the next segment's receive, which a
  run-to-completion generator loop cannot produce.

All three compile to :class:`~repro.mpi.algorithms.schedule.Schedule`
DAGs; ``append_bcast`` lets other collectives (reduce+bcast) splice a
broadcast behind their own steps.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..datatypes import Payload
from ..errors import MpiError
from .base import next_tag
from .schedule import Schedule

__all__ = [
    "build_bcast_binomial",
    "build_bcast_hierarchical",
    "build_bcast_pipelined",
    "append_bcast",
    "best_pipeline_segments",
]


def _append_binomial(
    sched: Schedule,
    ctx,
    buf: Payload,
    members: Sequence[int],
    root: int,
    tag: int,
    after: Sequence[int] = (),
    round0: int = 0,
) -> List[int]:
    """Binomial-tree broadcast among ``members`` (``root`` ∈ members).

    With ``members == range(P)`` this is exactly the seed broadcast:
    same virtual-rank arithmetic, same message sequence.  Returns the
    terminal step indices of this rank's part of the tree.
    """
    size = len(members)
    if size == 1:
        return list(after)
    idx = members.index(ctx.rank)
    ridx = members.index(root)
    vrank = (idx - ridx) % size
    deps = list(after)
    # The edge reaching the child at offset 2^j fires in global round
    # n_rounds-1-j: the root peels off its largest subtree first, and
    # every forwarded edge lands in the round its sender is first able
    # to send.  Labeling rounds by that wall-clock position (rather
    # than loop order) is what lets the analytic backend price the
    # tree at its true log2(P) depth.
    n_rounds = (size - 1).bit_length()
    # Phase 1 — non-roots receive from their parent.  ``mask`` stops at
    # the lowest set bit of vrank (or the first power of two >= size for
    # the root).
    mask = 1
    j = 0
    while mask < size:
        if vrank & mask:
            parent = members[((vrank - mask) + ridx) % size]
            deps = [sched.recv(buf, parent, tag, after=deps,
                               round=round0 + n_rounds - 1 - j)]
            break
        mask <<= 1
        j += 1
    # Phase 2 — forward to children: vrank + m for each m below mask.
    mask >>= 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < size:
            child = members[(child_v + ridx) % size]
            j = mask.bit_length() - 1
            deps = [sched.send(buf, child, tag, after=deps,
                               round=round0 + n_rounds - 1 - j)]
        mask >>= 1
    return deps


def build_bcast_binomial(
    ctx, buf: Payload, root: int = 0, after: Sequence[int] = ()
) -> Schedule:
    """Binomial-tree broadcast of ``buf`` (in place for non-roots)."""
    sched = Schedule()
    append_bcast_binomial(sched, ctx, buf, root=root, after=after)
    return sched


def append_bcast_binomial(
    sched: Schedule, ctx, buf: Payload, root: int = 0,
    after: Sequence[int] = (), round0: int = 0,
) -> List[int]:
    tag = next_tag(ctx)
    if ctx.size == 1:
        return [sched.overhead(after=after)]
    return _append_binomial(
        sched, ctx, buf, list(range(ctx.size)), root, tag, after=after,
        round0=round0,
    )


def build_bcast_hierarchical(
    ctx, buf: Payload, root: int = 0, after: Sequence[int] = ()
) -> Schedule:
    """Domain-leader broadcast: root → leaders → domain members."""
    sched = Schedule()
    append_bcast_hierarchical(sched, ctx, buf, root=root, after=after)
    return sched


def append_bcast_hierarchical(
    sched: Schedule, ctx, buf: Payload, root: int = 0,
    after: Sequence[int] = (), round0: int = 0,
) -> List[int]:
    """Requires the communicator to expose locality groups (every rank in
    exactly one group); the root acts as its own group's leader so the
    payload never takes a detour."""
    groups: List[List[int]] = getattr(ctx.comm, "locality_groups", None)
    if not groups or len(groups) < 2:
        raise MpiError(
            "hierarchical bcast needs >= 2 locality groups; "
            "use the binomial tree on flat fabrics"
        )
    tag = next_tag(ctx)
    if ctx.size == 1:
        return [sched.overhead(after=after)]
    my_group = next(g for g in groups if ctx.rank in g)
    leaders = [root if root in g else g[0] for g in groups]
    my_leader = root if root in my_group else my_group[0]
    deps = list(after)
    # Phase 1 (tag+0): binomial over the domain leaders.
    if ctx.rank in leaders:
        deps = _append_binomial(sched, ctx, buf, leaders, root, tag,
                                after=deps, round0=round0)
    # Phase 2 (tag+1): each leader fans out inside its domain.  The
    # phase boundary is the leader tree's depth — computed, not read
    # off this rank's schedule, so every rank labels phase-2 rounds
    # identically (non-leaders have no phase-1 steps to count).
    leader_rounds = (len(leaders) - 1).bit_length()
    return _append_binomial(
        sched, ctx, buf, my_group, my_leader, tag + 1,
        after=deps, round0=round0 + leader_rounds,
    )


def best_pipeline_segments(nbytes: int, size: int, ib) -> int:
    """Segment count minimizing the chain-pipeline makespan.

    The chain completes in (S + P − 2) hops of one segment each, so the
    makespan is (S + P − 2)·(c + (n/S)·β) with c the per-message fixed
    cost (software overhead + wire latency).  The minimizer is
    S* = sqrt((P − 2)·nβ / c), clamped to [2, 64] and to segments of at
    least one eager-threshold quantum so tiny fragments never pay more
    fixed cost than they hide.
    """
    if size <= 2 or nbytes <= 0:
        return 1
    beta = 1.0 / (ib.bw_GBps * 1e9)
    fixed = (ib.sw_overhead_us + ib.lat_us) * 1e-6
    s_opt = math.sqrt(max(1.0, (size - 2) * nbytes * beta / fixed))
    s_cap = max(1, nbytes // max(1, ib.eager_threshold))
    return int(max(1, min(64, round(s_opt), s_cap)))


def build_bcast_pipelined(
    ctx,
    buf: Payload,
    root: int = 0,
    after: Sequence[int] = (),
    segments: Optional[int] = None,
) -> Schedule:
    """Segmented chain broadcast (large messages).

    The chain runs in rank order rotated so the root leads; each rank
    receives segment s from its predecessor while forwarding segment
    s−1 to its successor.  Segment count defaults to the analytic
    optimum for the communicator's fabric parameters.
    """
    sched = Schedule()
    append_bcast_pipelined(sched, ctx, buf, root=root, after=after,
                           segments=segments)
    return sched


def append_bcast_pipelined(
    sched: Schedule, ctx, buf: Payload, root: int = 0,
    after: Sequence[int] = (), segments: Optional[int] = None,
    round0: int = 0,
) -> List[int]:
    from ..datatypes import payload_array

    tag = next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if size == 1:
        return [sched.overhead(after=after)]
    arr = payload_array(buf)
    if arr is None:
        raise MpiError("pipelined bcast requires an array payload")
    flat = arr.view("u1").reshape(-1)
    n = flat.size
    S = segments if segments is not None else best_pipeline_segments(
        n, size, ctx.comm._ib
    )
    S = max(1, min(S, max(1, n)))
    bounds = [(s * n) // S for s in range(S + 1)]
    # Chain order is rank order rotated to start at the root.
    pos = (rank - root) % size
    prev = (root + pos - 1) % size
    nxt = (root + pos + 1) % size
    recvs: List[int] = []
    last_send: List[int] = list(after)
    ends: List[int] = []
    for s in range(S):
        seg = flat[bounds[s] : bounds[s + 1]]
        if pos > 0:
            # Receive segment s from the predecessor; chained so the
            # wire keeps FIFO order on the single (src, tag) pair.
            r = sched.recv(seg, prev, tag, after=recvs[-1:] or list(after),
                           round=round0 + s)
            recvs.append(r)
            ends = [r]
        if pos < size - 1:
            send_after = list(last_send)
            if pos > 0:
                send_after.append(recvs[-1])
            snd = sched.send(seg, nxt, tag, after=send_after,
                             round=round0 + s)
            last_send = [snd]
            ends = [snd] if pos == 0 else [recvs[-1], snd]
    if not ends:
        ends = list(after)
    return ends


#: Builder registry for splicing a broadcast behind another schedule
#: (reduce+bcast) — mirrors ``ALGORITHMS["bcast"]``.
_APPENDERS = {
    "binomial": append_bcast_binomial,
    "hierarchical": append_bcast_hierarchical,
    "pipelined": append_bcast_pipelined,
}


def append_bcast(
    algo: str, sched: Schedule, ctx, buf: Payload, root: int = 0,
    after: Sequence[int] = (), round0: int = 0,
) -> List[int]:
    """Append the named broadcast schedule behind ``after``.

    ``round0`` offsets the appended rounds past the host schedule's —
    splices (reduce+bcast) must pass ``sched.n_rounds`` so the two
    legs' rounds never overlap in the analytic per-round pricing.
    """
    return _APPENDERS[algo](sched, ctx, buf, root=root, after=after,
                            round0=round0)
