"""Round-based collective schedules and the nonblocking progress engine.

A :class:`Schedule` is the intermediate representation every collective
algorithm in this package compiles to: a per-rank DAG of **steps**
(send / recv / compute / overhead) with explicit dependencies.  The
:class:`ScheduleEngine` executes a schedule by starting every step whose
dependencies are satisfied and waiting for the *first* completion —
never for the whole round — so independent wire transfers overlap
exactly the way the hand-written generator loops used to overlap their
``isend``/``recv`` pairs.

Two execution modes share the same code path:

* **blocking** — ``yield from engine.execute(ctx, sched)`` inside the
  caller's process (what ``mpi/collectives.py`` does for the classic
  MPI-2 collectives);
* **nonblocking** — ``engine.start(ctx, sched)`` spawns the executor as
  its own simulated process and returns a
  :class:`~repro.mpi.communicator.Request`, which is what the MPI-3
  style ``ibcast``/``iallreduce``/... return and what DCGN's comm
  thread uses to progress collectives while kernels keep computing.

Timing parity: a schedule whose dependency edges mirror a blocking
loop's control flow (send_k ∥ recv_k, both gated on round k−1) produces
the *same* message sequence at the same simulated times — the engine is
pure bookkeeping and charges nothing itself.  That is what keeps the
pre-existing BENCH gates byte-stable while making every algorithm
startable nonblockingly.

Steps carry a ``round`` label.  Rounds have no execution semantics
(dependencies alone order the DAG) but they are the unit the autotuner
costs — :mod:`repro.mpi.algorithms.autotune` prices an algorithm as the
sum of its per-round critical paths — and the unit ``describe()``
reports for tests and diagnostics.

Buffers may be supplied lazily (a zero-argument callable returning the
payload) for algorithms whose round *k* payload only exists once round
*k−1* delivered — the Bruck rotation, recursive-doubling packs, the
rebound accumulator of the halving reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple, Union

from ...sim.core import Event
from ..communicator import MpiContext, Request
from ..datatypes import Payload
from ..errors import MpiError

__all__ = ["Schedule", "ScheduleEngine", "LazyBuf", "blocking"]


def blocking(builder: Callable) -> Callable:
    """Blocking entry point for a schedule builder.

    Builds the schedule and executes it to completion in the calling
    process — the single adapter behind every name in
    :data:`~repro.mpi.algorithms.selector.ALGORITHMS`, so the blocking
    and nonblocking paths can never drift apart.
    """

    def run(ctx, *args, **kwargs):
        yield from ctx.comm.engine.execute(
            ctx, builder(ctx, *args, **kwargs)
        )

    run.__name__ = builder.__name__.replace("build_", "")
    run.__qualname__ = run.__name__
    run.__doc__ = (
        f"Blocking execution of :func:`{builder.__name__}`'s schedule."
    )
    return run

#: A payload, or a zero-arg callable resolved when the step starts.
LazyBuf = Union[Payload, Callable[[], Payload]]

_SEND = "send"
_RECV = "recv"
_COMPUTE = "compute"
_OVERHEAD = "overhead"

#: Interned per-round span names ("round0", "round1", ...) — every
#: traced collective emits one span per round, so the f-string is paid
#: once per distinct round index, not once per span.
_ROUND_NAMES: List[str] = []


def _round_name(rd: int) -> str:
    names = _ROUND_NAMES
    while len(names) <= rd:
        names.append(f"round{len(names)}")
    return names[rd]


@dataclass
class _Step:
    """One node of the schedule DAG."""

    idx: int
    kind: str
    deps: Tuple[int, ...]
    round: int = 0
    #: Wire steps: the peer rank and internal tag.
    peer: int = -1
    tag: int = -1
    #: Wire steps: payload (possibly lazy).
    buf: LazyBuf = None
    #: Compute steps: the local action (runs in zero simulated time,
    #: like the inline numpy combines of the old generator loops).
    fn: Optional[Callable[[], None]] = None
    #: Wire steps: the context this step runs under — a *derived*
    #: communicator's :class:`MpiContext` when the hierarchical
    #: collectives route a phase through a sub-communicator (``peer``
    #: and ``tag`` are then that communicator's).  ``None`` = the
    #: executing rank's own context.
    via: Optional[MpiContext] = None
    #: Send steps: the payload is a fresh builder-local staging array
    #: (or a rebound accumulator) that provably cannot be mutated
    #: between injection and delivery, so the defensive send-time
    #: ``np.copy`` may be elided.  Never set on user-owned buffers.
    alias_ok: bool = False
    #: Send steps: the payload is *donated* — the sender never writes
    #: the array again before every receiver has consumed it, so a
    #: matching :class:`~repro.mpi.datatypes.AdoptBuf` receive may take
    #: ownership of the in-flight array instead of copying out of it.
    #: Strictly stronger than ``alias_ok`` (implies it at the wire).
    donate: bool = False

    def resolve_buf(self) -> Payload:
        return self.buf() if callable(self.buf) else self.buf


class Schedule:
    """A per-rank DAG of communication/compute steps."""

    def __init__(self) -> None:
        self.steps: List[_Step] = []
        #: Collective identity for observability: the dispatch layer
        #: stamps ``{"op", "algo", "nbytes"}`` here so the engines can
        #: label the span they emit per execution.  ``None`` (e.g. a
        #: builder invoked directly in tests) falls back to a generic
        #: label; execution is identical either way.
        self.meta: Optional[dict] = None
        #: Set by builders whose DAG is a pure function of this key and
        #: whose wire steps carry **no payload** (e.g. the dissemination
        #: barrier).  The fast-path engine may then skip dataflow
        #: interpretation and intern the resolved completion offsets
        #: across repeat instances (a Jacobi run fences every
        #: iteration with the identical DAG).  Leave ``None`` for any
        #: schedule that moves data or depends on buffer contents.
        self.intern_key: Optional[Tuple] = None

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def last(self) -> int:
        """Index of the most recently added step."""
        if not self.steps:
            raise MpiError("empty schedule has no last step")
        return len(self.steps) - 1

    @property
    def n_rounds(self) -> int:
        return 1 + max((s.round for s in self.steps), default=-1)

    def _add(self, step: _Step) -> int:
        for d in step.deps:
            if not (0 <= d < len(self.steps)):
                raise MpiError(
                    f"step {step.idx} depends on unknown step {d}"
                )
        self.steps.append(step)
        return step.idx

    def send(
        self,
        buf: LazyBuf,
        peer: int,
        tag: int,
        after: Sequence[int] = (),
        round: int = 0,
        via: Optional[MpiContext] = None,
        alias_ok: bool = False,
        donate: bool = False,
    ) -> int:
        """Post a send of ``buf`` to ``peer`` once ``after`` completed.

        ``via`` routes the step through a derived communicator's
        context: ``peer`` and ``tag`` are then in *that* communicator's
        rank and tag space.  ``alias_ok`` marks the payload as a fresh
        builder-local array whose send-time defensive copy may be
        elided; ``donate`` additionally gives the array away, letting
        an :class:`~repro.mpi.datatypes.AdoptBuf` receive adopt it
        (see :class:`_Step`).
        """
        return self._add(_Step(
            idx=len(self.steps), kind=_SEND, deps=tuple(after),
            round=round, peer=peer, tag=tag, buf=buf, via=via,
            alias_ok=alias_ok or donate, donate=donate,
        ))

    def recv(
        self,
        buf: LazyBuf,
        peer: int,
        tag: int,
        after: Sequence[int] = (),
        round: int = 0,
        via: Optional[MpiContext] = None,
    ) -> int:
        """Post a receive into ``buf`` from ``peer`` (``via`` as in
        :meth:`send`)."""
        return self._add(_Step(
            idx=len(self.steps), kind=_RECV, deps=tuple(after),
            round=round, peer=peer, tag=tag, buf=buf, via=via,
        ))

    def compute(
        self,
        fn: Callable[[], None],
        after: Sequence[int] = (),
        round: int = 0,
    ) -> int:
        """Run a local action (combine/copy/pack) — zero simulated time."""
        return self._add(_Step(
            idx=len(self.steps), kind=_COMPUTE, deps=tuple(after),
            round=round, fn=fn,
        ))

    def overhead(self, after: Sequence[int] = (), round: int = 0) -> int:
        """Charge one software-overhead quantum (the degenerate-size
        path every algorithm keeps for P == 1)."""
        return self._add(_Step(
            idx=len(self.steps), kind=_OVERHEAD, deps=tuple(after),
            round=round,
        ))

    def describe(self) -> str:
        """Human-readable round-by-round summary (tests/diagnostics)."""
        by_round: dict = {}
        for s in self.steps:
            by_round.setdefault(s.round, []).append(s)
        lines = []
        for r in sorted(by_round):
            ops = ", ".join(
                f"{s.kind}"
                + (f"->{s.peer}" if s.kind == _SEND else "")
                + (f"<-{s.peer}" if s.kind == _RECV else "")
                for s in by_round[r]
            )
            lines.append(f"round {r}: {ops}")
        return "\n".join(lines)


class SubSchedule:
    """A :class:`Schedule` view bound to a derived communicator.

    Hands an unmodified schedule *builder* (binomial reduce, ring
    allgather, broadcast appenders …) a sub-communicator to build
    against: every wire step the builder adds is stamped ``via`` the
    bound context, so its peers and tags live in the sub-communicator
    while the steps land in the composite parent schedule.  This is how
    the hierarchical collectives compose intra-domain and inter-domain
    phases out of the ordinary algorithms instead of hand-rolling rank
    arithmetic.
    """

    def __init__(self, sched: Schedule, via: MpiContext) -> None:
        self._sched = sched
        self.via = via

    def send(self, buf, peer, tag, after=(), round=0, via=None,
             alias_ok=False, donate=False) -> int:
        return self._sched.send(
            buf, peer, tag, after=after, round=round,
            via=via if via is not None else self.via,
            alias_ok=alias_ok, donate=donate,
        )

    def recv(self, buf, peer, tag, after=(), round=0, via=None) -> int:
        return self._sched.recv(
            buf, peer, tag, after=after, round=round,
            via=via if via is not None else self.via,
        )

    def compute(self, fn, after=(), round=0) -> int:
        return self._sched.compute(fn, after=after, round=round)

    def overhead(self, after=(), round=0) -> int:
        return self._sched.overhead(after=after, round=round)

    @property
    def steps(self):
        return self._sched.steps

    @property
    def last(self) -> int:
        return self._sched.last

    @property
    def n_rounds(self) -> int:
        return self._sched.n_rounds

    def __len__(self) -> int:
        return len(self._sched)


__all__.append("SubSchedule")


class ScheduleEngine:
    """Executes schedules against a communicator's wire primitives.

    The engine keeps a set of in-flight wire operations (each a spawned
    simulated process driving ``_send_impl``/``_recv_impl``) and reacts
    to the *first* completion, releasing dependent steps immediately.
    Compute steps run inline the moment they unblock, exactly like the
    numpy combines embedded in the old run-to-completion loops.
    """

    def __init__(self, comm) -> None:
        self.comm = comm
        #: Schedules currently executing (inline or background); the
        #: collective ``Comm_free`` drains this before releasing state.
        self.active = 0

    # -- public entry points ------------------------------------------------
    def execute_barrier(
        self, ctx: MpiContext
    ) -> Generator[Event, Any, None]:
        """Build and run the dissemination barrier.  The fast-path
        engine overrides this to defer the DAG build until completion,
        so repeat barriers with interned arrival skew skip it."""
        from .barrier import build_barrier_dissemination

        sched = build_barrier_dissemination(ctx)
        sched.meta = {"op": "barrier", "algo": "dissemination", "nbytes": 0}
        return self.execute(ctx, sched)

    def start(self, ctx: MpiContext, sched: Schedule, name: str = "") -> Request:
        """Run ``sched`` in its own process; return a :class:`Request`."""
        proc = ctx.sim.process(
            self.execute(ctx, sched),
            name=name or f"sched(r{ctx.rank})",
        )
        return Request(proc)

    def execute(
        self, ctx: MpiContext, sched: Schedule
    ) -> Generator[Event, Any, None]:
        """Drive ``sched`` to completion from the calling process."""
        self.active += 1
        try:
            yield from self._execute(ctx, sched)
        finally:
            self.active -= 1

    def _execute(
        self, ctx: MpiContext, sched: Schedule
    ) -> Generator[Event, Any, None]:
        from ...sim.primitives import AnyOf

        import heapq

        steps = sched.steps
        n = len(steps)
        if n == 0:
            return
        # Span bookkeeping is timing-passive: it only reads sim.now at
        # points the engine already visits, never yields or schedules.
        spans = ctx.sim.spans
        if spans is not None and not spans.enabled:
            spans = None
        sp_coll = None
        rstart: dict = {}
        rend: dict = {}
        if spans is not None:
            meta = sched.meta or {}
            track = ctx.comm.span_track(ctx.rank)
            name = meta.get("op", "collective")
            if meta.get("algo"):
                name = f"{name}[{meta['algo']}]"
            sp_coll = spans.begin(
                ctx.sim.now, name, "collective", track,
                attrs={
                    "backend": ctx.comm.backend,
                    "nbytes": meta.get("nbytes", 0),
                    "n_rounds": sched.n_rounds, "n_steps": n,
                },
            )
        missing = [len(s.deps) for s in steps]
        dependents: List[List[int]] = [[] for _ in steps]
        for s in steps:
            for d in s.deps:
                dependents[d].append(s.idx)
        #: Min-heap of startable step indices — lowest index first so
        #: wire ops post in the order the algorithm listed them (send
        #: before recv inside a round, like the old loops).
        ready = [i for i in range(n) if missing[i] == 0]
        heapq.heapify(ready)
        running: dict = {}
        done = 0

        def finish(idx: int) -> None:
            for j in dependents[idx]:
                missing[j] -= 1
                if missing[j] == 0:
                    heapq.heappush(ready, j)

        while done < n:
            while ready:
                idx = heapq.heappop(ready)
                st = steps[idx]
                if spans is not None and st.round not in rstart:
                    rstart[st.round] = ctx.sim._now
                if st.kind == _COMPUTE:
                    st.fn()
                    done += 1
                    if spans is not None:
                        rend[st.round] = ctx.sim._now
                    finish(idx)
                    continue
                proc = ctx.sim.process(
                    self._wire_op(ctx, st),
                    name=f"sched.{st.kind}(r{ctx.rank}:{st.idx})",
                )
                running[proc] = idx
            if done >= n:
                break
            if not running:
                raise MpiError(
                    "schedule stalled: cyclic or dangling dependencies"
                )
            yield AnyOf(ctx.sim, list(running.keys()))
            finished = sorted(
                (p for p in running if p.triggered),
                key=lambda p: running[p],
            )
            if spans is not None:
                # sim.now is monotonic, so every wave overwrites its
                # rounds' end stamps with the latest completion time.
                now = ctx.sim._now
                for p in finished:
                    rend[steps[running[p]].round] = now
            for p in finished:
                idx = running.pop(p)
                done += 1
                finish(idx)
        if sp_coll is not None:
            now = ctx.sim.now
            for r in sorted(rstart):
                spans.complete(
                    rstart[r], rend.get(r, now), _round_name(r), "round",
                    sp_coll.track, sp_coll.sid,
                )
            spans.end(now, sp_coll)

    # -- step drivers -------------------------------------------------------
    def _wire_op(
        self, ctx: MpiContext, st: _Step
    ) -> Generator[Event, Any, Any]:
        # A `via` step runs in a derived communicator's rank/tag space
        # (its own matching stores — tag isolation for free); the wire
        # underneath is the same cluster interconnect either way.
        tctx = st.via if st.via is not None else ctx
        comm = tctx.comm
        if st.kind == _SEND:
            yield from comm._send_impl(
                tctx.rank, st.peer, st.resolve_buf(), st.tag,
                copy=not st.alias_ok, donate=st.donate,
            )
        elif st.kind == _RECV:
            status = yield from comm._recv_impl(
                tctx.rank, st.peer, st.resolve_buf(), st.tag
            )
            return status
        elif st.kind == _OVERHEAD:
            yield comm._sw()
        else:  # pragma: no cover - defensive
            raise MpiError(f"unknown step kind {st.kind!r}")
