"""Analytic fast-path execution backend for collective schedules.

The exact :class:`~repro.mpi.algorithms.schedule.ScheduleEngine` spawns
one simulated process per wire step and drives every packet through the
matching stores — faithful, but at 256–1024 ranks the per-packet Python
churn dominates wall-clock.  :class:`FastPathEngine` executes the *same*
schedules (same builders, same selector decisions, same tag claims, same
``comm.stats`` counters) without enqueueing a single packet:

1. **Collect** — every rank's ``execute`` deposits its per-rank schedule
   into a shared per-collective *instance*; the last-arriving rank
   triggers completion (collectives are synchronizing, so nothing can
   legally complete before the last rank shows up).
2. **Interpret** — the per-rank DAGs run as a deterministic dataflow:
   computes run inline, sends deliver payloads straight into matched
   receive buffers (rank-0-first round-robin, one step per rank per
   cycle; per-key FIFO message queues mirror the matcher's
   non-overtaking order).  Data results are therefore *bit-identical* to
   the exact simulator.
3. **Price** — wire steps are logged as per-(rank, round) cost records;
   the per-message cost comes from the topology's static
   :meth:`~repro.hw.topology.base.Topology.wire_time` through an
   interned ``(src_node, dst_node, nbytes)`` cache, mirroring the
   eager/rendezvous protocol shapes of ``_send_impl``.  A round costs
   the maximum over ranks of each rank's busier direction, and rank *r*
   completes at ``max(arrival) + Σ round costs`` through its last
   active round — the same per-round critical-path model the autotuner
   (:mod:`~repro.mpi.algorithms.autotune`) already prices selections
   with, now promoted to an execution backend.
4. **Commit** — all per-rank completions go through one
   :class:`~repro.sim.batch.EventBatch`, so 1024 rank completions cost
   a handful of heap operations instead of thousands.

What stays exact: point-to-point (``send``/``recv``/``isend``/...),
``gather``/``scatter`` (linear, not schedule-based), and all RMA — only
schedule-compiled collectives take the fast path.  Timings are
approximate (no contention, no skew inside a collective) but agree with
the exact simulator within tolerance at small P — enforced by
``tests/test_fastpath.py`` — while selection thresholds, being driven
by the same tuning, match exactly.  One documented conservatism: the
per-round barrier model prices every labeled round in full, so trees
whose straggler leaves fire early and overlap rounds in the exact
engine (non-power-of-two binomial reduce) are overestimated by up to
one round's cost.

**Pricing-only mode** (``backend="pricing"``): skips the dataflow
interpretation entirely and prices each rank's schedule straight off
its step list — same per-round cost model, same simulated times, but
receive buffers are left untouched (compute steps never run).  This is
the sweep mode: a 1024-rank collective costs one pass over the steps
plus a handful of numpy reductions, which is what makes the
``BENCH_scale.json`` sweeps interactive.  Never use it when the
program consumes the data it communicates.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ...hw.memory import nbytes_of
from ...sim.batch import EventBatch
from ...sim.core import Event, us
from ..datatypes import payload_array
from ..errors import MpiError
from .schedule import ScheduleEngine, Schedule, _Step

__all__ = ["FastPathEngine"]

_SEND = "send"
_RECV = "recv"
_COMPUTE = "compute"
_OVERHEAD = "overhead"


class _Instance:
    """One collective call site: per-rank schedules awaiting the last
    arrival."""

    __slots__ = ("ctxs", "scheds", "dones", "arrived")

    def __init__(self, size: int) -> None:
        self.ctxs: List[Any] = [None] * size
        self.scheds: List[Optional[Schedule]] = [None] * size
        self.dones: List[Optional[Event]] = [None] * size
        self.arrived = 0

    def deposit(self, rank: int, ctx, sched: Schedule, done: Event) -> None:
        if self.scheds[rank] is not None:
            raise MpiError(
                f"rank {rank} deposited twice into one collective "
                "instance — collectives issued out of order?"
            )
        self.ctxs[rank] = ctx
        self.scheds[rank] = sched
        self.dones[rank] = done
        self.arrived += 1


class _RankState:
    """Dataflow bookkeeping for one rank's DAG (mirrors ``_execute``)."""

    __slots__ = (
        "steps", "missing", "dependents", "ready", "ready_recv", "done"
    )

    def __init__(self, sched: Schedule) -> None:
        steps = sched.steps
        self.steps = steps
        self.missing = [len(s.deps) for s in steps]
        self.dependents: List[List[int]] = [[] for _ in steps]
        for s in steps:
            for d in s.deps:
                self.dependents[d].append(s.idx)
        # Receives ready to post are kept apart from other ready steps:
        # the interpreter parks every ready receive before running any
        # send, so deliveries hit a waiting buffer (zero-copy) instead
        # of forcing a queue snapshot.
        self.ready: List[int] = []
        self.ready_recv: List[int] = []
        for i in range(len(steps)):
            if self.missing[i] == 0:
                self._push(i)
        heapq.heapify(self.ready)
        heapq.heapify(self.ready_recv)
        self.done = 0

    def _push(self, idx: int) -> None:
        if self.steps[idx].kind == _RECV:
            heapq.heappush(self.ready_recv, idx)
        else:
            heapq.heappush(self.ready, idx)

    def finish(self, idx: int) -> None:
        self.done += 1
        for j in self.dependents[idx]:
            self.missing[j] -= 1
            if self.missing[j] == 0:
                self._push(j)


class FastPathEngine(ScheduleEngine):
    """Prices whole collective schedules analytically (see module doc).

    Drop-in replacement for :class:`ScheduleEngine`: ``execute`` is
    consumed via ``yield from`` by the blocking collectives and the
    inherited :meth:`ScheduleEngine.start` spawns it for the
    nonblocking ones.  The collective-instance sequence number is
    claimed synchronously at issue time (``execute`` is a plain
    function returning the generator), so mixed blocking/nonblocking
    sequences stay aligned exactly like the tag-block claims.
    """

    def __init__(self, comm, price_only: bool = False) -> None:
        super().__init__(comm)
        self._claims = [0] * comm.size
        self._instances: Dict[int, _Instance] = {}
        #: Interned per-message costs: (src_node, dst_node, nbytes) → s.
        self._wire_cache: Dict[Tuple[int, int, int], float] = {}
        #: Skip the dataflow interpreter: price timings only, leave
        #: receive buffers untouched (see module doc).
        self.price_only = price_only

    # -- entry points -------------------------------------------------------
    def execute(
        self, ctx, sched: Schedule
    ) -> Generator[Event, Any, None]:
        self.comm._ensure_alive()
        seq = self._claims[ctx.rank]
        self._claims[ctx.rank] += 1
        return self._run(ctx, sched, seq)

    def _run(
        self, ctx, sched: Schedule, seq: int
    ) -> Generator[Event, Any, None]:
        self.active += 1
        try:
            inst = self._instances.get(seq)
            if inst is None:
                inst = _Instance(self.comm.size)
                self._instances[seq] = inst
            done = ctx.sim.event(name=f"fastpath(r{ctx.rank}#{seq})")
            inst.deposit(ctx.rank, ctx, sched, done)
            if inst.arrived == self.comm.size:
                del self._instances[seq]
                self._complete(inst)
            yield done
        finally:
            self.active -= 1

    # -- pricing ------------------------------------------------------------
    def _msg_cost(self, comm, src_rank: int, dst_rank: int,
                  nbytes: int) -> float:
        src = comm.placement[src_rank]
        dst = comm.placement[dst_rank]
        key = (src, dst, nbytes)
        cost = self._wire_cache.get(key)
        if cost is None:
            from ..communicator import HEADER_BYTES

            ib = self.comm._ib
            sw = us(ib.sw_overhead_us)
            wt = self.comm.cluster.interconnect.wire_time
            if nbytes <= ib.eager_threshold:
                cost = sw + wt(src, dst, nbytes + HEADER_BYTES)
            else:
                # RTS → CTS → payload, as in _send_impl.
                cost = (
                    sw
                    + wt(src, dst, HEADER_BYTES)
                    + wt(dst, src, HEADER_BYTES)
                    + wt(src, dst, nbytes)
                )
            self._wire_cache[key] = cost
        return cost

    # -- completion ---------------------------------------------------------
    def _complete(self, inst: _Instance) -> None:
        """Interpret the dataflow (exact data), price the rounds
        (analytic time), and batch-commit the per-rank completions."""
        comm = self.comm
        sim = comm.sim
        stats = sim.stats
        size = comm.size
        sw = us(comm._ib.sw_overhead_us)

        n_rounds = max(
            (inst.scheds[r].n_rounds for r in range(size)), default=0
        )
        # Per-(rank, round) accumulated wire time, by direction.
        out_t = np.zeros((size, max(1, n_rounds)))
        in_t = np.zeros((size, max(1, n_rounds)))
        over_t = np.zeros((size, max(1, n_rounds)))
        last_round = np.full(size, -1, dtype=np.int64)

        if self.price_only:
            self._price_steps(inst, out_t, in_t, over_t, last_round, sw)
        else:
            self._interpret(inst, out_t, in_t, over_t, last_round, sw)

        # Price: a round costs the busiest rank's busier direction;
        # rank r completes after its last active round.
        per_rank_round = np.maximum(out_t, in_t) + over_t
        round_cost = per_rank_round.max(axis=0)
        elapsed = np.concatenate(([0.0], np.cumsum(round_cost)))
        t0 = sim.now
        stats.fastpath_collectives += 1
        stats.fastpath_rounds += int(n_rounds)

        batch = EventBatch(sim, name="fastpath")
        for r in range(size):
            t_r = t0 + float(elapsed[int(last_round[r]) + 1])
            batch.add(t_r, inst.dones[r], None)
        batch.commit()

    def _price_steps(self, inst: _Instance, out_t, in_t, over_t,
                     last_round, sw: float) -> None:
        """Pricing-only pass: accumulate wire costs straight off each
        rank's step list.  Dependencies never reorder which round a
        cost lands in (steps carry their round), so no dataflow run is
        needed; computes are skipped outright, so payloads stay
        whatever they were."""
        for r in range(len(inst.scheds)):
            ctx_r = inst.ctxs[r]
            for st in inst.scheds[r].steps:
                if st.round > last_round[r]:
                    last_round[r] = st.round
                if st.kind == _SEND:
                    tctx = st.via if st.via is not None else ctx_r
                    buf = st.resolve_buf()
                    nbytes = nbytes_of(buf) if buf is not None else 0
                    out_t[r, st.round] += self._msg_cost(
                        tctx.comm, tctx.rank, st.peer, nbytes
                    )
                elif st.kind == _RECV:
                    # The matching send's size equals the posted
                    # buffer's (schedule-compiled recvs are exact-size),
                    # so the wire cost is computable locally.
                    tctx = st.via if st.via is not None else ctx_r
                    buf = st.resolve_buf()
                    nbytes = nbytes_of(buf) if buf is not None else 0
                    in_t[r, st.round] += self._msg_cost(
                        tctx.comm, st.peer, tctx.rank, nbytes
                    )
                elif st.kind == _OVERHEAD:
                    over_t[r, st.round] += sw

    def _interpret(self, inst: _Instance, out_t, in_t, over_t,
                   last_round, sw: float) -> None:
        """Dataflow interpretation: exact data movement + pricing."""
        from ..communicator import Communicator

        comm = self.comm
        stats = comm.sim.stats
        size = comm.size

        states = [_RankState(inst.scheds[r]) for r in range(size)]
        #: (comm id, src, dst, tag) → FIFO of (payload, nbytes, cost).
        queues: Dict[Tuple, List] = {}
        #: same key → FIFO of (rank, recv buffer, round) still waiting.
        parked: Dict[Tuple, List] = {}

        def deliver_to(rank: int, buf, rnd: int, data, nbytes: int,
                       cost: float) -> None:
            Communicator._deliver(buf, data, nbytes)
            in_t[rank, rnd] += cost
            last_round[rank] = max(last_round[rank], rnd)

        def run_step(r: int, st: _Step) -> None:
            tctx = st.via if st.via is not None else inst.ctxs[r]
            if st.round > last_round[r]:
                last_round[r] = st.round
            if st.kind == _COMPUTE:
                st.fn()
            elif st.kind == _OVERHEAD:
                over_t[r, st.round] += sw
            elif st.kind == _SEND:
                buf = st.resolve_buf()
                nbytes = nbytes_of(buf) if buf is not None else 0
                cost = self._msg_cost(tctx.comm, tctx.rank, st.peer, nbytes)
                out_t[r, st.round] += cost
                key = (id(tctx.comm), tctx.rank, st.peer, st.tag)
                arr = payload_array(buf)
                waiters = parked.get(key)
                if waiters:
                    # A matched receiver is already parked: deliver
                    # source → destination directly, no snapshot.
                    rank2, rbuf, rnd2 = waiters.pop(0)
                    if arr is not None:
                        stats.payload_views += 1
                    deliver_to(rank2, rbuf, rnd2, arr, nbytes, cost)
                    states[rank2].finish(
                        _parked_idx.pop((key, rank2, rnd2, id(rbuf)))
                    )
                else:
                    if arr is not None:
                        arr = arr.copy()
                        stats.payload_copies += 1
                    queues.setdefault(key, []).append((arr, nbytes, cost))
            elif st.kind == _RECV:
                key = (id(tctx.comm), st.peer, tctx.rank, st.tag)
                buf = st.resolve_buf()
                queue = queues.get(key)
                if queue:
                    data, nbytes, cost = queue.pop(0)
                    deliver_to(r, buf, st.round, data, nbytes, cost)
                else:
                    parked.setdefault(key, []).append((r, buf, st.round))
                    _parked_idx[(key, r, st.round, id(buf))] = st.idx
                    return  # finished later, at delivery
            else:  # pragma: no cover - defensive
                raise MpiError(f"unknown step kind {st.kind!r}")
            states[r].finish(st.idx)

        # Round-robin cycles, fully deterministic: first every rank
        # parks (or drains) all its ready receives, then each rank runs
        # one other ready step.  Posting receives first means a send
        # almost always finds its peer's buffer parked and delivers
        # directly — the zero-copy path — instead of snapshotting into
        # a queue; one non-receive step per rank per cycle bounds
        # run-ahead so the lockstep holds.
        _parked_idx: Dict[Tuple, int] = {}
        total = sum(len(s.steps) for s in states)
        done_total = 0
        while done_total < total:
            progressed = False
            for r in range(size):
                state = states[r]
                while state.ready_recv:
                    idx = heapq.heappop(state.ready_recv)
                    run_step(r, state.steps[idx])
                    progressed = True
            for r in range(size):
                state = states[r]
                if state.ready:
                    idx = heapq.heappop(state.ready)
                    run_step(r, state.steps[idx])
                    progressed = True
                while state.ready_recv:
                    idx = heapq.heappop(state.ready_recv)
                    run_step(r, state.steps[idx])
            done_total = sum(s.done for s in states)
            if not progressed and done_total < total:
                stuck = {
                    r: len(s.steps) - s.done
                    for r, s in enumerate(states)
                    if s.done < len(s.steps)
                }
                raise MpiError(
                    "fast-path schedule stalled (cyclic or unmatched "
                    f"wire steps); pending steps per rank: {stuck}"
                )
