"""Analytic fast-path execution backend for collective schedules.

The exact :class:`~repro.mpi.algorithms.schedule.ScheduleEngine` spawns
one simulated process per wire step and drives every packet through the
matching stores — faithful, but at 256–1024 ranks the per-packet Python
churn dominates wall-clock.  :class:`FastPathEngine` executes the *same*
schedules (same builders, same selector decisions, same tag claims, same
``comm.stats`` counters) without enqueueing a single packet:

1. **Collect** — every rank's ``execute`` deposits its per-rank schedule
   into a shared per-collective *instance*; the last-arriving rank
   triggers completion (collectives are synchronizing, so nothing can
   legally complete before the last rank shows up).  Each rank's issue
   time is recorded at deposit, so skewed arrivals propagate into the
   timing exactly as they do in the exact engine.
2. **Interpret** — the per-rank DAGs run as a deterministic dataflow:
   computes run inline, sends deliver payloads straight into matched
   receive buffers (rank-0-first round-robin, one step per rank per
   cycle; per-key FIFO message queues mirror the matcher's
   non-overtaking order).  Data results are therefore *bit-identical* to
   the exact simulator.
3. **Price** — completion times come from a per-step critical-path
   resolution over the very same DAGs: the k-th send on a
   ``(comm, src, dst, tag)`` key pairs with the k-th receive (the
   matcher is non-overtaking per key), and each paired wire step is
   priced with the protocol shape of ``_send_impl``/``_recv_impl`` —
   eager (``sw`` + one wire trip, receive finishing at
   ``max(recv_ready + sw, send_finish)``) or rendezvous (RTS → CTS →
   payload, both sides finishing together).  Per-message wire times are
   interned in a ``(src_node, dst_node, nbytes)`` cache (hits/misses
   surface as ``sim.stats.wire_cost_hits``/``wire_cost_misses``).
   Because the resolution follows dependencies, not round labels,
   transfers in different rounds overlap exactly as the spawned wire
   processes of the exact engine do — non-power-of-two binomial trees,
   whose straggler subtrees fire early, price tight instead of paying a
   per-round barrier.  What the model still ignores is channel
   *contention* (concurrent transfers sharing a NIC or spine link
   serialize in the exact engine, never here) — enforced within
   tolerance at P ≤ 16 by ``tests/test_fastpath.py``.
4. **Commit** — all per-rank completions go through one
   :class:`~repro.sim.batch.EventBatch`, so 1024 rank completions cost
   a handful of heap operations instead of thousands.

What stays exact: point-to-point (``send``/``recv``/``isend``/...),
``gather``/``scatter`` (linear, not schedule-based), and host-memory
RMA epochs take their own analytic path in :mod:`repro.mpi.rma` — only
schedule-compiled collectives take *this* one.  Selection thresholds,
being driven by the same tuning, match the exact backend exactly.

**Pricing-only mode** (``backend="pricing"``): skips the dataflow
interpretation entirely and resolves times straight off the step lists
— same critical-path model, bit-identical simulated times, but receive
buffers are left untouched (compute steps never run).  This is the
sweep mode: a 1024-rank collective costs one pass over the steps, which
is what makes the ``BENCH_scale.json`` sweeps interactive.  Never use
it when the program consumes the data it communicates.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Generator, List, Optional, Tuple

from ...hw.memory import nbytes_of
from ...sim.batch import EventBatch
from ...sim.core import Event, us
from ..datatypes import AdoptBuf, payload_array
from ..errors import MpiError
from .schedule import ScheduleEngine, Schedule, _Step, _round_name

__all__ = ["FastPathEngine"]

_SEND = "send"
_RECV = "recv"
_COMPUTE = "compute"
_OVERHEAD = "overhead"


class _Instance:
    """One collective call site: per-rank schedules awaiting the last
    arrival."""

    __slots__ = (
        "ctxs", "scheds", "dones", "arrivals", "arrived",
        "lazy_key", "lazy_builder",
    )

    def __init__(self, size: int) -> None:
        self.ctxs: List[Any] = [None] * size
        self.scheds: List[Optional[Schedule]] = [None] * size
        self.dones: List[Optional[Event]] = [None] * size
        self.arrivals: List[float] = [0.0] * size
        self.arrived = 0
        #: Set when deposits defer their DAG build (``execute_barrier``):
        #: the intern key stands in for the schedules, and the builder
        #: materializes them only on a fin-cache miss.
        self.lazy_key: Optional[Tuple] = None
        self.lazy_builder: Optional[Any] = None

    def deposit(self, rank: int, ctx, sched: Optional[Schedule],
                done: Event) -> None:
        if self.dones[rank] is not None or self.scheds[rank] is not None:
            raise MpiError(
                f"rank {rank} deposited twice into one collective "
                "instance — collectives issued out of order?"
            )
        self.ctxs[rank] = ctx
        self.scheds[rank] = sched
        self.dones[rank] = done
        if ctx is not None:
            self.arrivals[rank] = ctx.sim.now
        self.arrived += 1


class _RankState:
    """Dataflow bookkeeping for one rank's DAG (mirrors ``_execute``)."""

    __slots__ = (
        "steps", "missing", "dependents", "ready", "ready_recv", "done"
    )

    def __init__(self, sched: Schedule) -> None:
        steps = sched.steps
        self.steps = steps
        self.missing = [len(s.deps) for s in steps]
        self.dependents: List[List[int]] = [[] for _ in steps]
        for s in steps:
            for d in s.deps:
                self.dependents[d].append(s.idx)
        # Receives ready to post are kept apart from other ready steps:
        # the interpreter parks every ready receive before running any
        # send, so deliveries hit a waiting buffer (zero-copy) instead
        # of forcing a queue snapshot.
        self.ready: List[int] = []
        self.ready_recv: List[int] = []
        for i in range(len(steps)):
            if self.missing[i] == 0:
                self._push(i)
        heapq.heapify(self.ready)
        heapq.heapify(self.ready_recv)
        self.done = 0

    def _push(self, idx: int) -> None:
        if self.steps[idx].kind == _RECV:
            heapq.heappush(self.ready_recv, idx)
        else:
            heapq.heappush(self.ready, idx)

    def finish(self, idx: int) -> None:
        self.done += 1
        for j in self.dependents[idx]:
            self.missing[j] -= 1
            if self.missing[j] == 0:
                self._push(j)


class FastPathEngine(ScheduleEngine):
    """Prices whole collective schedules analytically (see module doc).

    Drop-in replacement for :class:`ScheduleEngine`: ``execute`` is
    consumed via ``yield from`` by the blocking collectives and the
    inherited :meth:`ScheduleEngine.start` spawns it for the
    nonblocking ones.  The collective-instance sequence number is
    claimed synchronously at issue time (``execute`` is a plain
    function returning the generator), so mixed blocking/nonblocking
    sequences stay aligned exactly like the tag-block claims.
    """

    def __init__(self, comm, price_only: bool = False) -> None:
        super().__init__(comm)
        self._claims = [0] * comm.size
        self._instances: Dict[int, _Instance] = {}
        #: Interned wire times: (src_node, dst_node, nbytes) → seconds.
        self._wire_cache: Dict[Tuple[int, int, int], float] = {}
        #: Interned completion offsets for data-free schedules
        #: (``Schedule.intern_key``): (key, relative arrivals) →
        #: (per-rank ``fin - base``, n_rounds, span skeleton or None).
        #: Critical-path resolution is time-translation-invariant, so
        #: a repeat instance with the same arrival skew prices
        #: identically; the skeleton (built on the first traced
        #: resolve) lets traced cache hits replay the span tree too.
        self._fin_cache: Dict[Tuple, Tuple] = {}
        #: Skip the dataflow interpreter: price timings only, leave
        #: receive buffers untouched (see module doc).
        self.price_only = price_only

    # -- entry points -------------------------------------------------------
    def execute(
        self, ctx, sched: Schedule
    ) -> Generator[Event, Any, None]:
        self.comm._ensure_alive()
        seq = self._claims[ctx.rank]
        self._claims[ctx.rank] += 1
        return self._run(ctx, sched, seq)

    def execute_barrier(
        self, ctx
    ) -> Generator[Event, Any, None]:
        """Barrier with a deferred DAG build: the dissemination
        schedule is a pure function of size and moves no data, so when
        this instance's arrival skew is already interned nobody ever
        builds it (a Jacobi run fences every iteration)."""
        from .barrier import build_barrier_dissemination

        self.comm._ensure_alive()
        seq = self._claims[ctx.rank]
        self._claims[ctx.rank] += 1
        return self._run(
            ctx, None, seq,
            lazy_key=("barrier_dissemination", ctx.size),
            lazy_builder=build_barrier_dissemination,
        )

    def _run(
        self, ctx, sched: Optional[Schedule], seq: int,
        lazy_key: Optional[Tuple] = None, lazy_builder=None,
    ) -> Generator[Event, Any, None]:
        self.active += 1
        try:
            inst = self._instances.get(seq)
            if inst is None:
                inst = _Instance(self.comm.size)
                self._instances[seq] = inst
            done = ctx.sim.event(name=f"fastpath(r{ctx.rank}#{seq})")
            inst.deposit(ctx.rank, ctx, sched, done)
            if lazy_key is not None:
                inst.lazy_key = lazy_key
                inst.lazy_builder = lazy_builder
            if inst.arrived == self.comm.size:
                del self._instances[seq]
                self._complete(inst)
            yield done
        finally:
            self.active -= 1

    # -- pricing ------------------------------------------------------------
    def _wt(self, src_node: int, dst_node: int, nbytes: int) -> float:
        """Interned uncontended wire time for one transfer leg."""
        key = (src_node, dst_node, nbytes)
        cost = self._wire_cache.get(key)
        stats = self.comm.sim.stats
        if cost is None:
            stats.wire_cost_misses += 1
            cost = self.comm.cluster.interconnect.wire_time(
                src_node, dst_node, nbytes
            )
            self._wire_cache[key] = cost
        else:
            stats.wire_cost_hits += 1
        return cost

    # -- completion ---------------------------------------------------------
    def _complete(self, inst: _Instance) -> None:
        """Interpret the dataflow (exact data), resolve the per-step
        critical path (analytic time), and batch-commit the per-rank
        completions."""
        comm = self.comm
        sim = comm.sim
        stats = sim.stats
        size = comm.size
        # With a recorder enabled, skip the interned-offsets shortcut so
        # every instance resolves (and emits) its full span tree.  The
        # resolution is deterministic and translation-invariant, so the
        # committed completion times are bit-identical either way — only
        # the cache-hit counters differ under tracing.
        spans = sim.spans
        if spans is not None and not spans.enabled:
            spans = None

        # Data-free schedules (intern_key set by the builder, identical
        # across ranks, or a deferred-build barrier) skip interpretation
        # outright — there is no payload to move — and intern their
        # resolved completion offsets keyed by arrival skew, so the
        # fence-per-iteration hot path resolves (and, when deferred,
        # builds) its dissemination DAG once, not once per epoch.
        ikey = inst.lazy_key
        if ikey is None and inst.scheds[0] is not None:
            ikey = inst.scheds[0].intern_key
            if ikey is not None:
                for r in range(1, size):
                    sched_r = inst.scheds[r]
                    if sched_r is None or sched_r.intern_key != ikey:
                        ikey = None
                        break
        if ikey is not None:
            base = inst.arrivals[0]
            ckey = (ikey, tuple(a - base for a in inst.arrivals))
            cached = self._fin_cache.get(ckey)
            if cached is not None and spans is not None and cached[2] is None:
                # First traced pass resolves in full so the span
                # skeleton gets built and cached for later hits.
                cached = None
            if cached is not None:
                offsets, n_rounds, skel = cached
                stats.fastpath_sched_cache_hits += 1
                stats.fastpath_collectives += 1
                stats.fastpath_rounds += n_rounds
                if spans is not None:
                    self._replay_spans(inst, base, offsets, skel, spans)
                batch = EventBatch(sim, name="fastpath")
                now = sim.now
                for r in range(size):
                    batch.add(max(base + offsets[r], now),
                              inst.dones[r], None)
                batch.commit()
                return
            if inst.lazy_builder is not None:
                for r in range(size):
                    if inst.scheds[r] is None:
                        inst.scheds[r] = inst.lazy_builder(inst.ctxs[r])

        #: Per-rank map of send-step idx → resolved payload size; the
        #: paired receive is priced with the *send's* size, exactly as
        #: the wire message carries it.
        send_bytes: List[Dict[int, int]] = [dict() for _ in range(size)]
        recv_bytes: List[Dict[int, int]] = [dict() for _ in range(size)]
        if self.price_only or ikey is not None:
            # Computes never run in pricing mode, so a lazy send buffer
            # built from staged data (e.g. the Bruck working vector) can
            # under-resolve; the posted receive buffer is statically the
            # right size, so each pair is priced with the larger of the
            # two resolved sizes — which equals the interpreted send
            # size, keeping pricing bit-identical to analytic.
            for r in range(size):
                for st in inst.scheds[r].steps:
                    if st.kind == _SEND or st.kind == _RECV:
                        buf = st.resolve_buf()
                        tgt = send_bytes if st.kind == _SEND else recv_bytes
                        tgt[r][st.idx] = (
                            nbytes_of(buf) if buf is not None else 0
                        )
        else:
            self._interpret(inst, send_bytes)

        fins, fin_detail = self._resolve_times(inst, send_bytes, recv_bytes)

        n_rounds = max(
            (inst.scheds[r].n_rounds for r in range(size)), default=0
        )
        stats.fastpath_collectives += 1
        stats.fastpath_rounds += int(n_rounds)
        skel = None
        if spans is not None:
            skel = self._record_spans(inst, fins, fin_detail, ikey, spans)
        if ikey is not None:
            self._fin_cache[ckey] = (
                [f - base for f in fins], int(n_rounds), skel
            )

        batch = EventBatch(sim, name="fastpath")
        now = sim.now
        for r in range(size):
            # A rank whose steps all finish before the last arrival
            # (e.g. an eager-only bcast root) resumes immediately: the
            # instance only resolves once every rank has shown up.
            batch.add(max(fins[r], now), inst.dones[r], None)
        batch.commit()

    def _record_spans(
        self,
        inst: _Instance,
        fins: List[float],
        fin: List[List[Optional[float]]],
        ikey: Optional[Tuple],
        spans,
    ) -> Optional[Tuple]:
        """Emit the same span skeleton the exact engine records — one
        collective span per rank with per-round children — plus the
        pricer's own stage markers.  All timestamps come from the
        resolved critical path, so the tree carries priced durations.

        For internable instances (``ikey`` set) the emitted tree is
        also returned as a base-relative skeleton, cached next to the
        fin offsets so later cache hits replay it via
        :meth:`_replay_spans` instead of re-resolving the DAG — the
        cache key pins the exact arrival skew, so the resolved times
        are identical up to the base shift."""
        comm = self.comm
        sim = comm.sim
        size = comm.size
        meta = None
        for r in range(size):
            if inst.scheds[r] is not None and inst.scheds[r].meta:
                meta = inst.scheds[r].meta
                break
        if meta is None and ikey is not None:
            meta = {"op": "barrier", "algo": "dissemination", "nbytes": 0}
        meta = meta or {}
        name = meta.get("op", "collective")
        if meta.get("algo"):
            name = f"{name}[{meta['algo']}]"
        arrivals = inst.arrivals
        now = sim.now
        ftrack = f"{comm.root_comm.name}.fastpath"
        spans.complete(
            min(arrivals), max(arrivals), name, "fastpath.collect", ftrack,
            attrs={"n_ranks": size},
        )
        spans.instant(now, name, "fastpath.interpret", ftrack,
                      attrs={"priced": self.price_only or ikey is not None})
        backend = comm.backend
        nbytes_meta = meta.get("nbytes", 0)
        base = arrivals[0]
        skel_ranks: Optional[List[Tuple]] = [] if ikey is not None else None
        for r in range(size):
            sched = inst.scheds[r]
            steps = sched.steps
            n_rounds = sched.n_rounds  # O(steps) property — hoist
            rtrack = comm.span_track(r)
            psid = spans.complete(
                arrivals[r], fins[r], name, "collective", rtrack,
                None, None,
                {"backend": backend, "nbytes": nbytes_meta,
                 "n_rounds": n_rounds, "n_steps": len(steps)},
            )
            if psid is None:
                # Recorder paused mid-collective: the tree is partial,
                # so don't cache a skeleton of it.
                skel_ranks = None
                continue
            # Round ids live in [0, n_rounds), so flat lists beat
            # dicts here; None marks rounds this rank never runs.
            rstart: List[Optional[float]] = [None] * n_rounds
            rend: List[Optional[float]] = [None] * n_rounds
            arr = arrivals[r]
            fin_r = fin[r]
            for st in steps:
                t0 = arr
                for d in st.deps:
                    fd = fin_r[d]
                    if fd is not None and fd > t0:
                        t0 = fd
                t1 = fin_r[st.idx]
                if t1 is None:
                    t1 = t0
                rd = st.round
                s = rstart[rd]
                if s is None or t0 < s:
                    rstart[rd] = t0
                e = rend[rd]
                if e is None or t1 > e:
                    rend[rd] = t1
            rounds_off = []
            for rd in range(n_rounds):
                t0 = rstart[rd]
                if t0 is None:
                    continue
                t1 = rend[rd]
                spans.complete(t0, t1, _round_name(rd), "round",
                               rtrack, psid)
                if skel_ranks is not None:
                    rounds_off.append((rd, t0 - base, t1 - base))
            if skel_ranks is not None:
                skel_ranks.append(
                    (n_rounds, len(steps), tuple(rounds_off))
                )
        spans.instant(now, name, "fastpath.commit", ftrack,
                      attrs={"n_ranks": size})
        if skel_ranks is None:
            return None
        return (name, nbytes_meta, tuple(skel_ranks))

    def _replay_spans(
        self,
        inst: _Instance,
        base: float,
        offsets: List[float],
        skel: Tuple,
        spans,
    ) -> None:
        """Re-emit a cached span skeleton, shifted to this instance's
        base arrival — byte-identical to what :meth:`_record_spans`
        would have produced had the DAG been re-resolved."""
        comm = self.comm
        sim = comm.sim
        size = comm.size
        name, nbytes_meta, skel_ranks = skel
        arrivals = inst.arrivals
        now = sim.now
        ftrack = f"{comm.root_comm.name}.fastpath"
        spans.complete(
            min(arrivals), max(arrivals), name, "fastpath.collect", ftrack,
            attrs={"n_ranks": size},
        )
        spans.instant(now, name, "fastpath.interpret", ftrack,
                      attrs={"priced": True})
        backend = comm.backend
        for r in range(size):
            n_rounds, n_steps, rounds_off = skel_ranks[r]
            rtrack = comm.span_track(r)
            psid = spans.complete(
                arrivals[r], base + offsets[r], name, "collective", rtrack,
                None, None,
                {"backend": backend, "nbytes": nbytes_meta,
                 "n_rounds": n_rounds, "n_steps": n_steps},
            )
            if psid is None:
                continue
            for rd, t0, t1 in rounds_off:
                spans.complete(base + t0, base + t1, _round_name(rd),
                               "round", rtrack, psid)
        spans.instant(now, name, "fastpath.commit", ftrack,
                      attrs={"n_ranks": size})

    def _resolve_times(
        self,
        inst: _Instance,
        send_bytes: List[Dict[int, int]],
        recv_bytes: List[Dict[int, int]],
    ) -> Tuple[List[float], List[List[Optional[float]]]]:
        """Per-step critical-path resolution over all ranks' DAGs.

        Mirrors the exact engine's concurrency structure: every step
        starts the moment its dependencies finish (wire steps are
        spawned processes there, so independent steps overlap freely),
        and each wire pair is priced with the protocol of
        ``_send_impl``/``_recv_impl``:

        * compute — finishes at its ready time (inline, zero cost);
        * overhead — ready + ``sw``;
        * eager send — ready + ``sw`` + wire(n + header); the paired
          receive finishes at ``max(recv_ready + sw, send_finish)``;
        * rendezvous pair — ``m = max(recv_ready + sw,
          send_ready + sw + wire(hdr))`` (the RTS meets the posted
          receive), then both sides finish at
          ``m + wire(cts) + wire(payload)``.

        Returns ``(fins, fin)``: each rank's completion time (max over
        its steps) and the full per-step finish matrix (observability —
        the span recorder derives round boundaries from it).

        When the topology's ``accounting`` flag is on, every priced
        wire leg is additionally booked onto the routed channel path
        (:meth:`Topology.account`), so the link-utilization report sees
        analytic traffic the pricer never simulates.
        """
        from ..communicator import HEADER_BYTES

        comm = self.comm
        ib = comm._ib
        sw = us(ib.sw_overhead_us)
        eager_max = ib.eager_threshold
        size = comm.size
        interconnect = comm.cluster.interconnect
        if interconnect.accounting:
            acct = interconnect.account
            _wt = self._wt

            def wt(src: int, dst: int, n: int) -> float:
                acct(src, dst, n)
                return _wt(src, dst, n)
        else:
            wt = self._wt

        steps_of = [inst.scheds[r].steps for r in range(size)]

        # LIGHT pairing: k-th send on a (comm, src, dst, tag) key pairs
        # with the k-th receive, both in step-index order — the
        # matcher's per-key FIFO guarantees non-overtaking, and every
        # schedule builder issues same-key wire steps dep-ordered.
        sends: Dict[Tuple, List[Tuple[int, int]]] = {}
        recvs: Dict[Tuple, List[Tuple[int, int]]] = {}
        for r in range(size):
            ctx_r = inst.ctxs[r]
            for st in steps_of[r]:
                if st.kind == _SEND:
                    tctx = st.via if st.via is not None else ctx_r
                    sends.setdefault(
                        (id(tctx.comm), tctx.rank, st.peer, st.tag), []
                    ).append((r, st.idx))
                elif st.kind == _RECV:
                    tctx = st.via if st.via is not None else ctx_r
                    recvs.setdefault(
                        (id(tctx.comm), st.peer, tctx.rank, st.tag), []
                    ).append((r, st.idx))
        pair: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for key, ss in sends.items():
            for s_ref, r_ref in zip(ss, recvs.get(key, ())):
                pair[s_ref] = r_ref
                pair[r_ref] = s_ref

        arrivals = inst.arrivals
        fin: List[List[Optional[float]]] = [
            [None] * len(steps_of[r]) for r in range(size)
        ]
        ready_t: List[List[Optional[float]]] = [
            [None] * len(steps_of[r]) for r in range(size)
        ]
        missing = [
            [len(st.deps) for st in steps_of[r]] for r in range(size)
        ]
        dependents: List[List[List[int]]] = [
            [[] for _ in steps_of[r]] for r in range(size)
        ]
        for r in range(size):
            for st in steps_of[r]:
                for d in st.deps:
                    dependents[r][d].append(st.idx)

        work: List[Tuple[int, int]] = []
        for r in range(size):
            for i, m in enumerate(missing[r]):
                if m == 0:
                    work.append((r, i))

        resolved = 0

        def finish(r: int, idx: int, t: float) -> None:
            nonlocal resolved
            fin[r][idx] = t
            resolved += 1
            for j in dependents[r][idx]:
                missing[r][j] -= 1
                if missing[r][j] == 0:
                    work.append((r, j))

        def wire_nodes(r: int, st: _Step) -> Tuple[int, int]:
            tctx = st.via if st.via is not None else inst.ctxs[r]
            placement = tctx.comm.placement
            return placement[tctx.rank], placement[st.peer]

        while work:
            r, idx = work.pop()
            st = steps_of[r][idx]
            t = arrivals[r]
            for d in st.deps:
                fd = fin[r][d]
                if fd > t:
                    t = fd
            if st.kind == _COMPUTE:
                finish(r, idx, t)
                continue
            if st.kind == _OVERHEAD:
                finish(r, idx, t + sw)
                continue
            ready_t[r][idx] = t
            other = pair.get((r, idx))
            if other is None:
                continue  # unmatched — reported as a stall below
            ro, oidx = other
            if st.kind == _SEND:
                src, dst = wire_nodes(r, st)
                n = max(send_bytes[r][idx], recv_bytes[ro].get(oidx, 0))
                if n <= eager_max:
                    f = t + sw + wt(src, dst, n + HEADER_BYTES)
                    finish(r, idx, f)
                    t_recv = ready_t[ro][oidx]
                    if t_recv is not None:
                        finish(ro, oidx, max(t_recv + sw, f))
                else:
                    t_recv = ready_t[ro][oidx]
                    if t_recv is not None:
                        m = max(t_recv + sw, t + sw + wt(src, dst, HEADER_BYTES))
                        f = m + wt(dst, src, HEADER_BYTES) + wt(src, dst, n)
                        finish(r, idx, f)
                        finish(ro, oidx, f)
                    # else: parked; the receive side resolves the pair.
            else:  # _RECV
                t_send = ready_t[ro][oidx]
                if t_send is None:
                    continue  # parked; the send side resolves the pair
                sst = steps_of[ro][oidx]
                src, dst = wire_nodes(ro, sst)
                n = max(send_bytes[ro][oidx], recv_bytes[r].get(idx, 0))
                if n <= eager_max:
                    finish(r, idx, max(t + sw, fin[ro][oidx]))
                else:
                    m = max(t + sw, t_send + sw + wt(src, dst, HEADER_BYTES))
                    f = m + wt(dst, src, HEADER_BYTES) + wt(src, dst, n)
                    finish(ro, oidx, f)
                    finish(r, idx, f)

        total = sum(len(s) for s in steps_of)
        if resolved < total:
            stuck = {
                r: sum(1 for f in fin[r] if f is None)
                for r in range(size)
                if any(f is None for f in fin[r])
            }
            raise MpiError(
                "fast-path schedule stalled (cyclic or unmatched "
                f"wire steps); pending steps per rank: {stuck}"
            )

        return [
            max((f for f in fin[r] if f is not None), default=arrivals[r])
            for r in range(size)
        ], fin

    def _interpret(
        self, inst: _Instance, send_bytes: List[Dict[int, int]]
    ) -> None:
        """Dataflow interpretation: exact data movement (timing is
        resolved separately; sends record their resolved payload sizes
        into ``send_bytes`` for the pricer)."""
        from ..communicator import Communicator

        comm = self.comm
        stats = comm.sim.stats
        size = comm.size

        states = [_RankState(inst.scheds[r]) for r in range(size)]
        #: (comm id, src, dst, tag) → FIFO of (payload, nbytes).
        queues: Dict[Tuple, List] = {}
        #: same key → FIFO of (rank, recv buffer, step idx) still waiting.
        parked: Dict[Tuple, List] = {}

        def deliver_to(rank: int, buf, data, nbytes: int,
                       private: bool = True) -> None:
            # Mirror the matcher's adoption path: a private payload
            # (queue snapshot, or a donated direct delivery) may be
            # taken over by an AdoptBuf receive outright.
            if (
                private
                and isinstance(buf, AdoptBuf)
                and data is not None
                and buf.adopt(data)
            ):
                stats.payload_adopted += 1
            else:
                Communicator._deliver(buf, data, nbytes)

        def run_step(r: int, st: _Step) -> None:
            tctx = st.via if st.via is not None else inst.ctxs[r]
            if st.kind == _COMPUTE:
                st.fn()
            elif st.kind == _OVERHEAD:
                pass  # timing-only; priced in _resolve_times
            elif st.kind == _SEND:
                buf = st.resolve_buf()
                nbytes = nbytes_of(buf) if buf is not None else 0
                send_bytes[r][st.idx] = nbytes
                key = (id(tctx.comm), tctx.rank, st.peer, st.tag)
                arr = payload_array(buf)
                waiters = parked.get(key)
                if waiters:
                    # A matched receiver is already parked: deliver
                    # source → destination directly, no snapshot.  Only
                    # a donated payload is private here (the live array
                    # is otherwise still the sender's).
                    rank2, rbuf, ridx = waiters.pop(0)
                    if arr is not None:
                        stats.payload_views += 1
                    deliver_to(rank2, rbuf, arr, nbytes,
                               private=st.donate)
                    states[rank2].finish(ridx)
                else:
                    if arr is not None:
                        if st.donate:
                            # Donated: nothing writes the array again,
                            # so it can sit in the queue un-snapshotted.
                            stats.payload_views += 1
                        else:
                            arr = arr.copy()
                            stats.payload_copies += 1
                    # Queue entries are private either way (donated or
                    # freshly snapshotted) — adoptable at the recv.
                    queues.setdefault(key, []).append((arr, nbytes))
            elif st.kind == _RECV:
                key = (id(tctx.comm), st.peer, tctx.rank, st.tag)
                buf = st.resolve_buf()
                queue = queues.get(key)
                if queue:
                    data, nbytes = queue.pop(0)
                    deliver_to(r, buf, data, nbytes)
                else:
                    parked.setdefault(key, []).append((r, buf, st.idx))
                    return  # finished later, at delivery
            else:  # pragma: no cover - defensive
                raise MpiError(f"unknown step kind {st.kind!r}")
            states[r].finish(st.idx)

        # Round-robin cycles, fully deterministic: first every rank
        # parks (or drains) all its ready receives, then each rank runs
        # one other ready step.  Posting receives first means a send
        # almost always finds its peer's buffer parked and delivers
        # directly — the zero-copy path — instead of snapshotting into
        # a queue; one non-receive step per rank per cycle bounds
        # run-ahead so the lockstep holds.
        total = sum(len(s.steps) for s in states)
        done_total = 0
        while done_total < total:
            progressed = False
            for r in range(size):
                state = states[r]
                while state.ready_recv:
                    idx = heapq.heappop(state.ready_recv)
                    run_step(r, state.steps[idx])
                    progressed = True
            for r in range(size):
                state = states[r]
                if state.ready:
                    idx = heapq.heappop(state.ready)
                    run_step(r, state.steps[idx])
                    progressed = True
                while state.ready_recv:
                    idx = heapq.heappop(state.ready_recv)
                    run_step(r, state.steps[idx])
            done_total = sum(s.done for s in states)
            if not progressed and done_total < total:
                stuck = {
                    r: len(s.steps) - s.done
                    for r, s in enumerate(states)
                    if s.done < len(s.steps)
                }
                raise MpiError(
                    "fast-path schedule stalled (cyclic or unmatched "
                    f"wire steps); pending steps per rank: {stuck}"
                )
