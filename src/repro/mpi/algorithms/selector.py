"""Size- and topology-adaptive algorithm selection for collectives.

The selector is consulted once per collective call with the payload
geometry (bytes per rank, communicator size) plus — for the collectives
that have a hierarchical variant — whether the communicator's placement
makes the hierarchy worthwhile (``hier_ok``: equal locality groups on
an oversubscribed fabric, fragmented ring order).  It returns the
*name* of the algorithm to run; the registry maps names to
implementations.  The thresholds live in
:class:`~repro.mpi.algorithms.tuning.CollectiveTuning` — autotuned per
cluster by :mod:`repro.mpi.algorithms.autotune` unless the user pins
their own — and are plumbed through both the raw-MPI layer
(``Communicator(tuning=...)``) and the DCGN layer
(``DcgnConfig(..., tuning=...)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import MpiError
from .base import is_pof2 as _is_pof2
from .allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
)
from .allreduce import (
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
    allreduce_ring,
)
from .alltoall import alltoall_pairwise, alltoall_shift
from .bcast import bcast_binomial, bcast_hierarchical
from .hierarchical import allreduce_hierarchical
from .tuning import CollectiveTuning

__all__ = ["ALGORITHMS", "AlgorithmSelector"]

#: Registry: collective → {algorithm name → implementation}.
ALGORITHMS: Dict[str, Dict[str, Callable]] = {
    "allreduce": {
        "reduce_bcast": allreduce_reduce_bcast,
        "recursive_doubling": allreduce_recursive_doubling,
        "ring": allreduce_ring,
        "hierarchical": allreduce_hierarchical,
    },
    "allgather": {
        "ring": allgather_ring,
        "recursive_doubling": allgather_recursive_doubling,
        "bruck": allgather_bruck,
    },
    "alltoall": {
        "shift": alltoall_shift,
        "pairwise": alltoall_pairwise,
    },
    "bcast": {
        "binomial": bcast_binomial,
        "hierarchical": bcast_hierarchical,
    },
}


class AlgorithmSelector:
    """Picks a collective algorithm from (message size × communicator
    size × placement/topology)."""

    def __init__(self, tuning: Optional[CollectiveTuning] = None) -> None:
        self.tuning = tuning if tuning is not None else CollectiveTuning()

    def _forced(self, coll: str, name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        if name not in ALGORITHMS[coll]:
            raise MpiError(
                f"unknown {coll} algorithm {name!r}; "
                f"choose from {sorted(ALGORITHMS[coll])}"
            )
        return name

    def allreduce(
        self, nbytes: int, size: int, hier_ok: bool = False
    ) -> str:
        forced = self._forced("allreduce", self.tuning.force_allreduce)
        if forced is not None:
            return forced
        if size <= 2:
            # Ring and doubling coincide at P=2; doubling has no chunking
            # overhead and degrades gracefully at P=1.
            return "recursive_doubling"
        if (
            hier_ok
            and self.tuning.allreduce_hier_min_bytes is not None
            and nbytes >= self.tuning.allreduce_hier_min_bytes
        ):
            return "hierarchical"
        if nbytes >= self.tuning.allreduce_ring_min_bytes:
            return "ring"
        return "recursive_doubling"

    def allgather(
        self, block_nbytes: int, size: int, uniform: bool = True
    ) -> str:
        forced = self._forced("allgather", self.tuning.force_allgather)
        if forced is not None:
            return forced
        enough_ranks = (
            size >= self.tuning.allgather_rd_min_ranks
            or block_nbytes <= self.tuning.allgather_rd_small_max_bytes
        )
        if (
            uniform
            and _is_pof2(size)
            and block_nbytes <= self.tuning.allgather_rd_max_bytes
            and enough_ranks
        ):
            return "recursive_doubling"
        if (
            uniform
            and not _is_pof2(size)
            and size > 2
            and block_nbytes <= self.tuning.allgather_bruck_max_bytes
        ):
            return "bruck"
        return "ring"

    def alltoall(self, block_nbytes: int, size: int) -> str:
        """Selection is schedule-based (pof2/force) today;
        ``block_nbytes`` is reserved for a future small-message Bruck
        threshold (see ROADMAP) and currently unused."""
        forced = self._forced("alltoall", self.tuning.force_alltoall)
        if forced is not None:
            return forced
        if self.tuning.alltoall_pairwise and _is_pof2(size):
            return "pairwise"
        return "shift"

    def bcast(self, nbytes: int, size: int, hier_ok: bool = False) -> str:
        forced = self._forced("bcast", self.tuning.force_bcast)
        if forced is not None:
            return forced
        if (
            hier_ok
            and size > 2
            and self.tuning.bcast_hier_min_bytes is not None
            and nbytes >= self.tuning.bcast_hier_min_bytes
        ):
            return "hierarchical"
        return "binomial"
