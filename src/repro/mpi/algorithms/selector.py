"""Size- and topology-adaptive algorithm selection for collectives.

The selector is consulted once per collective call with the payload
geometry (bytes per rank, communicator size) plus — for the collectives
that have a hierarchical variant — whether the communicator's placement
makes the hierarchy worthwhile (``hier_ok``: equal locality groups on
an oversubscribed fabric, fragmented ring order).  It returns the
*name* of the algorithm to run; the registries map names to
implementations: :data:`ALGORITHMS` holds the blocking generator entry
points, :data:`SCHEDULES` the ``build_*`` functions producing the
round-based :class:`~repro.mpi.algorithms.schedule.Schedule` that both
the blocking and the nonblocking (``ibcast``/``iallreduce``/…) paths
execute.  The thresholds live in
:class:`~repro.mpi.algorithms.tuning.CollectiveTuning` — autotuned per
cluster by :mod:`repro.mpi.algorithms.autotune` unless the user pins
their own — and are plumbed through both the raw-MPI layer
(``Communicator(tuning=...)``) and the DCGN layer
(``DcgnConfig(..., tuning=...)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import MpiError
from .base import is_pof2 as _is_pof2
from .allgather import (
    build_allgather_bruck,
    build_allgather_recursive_doubling,
    build_allgather_ring,
)
from .allreduce import (
    build_allreduce_recursive_doubling,
    build_allreduce_reduce_bcast,
    build_allreduce_ring,
)
from .alltoall import (
    build_alltoall_bruck,
    build_alltoall_pairwise,
    build_alltoall_shift,
)
from .bcast import (
    build_bcast_binomial,
    build_bcast_hierarchical,
    build_bcast_pipelined,
)
from .hierarchical import (
    build_allgather_hierarchical,
    build_allreduce_hierarchical,
    build_alltoall_hierarchical,
)
from .reduce import build_reduce_binomial, build_reduce_rabenseifner
from .schedule import blocking
from .tuning import CollectiveTuning

__all__ = ["ALGORITHMS", "SCHEDULES", "AlgorithmSelector"]

#: Registry: collective → {algorithm name → schedule builder}; what the
#: nonblocking collectives hand to the progress engine, and the single
#: source of truth the blocking registry below derives from.
SCHEDULES: Dict[str, Dict[str, Callable]] = {
    "allreduce": {
        "reduce_bcast": build_allreduce_reduce_bcast,
        "recursive_doubling": build_allreduce_recursive_doubling,
        "ring": build_allreduce_ring,
        "hierarchical": build_allreduce_hierarchical,
    },
    "allgather": {
        "ring": build_allgather_ring,
        "recursive_doubling": build_allgather_recursive_doubling,
        "bruck": build_allgather_bruck,
        "hierarchical": build_allgather_hierarchical,
    },
    "alltoall": {
        "shift": build_alltoall_shift,
        "pairwise": build_alltoall_pairwise,
        "bruck": build_alltoall_bruck,
        "hierarchical": build_alltoall_hierarchical,
    },
    "bcast": {
        "binomial": build_bcast_binomial,
        "hierarchical": build_bcast_hierarchical,
        "pipelined": build_bcast_pipelined,
    },
    "reduce": {
        "binomial": build_reduce_binomial,
        "rabenseifner": build_reduce_rabenseifner,
    },
}

#: Registry: collective → {algorithm name → blocking implementation} —
#: derived from :data:`SCHEDULES`, so the two can never diverge.
ALGORITHMS: Dict[str, Dict[str, Callable]] = {
    coll: {name: blocking(b) for name, b in menu.items()}
    for coll, menu in SCHEDULES.items()
}


class AlgorithmSelector:
    """Picks a collective algorithm from (message size × communicator
    size × placement/topology)."""

    def __init__(self, tuning: Optional[CollectiveTuning] = None) -> None:
        self.tuning = tuning if tuning is not None else CollectiveTuning()

    def _forced(self, coll: str, name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        if name not in ALGORITHMS[coll]:
            raise MpiError(
                f"unknown {coll} algorithm {name!r}; "
                f"choose from {sorted(ALGORITHMS[coll])}"
            )
        return name

    def allreduce(
        self, nbytes: int, size: int, hier_ok: bool = False
    ) -> str:
        forced = self._forced("allreduce", self.tuning.force_allreduce)
        if forced is not None:
            return forced
        if size <= 2:
            # Ring and doubling coincide at P=2; doubling has no chunking
            # overhead and degrades gracefully at P=1.
            return "recursive_doubling"
        if (
            hier_ok
            and self.tuning.allreduce_hier_min_bytes is not None
            and nbytes >= self.tuning.allreduce_hier_min_bytes
        ):
            return "hierarchical"
        if nbytes >= self.tuning.allreduce_ring_min_bytes:
            return "ring"
        return "recursive_doubling"

    def allgather(
        self,
        block_nbytes: int,
        size: int,
        uniform: bool = True,
        hier_ok: bool = False,
    ) -> str:
        forced = self._forced("allgather", self.tuning.force_allgather)
        if forced is not None:
            return forced
        if (
            hier_ok
            and size > 2
            and self.tuning.allgather_hier_min_bytes is not None
            and block_nbytes >= self.tuning.allgather_hier_min_bytes
        ):
            return "hierarchical"
        enough_ranks = (
            size >= self.tuning.allgather_rd_min_ranks
            or block_nbytes <= self.tuning.allgather_rd_small_max_bytes
        )
        if (
            uniform
            and _is_pof2(size)
            and block_nbytes <= self.tuning.allgather_rd_max_bytes
            and enough_ranks
        ):
            return "recursive_doubling"
        if (
            uniform
            and not _is_pof2(size)
            and size > 2
            and block_nbytes <= self.tuning.allgather_bruck_max_bytes
        ):
            return "bruck"
        return "ring"

    def alltoall(
        self,
        block_nbytes: int,
        size: int,
        uniform: bool = True,
        hier_ok: bool = False,
    ) -> str:
        forced = self._forced("alltoall", self.tuning.force_alltoall)
        if forced is not None:
            return forced
        if (
            hier_ok
            and uniform
            and size > 2
            and self.tuning.alltoall_hier_min_bytes is not None
            and block_nbytes >= self.tuning.alltoall_hier_min_bytes
        ):
            return "hierarchical"
        if (
            uniform
            and size > 2
            and 0 < block_nbytes <= self.tuning.alltoall_bruck_max_bytes
        ):
            return "bruck"
        if self.tuning.alltoall_pairwise and _is_pof2(size):
            return "pairwise"
        return "shift"

    def bcast(self, nbytes: int, size: int, hier_ok: bool = False) -> str:
        forced = self._forced("bcast", self.tuning.force_bcast)
        if forced is not None:
            return forced
        # Pipelined outranks hierarchical where both thresholds open:
        # the autotuner only sets bcast_pipeline_min_bytes where the
        # chain models a decisive (>=1.5x) win over BOTH tree shapes.
        if (
            size > 2
            and self.tuning.bcast_pipeline_min_bytes is not None
            and nbytes >= self.tuning.bcast_pipeline_min_bytes
        ):
            return "pipelined"
        if (
            hier_ok
            and size > 2
            and self.tuning.bcast_hier_min_bytes is not None
            and nbytes >= self.tuning.bcast_hier_min_bytes
        ):
            return "hierarchical"
        return "binomial"

    def reduce(self, nbytes: int, size: int) -> str:
        forced = self._forced("reduce", self.tuning.force_reduce)
        if forced is not None:
            return forced
        # Any-P: non-powers of two fold their excess ranks in first
        # (one extra full-size round, priced into the autotuned
        # crossover).
        if (
            size > 2
            and self.tuning.reduce_raben_min_bytes is not None
            and nbytes >= self.tuning.reduce_raben_min_bytes
        ):
            return "rabenseifner"
        return "binomial"
